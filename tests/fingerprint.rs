//! Property tests for the canonical query fingerprint.
//!
//! The plan cache is only sound if the fingerprint is invariant under the
//! two transformations that do not change a conjunctive query's meaning —
//! variable renaming and atom reordering — and only *useful* if
//! structurally different queries get different keys. Both directions are
//! exercised here on randomly generated 3-COLOR query bodies.

use projection_pushing::graph::generate::random_graph;
use projection_pushing::query::{fingerprint, parse_query};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// The 3-COLOR query text of a random graph: `q(<free>) :- edge(...), ...`
/// with vertex `u` named by `names(u)`.
fn color_text(edges: &[(usize, usize)], free: &[usize], names: impl Fn(usize) -> String) -> String {
    let head: Vec<String> = free.iter().map(|&v| names(v)).collect();
    let body: Vec<String> = edges
        .iter()
        .map(|&(u, v)| format!("edge({}, {})", names(u), names(v)))
        .collect();
    format!("q({}) :- {}", head.join(", "), body.join(", "))
}

/// A connected-ish random edge set on `order` vertices.
fn random_edges(order: usize, extra: usize, rng: &mut StdRng) -> Vec<(usize, usize)> {
    let max = order * (order - 1) / 2;
    let m = (order - 1 + extra).min(max);
    random_graph(order, m, rng).edges().to_vec()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Renaming every variable and permuting the atoms leaves the
    /// fingerprint unchanged — the invariance the plan cache relies on.
    #[test]
    fn invariant_under_renaming_and_atom_permutation(
        order in 3usize..10,
        extra in 0usize..10,
        free_count in 0usize..3,
        seed in 0u64..10_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let edges = random_edges(order, extra, &mut rng);
        prop_assume!(!edges.is_empty());
        let free: Vec<usize> = (0..free_count.min(order)).collect();

        let original = color_text(&edges, &free, |v| format!("v{v}"));

        // A random bijective renaming of the vertex set…
        let mut perm: Vec<usize> = (0..order).collect();
        perm.shuffle(&mut rng);
        // …and a random permutation of the atoms (and of each atom's
        // *position* in the body — not of its arguments, which would
        // change the edge).
        let mut shuffled = edges.clone();
        shuffled.shuffle(&mut rng);
        let renamed = color_text(&shuffled, &free, |v| format!("x{}", perm[v]));

        let a = fingerprint(&parse_query(&original).unwrap());
        let b = fingerprint(&parse_query(&renamed).unwrap());
        prop_assert_eq!(a, b, "original: {}\nrenamed: {}", original, renamed);
    }

    /// Adding an edge that was not there before changes the structure,
    /// so the fingerprint must change.
    #[test]
    fn extra_atom_changes_the_key(
        order in 3usize..9,
        extra in 0usize..6,
        seed in 0u64..10_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut edges = random_edges(order, extra, &mut rng);
        prop_assume!(!edges.is_empty());
        let base = fingerprint(&parse_query(&color_text(&edges, &[], |v| format!("v{v}"))).unwrap());

        // A fresh vertex pendant on a random existing one: never isomorphic
        // to the original body (one more variable, one more atom).
        let anchor = edges[rng.random_range(0..edges.len())].0;
        edges.push((anchor, order));
        let grown = fingerprint(&parse_query(&color_text(&edges, &[], |v| format!("v{v}"))).unwrap());
        prop_assert_ne!(base, grown);
    }

    /// The free list is part of the key: projecting a different variable
    /// set must not collide (same body, different output schema).
    #[test]
    fn free_variables_change_the_key(
        order in 3usize..9,
        extra in 0usize..6,
        seed in 0u64..10_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let edges = random_edges(order, extra, &mut rng);
        prop_assume!(!edges.is_empty());
        let boolean = fingerprint(&parse_query(&color_text(&edges, &[], |v| format!("v{v}"))).unwrap());
        // Project an endpoint of the first edge: vertex 0 may be isolated
        // in `random_graph`, and isolated head variables do not parse.
        let unary = fingerprint(
            &parse_query(&color_text(&edges, &[edges[0].0], |v| format!("v{v}"))).unwrap(),
        );
        prop_assert_ne!(boolean, unary);
    }
}

/// Structurally distinct 3-COLOR queries — non-isomorphic graph families —
/// all receive distinct cache keys.
#[test]
fn distinct_structures_get_distinct_keys() {
    use projection_pushing::graph::families;
    let graphs = vec![
        families::path(5),
        families::cycle(5),
        families::cycle(6),
        families::complete(4),
        families::complete(5),
        families::ladder(3),
        families::grid(3, 3),
        families::augmented_path(5),
    ];
    let mut keys = Vec::new();
    for g in &graphs {
        let text = color_text(g.edges(), &[], |v| format!("v{v}"));
        keys.push(fingerprint(&parse_query(&text).unwrap()));
    }
    for i in 0..keys.len() {
        for j in (i + 1)..keys.len() {
            assert_ne!(
                keys[i], keys[j],
                "non-isomorphic graphs {i} and {j} collided"
            );
        }
    }
}
