//! Cross-method correctness: every optimization method must compute
//! exactly the same result as the unoptimized baseline, and the Boolean
//! answer must match an independent reference solver.

use projection_pushing::prelude::*;
use projection_pushing::workload::{color::is_colorable, random_sat, sat_query};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn all_methods() -> Vec<Method> {
    vec![
        Method::Naive,
        Method::Straightforward,
        Method::EarlyProjection,
        Method::Reordering,
        Method::BucketElimination(OrderHeuristic::Mcs),
        Method::BucketElimination(OrderHeuristic::MinDegree),
        Method::BucketElimination(OrderHeuristic::MinFill),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Boolean 3-COLOR: all methods agree with backtracking search.
    #[test]
    fn boolean_color_agrees_with_reference(order in 4usize..10, extra in 0usize..12, seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let max = order * (order - 1) / 2;
        let m = (order - 1 + extra).min(max);
        let g = projection_pushing::graph::generate::random_graph(order, m, &mut rng);
        prop_assume!(!g.edges().is_empty());
        let (q, db) = color_query(&g, &ColorQueryOptions::boolean(), &mut rng);
        let expected = is_colorable(&g, 3);
        for method in all_methods() {
            let (rel, _) = Eval::new(&q, &db).method(method).seed(seed).run().unwrap();
            prop_assert_eq!(!rel.is_empty(), expected, "{} disagrees", method.name());
        }
    }

    /// Non-Boolean 3-COLOR: all methods return the same relation (as a
    /// set) as the straightforward baseline.
    #[test]
    fn non_boolean_color_results_match(order in 4usize..9, extra in 0usize..8, seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let max = order * (order - 1) / 2;
        let m = (order - 1 + extra).min(max);
        let g = projection_pushing::graph::generate::random_graph(order, m, &mut rng);
        prop_assume!(!g.edges().is_empty());
        let (q, db) = color_query(&g, &ColorQueryOptions::non_boolean(), &mut rng);
        let (baseline, _) = Eval::new(&q, &db)
            .method(Method::Straightforward)
            .seed(seed)
            .run()
            .unwrap();
        for method in all_methods() {
            let (rel, _) = Eval::new(&q, &db).method(method).seed(seed).run().unwrap();
            prop_assert!(rel.set_eq(&baseline), "{} differs", method.name());
        }
    }

    /// 3-SAT: bucket elimination agrees with DPLL.
    #[test]
    fn sat_agrees_with_dpll(n in 4usize..9, m in 4usize..30, seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        prop_assume!(n >= 3);
        let inst = random_sat(n, m, 3, &mut rng);
        let (q, db) = sat_query(&inst, 0.0, &mut rng);
        let expected = inst.is_satisfiable();
        for method in [Method::Straightforward, Method::BucketElimination(OrderHeuristic::Mcs)] {
            let (rel, _) = Eval::new(&q, &db).method(method).seed(seed).run().unwrap();
            prop_assert_eq!(!rel.is_empty(), expected, "{} disagrees", method.name());
        }
    }

    /// 2-SAT variant.
    #[test]
    fn two_sat_agrees_with_dpll(n in 3usize..9, m in 3usize..20, seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let inst = random_sat(n, m, 2, &mut rng);
        let (q, db) = sat_query(&inst, 0.0, &mut rng);
        let expected = inst.is_satisfiable();
        let (rel, _) = Eval::new(&q, &db)
            .method(Method::BucketElimination(OrderHeuristic::Mcs))
            .seed(seed)
            .run()
            .unwrap();
        prop_assert_eq!(!rel.is_empty(), expected);
    }

    /// The pipelined and the fully materialized executor agree on every
    /// method's plan.
    #[test]
    fn executors_agree(order in 4usize..8, extra in 0usize..6, seed in 0u64..1000) {
        use projection_pushing::core::methods::build_plan;
        use projection_pushing::relalg::exec;
        let mut rng = StdRng::seed_from_u64(seed);
        let max = order * (order - 1) / 2;
        let m = (order - 1 + extra).min(max);
        let g = projection_pushing::graph::generate::random_graph(order, m, &mut rng);
        prop_assume!(!g.edges().is_empty());
        let (q, db) = color_query(&g, &ColorQueryOptions::boolean(), &mut rng);
        for method in all_methods() {
            let plan = build_plan(method, &q, &db, &mut rng);
            let (a, _) = exec::execute(&plan, &Budget::unlimited()).unwrap();
            let (b, _) = exec::execute_materialized(&plan, &Budget::unlimited()).unwrap();
            prop_assert!(a.set_eq(&b), "{} executors disagree", method.name());
        }
    }
}

#[test]
fn structured_families_answers() {
    // All structured families are bipartite-ish and 3-colorable; their
    // queries must be nonempty for every method.
    use projection_pushing::graph::families;
    for g in [
        families::augmented_path(6),
        families::ladder(5),
        families::augmented_ladder(4),
        families::augmented_circular_ladder(4),
    ] {
        let mut rng = StdRng::seed_from_u64(3);
        let (q, db) = color_query(&g, &ColorQueryOptions::boolean(), &mut rng);
        for method in all_methods() {
            assert!(
                Eval::new(&q, &db)
                    .method(method)
                    .seed(3)
                    .nonempty()
                    .unwrap(),
                "{} on order-{} family",
                method.name(),
                g.order()
            );
        }
    }
}
