//! SQL golden tests on the Appendix-A pentagon: the emitted SQL for each
//! method has the appendix's structure (flat WHERE form for naive, a
//! nested JOIN chain for straightforward, subqueries for the projection
//! pushing methods), and the naive emission matches Appendix A.1 exactly
//! up to whitespace.

use projection_pushing::prelude::*;
use projection_pushing::sql::emit::render;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn pentagon() -> (ConjunctiveQuery, Database) {
    let mut vars = Vars::new();
    let v: Vec<_> = (1..=5).map(|i| vars.intern(&format!("v{i}"))).collect();
    let e = |a: usize, b: usize| Atom::new("edge", vec![v[a - 1], v[b - 1]]);
    let q = ConjunctiveQuery::new(
        vec![e(1, 2), e(1, 5), e(4, 5), e(3, 4), e(2, 3)],
        vec![v[0]],
        vars,
        true,
    );
    let mut db = Database::new();
    db.add(projection_pushing::workload::edge_relation(3));
    (q, db)
}

fn sql_for(method: Method) -> String {
    let (q, db) = pentagon();
    let mut rng = StdRng::seed_from_u64(4);
    render(&emit_sql(method, &q, &db, &mut rng))
}

#[test]
fn naive_matches_appendix_a1() {
    let sql = sql_for(Method::Naive);
    let expected = "\
SELECT DISTINCT e1.v1
FROM edge e1 (v1, v2), edge e2 (v1, v5), edge e3 (v4, v5), edge e4 (v3, v4), edge e5 (v2, v3)
WHERE e2.v1 = e1.v1 AND e3.v5 = e2.v5 AND e4.v4 = e3.v4 AND e5.v2 = e1.v2 AND e5.v3 = e4.v3;";
    assert_eq!(sql, expected);
}

#[test]
fn straightforward_is_a_nested_join_chain() {
    let sql = sql_for(Method::Straightforward);
    // Atoms appear innermost-first: e1 = edge(v1,v2) deepest, the last
    // listed atom outermost (Appendix A.2's shape).
    assert!(
        sql.contains("edge e2 (v1, v5) JOIN edge e1 (v1, v2)"),
        "{sql}"
    );
    assert!(sql.contains("ON (e2.v1 = e1.v1)"), "{sql}");
    // No subqueries: straightforward does not push projections.
    assert!(!sql.contains(" AS t"), "{sql}");
    // Exactly one SELECT.
    assert_eq!(sql.matches("SELECT").count(), 1, "{sql}");
}

#[test]
fn early_projection_emits_live_var_subqueries() {
    let sql = sql_for(Method::EarlyProjection);
    assert!(sql.contains(") AS t1"), "{sql}");
    assert!(sql.contains(") AS t2"), "{sql}");
    // The innermost subquery projects out v5 after edge(v4,v5) joins: its
    // SELECT keeps v1, v2, v4 (the live variables).
    assert!(sql.matches("SELECT DISTINCT").count() >= 3, "{sql}");
}

#[test]
fn reordering_emits_permuted_chain() {
    let sql = sql_for(Method::Reordering);
    // Still one outer SELECT over subqueries; all five atoms referenced.
    assert_eq!(sql.matches("edge e").count(), 5, "{sql}");
}

#[test]
fn bucket_emits_one_subquery_per_eliminated_bucket() {
    let sql = sql_for(Method::BucketElimination(OrderHeuristic::Mcs));
    // The pentagon has 5 variables; with the free variable kept, bucket
    // elimination materializes several nested subqueries (Appendix A.5
    // shows 3 for its order).
    assert!(sql.matches("SELECT DISTINCT").count() >= 3, "{sql}");
    assert_eq!(sql.matches("edge e").count(), 5, "{sql}");
}

#[test]
fn all_methods_reference_every_atom_exactly_once() {
    for method in [
        Method::Naive,
        Method::Straightforward,
        Method::EarlyProjection,
        Method::Reordering,
        Method::BucketElimination(OrderHeuristic::Mcs),
    ] {
        let sql = sql_for(method);
        assert_eq!(sql.matches("edge e").count(), 5, "{}: {sql}", method.name());
    }
}

#[test]
fn emitted_sql_is_deterministic_per_seed() {
    let a = sql_for(Method::BucketElimination(OrderHeuristic::Mcs));
    let b = sql_for(Method::BucketElimination(OrderHeuristic::Mcs));
    assert_eq!(a, b);
}
