//! Properties of the join minimizer (cores of conjunctive queries).

use projection_pushing::core::minimize::{contained_in, equivalent, minimize};
use projection_pushing::prelude::*;
use proptest::prelude::*;

/// A random Boolean query over one binary relation `e`: `m` atoms over `k`
/// variables.
fn random_cq(k: usize, pairs: &[(usize, usize)]) -> ConjunctiveQuery {
    let mut vars = Vars::new();
    let ids = vars.intern_numbered("x", k);
    let atoms: Vec<Atom> = pairs
        .iter()
        .map(|&(a, b)| Atom::new("e", vec![ids[a % k], ids[b % k]]))
        .collect();
    let head = atoms[0].args[0];
    ConjunctiveQuery::new(atoms, vec![head], vars, true)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn minimization_preserves_equivalence(
        k in 2usize..5,
        pairs in prop::collection::vec((0usize..5, 0usize..5), 1..6),
    ) {
        let q = random_cq(k, &pairs);
        let m = minimize(&q);
        prop_assert!(m.num_atoms() <= q.num_atoms());
        prop_assert!(equivalent(&m, &q));
    }

    #[test]
    fn minimization_is_idempotent(
        k in 2usize..5,
        pairs in prop::collection::vec((0usize..5, 0usize..5), 1..6),
    ) {
        let q = random_cq(k, &pairs);
        let once = minimize(&q);
        let twice = minimize(&once);
        prop_assert_eq!(once.num_atoms(), twice.num_atoms());
    }

    #[test]
    fn containment_is_a_preorder(
        k in 2usize..4,
        pairs_a in prop::collection::vec((0usize..4, 0usize..4), 1..4),
        pairs_b in prop::collection::vec((0usize..4, 0usize..4), 1..4),
    ) {
        // Reflexivity, plus: adding atoms to a query strengthens it.
        let a = random_cq(k, &pairs_a);
        prop_assert!(contained_in(&a, &a));
        // b2 = a's atoms plus b's atoms over the same variable space and
        // the same head ⇒ b2 ⊑ a.
        let combined = {
            let mut atoms = a.atoms.clone();
            let b = random_cq(k, &pairs_b);
            // Reuse a's vars: b's variable ids live in the same space
            // because both interned x0..x{k-1} in order.
            atoms.extend(b.atoms.iter().cloned());
            ConjunctiveQuery::new(atoms, a.free.clone(), a.vars.clone(), true)
        };
        prop_assert!(contained_in(&combined, &a));
    }

    #[test]
    fn duplicated_atoms_always_fold(
        k in 2usize..5,
        pairs in prop::collection::vec((0usize..5, 0usize..5), 1..4),
    ) {
        // Query with every atom duplicated minimizes to at most the
        // original atom count.
        let doubled: Vec<(usize, usize)> =
            pairs.iter().flat_map(|&p| [p, p]).collect();
        let q = random_cq(k, &doubled);
        let m = minimize(&q);
        prop_assert!(m.num_atoms() <= pairs.len());
    }
}
