//! Kill-and-recover end-to-end tests over the real `ppr` binary.
//!
//! These tests exercise the durability tentpole exactly the way an
//! operator hits it: `ppr serve --data-dir DIR` on an ephemeral port,
//! real mutations over TCP, **SIGKILL** (no shutdown hooks, no flush —
//! `Child::kill` on unix), then a restart on the same directory. Every
//! acknowledged mutation must be there, query rows must be byte-identical
//! to the uninterrupted server's, and the recovered databases must keep
//! their pre-crash versions *and* content fingerprints — the latter is
//! what lets repeated queries hit the result cache again after restart.

use std::io::BufRead;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use projection_pushing::core::methods::{Method, OrderHeuristic};
use projection_pushing::service::{Client, Request};

fn tmpdir(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "ppr-durability-e2e-{}-{tag}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Spawns `ppr serve --data-dir <dir>` on an ephemeral port and waits for
/// its readiness line. The stderr pipe keeps draining in a thread so a
/// later server log line can never EPIPE-kill the process mid-test.
fn spawn_serve(dir: &Path) -> (Child, String) {
    let mut serve = Command::new(env!("CARGO_BIN_EXE_ppr"))
        .args([
            "serve",
            "--listen",
            "127.0.0.1:0",
            "--data-dir",
            dir.to_str().expect("utf-8 tmp path"),
        ])
        .stderr(Stdio::piped())
        .stdout(Stdio::null())
        .spawn()
        .expect("spawn ppr serve");
    let stderr = serve.stderr.take().expect("stderr");
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        for line in std::io::BufReader::new(stderr).lines() {
            let Ok(line) = line else { break };
            if let Some(rest) = line.strip_prefix("ppr-service listening on ") {
                let _ = tx.send(rest.trim().to_string());
            }
        }
    });
    let addr = rx
        .recv_timeout(Duration::from_secs(30))
        .expect("serve never reported its address");
    (serve, addr)
}

fn request(rule: &str, db: Option<&str>) -> Request {
    let mut req = Request::new(rule, Method::BucketElimination(OrderHeuristic::Mcs));
    req.db = db.map(str::to_string);
    req
}

/// Build → mutate → SIGKILL → restart: everything acknowledged survives
/// byte-for-byte, versions and fingerprints included, and the repeated
/// query reports a result-cache hit again after the restart.
#[test]
fn sigkill_recovers_acknowledged_catalog_byte_identically() {
    let dir = tmpdir("roundtrip");
    let (mut serve, addr) = spawn_serve(&dir);
    let mut client = Client::connect(&addr).expect("connect");

    // Mutate over the wire: a second database built from create + load +
    // add, plus an add on the default database.
    client.create_db("g2").expect("create");
    client
        .load(
            "g2",
            "edge",
            vec![
                vec![0, 1].into_boxed_slice(),
                vec![1, 2].into_boxed_slice(),
                vec![2, 0].into_boxed_slice(),
            ],
        )
        .expect("load");
    client
        .add("g2", "edge", vec![0, 2].into_boxed_slice())
        .expect("add");

    let rule = "q(x, y) :- edge(x, y), edge(y, x)";
    let before_default = client.run(&request(rule, None)).expect("default query");
    let before_g2 = client.run(&request(rule, Some("g2"))).expect("g2 query");
    let before_dbs = client.dbs().expect("dbs");
    assert_eq!(before_dbs.len(), 2, "default + g2: {before_dbs:?}");

    // SIGKILL — no shutdown path runs.
    serve.kill().expect("kill");
    serve.wait().expect("wait");

    let (mut serve, addr) = spawn_serve(&dir);
    let mut client = Client::connect(&addr).expect("reconnect");

    // The catalog listing is identical: same names, same versions, same
    // content fingerprints (the cache identity survived the crash).
    let after_dbs = client.dbs().expect("dbs after restart");
    assert_eq!(after_dbs, before_dbs, "catalog identity must survive");

    // Query rows are byte-identical to the uninterrupted server's.
    let after_default = client.run(&request(rule, None)).expect("default query");
    let after_g2 = client.run(&request(rule, Some("g2"))).expect("g2 query");
    assert_eq!(after_default.rows, before_default.rows);
    assert_eq!(after_default.columns, before_default.columns);
    assert_eq!(after_g2.rows, before_g2.rows);
    assert!(!after_g2.rows.is_empty(), "the triangle query has answers");

    // The fresh process's result cache is empty, so that first repeat was
    // a miss — but because the *fingerprint* recovered, the second repeat
    // hits without re-execution.
    assert!(!after_g2.result_cache_hit);
    let repeat = client.run(&request(rule, Some("g2"))).expect("repeat");
    assert!(
        repeat.result_cache_hit,
        "recovered fingerprint must resume the cache identity"
    );
    assert_eq!(repeat.rows, after_g2.rows);

    // And the recovered catalog keeps mutating: versions continue above
    // the pre-crash high-water mark.
    let max_before = before_dbs.iter().map(|d| d.version).max().unwrap();
    let v = client
        .add("g2", "edge", vec![9, 9].into_boxed_slice())
        .expect("post-recovery add");
    assert!(v > max_before, "{v} must exceed {max_before}");

    serve.kill().expect("kill");
    serve.wait().expect("wait");
    let _ = std::fs::remove_dir_all(&dir);
}

/// SIGKILL racing a mutation workload: the recovered relation must hold
/// **every acknowledged** tuple and be exactly a prefix of the issued
/// sequence — identical to what an uninterrupted run that stopped at the
/// same point would hold. Nothing acknowledged is lost, nothing is
/// invented, order is preserved.
#[test]
fn sigkill_mid_workload_loses_no_acknowledged_mutation() {
    let dir = tmpdir("midkill");
    let (mut serve, addr) = spawn_serve(&dir);

    // The issued sequence is deterministic: tuple i is (i, i + 1), all
    // distinct, so the relation's tuple list is exactly the acked prefix.
    let issued: Vec<Box<[u32]>> = (0..10_000u32)
        .map(|i| vec![i, i + 1].into_boxed_slice())
        .collect();
    let worker_issued = issued.clone();
    let worker_addr = addr.clone();
    let (tx, rx) = std::sync::mpsc::channel::<usize>();
    let worker = std::thread::spawn(move || {
        let mut client = Client::connect(&worker_addr).expect("connect");
        client.create_db("w").expect("create");
        let mut acked = 0usize;
        for t in &worker_issued {
            if client.add("w", "edge", t.clone()).is_err() {
                break; // the server died mid-request
            }
            acked += 1;
            let _ = tx.send(acked);
        }
        acked
    });

    // Let a few mutations through, then SIGKILL while the workload runs.
    let mut seen = 0;
    while seen < 25 {
        seen = rx.recv_timeout(Duration::from_secs(30)).expect("progress");
    }
    serve.kill().expect("kill");
    serve.wait().expect("wait");
    let acked = worker.join().expect("worker");
    assert!(acked >= 25);

    let (mut serve, addr) = spawn_serve(&dir);
    let mut client = Client::connect(&addr).expect("reconnect");
    let recovered = client
        .run(&request("q(x, y) :- edge(x, y)", Some("w")))
        .expect("scan recovered relation");
    // ⊇ acked: a client that saw `ok` never loses its mutation…
    assert!(
        recovered.rows.len() >= acked,
        "recovered {} < acknowledged {acked}",
        recovered.rows.len()
    );
    // …and ≤ issued, forming exactly the issued prefix of that length:
    // the fsync may have landed for a record whose ack was still in
    // flight, but nothing more and nothing invented — the same tuples an
    // uninterrupted run of that length would hold. (Sorted before
    // comparing: the issued sequence is ascending by construction, and
    // all tuples are distinct, so sorted-set equality with the first `n`
    // holds iff the recovered rows are precisely that prefix.)
    assert!(recovered.rows.len() <= issued.len());
    let mut rows = recovered.rows.clone();
    rows.sort_unstable();
    assert_eq!(
        rows.as_slice(),
        &issued[..rows.len()],
        "recovered relation must be an exact prefix of the issued sequence"
    );

    serve.kill().expect("kill");
    serve.wait().expect("wait");
    let _ = std::fs::remove_dir_all(&dir);
}

/// A fresh `--data-dir` round-trips an (almost) empty catalog: the server
/// seeds only the default database, a restart recovers exactly it, and
/// the directory contains nothing but that database's files.
#[test]
fn fresh_data_dir_round_trips_cleanly() {
    let dir = tmpdir("fresh");
    let (mut serve, addr) = spawn_serve(&dir);
    let mut client = Client::connect(&addr).expect("connect");
    let before = client.dbs().expect("dbs");
    assert_eq!(before.len(), 1, "only the seeded default: {before:?}");
    assert_eq!(before[0].name, "default");
    serve.kill().expect("kill");
    serve.wait().expect("wait");

    // The data dir holds exactly one database directory, no stray files.
    let entries: Vec<String> = std::fs::read_dir(&dir)
        .expect("data dir exists")
        .flatten()
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .collect();
    assert_eq!(entries, vec!["default".to_string()], "stray: {entries:?}");

    let (mut serve, addr) = spawn_serve(&dir);
    let mut client = Client::connect(&addr).expect("reconnect");
    let after = client.dbs().expect("dbs after restart");
    assert_eq!(after, before, "clean re-open must change nothing");
    serve.kill().expect("kill");
    serve.wait().expect("wait");
    let _ = std::fs::remove_dir_all(&dir);
}
