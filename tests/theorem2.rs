//! Theorem 2: the induced width of a project-join query (best variable
//! order for bucket elimination) equals the treewidth of its join graph —
//! and the bucket-elimination *plan* realizes induced width + 1 as its
//! maximal intermediate arity.

use projection_pushing::core::methods::bucket;
use projection_pushing::core::width;
use projection_pushing::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn random_boolean_query(
    order: usize,
    extra: usize,
    seed: u64,
) -> Option<(ConjunctiveQuery, Database)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let max = order * (order - 1) / 2;
    let m = (order - 1 + extra).min(max);
    let g = projection_pushing::graph::generate::random_graph(order, m, &mut rng);
    if g.edges().is_empty() {
        return None;
    }
    Some(color_query(&g, &ColorQueryOptions::boolean(), &mut rng))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Exact induced width = exact treewidth.
    #[test]
    fn theorem2_equality(order in 4usize..8, extra in 0usize..6, seed in 0u64..1000) {
        let Some((q, _)) = random_boolean_query(order, extra, seed) else { return Ok(()); };
        let tw = width::join_graph_treewidth(&q);
        let (iw, best_order) = width::induced_width_exact(&q);
        prop_assert_eq!(iw, tw);
        prop_assert_eq!(width::induced_width_of(&q, &best_order), tw);
    }

    /// The bucket-elimination plan built along an order has maximal
    /// intermediate arity exactly the order's induced width + 1 (Boolean
    /// queries over connected instances).
    #[test]
    fn bucket_plan_width_matches_induced_width(order in 4usize..9, extra in 1usize..8, seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let max = order * (order - 1) / 2;
        let m = (order - 1 + extra).min(max);
        let g = projection_pushing::graph::generate::random_graph(order, m, &mut rng);
        prop_assume!(g.is_connected() && !g.edges().is_empty());
        let (q, db) = color_query(&g, &ColorQueryOptions::boolean(), &mut rng);
        let attr_order = bucket::bucket_order(&q, OrderHeuristic::Mcs, &mut rng);
        let iw = width::induced_width_of(&q, &attr_order);
        let plan = bucket::plan_with_order(&q, &db, &attr_order);
        prop_assert_eq!(plan.width().unwrap(), iw + 1);
    }

    /// Heuristic orders are sound upper bounds: never below treewidth.
    #[test]
    fn heuristics_respect_lower_bound(order in 4usize..8, extra in 0usize..6, seed in 0u64..1000) {
        let Some((q, _)) = random_boolean_query(order, extra, seed) else { return Ok(()); };
        let tw = width::join_graph_treewidth(&q);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x11);
        for h in [OrderHeuristic::Mcs, OrderHeuristic::MinDegree, OrderHeuristic::MinFill] {
            let w = width::heuristic_induced_width(&q, h, &mut rng);
            prop_assert!(w >= tw, "{h:?}: {w} < treewidth {tw}");
        }
    }

    /// Executing the optimal-order bucket plan never materializes an
    /// intermediate wider than treewidth + 1 (the operational content of
    /// Theorem 2).
    #[test]
    fn execution_respects_theorem2(order in 4usize..8, extra in 0usize..6, seed in 0u64..1000) {
        use projection_pushing::relalg::exec;
        let Some((q, db)) = random_boolean_query(order, extra, seed) else { return Ok(()); };
        let (tw, best_order) = width::induced_width_exact(&q);
        let plan = bucket::plan_with_order(&q, &db, &best_order);
        let (_, stats) = exec::execute(&plan, &Budget::unlimited()).unwrap();
        prop_assert!(stats.max_intermediate_arity <= tw + 1,
            "arity {} > treewidth {} + 1", stats.max_intermediate_arity, tw);
    }
}
