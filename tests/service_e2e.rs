//! End-to-end smoke test of the serving subsystem: a real TCP server on
//! an ephemeral port, a real client, one 3-COLOR query per planning
//! method, and the acceptance bar that wire answers are byte-identical to
//! library-level evaluation. Also exercises the catalog verbs (`create` /
//! `use` / `load` / `add` / `drop`) with version-based result-cache
//! invalidation, admission control (saturation fast-fails with
//! `Overloaded`), and graceful shutdown.

use projection_pushing::prelude::*;
use projection_pushing::query::{parse_query, Database};
use projection_pushing::service::engine::EngineStats;
use projection_pushing::workload::edge_relation;
use projection_pushing::{service, Eval};
use service::{Catalog, Engine, EngineConfig, ServiceError};

/// 3-COLOR of the pentagon with two free variables, so responses carry
/// actual rows (not just a Boolean).
const PENTAGON: &str = "q(a, b) :- edge(a, b), edge(b, c), edge(c, d), edge(d, f), edge(f, a)";

fn color_db() -> Database {
    let mut db = Database::new();
    db.add(edge_relation(3));
    db
}

fn color_catalog() -> Catalog {
    Catalog::with_default(color_db())
}

fn all_methods() -> Vec<Method> {
    vec![
        Method::Naive,
        Method::Straightforward,
        Method::EarlyProjection,
        Method::Reordering,
        Method::BucketElimination(OrderHeuristic::Mcs),
        Method::BucketElimination(OrderHeuristic::MinDegree),
        Method::BucketElimination(OrderHeuristic::MinFill),
    ]
}

#[test]
fn wire_answers_match_library_evaluation_per_method() {
    let engine = Engine::start(color_catalog(), EngineConfig::default());
    let mut server = service::Server::builder()
        .addr("127.0.0.1:0")
        .engine(engine.handle())
        .start()
        .expect("ephemeral bind");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    client.ping().expect("ping");

    let query = parse_query(PENTAGON).unwrap();
    let db = color_db();
    for method in all_methods() {
        // The engine's default seed is 0; evaluate with the same seed and
        // an equivalent budget for byte-identical plans and rows.
        let (expected, _) = Eval::new(&query, &db).method(method).run().unwrap();
        let response = client.run(&Request::new(PENTAGON, method)).unwrap();
        assert_eq!(
            response.rows,
            expected.tuples().to_vec(),
            "{} over the wire differs from the library",
            method.name()
        );
        // And from the parallel executor, which is byte-identical by
        // construction.
        let (par, _) = Eval::new(&query, &db)
            .method(method)
            .threads(2)
            .run()
            .unwrap();
        assert_eq!(response.rows, par.tuples().to_vec());
        assert_eq!(response.columns, vec!["a", "b"]);
    }

    // Re-running the lineup is served from the result cache for every
    // method: no re-planning, no re-execution, byte-identical rows.
    let before: EngineStats = client.stats().unwrap();
    for method in all_methods() {
        let cold = client.run(&Request::new(PENTAGON, method)).unwrap();
        assert!(cold.cache_hit, "{} should be cached", method.name());
        assert!(cold.result_cache_hit, "{} should hit rows", method.name());
        assert_eq!(cold.plan_micros, 0, "cache hits must not re-plan");
    }
    let after: EngineStats = client.stats().unwrap();
    assert_eq!(
        after.results.hits,
        before.results.hits + all_methods().len() as u64
    );
    assert_eq!(after.results.misses, before.results.misses);
    assert_eq!(after.cache.misses, before.cache.misses, "no re-planning");

    server.shutdown();
    engine.shutdown();
}

#[test]
fn catalog_mutations_invalidate_result_cache_over_the_wire() {
    let engine = Engine::start(color_catalog(), EngineConfig::default());
    let mut server = service::Server::builder()
        .addr("127.0.0.1:0")
        .engine(engine.handle())
        .start()
        .expect("ephemeral bind");
    let mut client = Client::connect(server.local_addr()).expect("connect");

    // Build a fresh 2-colorability database over the wire.
    let v0 = client.create_db("two").expect("create");
    let pairs = vec![vec![0, 1].into_boxed_slice(), vec![1, 0].into_boxed_slice()];
    let v1 = client.load("two", "edge", pairs).expect("load");
    assert!(v1 > v0, "load must bump the version");
    client.use_db("two").expect("use");

    // The 4-cycle is 2-colorable; its colorings under two colors are the
    // two alternating assignments.
    let square = "q(a, b) :- edge(a, b), edge(b, c), edge(c, d), edge(d, a)";
    let req = Request::query(square).method(Method::BucketElimination(OrderHeuristic::Mcs));
    let cold = client.run(&req).unwrap();
    assert!(!cold.result_cache_hit);
    assert_eq!(cold.rows.len(), 2);

    // Cached replay is byte-identical to the cold execution.
    let warm = client.run(&req).unwrap();
    assert!(warm.result_cache_hit, "repeat must hit the result cache");
    assert!(warm.cache_hit);
    assert_eq!(warm.rows, cold.rows, "cached rows must be byte-identical");
    assert_eq!(warm.columns, cold.columns);

    // `add` bumps the version: the very next run misses both caches and
    // sees the new data (a third color enlarges the answer set).
    let v2 = client
        .add("two", "edge", vec![0, 2].into_boxed_slice())
        .expect("add");
    assert!(v2 > v1, "add must bump the version");
    for t in [[2, 0], [1, 2], [2, 1]] {
        client
            .add("two", "edge", t.to_vec().into_boxed_slice())
            .expect("add");
    }
    let fresh = client.run(&req).unwrap();
    assert!(
        !fresh.result_cache_hit,
        "version bump must invalidate results"
    );
    assert!(
        !fresh.cache_hit,
        "plans bind snapshot scans, so they re-plan"
    );
    assert!(
        fresh.rows.len() > cold.rows.len(),
        "new tuples must show up"
    );

    // …and the new version then caches in its own right.
    assert!(client.run(&req).unwrap().result_cache_hit);

    // `load` (replace) back to the original two tuples bumps the version
    // but restores the original *content* — and caches key on the
    // content fingerprint, so the original cached result revives instead
    // of re-executing. Same content, same answers, zero execution.
    let pairs = vec![vec![0, 1].into_boxed_slice(), vec![1, 0].into_boxed_slice()];
    let v3 = client.load("two", "edge", pairs).expect("reload");
    assert!(v3 > v2, "reload still bumps the version");
    let reloaded = client.run(&req).unwrap();
    assert!(
        reloaded.result_cache_hit,
        "restored content must revive the fingerprint-keyed cache entry"
    );
    assert_eq!(reloaded.rows, cold.rows);

    // Dropping the database ends the story: named access now fails.
    client.drop_db("two").expect("drop");
    assert!(matches!(
        client.run(&req.clone().on("two")),
        Err(ServiceError::UnknownDatabase(_))
    ));

    server.shutdown();
    engine.shutdown();
}

#[test]
fn saturated_server_sheds_load_with_overloaded() {
    // One worker and a one-slot queue: concurrent clients must observe
    // typed overload errors, not unbounded queueing. The result cache is
    // off so every request really executes.
    let mut cfg = EngineConfig::default();
    cfg.workers = 1;
    cfg.queue_capacity = 1;
    cfg.max_inflight = 2;
    cfg.result_cache_bytes = 0;
    let engine = Engine::start(color_catalog(), cfg);
    let server = service::Server::builder()
        .addr("127.0.0.1:0")
        .engine(engine.handle())
        .start()
        .expect("ephemeral bind");
    let addr = server.local_addr();

    // K6: slow enough under `straightforward` to pile up concurrent work.
    let atoms: Vec<String> = (0..6)
        .flat_map(|i| ((i + 1)..6).map(move |j| format!("edge(v{i}, v{j})")))
        .collect();
    let slow = format!("q() :- {}", atoms.join(", "));

    let mut joins = Vec::new();
    for _ in 0..8 {
        let slow = slow.clone();
        joins.push(std::thread::spawn(move || {
            let mut c = Client::connect(addr).expect("connect");
            c.run(&Request::new(slow, Method::Straightforward))
        }));
    }
    let results: Vec<_> = joins.into_iter().map(|j| j.join().unwrap()).collect();
    let overloaded = results
        .iter()
        .filter(|r| matches!(r, Err(ServiceError::Overloaded { .. })))
        .count();
    let succeeded = results.iter().filter(|r| r.is_ok()).count();
    assert!(
        overloaded > 0,
        "8 concurrent requests against in-flight cap 2 must shed load"
    );
    assert!(succeeded > 0, "admitted requests must still be answered");
    assert_eq!(engine.handle().stats().rejected as usize, overloaded);

    drop(server); // Drop also shuts the server down gracefully.
    engine.shutdown();
}

#[test]
fn shutdown_is_graceful_and_then_refuses() {
    let engine = Engine::start(color_catalog(), EngineConfig::default());
    let mut server = service::Server::builder()
        .addr("127.0.0.1:0")
        .engine(engine.handle())
        .start()
        .expect("ephemeral bind");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let handle = engine.handle();

    // A request completes normally before shutdown…
    let ok = client.run(&Request::new(PENTAGON, Method::EarlyProjection));
    assert!(ok.is_ok());

    // …the engine drains and refuses afterwards.
    server.shutdown();
    engine.shutdown();
    assert!(matches!(
        handle.execute(Request::new(PENTAGON, Method::EarlyProjection)),
        Err(ServiceError::ShuttingDown)
    ));
}

/// An `ok` line with its wall-clock fields (`plan_us`, `elapsed_us`,
/// `cpu_us`) and its physical-work attribution fields (`scanned=`,
/// `ix_builds=`) removed. The timing fields are wall-clock noise; the
/// attribution fields are run-order-dependent under concurrency because
/// the snapshot's lazy secondary indexes are built by whichever request
/// probes first — that request alone reports the build (and the rows it
/// read to build it). Everything left — cache flags, `tuples=`,
/// `emitted=`, `ix_probes=`, columns, row count, row data — is
/// deterministic for a fixed request against a fresh engine. The `data=`
/// payload never contains spaces (rows are `;`/`,`-separated), so
/// field-splitting is safe.
fn strip_timings(line: &str) -> String {
    line.split(' ')
        .filter(|f| {
            !f.starts_with("plan_us=")
                && !f.starts_with("elapsed_us=")
                && !f.starts_with("cpu_us=")
                && !f.starts_with("scanned=")
                && !f.starts_with("ix_builds=")
        })
        .collect::<Vec<_>>()
        .join(" ")
}

/// The tentpole acceptance bar for protocol v2: replies on a pipelined
/// connection are a **permutation** of the serial v1 replies — every id
/// answered exactly once — and each reply is **byte-identical** to its
/// serial counterpart modulo the `id=` tag, the arrival order, the
/// wall-clock timing fields, and the index-build attribution fields
/// (see [`strip_timings`]: concurrent requests race to build the
/// snapshot's lazy indexes, so which one reports `ix_builds=` is
/// scheduler-dependent). Both runs hit fresh engines with the same
/// per-request seeds, so plans, cache flags, and the remaining execution
/// stats have no run-order excuse to differ. The list mixes all seven
/// methods with two deterministic failures to cover the `err` path too.
///
/// The serial reference is pinned to the thread-per-connection backend
/// while the pipelined run uses the builder's default (the epoll event
/// loop on Linux), so the permutation check is simultaneously the
/// cross-backend acceptance bar: two different connection layers, one
/// byte-identical reply stream.
#[test]
fn pipelined_replies_are_a_per_id_permutation_of_serial() {
    use projection_pushing::service::protocol;
    use std::collections::HashMap;
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;

    let mut wire_lines: Vec<String> = Vec::new();
    for (i, method) in all_methods().iter().cycle().take(21).enumerate() {
        let mut request = Request::new(PENTAGON, *method);
        request.seed = Some(100 + i as u64);
        wire_lines.push(protocol::encode_request(&request));
    }
    wire_lines.push(protocol::encode_request(&Request::new(
        "q(a) :- nosuch(a, b)",
        Method::EarlyProjection,
    )));
    wire_lines.push(protocol::encode_request(&Request::new(
        "q(a :- edge(",
        Method::Straightforward,
    )));

    // Serial reference: v1 untagged lines, one reply per request, in order.
    let serial: Vec<String> = {
        let engine = Engine::start(color_catalog(), EngineConfig::default());
        // The serial reference runs on the thread-per-connection backend,
        // so the permutation check below doubles as the cross-backend
        // acceptance bar: the event-loop server must answer byte-identically
        // to the threaded one.
        let mut server = service::Server::builder()
            .addr("127.0.0.1:0")
            .engine(engine.handle())
            .connection_model(service::ConnectionModel::Threads)
            .start()
            .expect("ephemeral bind");
        let stream = TcpStream::connect(server.local_addr()).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut replies = Vec::new();
        for line in &wire_lines {
            (&stream)
                .write_all(format!("{line}\n").as_bytes())
                .expect("write");
            let mut reply = String::new();
            assert!(reader.read_line(&mut reply).expect("read") > 0);
            replies.push(reply.trim_end().to_string());
        }
        drop(stream);
        server.shutdown();
        engine.shutdown();
        replies
    };

    // Pipelined run: same lines, same seeds, fresh engine, ids 1..=N kept
    // in flight up to the advertised window.
    let engine = Engine::start(color_catalog(), EngineConfig::default());
    let mut server = service::Server::builder()
        .addr("127.0.0.1:0")
        .engine(engine.handle())
        .start()
        .expect("ephemeral bind");
    let stream = TcpStream::connect(server.local_addr()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    (&stream).write_all(b"hello proto=2\n").expect("hello");
    let mut ack = String::new();
    assert!(reader.read_line(&mut ack).expect("read") > 0);
    let hello = protocol::decode_hello_ok(&ack).expect("hello ack");
    assert!(hello.proto >= 2);
    assert!(hello.window >= 2, "window {} too small", hello.window);

    let mut tagged: HashMap<u64, String> = HashMap::new();
    let mut next = 0usize;
    let mut in_flight = 0usize;
    while tagged.len() < wire_lines.len() {
        while next < wire_lines.len() && in_flight < hello.window {
            let line = protocol::tag_request((next + 1) as u64, &wire_lines[next]);
            (&stream)
                .write_all(format!("{line}\n").as_bytes())
                .expect("write");
            next += 1;
            in_flight += 1;
        }
        let mut reply = String::new();
        assert!(reader.read_line(&mut reply).expect("read") > 0);
        let (id, payload) = protocol::split_reply_tag(&reply).expect("tagged reply");
        let id = id.expect("pipelined replies must carry id=");
        assert!(
            tagged.insert(id, payload.trim_end().to_string()).is_none(),
            "id {id} answered twice"
        );
        in_flight -= 1;
    }
    drop(stream);
    server.shutdown();
    engine.shutdown();

    // Permutation: every id answered exactly once, nothing extra.
    assert_eq!(tagged.len(), serial.len());
    for (i, serial_reply) in serial.iter().enumerate() {
        let id = (i + 1) as u64;
        let piped = tagged
            .get(&id)
            .unwrap_or_else(|| panic!("no reply for id {id}"));
        assert_eq!(
            strip_timings(piped),
            strip_timings(serial_reply),
            "id {id} differs from its serial twin"
        );
    }
    // The mixed list really exercised both reply shapes.
    assert!(serial.iter().filter(|r| r.starts_with("ok ")).count() >= 21);
    assert_eq!(serial.iter().filter(|r| r.starts_with("err ")).count(), 2);
}

/// A duplicate in-flight id draws a tagged `err kind=protocol` while the
/// original request still completes, and the connection survives for
/// fresh ids afterwards.
#[test]
fn pipelined_duplicate_id_is_rejected_and_the_connection_survives() {
    use projection_pushing::service::protocol;
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;

    let engine = Engine::start(color_catalog(), EngineConfig::default());
    let mut server = service::Server::builder()
        .addr("127.0.0.1:0")
        .engine(engine.handle())
        .start()
        .expect("ephemeral bind");
    let stream = TcpStream::connect(server.local_addr()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    (&stream).write_all(b"hello proto=2\n").expect("hello");
    let mut ack = String::new();
    assert!(reader.read_line(&mut ack).expect("read") > 0);
    protocol::decode_hello_ok(&ack).expect("hello ack");

    // Two id=7 runs in one burst: the second must not displace the first.
    let line = protocol::encode_request(&Request::new(PENTAGON, Method::EarlyProjection));
    let burst = format!(
        "{}\n{}\n",
        protocol::tag_request(7, &line),
        protocol::tag_request(7, &line)
    );
    (&stream).write_all(burst.as_bytes()).expect("write");

    // Exactly two replies, both for id 7: one ok (the reserved request ran
    // to completion), one protocol error (the duplicate). Order is free.
    let mut oks = 0;
    let mut dups = 0;
    for _ in 0..2 {
        let mut reply = String::new();
        assert!(reader.read_line(&mut reply).expect("read") > 0);
        let (id, payload) = protocol::split_reply_tag(&reply).expect("tagged reply");
        assert_eq!(id, Some(7));
        match protocol::decode_result(&payload) {
            Ok(response) => {
                assert_eq!(response.columns, vec!["a", "b"]);
                oks += 1;
            }
            Err(ServiceError::Protocol(msg)) => {
                assert!(msg.contains("already in flight"), "unexpected: {msg}");
                dups += 1;
            }
            Err(other) => panic!("unexpected error: {other}"),
        }
    }
    assert_eq!((oks, dups), (1, 1));

    // The connection is still healthy: a fresh id runs normally, and its
    // answer is byte-identical (modulo tag/timing) to the id=7 success.
    (&stream)
        .write_all(format!("{}\n", protocol::tag_request(8, &line)).as_bytes())
        .expect("write");
    let mut reply = String::new();
    assert!(reader.read_line(&mut reply).expect("read") > 0);
    let (id, payload) = protocol::split_reply_tag(&reply).expect("tagged reply");
    assert_eq!(id, Some(8));
    let response = protocol::decode_result(&payload).expect("fresh id must run");
    assert_eq!(response.columns, vec!["a", "b"]);

    server.shutdown();
    engine.shutdown();
}

/// The real binary round-trips too: `ppr serve` on an ephemeral port,
/// `ppr client` against it — including the catalog verbs.
#[test]
fn ppr_binary_serve_and_client_round_trip() {
    use std::io::{BufRead, BufReader};
    use std::process::{Command, Stdio};

    let mut serve = Command::new(env!("CARGO_BIN_EXE_ppr"))
        .args(["serve", "--listen", "127.0.0.1:0"])
        .stderr(Stdio::piped())
        .stdout(Stdio::null())
        .spawn()
        .expect("spawn ppr serve");

    // The server reports its bound (ephemeral) address on stderr. Keep
    // draining the pipe afterwards: closing it would EPIPE any later
    // server log line and kill the process mid-test.
    let stderr = serve.stderr.take().expect("stderr");
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        for line in BufReader::new(stderr).lines() {
            let Ok(line) = line else { break };
            if let Some(rest) = line.strip_prefix("ppr-service listening on ") {
                let _ = tx.send(rest.trim().to_string());
            }
        }
    });
    let addr = rx
        .recv_timeout(std::time::Duration::from_secs(30))
        .expect("serve never reported its address");

    let client = |args: &[&str]| {
        let mut full = vec!["client", "--connect", &addr];
        full.extend_from_slice(args);
        Command::new(env!("CARGO_BIN_EXE_ppr"))
            .args(&full)
            .output()
            .expect("run ppr client")
    };

    let out = client(&[
        "--rule",
        "q(x, y) :- edge(x, y), edge(y, x)",
        "--method",
        "bucket",
    ]);
    // The explain smoke: the binary renders the measured operator tree,
    // and the root operator's output equals the reported row count.
    let explained = client(&[
        "--rule",
        "q(x, y) :- edge(x, y), edge(y, x)",
        "--method",
        "early",
        "--explain",
        "analyze",
    ]);
    // Build a second database over the wire and query it by name.
    let created = client(&["--create", "g2"]);
    let loaded = client(&["--load", "g2 edge 0,1;1,0"]);
    let named = client(&[
        "--db",
        "g2",
        "--rule",
        "q(x, y) :- edge(x, y), edge(y, x)",
        "--method",
        "bucket",
    ]);
    let _ = serve.kill();
    let _ = serve.wait();

    assert!(out.status.success(), "client failed: {out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    // Ordered pairs of distinct colors in K3.
    assert!(stdout.contains("rows: 6"), "unexpected output: {stdout}");

    assert!(explained.status.success(), "explain failed: {explained:?}");
    let explain_out = String::from_utf8_lossy(&explained.stdout);
    assert!(
        explain_out.contains("explain analyze: 6 rows"),
        "unexpected explain output: {explain_out}"
    );
    assert!(
        explain_out.contains("projection-pushdown"),
        "pass table missing: {explain_out}"
    );
    // The first operator line (the root, depth 0) reports rows_out equal
    // to the answer-set size the header announced: the operator counters
    // sum consistently with the result.
    let root_op = explain_out
        .lines()
        .skip_while(|l| l.trim() != "operators:")
        .nth(1)
        .unwrap_or_else(|| panic!("no operator tree: {explain_out}"));
    assert!(
        root_op.contains("rows_out=6"),
        "root operator disagrees with the row count: {root_op}"
    );

    assert!(created.status.success(), "create failed: {created:?}");
    assert!(loaded.status.success(), "load failed: {loaded:?}");
    assert!(named.status.success(), "named run failed: {named:?}");
    let named_out = String::from_utf8_lossy(&named.stdout);
    // Only the pair {0,1} in both orders.
    assert!(
        named_out.contains("rows: 2"),
        "unexpected output: {named_out}"
    );
}

/// The profiling tentpole's acceptance bar over real TCP: `explain
/// analyze` returns the operator tree with **exact** per-operator row
/// counters — byte-equal (modulo times) to what an embedded profiled
/// execution of the same request records — and its root operator's
/// output is the answer set itself. `explain plan` renders the same tree
/// without executing. Both bypass the result and plan caches even when
/// a prior plain run has warmed them.
#[test]
fn explain_over_the_wire_profiles_operators_exactly() {
    use projection_pushing::service::protocol;
    use service::ExplainMode;
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;

    let engine = Engine::start(color_catalog(), EngineConfig::default());
    let mut server = service::Server::builder()
        .addr("127.0.0.1:0")
        .engine(engine.handle())
        .start()
        .expect("ephemeral bind");
    let mut client = Client::connect(server.local_addr()).expect("connect");

    let request = Request::query(PENTAGON).method(Method::EarlyProjection);

    // A plain run first: it gives the ground-truth row count, warms both
    // caches (which explain must bypass), and builds the snapshot's lazy
    // secondary indexes so the profiled runs below see identical state.
    let plain = client.run(&request).unwrap();
    assert!(!plain.rows.is_empty());

    let report = client
        .explain(&request, ExplainMode::Analyze)
        .expect("explain analyze");
    assert!(report.analyze);
    assert!(
        !report.cache_hit && !report.result_cache_hit,
        "explain must bypass both caches"
    );
    assert_eq!(report.rows as usize, plain.rows.len());
    // Pass spans name the optimizer pipeline that planned the query.
    let names: Vec<&str> = report.passes.iter().map(|p| p.name.as_str()).collect();
    assert_eq!(
        names,
        ["listing-order", "build-join-chain", "projection-pushdown"]
    );

    // The root operator's output is the answer set itself…
    assert!(!report.ops.is_empty());
    assert_eq!(report.ops[0].depth, 0);
    assert_eq!(report.ops[0].rows_out, report.rows);
    // …and every counter agrees exactly with an embedded profiled
    // execution of the same request on the same engine: the serial
    // streaming executor is deterministic, so only times may differ.
    let embedded = engine
        .handle()
        .execute(request.clone().explain(ExplainMode::Analyze))
        .expect("embedded explain");
    let counters = |ops: &[projection_pushing::obs::OpNode]| {
        ops.iter()
            .map(|o| {
                (
                    o.depth,
                    o.op,
                    o.target.clone(),
                    o.rows_in,
                    o.rows_out,
                    o.probes,
                )
            })
            .collect::<Vec<_>>()
    };
    let expected = embedded.explain.as_deref().expect("embedded payload");
    assert_eq!(counters(&report.ops), counters(&expected.ops));

    // `explain plan` renders the same tree shape with zero counters and
    // no execution.
    let planned = client
        .explain(&request, ExplainMode::Plan)
        .expect("explain plan");
    assert!(!planned.analyze);
    assert_eq!(planned.rows, 0);
    let shape = |ops: &[projection_pushing::obs::OpNode]| {
        ops.iter()
            .map(|o| (o.depth, o.op, o.target.clone()))
            .collect::<Vec<_>>()
    };
    assert_eq!(shape(&planned.ops), shape(&report.ops));
    assert!(planned
        .ops
        .iter()
        .all(|o| o.rows_in == 0 && o.rows_out == 0 && o.probes == 0 && o.time_us == 0));
    assert_eq!(shape(&planned.ops), shape(&expected.ops));

    // The tagged v2 shape works too: `explain id=N analyze …` draws a
    // tagged ExplainReport with the same counters.
    let stream = TcpStream::connect(server.local_addr()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    (&stream).write_all(b"hello proto=2\n").expect("hello");
    let mut ack = String::new();
    assert!(reader.read_line(&mut ack).expect("read") > 0);
    protocol::decode_hello_ok(&ack).expect("hello ack");
    let line = protocol::tag_request(
        3,
        &protocol::encode_explain(&request.clone().explain(ExplainMode::Analyze)),
    );
    (&stream)
        .write_all(format!("{line}\n").as_bytes())
        .expect("write");
    let mut reply = String::new();
    assert!(reader.read_line(&mut reply).expect("read") > 0);
    let (id, payload) = protocol::split_reply_tag(&reply).expect("tagged reply");
    assert_eq!(id, Some(3));
    let tagged = protocol::decode_explain_report(&payload).expect("tagged explain");
    assert_eq!(counters(&tagged.ops), counters(&report.ops));
    assert_eq!(tagged.rows, report.rows);

    server.shutdown();
    engine.shutdown();
}

/// One raw HTTP/1.1 scrape of the metrics endpoint, body only.
fn scrape(addr: std::net::SocketAddr, path: &str) -> String {
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(addr).expect("connect metrics endpoint");
    write!(stream, "GET {path} HTTP/1.1\r\nHost: e2e\r\n\r\n").expect("send scrape");
    let mut text = String::new();
    stream.read_to_string(&mut text).expect("read scrape");
    let (headers, body) = text.split_once("\r\n\r\n").expect("http response");
    assert!(
        headers.starts_with("HTTP/1.1 200"),
        "scrape failed: {headers}"
    );
    body.to_string()
}

/// The value of an unlabeled counter/gauge sample in Prometheus text.
fn metric_value(exposition: &str, name: &str) -> u64 {
    exposition
        .lines()
        .find_map(|l| l.strip_prefix(&format!("{name} ")))
        .unwrap_or_else(|| panic!("{name} not in exposition"))
        .trim()
        .parse()
        .unwrap_or_else(|e| panic!("{name} not numeric: {e}"))
}

/// The tentpole's acceptance path end to end: a pipelined burst moves the
/// `stats` verb's span counters and the Prometheus endpoint's counters
/// monotonically and by exactly the burst size, and a `trace`d request's
/// recorded span durations sum to at most its wall time.
#[test]
fn observability_counters_and_trace_round_trip_end_to_end() {
    use projection_pushing::obs::{MetricsServer, Phase, Routes};

    let engine = Engine::start(color_catalog(), EngineConfig::default());
    let mut server = service::Server::builder()
        .addr("127.0.0.1:0")
        .engine(engine.handle())
        .start()
        .expect("ephemeral bind");

    // The same routes `ppr serve --metrics-addr` installs.
    let routes: Routes = std::sync::Arc::new({
        let handle = engine.handle();
        move |path: &str| match path {
            "/metrics" => Some(handle.render_prometheus()),
            "/slowlog" => Some(service::render_slowlog(
                &handle.metrics().slowlog.snapshot(),
            )),
            _ => None,
        }
    });
    let mut endpoint = MetricsServer::start("127.0.0.1:0", routes).expect("bind endpoint");
    let endpoint_addr = endpoint.local_addr();

    let mut client = Client::connect(server.local_addr()).expect("connect");
    let before_stats: EngineStats = client.stats().expect("stats");
    let before_scrape = scrape(endpoint_addr, "/metrics");

    // A pipelined burst of distinct-seed requests (each plans and
    // executes; no request can be answered by another's cache entry).
    const BURST: usize = 24;
    let mut pipe = Pipeline::connect(server.local_addr()).expect("pipeline connect");
    let tickets: Vec<Ticket> = (0..BURST)
        .map(|i| {
            let mut request = Request::new(PENTAGON, Method::EarlyProjection);
            request.seed = Some(7_000 + i as u64);
            pipe.submit(&request).expect("submit")
        })
        .collect();
    for ticket in tickets {
        let response = pipe.wait(ticket).expect("redeem");
        assert_eq!(response.rows.len(), 6);
    }

    let after_stats: EngineStats = client.stats().expect("stats");
    let after_scrape = scrape(endpoint_addr, "/metrics");

    // `stats` verb: every span histogram saw exactly the burst (this
    // connection is the only traffic between the two reads).
    assert_eq!(
        after_stats.spans.total.count,
        before_stats.spans.total.count + BURST as u64
    );
    for phase in projection_pushing::obs::PHASES {
        assert_eq!(
            after_stats.spans.phase[phase as usize].count,
            before_stats.spans.phase[phase as usize].count + BURST as u64,
            "phase {} not recorded per request",
            phase.name()
        );
    }
    // Executor work really happened and was observed.
    assert!(after_stats.spans.phase[Phase::Exec as usize].p95 > 0);

    // Prometheus endpoint: the same counters, monotone by the burst.
    for name in ["ppr_requests_total", "ppr_served_total"] {
        let (b, a) = (
            metric_value(&before_scrape, name),
            metric_value(&after_scrape, name),
        );
        assert_eq!(a, b + BURST as u64, "{name} not monotone by the burst");
    }
    assert_eq!(
        metric_value(&after_scrape, "ppr_request_errors_total"),
        metric_value(&before_scrape, "ppr_request_errors_total")
    );
    assert!(after_scrape.contains("ppr_request_phase_us_bucket{phase=\"queue_wait\","));

    // `trace`: span durations decompose the request's wall time.
    let mut request = Request::new(PENTAGON, Method::EarlyProjection);
    request.seed = Some(9_999);
    let report = client.trace(&request).expect("trace");
    assert_eq!(report.rows, 6);
    assert!(report.spans.total() > 0, "spans all zero");
    assert!(
        report.spans.total() <= report.total_us,
        "span sum {} exceeds wall time {}",
        report.spans.total(),
        report.total_us
    );

    // The burst is on the slow-query log page served by the endpoint.
    let slowlog = scrape(endpoint_addr, "/slowlog");
    assert!(
        slowlog.contains("early-projection"),
        "slowlog empty: {slowlog}"
    );

    endpoint.shutdown();
    server.shutdown();
    engine.shutdown();
}

/// Backpressure parity: a single connection that floods far past the
/// advertised window must never see `Overloaded` — the server simply
/// stops reading the socket (the threaded reader blocks on a full
/// window; the event loop deregisters read interest) until completions
/// free slots. Admission control exists for *aggregate* load across
/// connections; one well-behaved pipelined connection is always
/// admissible.
#[test]
fn window_full_connection_never_sees_overloaded() {
    use projection_pushing::service::protocol;
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;

    // A deliberately tiny engine: the advertised window collapses to a
    // few slots, and with the result cache off every request executes.
    let mut cfg = EngineConfig::default();
    cfg.workers = 1;
    cfg.queue_capacity = 2;
    cfg.result_cache_bytes = 0;
    let engine = Engine::start(color_catalog(), cfg);
    let mut server = service::Server::builder()
        .addr("127.0.0.1:0")
        .engine(engine.handle())
        .start()
        .expect("ephemeral bind");

    let stream = TcpStream::connect(server.local_addr()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    (&stream).write_all(b"hello proto=2\n").expect("hello");
    let mut ack = String::new();
    assert!(reader.read_line(&mut ack).expect("read") > 0);
    let hello = protocol::decode_hello_ok(&ack).expect("hello ack");

    // One burst, several windows deep.
    let flood = (4 * hello.window).max(64) as u64;
    let mut burst = String::new();
    for id in 1..=flood {
        let mut request = Request::new(PENTAGON, Method::EarlyProjection);
        request.seed = Some(40_000 + id);
        burst.push_str(&protocol::tag_request(
            id,
            &protocol::encode_request(&request),
        ));
        burst.push('\n');
    }
    (&stream).write_all(burst.as_bytes()).expect("flood");

    let mut seen = std::collections::HashSet::new();
    for _ in 0..flood {
        let mut reply = String::new();
        assert!(reader.read_line(&mut reply).expect("read") > 0);
        let (id, payload) = protocol::split_reply_tag(&reply).expect("tagged reply");
        assert!(seen.insert(id.expect("tagged id")), "duplicate reply");
        assert!(
            payload.starts_with("ok "),
            "window-full flood must never shed load: {payload}"
        );
    }
    assert_eq!(
        engine.handle().stats().rejected,
        0,
        "admission control must never fire for a single windowed connection"
    );
    server.shutdown();
    engine.shutdown();
}

/// The slow-loris guard end to end: a connection that sends nothing is
/// closed after the configured idle timeout and counted on
/// `ppr_idle_timeout_closes_total`, while a connection doing steady work
/// sails through several timeout windows untouched.
#[test]
fn idle_connections_are_closed_and_counted() {
    use std::io::Read;
    use std::net::TcpStream;
    use std::time::{Duration, Instant};

    let engine = Engine::start(color_catalog(), EngineConfig::default());
    let mut server = service::Server::builder()
        .addr("127.0.0.1:0")
        .engine(engine.handle())
        .idle_timeout(Some(Duration::from_millis(200)))
        .start()
        .expect("ephemeral bind");

    let mut idle = TcpStream::connect(server.local_addr()).expect("connect");
    idle.set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    let mut busy = Client::connect(server.local_addr()).expect("connect");

    let reaped = std::thread::spawn(move || {
        let started = Instant::now();
        let mut buf = [0u8; 16];
        let n = idle.read(&mut buf).expect("idle read");
        (n, started.elapsed())
    });
    // Steady traffic on the busy connection while the idle one waits for
    // the reaper: activity must keep resetting its timer.
    let deadline = Instant::now() + Duration::from_secs(30);
    while !reaped.is_finished() {
        busy.ping()
            .expect("active connection must survive the reaper");
        assert!(Instant::now() < deadline, "idle connection never closed");
        std::thread::sleep(Duration::from_millis(25));
    }
    let (n, waited) = reaped.join().expect("reaper watcher");
    assert_eq!(n, 0, "idle connection must see EOF, not data");
    assert!(
        waited >= Duration::from_millis(150),
        "closed after {waited:?} — before the timeout"
    );
    busy.ping()
        .expect("busy connection still serves after the close");
    assert_eq!(server.net_metrics().idle_closes.get(), 1);
    server.shutdown();
    engine.shutdown();
}

/// The C10K acceptance bar against the real binary: `ppr serve` holds a
/// thousand concurrent pipelined connections (scaled down only if the fd
/// budget demands it), answers every request with zero wire errors, and
/// keeps its OS thread count at O(workers) — sampled from
/// `/proc/<pid>/status` *while* the connections are open — instead of
/// O(connections).
#[cfg(target_os = "linux")]
#[test]
fn binary_serves_a_thousand_concurrent_connections_on_few_threads() {
    use projection_pushing::service::net::load::{run_load, LoadOptions};
    use projection_pushing::service::{net, protocol};
    use std::io::{BufRead, BufReader};
    use std::process::{Command, Stdio};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    // This process pays one fd per connection and the server pays one;
    // both run under the same rlimit, so budget half of it minus slack
    // for listeners, logs, epoll fds, and stdio.
    let budget = net::nofile_limit().unwrap_or(1_024);
    let connections = 1_000.min((budget.saturating_sub(128) / 2).max(8) as usize);

    // The engine queue must admit the whole aggregate window
    // (connections × window): this test measures the connection layer,
    // not admission control.
    let mut serve = Command::new(env!("CARGO_BIN_EXE_ppr"))
        .args(["serve", "--listen", "127.0.0.1:0", "--queue", "8192"])
        .stderr(Stdio::piped())
        .stdout(Stdio::null())
        .spawn()
        .expect("spawn ppr serve");
    let stderr = serve.stderr.take().expect("stderr");
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        for line in BufReader::new(stderr).lines() {
            let Ok(line) = line else { break };
            if let Some(rest) = line.strip_prefix("ppr-service listening on ") {
                let _ = tx.send(rest.trim().to_string());
            }
        }
    });
    let addr: std::net::SocketAddr = rx
        .recv_timeout(Duration::from_secs(30))
        .expect("serve never reported its address")
        .parse()
        .expect("parse bound address");

    // Sample the server's thread count while the load is in flight.
    let status_path = format!("/proc/{}/status", serve.id());
    let stop = Arc::new(AtomicBool::new(false));
    let monitor = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut max_threads = 0u64;
            while !stop.load(Ordering::Relaxed) {
                if let Ok(text) = std::fs::read_to_string(&status_path) {
                    if let Some(n) = text.lines().find_map(|l| l.strip_prefix("Threads:")) {
                        max_threads = max_threads.max(n.trim().parse().unwrap_or(0));
                    }
                }
                std::thread::sleep(Duration::from_millis(25));
            }
            max_threads
        })
    };

    let request = Request::new("q(x, y) :- edge(x, y), edge(y, x)", Method::EarlyProjection);
    let opts = LoadOptions {
        connections,
        requests: (4 * connections).max(2_000),
        window: 2,
        lines: vec![protocol::encode_request(&request)],
        deadline: Duration::from_secs(300),
    };
    let report = run_load(addr, &opts).expect("load run completes");
    stop.store(true, Ordering::Relaxed);
    let max_threads = monitor.join().expect("thread monitor");
    let _ = serve.kill();
    let _ = serve.wait();

    assert_eq!(report.connections, connections);
    assert_eq!(
        report.requests as usize, opts.requests,
        "every request must be answered"
    );
    assert_eq!(report.errors, 0, "wire errors at {connections} connections");
    assert!(report.p50_us <= report.p99_us);
    assert!(
        max_threads > 0 && max_threads < 64,
        "server thread count {max_threads} scales with connections, not workers"
    );
}
