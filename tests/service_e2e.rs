//! End-to-end smoke test of the serving subsystem: a real TCP server on
//! an ephemeral port, a real client, one 3-COLOR query per planning
//! method, and the acceptance bar that wire answers are byte-identical to
//! library-level evaluation. Also exercises admission control (saturation
//! fast-fails with `Overloaded`) and graceful shutdown.

use projection_pushing::prelude::*;
use projection_pushing::query::{parse_query, Database};
use projection_pushing::service::engine::EngineStats;
use projection_pushing::workload::edge_relation;
use projection_pushing::{evaluate, evaluate_parallel, service};
use service::{Engine, EngineConfig, ServiceError};

/// 3-COLOR of the pentagon with two free variables, so responses carry
/// actual rows (not just a Boolean).
const PENTAGON: &str = "q(a, b) :- edge(a, b), edge(b, c), edge(c, d), edge(d, f), edge(f, a)";

fn color_db() -> Database {
    let mut db = Database::new();
    db.add(edge_relation(3));
    db
}

fn all_methods() -> Vec<Method> {
    vec![
        Method::Naive,
        Method::Straightforward,
        Method::EarlyProjection,
        Method::Reordering,
        Method::BucketElimination(OrderHeuristic::Mcs),
        Method::BucketElimination(OrderHeuristic::MinDegree),
        Method::BucketElimination(OrderHeuristic::MinFill),
    ]
}

#[test]
fn wire_answers_match_library_evaluation_per_method() {
    let engine = Engine::start(color_db(), EngineConfig::default());
    let mut server =
        service::Server::start("127.0.0.1:0", engine.handle()).expect("ephemeral bind");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    client.ping().expect("ping");

    let query = parse_query(PENTAGON).unwrap();
    let db = color_db();
    for method in all_methods() {
        // The engine's default seed is 0; evaluate with the same seed and
        // an equivalent budget for byte-identical plans and rows.
        let (expected, _) = evaluate(&query, &db, method, &Budget::unlimited(), 0).unwrap();
        let response = client.run(&Request::new(PENTAGON, method)).unwrap();
        assert_eq!(
            response.rows,
            expected.tuples().to_vec(),
            "{} over the wire differs from the library",
            method.name()
        );
        // And from the parallel executor, which is byte-identical by
        // construction.
        let (par, _) = evaluate_parallel(&query, &db, method, &Budget::unlimited(), 0, 2).unwrap();
        assert_eq!(response.rows, par.tuples().to_vec());
        assert_eq!(response.columns, vec!["a", "b"]);
    }

    // Re-running the lineup hits the cache for every method: no
    // re-planning on the hot path.
    let before: EngineStats = client.stats().unwrap();
    for method in all_methods() {
        let response = client.run(&Request::new(PENTAGON, method)).unwrap();
        assert!(response.cache_hit, "{} should be cached", method.name());
        assert_eq!(response.plan_micros, 0, "cache hits must not re-plan");
    }
    let after: EngineStats = client.stats().unwrap();
    assert_eq!(
        after.cache.hits,
        before.cache.hits + all_methods().len() as u64
    );
    assert_eq!(after.cache.misses, before.cache.misses);

    server.shutdown();
    engine.shutdown();
}

#[test]
fn saturated_server_sheds_load_with_overloaded() {
    // One worker and a one-slot queue: concurrent clients must observe
    // typed overload errors, not unbounded queueing.
    let engine = Engine::start(
        color_db(),
        EngineConfig {
            workers: 1,
            queue_capacity: 1,
            max_inflight: 2,
            ..EngineConfig::default()
        },
    );
    let server = service::Server::start("127.0.0.1:0", engine.handle()).expect("ephemeral bind");
    let addr = server.local_addr();

    // K6: slow enough under `straightforward` to pile up concurrent work.
    let atoms: Vec<String> = (0..6)
        .flat_map(|i| ((i + 1)..6).map(move |j| format!("edge(v{i}, v{j})")))
        .collect();
    let slow = format!("q() :- {}", atoms.join(", "));

    let mut joins = Vec::new();
    for _ in 0..8 {
        let slow = slow.clone();
        joins.push(std::thread::spawn(move || {
            let mut c = Client::connect(addr).expect("connect");
            c.run(&Request::new(slow, Method::Straightforward))
        }));
    }
    let results: Vec<_> = joins.into_iter().map(|j| j.join().unwrap()).collect();
    let overloaded = results
        .iter()
        .filter(|r| matches!(r, Err(ServiceError::Overloaded { .. })))
        .count();
    let succeeded = results.iter().filter(|r| r.is_ok()).count();
    assert!(
        overloaded > 0,
        "8 concurrent requests against in-flight cap 2 must shed load"
    );
    assert!(succeeded > 0, "admitted requests must still be answered");
    assert_eq!(engine.handle().stats().rejected as usize, overloaded);

    drop(server); // Drop also shuts the server down gracefully.
    engine.shutdown();
}

#[test]
fn shutdown_is_graceful_and_then_refuses() {
    let engine = Engine::start(color_db(), EngineConfig::default());
    let mut server =
        service::Server::start("127.0.0.1:0", engine.handle()).expect("ephemeral bind");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let handle = engine.handle();

    // A request completes normally before shutdown…
    let ok = client.run(&Request::new(PENTAGON, Method::EarlyProjection));
    assert!(ok.is_ok());

    // …the engine drains and refuses afterwards.
    server.shutdown();
    engine.shutdown();
    assert!(matches!(
        handle.execute(Request::new(PENTAGON, Method::EarlyProjection)),
        Err(ServiceError::ShuttingDown)
    ));
}

/// The real binary round-trips too: `ppr serve` on an ephemeral port,
/// `ppr client` against it.
#[test]
fn ppr_binary_serve_and_client_round_trip() {
    use std::io::{BufRead, BufReader};
    use std::process::{Command, Stdio};

    let mut serve = Command::new(env!("CARGO_BIN_EXE_ppr"))
        .args(["serve", "--listen", "127.0.0.1:0"])
        .stderr(Stdio::piped())
        .stdout(Stdio::null())
        .spawn()
        .expect("spawn ppr serve");

    // The server reports its bound (ephemeral) address on stderr. Keep
    // draining the pipe afterwards: closing it would EPIPE any later
    // server log line and kill the process mid-test.
    let stderr = serve.stderr.take().expect("stderr");
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        for line in BufReader::new(stderr).lines() {
            let Ok(line) = line else { break };
            if let Some(rest) = line.strip_prefix("ppr-service listening on ") {
                let _ = tx.send(rest.trim().to_string());
            }
        }
    });
    let addr = rx
        .recv_timeout(std::time::Duration::from_secs(30))
        .expect("serve never reported its address");

    let out = Command::new(env!("CARGO_BIN_EXE_ppr"))
        .args([
            "client",
            "--connect",
            &addr,
            "--rule",
            "q(x, y) :- edge(x, y), edge(y, x)",
            "--method",
            "bucket",
        ])
        .output()
        .expect("run ppr client");
    let _ = serve.kill();
    let _ = serve.wait();

    assert!(out.status.success(), "client failed: {out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    // Ordered pairs of distinct colors in K3.
    assert!(stdout.contains("rows: 6"), "unexpected output: {stdout}");
}
