//! Budget semantics across the stack: budget errors are clean, monotone,
//! and leave results untouched when they do not trip.

use projection_pushing::prelude::*;
use projection_pushing::relalg::{budget::BudgetKind, RelalgError};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn hard_instance(seed: u64) -> (ConjunctiveQuery, Database) {
    let mut rng = StdRng::seed_from_u64(seed);
    let g = projection_pushing::graph::generate::random_graph(14, 42, &mut rng);
    color_query(&g, &ColorQueryOptions::boolean(), &mut rng)
}

#[test]
fn tuple_budget_reports_flow() {
    let (q, db) = hard_instance(1);
    let err = Eval::new(&q, &db)
        .method(Method::Straightforward)
        .budget(Budget::tuples(100))
        .seed(1)
        .run()
        .unwrap_err();
    match err {
        RelalgError::BudgetExceeded {
            kind,
            tuples_flowed,
        } => {
            assert_eq!(kind, BudgetKind::Tuples);
            assert!(tuples_flowed >= 100);
        }
        other => panic!("unexpected error {other}"),
    }
}

#[test]
fn zero_timeout_trips_on_hard_instances() {
    let (q, db) = hard_instance(2);
    let budget = Budget::tuples(u64::MAX).with_timeout(Duration::from_millis(0));
    // The clock is only polled every 2^16 tuples, so tiny instances may
    // finish; this one flows millions of tuples with the straightforward
    // method and must hit the wall-clock check.
    let result = Eval::new(&q, &db)
        .method(Method::Straightforward)
        .budget(budget)
        .seed(1)
        .run();
    match result {
        Err(RelalgError::BudgetExceeded { kind, .. }) => {
            assert!(matches!(kind, BudgetKind::WallClock | BudgetKind::Tuples));
        }
        Ok((_, stats)) => {
            // Finished before the first clock poll: must have been small.
            assert!(stats.tuples_flowed < (1 << 17), "{}", stats.tuples_flowed);
        }
        Err(other) => panic!("unexpected error {other}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Budgets are monotone: if a run finishes under budget B it also
    /// finishes under any larger budget with the same result.
    #[test]
    fn budget_monotonicity(seed in 0u64..200, cap in 1000u64..100_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = projection_pushing::graph::generate::random_graph(8, 14, &mut rng);
        prop_assume!(!g.edges().is_empty());
        let (q, db) = color_query(&g, &ColorQueryOptions::boolean(), &mut rng);
        let small = Eval::new(&q, &db)
            .method(Method::EarlyProjection)
            .budget(Budget::tuples(cap))
            .seed(seed)
            .run();
        if let Ok((rel_small, _)) = small {
            let (rel_big, _) = Eval::new(&q, &db)
                .method(Method::EarlyProjection)
                .budget(Budget::tuples(cap * 10))
                .seed(seed)
                .run()
                .expect("larger budget cannot fail where smaller succeeded");
            prop_assert!(rel_small.set_eq(&rel_big));
        }
    }

    /// A tripped tuple budget reports at least the cap.
    #[test]
    fn tripped_budgets_report_at_least_cap(seed in 0u64..100) {
        let (q, db) = hard_instance(seed);
        let cap = 500u64;
        if let Err(RelalgError::BudgetExceeded { tuples_flowed, .. }) = Eval::new(&q, &db)
            .method(Method::Straightforward)
            .budget(Budget::tuples(cap))
            .seed(seed)
            .run()
        {
            prop_assert!(tuples_flowed >= cap);
        }
    }
}
