//! Acyclic queries: GYO/Yannakakis integration — the semijoin program of
//! Wong–Youssefi/Yannakakis agrees with every paper method on tree-shaped
//! instances.

use projection_pushing::core::yannakakis::{gyo_join_tree, is_acyclic, yannakakis};
use projection_pushing::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::Rng as _;
use rand::SeedableRng;

/// A random labeled tree on `n` vertices (each vertex attaches to a
/// random earlier vertex).
fn random_tree(n: usize, rng: &mut StdRng) -> projection_pushing::graph::Graph {
    let mut g = projection_pushing::graph::Graph::new(n);
    for v in 1..n {
        let parent = rng.random_range(0..v);
        g.add_edge(parent, v);
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn tree_queries_are_acyclic(n in 2usize..12, seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = random_tree(n, &mut rng);
        let (q, _) = color_query(&g, &ColorQueryOptions::boolean(), &mut rng);
        prop_assert!(is_acyclic(&q));
        prop_assert!(gyo_join_tree(&q).is_some());
    }

    #[test]
    fn yannakakis_matches_bucket_on_trees(n in 2usize..10, seed in 0u64..1000, free in prop::bool::ANY) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = random_tree(n, &mut rng);
        let opts = ColorQueryOptions {
            colors: 3,
            free_fraction: if free { 0.3 } else { 0.0 },
        };
        let (q, db) = color_query(&g, &opts, &mut rng);
        let yk = yannakakis(&q, &db).expect("tree queries are acyclic");
        let (be, _) = Eval::new(&q, &db)
            .method(Method::BucketElimination(OrderHeuristic::Mcs))
            .seed(seed)
            .run()
            .unwrap();
        // Align column order before comparing.
        let yk_aligned = projection_pushing::relalg::ops::project_distinct(&yk, be.schema().attrs());
        prop_assert!(yk_aligned.set_eq(&be));
    }

    #[test]
    fn cyclic_instances_are_rejected(n in 3usize..8, seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = projection_pushing::graph::families::cycle(n);
        let (q, db) = color_query(&g, &ColorQueryOptions::boolean(), &mut rng);
        prop_assert!(!is_acyclic(&q));
        prop_assert!(yannakakis(&q, &db).is_none());
    }
}

#[test]
fn structured_families_acyclicity() {
    use projection_pushing::graph::families;
    let mut rng = StdRng::seed_from_u64(0);
    let (aug_path, _) = color_query(
        &families::augmented_path(5),
        &ColorQueryOptions::boolean(),
        &mut rng,
    );
    assert!(is_acyclic(&aug_path), "augmented paths are trees");
    let (ladder, _) = color_query(
        &families::ladder(4),
        &ColorQueryOptions::boolean(),
        &mut rng,
    );
    assert!(!is_acyclic(&ladder), "ladders contain cycles");
}
