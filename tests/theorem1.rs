//! Theorem 1: the join width of a project-join query equals the treewidth
//! of its join graph plus one — validated constructively through
//! Algorithms 1–3 on random queries.

use projection_pushing::core::convert::{
    jet_to_tree_decomposition, mark_and_sweep, tree_decomposition_to_jet,
};
use projection_pushing::core::jet::Jet;
use projection_pushing::core::width;
use projection_pushing::graph::ordering::mcs_order;
use projection_pushing::graph::TreeDecomposition;
use projection_pushing::prelude::*;
use projection_pushing::query::JoinGraph;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn random_query(
    order: usize,
    extra: usize,
    seed: u64,
    free: f64,
) -> Option<(ConjunctiveQuery, Database)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let max = order * (order - 1) / 2;
    let m = (order - 1 + extra).min(max);
    let g = projection_pushing::graph::generate::random_graph(order, m, &mut rng);
    if g.edges().is_empty() {
        return None;
    }
    let opts = ColorQueryOptions {
        colors: 3,
        free_fraction: free,
    };
    Some(color_query(&g, &opts, &mut rng))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Algorithm 1 (Lemma 1): any join-expression tree of width k yields a
    /// *valid* tree decomposition of the join graph of width k − 1.
    #[test]
    fn algorithm1_soundness(order in 4usize..9, extra in 0usize..8, seed in 0u64..1000, free in prop::bool::ANY) {
        let Some((q, _)) = random_query(order, extra, seed, if free { 0.25 } else { 0.0 }) else {
            return Ok(());
        };
        let jg = JoinGraph::of(&q);
        let jet = Jet::left_deep(&q);
        let td = jet_to_tree_decomposition(&jet, &jg);
        prop_assert!(td.validate(&jg.graph).is_ok(), "{:?}", td.validate(&jg.graph));
        prop_assert_eq!(td.width(), jet.width() - 1);
    }

    /// Algorithm 2 (Lemma 2): mark-and-sweep keeps the decomposition valid
    /// and does not increase its width.
    #[test]
    fn algorithm2_soundness(order in 4usize..9, extra in 0usize..8, seed in 0u64..1000) {
        let Some((q, _)) = random_query(order, extra, seed, 0.0) else { return Ok(()); };
        let jg = JoinGraph::of(&q);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xabc);
        let order_ = mcs_order(&jg.graph, &[], &mut rng);
        let td = TreeDecomposition::from_elimination_order(&jg.graph, &order_);
        let simplified = mark_and_sweep(&td, &q, &jg);
        prop_assert!(simplified.decomposition.validate(&jg.graph).is_ok());
        prop_assert!(simplified.decomposition.width() <= td.width());
    }

    /// Algorithm 3 (Lemma 3): a width-k decomposition yields a
    /// join-expression tree of width at most k + 1 that still answers the
    /// query correctly.
    #[test]
    fn algorithm3_soundness(order in 4usize..8, extra in 0usize..8, seed in 0u64..1000) {
        use projection_pushing::relalg::exec;
        let Some((q, db)) = random_query(order, extra, seed, 0.0) else { return Ok(()); };
        let jg = JoinGraph::of(&q);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xdef);
        let order_ = mcs_order(&jg.graph, &[], &mut rng);
        let td = TreeDecomposition::from_elimination_order(&jg.graph, &order_);
        let jet = tree_decomposition_to_jet(&q, &jg, &td);
        prop_assert!(jet.width() <= td.width() + 1);
        // Semantics preserved.
        let plan = jet.to_plan(&q, &db);
        let (a, _) = exec::execute(&plan, &Budget::unlimited()).unwrap();
        let mut rng2 = StdRng::seed_from_u64(1);
        let sf = projection_pushing::core::methods::build_plan(
            Method::Straightforward, &q, &db, &mut rng2,
        );
        let (b, _) = exec::execute(&sf, &Budget::unlimited()).unwrap();
        prop_assert!(a.set_eq(&b));
    }

    /// Theorem 1 (both directions): the exact join width equals exact
    /// treewidth + 1 (small instances; exact treewidth is NP-hard).
    #[test]
    fn theorem1_equality(order in 4usize..8, extra in 0usize..6, seed in 0u64..1000, free in prop::bool::ANY) {
        let Some((q, _)) = random_query(order, extra, seed, if free { 0.3 } else { 0.0 }) else {
            return Ok(());
        };
        let tw = width::join_graph_treewidth(&q);
        let (jw, jet) = width::join_width_exact(&q);
        prop_assert_eq!(jw, tw + 1, "join width {} vs treewidth {}", jw, tw);
        prop_assert_eq!(jet.width(), jw);
    }
}
