//! Offline vendored mini benchmark harness.
//!
//! The build environment has no crates.io access, so this crate
//! reimplements the slice of the `criterion` API the workspace's benches
//! use: `criterion_group!`/`criterion_main!`, benchmark groups with
//! `sample_size`/`measurement_time`/`warm_up_time`, `bench_function`,
//! `bench_with_input`, [`BenchmarkId`], and `Bencher::iter`.
//!
//! Measurement is deliberately simple — per-sample wall-clock timing with a
//! median/min/max report to stdout — with no statistical regression
//! analysis, HTML reports, or CLI filtering. Numbers are comparable within
//! a run, which is all the ablation and figure benches need.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver handed to `criterion_group!` targets.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Upstream parses CLI options here; this shim accepts and ignores
    /// them (benches are run via `cargo bench` with no filters).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== group {name} ==");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
        }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, mut f: F) {
        run_one(&id.to_string(), 10, Duration::from_secs(2), &mut f);
    }
}

/// A named set of benchmarks sharing sampling configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Upper bound on total measuring time per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Accepted for API compatibility; this shim always warms up with a
    /// single untimed iteration instead of a timed warm-up phase.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.sample_size, self.measurement_time, &mut f);
        self
    }

    /// Benchmarks `f` with an input value (upstream records the input in
    /// the report; here it is only part of the label via `id`).
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.sample_size, self.measurement_time, &mut |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (upstream finalizes reports here; a no-op).
    pub fn finish(self) {}
}

/// A benchmark identifier: function name plus parameter rendering.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// An id labeled `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] times the routine.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    measurement_time: Duration,
}

impl Bencher {
    /// Runs `routine` once untimed (warm-up), then up to `sample_size`
    /// timed samples bounded by the group's measurement time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        let started = Instant::now();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
            if started.elapsed() > self.measurement_time {
                break;
            }
        }
    }
}

fn run_one(
    label: &str,
    sample_size: usize,
    measurement_time: Duration,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size,
        measurement_time,
    };
    f(&mut bencher);
    let mut samples = bencher.samples;
    if samples.is_empty() {
        println!("{label:<56} (no samples)");
        return;
    }
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    println!(
        "{label:<56} time: [{} {} {}] ({} samples)",
        fmt_duration(samples[0]),
        fmt_duration(median),
        fmt_duration(*samples.last().unwrap()),
        samples.len(),
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group
            .sample_size(3)
            .measurement_time(Duration::from_millis(50))
            .warm_up_time(Duration::from_millis(1));
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    criterion_group!(shim_group, sample_bench);

    #[test]
    fn group_machinery_runs() {
        shim_group();
    }

    #[test]
    fn benchmark_id_renders() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
    }
}
