//! Offline vendored reimplementation of the subset of the `rand` 0.9 API
//! this workspace uses.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! what it needs: the [`Rng`] trait with `random_range`/`random_bool`, the
//! [`SeedableRng`] trait with `seed_from_u64`, a deterministic [`rngs::StdRng`]
//! (xoshiro256** seeded via SplitMix64 — *not* the upstream ChaCha12, so
//! streams differ from upstream `rand`, which is fine because every consumer
//! seeds explicitly and only needs determinism), and
//! [`seq::SliceRandom::shuffle`] (Fisher–Yates).

/// Random number generator trait: a 64-bit source plus derived samplers.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform sample from `range` (half-open or inclusive integer
    /// ranges, or a half-open `f64` range). Panics on empty ranges.
    #[inline]
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// `true` with probability `p`. Panics unless `0.0 <= p <= 1.0`.
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        // 53 uniform mantissa bits, the same resolution `rand` uses.
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can act as a sampling range for [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128) - (start as u128) + 1;
                start + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize);

macro_rules! signed_sample_range {
    ($($t:ty : $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + off) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128 + 1) as u128;
                let off = (rng.next_u64() as u128 % span) as i128;
                (start as i128 + off) as $t
            }
        }
    )*};
}

signed_sample_range!(i8: u8, i16: u16, i32: u32, i64: u64, isize: usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    #[inline]
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + u * (self.end - self.start)
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**.
    ///
    /// Unlike upstream `rand`, which documents `StdRng` as unspecified and
    /// currently uses ChaCha12, this vendored version is a fixed small-state
    /// generator — every consumer in this workspace seeds explicitly and
    /// relies only on determinism, not on cryptographic quality.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the standard way to seed xoshiro.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Slice shuffling (Fisher–Yates), mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Uniformly permutes the slice in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: usize = rng.random_range(0..7);
            assert!(x < 7);
            let y: u64 = rng.random_range(1000u64..100_000);
            assert!((1000..100_000).contains(&y));
            let f: f64 = rng.random_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
            let z: usize = rng.random_range(0..=3);
            assert!(z <= 3);
        }
    }

    #[test]
    fn all_range_values_reachable() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.random_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn random_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(5);
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}
