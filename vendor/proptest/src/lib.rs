//! Offline vendored mini property-testing harness.
//!
//! The build environment has no crates.io access, so this crate reimplements
//! the small slice of the `proptest` API the workspace's tests use: the
//! [`proptest!`]/[`prop_assert!`]/[`prop_assert_eq!`]/[`prop_assert_ne!`] macros, a [`Strategy`]
//! trait with `prop_map`, strategies for integer ranges, tuples,
//! `collection::vec`, and `bool::ANY`, and [`ProptestConfig::with_cases`].
//!
//! Differences from upstream: cases are generated from a fixed deterministic
//! seed (fully reproducible runs, no `PROPTEST_*` environment handling) and
//! failing inputs are **not shrunk** — the failure message reports the case
//! number, which is enough to re-run deterministically.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The generator handed to strategies. A fixed-seed deterministic PRNG.
pub type TestRng = StdRng;

/// Error produced by `prop_assert!`-style macros inside a property body.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
    rejection: bool,
}

impl TestCaseError {
    /// A failed-assertion error carrying `message`.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
            rejection: false,
        }
    }

    /// A `prop_assume!` rejection: the case is discarded and re-drawn
    /// rather than failed.
    pub fn reject(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
            rejection: true,
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// How many random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A value generator. Upstream proptest separates strategies from value
/// trees to support shrinking; this shim only ever samples.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f` (upstream `prop_map`).
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.sample(rng),
            self.1.sample(rng),
            self.2.sample(rng),
            self.3.sample(rng),
        )
    }
}

/// Boolean strategies (`prop::bool::ANY`).
pub mod bool {
    use super::{Rng, Strategy, TestRng};

    /// Strategy yielding `true` and `false` with equal probability.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The uniform boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Rng, Strategy, TestRng};

    /// A length range for generated vectors.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy for vectors with elements from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates a `Vec` of `element` samples with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.random_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything tests import (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate as prop;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
    pub use crate::{ProptestConfig, Strategy, TestCaseError};
}

/// Runs `property` for `config.cases` deterministic cases, panicking (like
/// a failed `assert!`) on the first case whose body returns an error.
pub fn run_cases<F>(config: ProptestConfig, mut property: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    // Upstream aborts after too many `prop_assume!` rejections; mirror
    // that so a never-satisfiable assumption cannot spin forever.
    let mut rejections_left = config.cases as u64 * 16;
    let mut draw = 0u64;
    let mut case = 0;
    while case < config.cases {
        // Distinct, fixed seeds per draw: reproducible without env vars.
        let mut rng =
            TestRng::seed_from_u64(0x70726f_70746573u64 ^ draw.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        draw += 1;
        match property(&mut rng) {
            Ok(()) => case += 1,
            Err(e) if e.rejection => {
                rejections_left = rejections_left
                    .checked_sub(1)
                    .unwrap_or_else(|| panic!("too many prop_assume! rejections ({})", e));
            }
            Err(e) => {
                panic!(
                    "property failed at case {}/{}: {}",
                    case + 1,
                    config.cases,
                    e
                );
            }
        }
    }
}

/// Defines property tests. Mirrors the upstream macro's common form:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn my_prop(x in 0u32..10, v in prop::collection::vec(0u32..4, 1..5)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_cases($cfg, |__ppt_rng| {
                    $(let $arg = $crate::Strategy::sample(&($strat), __ppt_rng);)+
                    let mut __ppt_body = || -> ::core::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::core::result::Result::Ok(())
                    };
                    __ppt_body()
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($rest)*
        }
    };
}

/// `assert!` that reports through the property harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Discards the current case (re-drawing fresh inputs) when `cond` is
/// false, instead of failing.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::reject(format!(
                "assumption failed: {}",
                stringify!($cond)
            )));
        }
    };
}

/// `assert_eq!` that reports through the property harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                l,
                r
            )));
        }
    }};
}

/// `assert_ne!` that reports through the property harness.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l != r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l != r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  both: {:?}",
                format!($($fmt)+),
                l
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_vecs(
            x in 2usize..5,
            flag in prop::bool::ANY,
            pairs in prop::collection::vec((0usize..3, 0u64..10), 1..4),
        ) {
            prop_assert!((2..5).contains(&x));
            let y = if flag { x } else { x + 1 };
            prop_assert!(y >= x);
            prop_assert!(!pairs.is_empty() && pairs.len() < 4);
            for (a, b) in &pairs {
                prop_assert!(*a < 3 && *b < 10, "({a}, {b}) out of range");
            }
        }

        #[test]
        fn prop_map_applies(
            doubled in (0u32..10).prop_map(|x| x * 2),
        ) {
            prop_assert!(doubled % 2 == 0);
            prop_assert_eq!(doubled % 2, 0);
        }
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failing_property_panics() {
        crate::run_cases(ProptestConfig::with_cases(4), |_rng| {
            Err(TestCaseError::fail("boom"))
        });
    }
}
