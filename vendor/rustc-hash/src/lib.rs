//! Offline vendored reimplementation of the `rustc-hash` crate API.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the tiny subset of `rustc-hash` it uses: [`FxHasher`] and the
//! [`FxHashMap`]/[`FxHashSet`] aliases. The hash function follows the
//! well-known Fx polynomial-multiply scheme (originally from Firefox and
//! rustc): word-at-a-time multiply-rotate mixing, not intended to resist
//! adversarial inputs, very fast on short keys.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// `BuildHasherDefault` specialization for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 26;

/// The Fx hasher: multiply-rotate mixing of input words.
#[derive(Debug, Clone, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        // Final avalanche so low bits depend on all input bits; std's
        // HashMap uses the low bits for bucket selection.
        let mut h = self.hash;
        h ^= h >> 32;
        h = h.wrapping_mul(0xd6e8_feb8_6659_fd93);
        h ^= h >> 32;
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<Vec<u32>, usize> = FxHashMap::default();
        m.insert(vec![1, 2], 7);
        assert_eq!(m.get(&vec![1, 2]), Some(&7));
        let mut s: FxHashSet<u64> = FxHashSet::default();
        assert!(s.insert(3));
        assert!(!s.insert(3));
    }

    #[test]
    fn deterministic_across_hashers() {
        use std::hash::BuildHasher;
        let b = FxBuildHasher::default();
        assert_eq!(b.hash_one(42u64), b.hash_one(42u64));
    }

    #[test]
    fn distinct_inputs_differ() {
        use std::hash::BuildHasher;
        let b = FxBuildHasher::default();
        assert_ne!(b.hash_one(1u64), b.hash_one(2u64));
    }
}
