#![warn(missing_docs)]

//! **projection-pushing** — a reproduction of *Projection Pushing
//! Revisited* (McMahan, Pan, Porter, Vardi; EDBT 2004).
//!
//! The paper studies structural optimization of project-join (conjunctive)
//! queries with many relations over tiny databases: projection pushing,
//! greedy join reordering, and bucket elimination yield exponential
//! execution-time improvements over what a cost-based SQL planner
//! produces, and the achievable intermediate-result arity is characterized
//! exactly by the treewidth of the query's join graph (join width =
//! treewidth + 1; induced width = treewidth).
//!
//! This crate re-exports the workspace and offers a compact high-level
//! API around the [`Eval`] builder:
//!
//! ```
//! use projection_pushing::prelude::*;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! // A 5-cycle is 3-colorable…
//! let pentagon = graph::families::cycle(5);
//! let mut rng = StdRng::seed_from_u64(0);
//! let (q, db) = color_query(&pentagon, &ColorQueryOptions::boolean(), &mut rng);
//! let (rows, stats) = Eval::new(&q, &db)
//!     .method(Method::BucketElimination(OrderHeuristic::Mcs))
//!     .run()
//!     .unwrap();
//! assert!(!rows.is_empty());
//! assert!(stats.tuples_flowed > 0);
//! // …or, for the common yes/no question:
//! assert!(Eval::new(&q, &db).nonempty().unwrap());
//! ```
//!
//! For long-lived query serving — a multi-database [`service::Catalog`]
//! with versioned result caching, a fingerprint-keyed plan cache,
//! admission control, and a TCP line protocol (`ppr serve` / `ppr
//! client`) — see the [`service`] crate.

pub use ppr_core as core;
pub use ppr_costplanner as costplanner;
pub use ppr_durability as durability;
pub use ppr_graph as graph;
pub use ppr_obs as obs;
pub use ppr_query as query;
pub use ppr_relalg as relalg;
pub use ppr_service as service;
pub use ppr_sql as sql;
pub use ppr_workload as workload;

use rand::rngs::StdRng;
use rand::SeedableRng;

use ppr_core::methods::build_plan;
pub use ppr_core::methods::{Method, OrderHeuristic};
use ppr_query::{ConjunctiveQuery, Database};
use ppr_relalg::{exec, Budget, ExecStats, Relation};

/// Everything a typical user needs. The deprecated free-function
/// `evaluate*` trio is intentionally **not** here — reach it through the
/// crate root while migrating to [`Eval`].
pub mod prelude {
    pub use crate::{graph, Eval, Method, OrderHeuristic};
    pub use ppr_core::methods::{build_plan, emit_sql};
    pub use ppr_query::{Atom, ConjunctiveQuery, Database, Vars};
    pub use ppr_relalg::parallel::execute_parallel;
    pub use ppr_relalg::{Budget, Plan};
    pub use ppr_service::{
        Catalog, Client, Engine, EngineConfig, Pipeline, Request, Server, ServiceError, Ticket,
    };
    pub use ppr_workload::{color_query, ColorQueryOptions, InstanceSpec, QueryShape};
}

/// One evaluation of a conjunctive query over a database, configured
/// fluently.
///
/// Defaults: bucket elimination under the MCS order (the paper's winning
/// method), seed 0, one executor thread, unlimited budget.
///
/// ```
/// # use projection_pushing::prelude::*;
/// # use rand::rngs::StdRng;
/// # use rand::SeedableRng;
/// # let g = graph::families::cycle(5);
/// # let mut rng = StdRng::seed_from_u64(0);
/// # let (q, db) = color_query(&g, &ColorQueryOptions::boolean(), &mut rng);
/// let (rows, stats) = Eval::new(&q, &db)
///     .method(Method::EarlyProjection)
///     .seed(7)
///     .threads(4)
///     .budget(Budget::tuples(1_000_000))
///     .run()
///     .unwrap();
/// # let _ = (rows, stats);
/// ```
#[derive(Debug, Clone)]
pub struct Eval<'a> {
    query: &'a ConjunctiveQuery,
    db: &'a Database,
    method: Method,
    seed: u64,
    threads: usize,
    budget: Budget,
}

impl<'a> Eval<'a> {
    /// An evaluation of `query` over `db` with the defaults above.
    pub fn new(query: &'a ConjunctiveQuery, db: &'a Database) -> Eval<'a> {
        Eval {
            query,
            db,
            method: Method::BucketElimination(OrderHeuristic::Mcs),
            seed: 0,
            threads: 1,
            budget: Budget::unlimited(),
        }
    }

    /// Selects the planning method.
    pub fn method(mut self, method: Method) -> Self {
        self.method = method;
        self
    }

    /// Pins the planner tie-breaking seed (default 0). The seed is part
    /// of determinism: same query, database, method, and seed produce
    /// byte-identical rows.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Executor threads: `1` (default) runs the serial pipelined
    /// executor, any other value the partitioned-parallel executor
    /// (`0` = all cores). Rows are byte-identical either way.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Bounds execution by tuples flowed and/or wall clock (default
    /// unlimited). Exhaustion is an error, never a truncated result.
    pub fn budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Plans and executes, returning the result relation and execution
    /// statistics.
    pub fn run(&self) -> ppr_relalg::Result<(Relation, ExecStats)> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let plan = build_plan(self.method, self.query, self.db, &mut rng);
        if self.threads == 1 {
            exec::execute(&plan, &self.budget)
        } else {
            ppr_relalg::parallel::execute_parallel(&plan, &self.budget, self.threads)
        }
    }

    /// Runs and reports only whether the result is non-empty — the
    /// natural question for Boolean (decision) queries like k-COLOR.
    pub fn nonempty(&self) -> ppr_relalg::Result<bool> {
        self.run().map(|(rel, _)| !rel.is_empty())
    }
}

/// Evaluates `query` over `db` with `method` under `budget`. Returns the
/// result relation and execution statistics.
#[deprecated(
    since = "0.2.0",
    note = "use `Eval::new(query, db).method(m).seed(s).budget(b).run()`"
)]
pub fn evaluate(
    query: &ConjunctiveQuery,
    db: &Database,
    method: Method,
    budget: &Budget,
    seed: u64,
) -> ppr_relalg::Result<(Relation, ExecStats)> {
    Eval::new(query, db)
        .method(method)
        .budget(budget.clone())
        .seed(seed)
        .run()
}

/// [`Eval`] on the partitioned parallel executor with `threads` worker
/// threads (`0` = all cores, `1` = one worker). The result relation is
/// byte-identical to the serial executor's; only wall-clock time and the
/// thread-related [`ExecStats`] fields differ.
#[deprecated(since = "0.2.0", note = "use `Eval::new(query, db).threads(n).run()`")]
pub fn evaluate_parallel(
    query: &ConjunctiveQuery,
    db: &Database,
    method: Method,
    budget: &Budget,
    seed: u64,
    threads: usize,
) -> ppr_relalg::Result<(Relation, ExecStats)> {
    // `threads == 1` historically still meant the parallel executor with
    // one worker (rows are byte-identical to serial either way), so this
    // wrapper keeps calling it directly rather than routing through the
    // builder's serial shortcut.
    let mut rng = StdRng::seed_from_u64(seed);
    let plan = build_plan(method, query, db, &mut rng);
    ppr_relalg::parallel::execute_parallel(&plan, budget, threads)
}

/// Decides 3-colorability of `graph` by evaluating the paper's Boolean
/// project-join query with `method`. `Ok(true)` means colorable.
#[deprecated(
    since = "0.2.0",
    note = "build the query with `workload::color_query` and use `Eval::new(&q, &db).method(m).seed(s).nonempty()`"
)]
pub fn evaluate_3color(
    graph: &ppr_graph::Graph,
    method: Method,
    seed: u64,
) -> ppr_relalg::Result<bool> {
    let mut rng = StdRng::seed_from_u64(seed);
    let (q, db) =
        ppr_workload::color_query(graph, &ppr_workload::ColorQueryOptions::boolean(), &mut rng);
    Eval::new(&q, &db).method(method).seed(seed).nonempty()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_color(g: &ppr_graph::Graph, method: Method, seed: u64) -> bool {
        let mut rng = StdRng::seed_from_u64(seed);
        let (q, db) =
            ppr_workload::color_query(g, &ppr_workload::ColorQueryOptions::boolean(), &mut rng);
        Eval::new(&q, &db)
            .method(method)
            .seed(seed)
            .nonempty()
            .unwrap()
    }

    #[test]
    fn three_colorability_decisions() {
        let c5 = graph::families::cycle(5);
        let k4 = graph::families::complete(4);
        for method in Method::paper_lineup() {
            assert!(three_color(&c5, method, 1), "{method:?}");
            assert!(!three_color(&k4, method, 1), "{method:?}");
        }
    }

    #[test]
    fn eval_threads_match_serial() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = graph::families::augmented_ladder(4);
        let (q, db) =
            ppr_workload::color_query(&g, &ppr_workload::ColorQueryOptions::boolean(), &mut rng);
        let eval = Eval::new(&q, &db)
            .method(Method::BucketElimination(OrderHeuristic::Mcs))
            .seed(7);
        let (serial, _) = eval.run().unwrap();
        for threads in [2usize, 4] {
            let (par, stats) = eval.clone().threads(threads).run().unwrap();
            assert_eq!(serial.schema(), par.schema());
            assert_eq!(serial.tuples(), par.tuples());
            assert!(stats.threads_used >= 1);
        }
    }

    #[test]
    fn eval_returns_stats_and_respects_budget() {
        let mut rng = StdRng::seed_from_u64(0);
        let g = graph::families::ladder(4);
        let (q, db) =
            ppr_workload::color_query(&g, &ppr_workload::ColorQueryOptions::boolean(), &mut rng);
        let (rel, stats) = Eval::new(&q, &db).run().unwrap();
        assert!(!rel.is_empty());
        assert!(stats.tuples_flowed > 0);
        // Ladder treewidth is 2; MCS is a heuristic, so allow one extra
        // column for unlucky tie-breaking.
        assert!(stats.max_intermediate_arity <= 4);

        let starved = Eval::new(&q, &db).budget(Budget::tuples(1)).run();
        assert!(starved.is_err(), "budget exhaustion must be an error");
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_wrappers_agree_with_the_builder() {
        let c5 = graph::families::cycle(5);
        let method = Method::BucketElimination(OrderHeuristic::Mcs);
        assert!(evaluate_3color(&c5, method, 1).unwrap());

        let mut rng = StdRng::seed_from_u64(1);
        let (q, db) =
            ppr_workload::color_query(&c5, &ppr_workload::ColorQueryOptions::boolean(), &mut rng);
        let (old, _) = evaluate(&q, &db, method, &Budget::unlimited(), 1).unwrap();
        let (new, _) = Eval::new(&q, &db).method(method).seed(1).run().unwrap();
        assert_eq!(old.tuples(), new.tuples());
        let (par, _) = evaluate_parallel(&q, &db, method, &Budget::unlimited(), 1, 2).unwrap();
        assert_eq!(old.tuples(), par.tuples());
    }
}
