#![warn(missing_docs)]

//! **projection-pushing** — a reproduction of *Projection Pushing
//! Revisited* (McMahan, Pan, Porter, Vardi; EDBT 2004).
//!
//! The paper studies structural optimization of project-join (conjunctive)
//! queries with many relations over tiny databases: projection pushing,
//! greedy join reordering, and bucket elimination yield exponential
//! execution-time improvements over what a cost-based SQL planner
//! produces, and the achievable intermediate-result arity is characterized
//! exactly by the treewidth of the query's join graph (join width =
//! treewidth + 1; induced width = treewidth).
//!
//! This crate re-exports the workspace and offers a compact high-level
//! API:
//!
//! ```
//! use projection_pushing::prelude::*;
//!
//! // A 5-cycle is 3-colorable…
//! let pentagon = graph::families::cycle(5);
//! assert!(evaluate_3color(&pentagon, Method::BucketElimination(OrderHeuristic::Mcs), 0).unwrap());
//! // …but K4 is not.
//! let k4 = graph::families::complete(4);
//! assert!(!evaluate_3color(&k4, Method::Straightforward, 0).unwrap());
//! ```
//!
//! For long-lived query serving — a fingerprint-keyed plan cache,
//! admission control, and a TCP line protocol (`ppr serve` / `ppr
//! client`) — see the [`service`] crate.

pub use ppr_core as core;
pub use ppr_costplanner as costplanner;
pub use ppr_graph as graph;
pub use ppr_query as query;
pub use ppr_relalg as relalg;
pub use ppr_service as service;
pub use ppr_sql as sql;
pub use ppr_workload as workload;

use rand::rngs::StdRng;
use rand::SeedableRng;

use ppr_core::methods::build_plan;
pub use ppr_core::methods::{Method, OrderHeuristic};
use ppr_query::{ConjunctiveQuery, Database};
use ppr_relalg::{exec, Budget, ExecStats, Relation};

/// Everything a typical user needs.
pub mod prelude {
    pub use crate::evaluate_parallel;
    pub use crate::{evaluate, evaluate_3color, graph, Method, OrderHeuristic};
    pub use ppr_core::methods::{build_plan, emit_sql};
    pub use ppr_query::{Atom, ConjunctiveQuery, Database, Vars};
    pub use ppr_relalg::parallel::execute_parallel;
    pub use ppr_relalg::{Budget, Plan};
    pub use ppr_service::{Client, Engine, EngineConfig, Request, Server, ServiceError};
    pub use ppr_workload::{color_query, ColorQueryOptions, InstanceSpec, QueryShape};
}

/// Evaluates `query` over `db` with `method` under `budget`. Returns the
/// result relation and execution statistics.
pub fn evaluate(
    query: &ConjunctiveQuery,
    db: &Database,
    method: Method,
    budget: &Budget,
    seed: u64,
) -> ppr_relalg::Result<(Relation, ExecStats)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let plan = build_plan(method, query, db, &mut rng);
    exec::execute(&plan, budget)
}

/// [`evaluate`] on the partitioned parallel executor with `threads` worker
/// threads (`0` = all cores, `1` = one worker). The result relation is
/// byte-identical to [`evaluate`]'s; only wall-clock time and the
/// thread-related [`ExecStats`] fields differ.
pub fn evaluate_parallel(
    query: &ConjunctiveQuery,
    db: &Database,
    method: Method,
    budget: &Budget,
    seed: u64,
    threads: usize,
) -> ppr_relalg::Result<(Relation, ExecStats)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let plan = build_plan(method, query, db, &mut rng);
    ppr_relalg::parallel::execute_parallel(&plan, budget, threads)
}

/// Decides 3-colorability of `graph` by evaluating the paper's Boolean
/// project-join query with `method`. `Ok(true)` means colorable.
pub fn evaluate_3color(
    graph: &ppr_graph::Graph,
    method: Method,
    seed: u64,
) -> ppr_relalg::Result<bool> {
    let mut rng = StdRng::seed_from_u64(seed);
    let (q, db) =
        ppr_workload::color_query(graph, &ppr_workload::ColorQueryOptions::boolean(), &mut rng);
    let (rel, _) = evaluate(&q, &db, method, &Budget::unlimited(), seed)?;
    Ok(!rel.is_empty())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_colorability_decisions() {
        let c5 = graph::families::cycle(5);
        let k4 = graph::families::complete(4);
        for method in Method::paper_lineup() {
            assert!(evaluate_3color(&c5, method, 1).unwrap(), "{method:?}");
            assert!(!evaluate_3color(&k4, method, 1).unwrap(), "{method:?}");
        }
    }

    #[test]
    fn evaluate_parallel_matches_serial() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = graph::families::augmented_ladder(4);
        let (q, db) =
            ppr_workload::color_query(&g, &ppr_workload::ColorQueryOptions::boolean(), &mut rng);
        let method = Method::BucketElimination(OrderHeuristic::Mcs);
        let (serial, _) = evaluate(&q, &db, method, &Budget::unlimited(), 7).unwrap();
        for threads in [1usize, 4] {
            let (par, stats) =
                evaluate_parallel(&q, &db, method, &Budget::unlimited(), 7, threads).unwrap();
            assert_eq!(serial.schema(), par.schema());
            assert_eq!(serial.tuples(), par.tuples());
            assert!(stats.threads_used >= 1);
        }
    }

    #[test]
    fn evaluate_returns_stats() {
        let mut rng = StdRng::seed_from_u64(0);
        let g = graph::families::ladder(4);
        let (q, db) =
            ppr_workload::color_query(&g, &ppr_workload::ColorQueryOptions::boolean(), &mut rng);
        let (rel, stats) = evaluate(
            &q,
            &db,
            Method::BucketElimination(OrderHeuristic::Mcs),
            &Budget::unlimited(),
            0,
        )
        .unwrap();
        assert!(!rel.is_empty());
        assert!(stats.tuples_flowed > 0);
        // Ladder treewidth is 2; MCS is a heuristic, so allow one extra
        // column for unlucky tie-breaking.
        assert!(stats.max_intermediate_arity <= 4);
    }
}
