//! `ppr` — the command-line face of the projection-pushing library.
//!
//! ```text
//! ppr color  (--random N,D | --family NAME,ORDER | --edges FILE)
//!            [--k COLORS] [--free F] [--method M] [--seed S]
//!            [--timeout-ms T] [--sql]
//! ppr sat    (--random N,D,K | --dimacs FILE) [--method M] [--seed S]
//!            [--timeout-ms T] [--sql]
//! ppr query  --rule 'q(x) :- e(x,y), e(y,z).' --rel 'e = {(1,2),(2,3)}'
//!            [--rel-file name=path.csv] [--method M] [--sql] [--minimize]
//! ppr width  (--random N,D | --family NAME,ORDER | --edges FILE) [--seed S]
//! ppr serve  [--listen HOST:PORT] [--rel '…'] [--rel-file name=path.csv]
//!            [--colors K] [--workers N] [--queue N] [--cache N]
//!            [--result-cache-bytes N] [--exec-threads N] [--max-tuples N]
//!            [--timeout-ms T] [--metrics-addr HOST:PORT] [--slowlog N]
//!            [--data-dir DIR] [--no-fsync] [--max-connections N]
//!            [--idle-timeout-ms T] [--threads] [--profile-ops]
//! ppr client [--connect HOST:PORT] --rule 'q(x) :- edge(x,y)' [--method M]
//!            [--db NAME | --use NAME] [--max-tuples N] [--timeout-ms T]
//!            [--seed S] [--explain plan|analyze] [--pipeline N] [--stats]
//!            [--ping] [--dbs] [--connections N [--requests N] [--window W]]
//! ppr client [--connect HOST:PORT] (--create NAME | --drop NAME |
//!            --load 'DB REL 1,2;2,3' | --add 'DB REL 1,2')
//! ppr bench-pipe [--connect HOST:PORT] [--requests N] [--pipeline W]
//!            [--method M] [--colors K]
//! ```
//!
//! Methods: `naive`, `straightforward`, `early`, `reorder`, `bucket`
//! (default), `bucket-mindeg`, `bucket-minfill`.

use std::process::exit;
use std::time::Duration;

use projection_pushing::core::methods::{build_plan, emit_sql, Method, OrderHeuristic};
use projection_pushing::graph::{families, generate, Graph};
use projection_pushing::prelude::*;
use projection_pushing::relalg::exec;
use projection_pushing::sql::emit::render;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        die(USAGE);
    };
    let flags = Flags::parse(&args[1..]);
    match cmd.as_str() {
        "color" => cmd_color(&flags),
        "sat" => cmd_sat(&flags),
        "query" => cmd_query(&flags),
        "width" => cmd_width(&flags),
        "serve" => cmd_serve(&flags),
        "client" => cmd_client(&flags),
        "bench-pipe" => cmd_bench_pipe(&flags),
        _ => die(USAGE),
    }
}

const USAGE: &str = "usage: ppr <color|sat|query|width|serve|client|bench-pipe> [flags]\n  see `src/bin/ppr.rs` header for flags";

fn die(msg: &str) -> ! {
    eprintln!("{msg}");
    exit(2)
}

/// Minimal flag map: `--name value` pairs plus boolean switches.
struct Flags {
    pairs: Vec<(String, String)>,
    switches: Vec<String>,
}

impl Flags {
    fn parse(args: &[String]) -> Flags {
        let mut pairs = Vec::new();
        let mut switches = Vec::new();
        let mut i = 0;
        while i < args.len() {
            let name = args[i]
                .strip_prefix("--")
                .unwrap_or_else(|| die(&format!("expected flag, got {}", args[i])))
                .to_string();
            if i + 1 < args.len() && !args[i + 1].starts_with("--") {
                pairs.push((name, args[i + 1].clone()));
                i += 2;
            } else {
                switches.push(name);
                i += 1;
            }
        }
        Flags { pairs, switches }
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.pairs
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    fn get_all(&self, name: &str) -> Vec<&str> {
        self.pairs
            .iter()
            .filter(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
            .collect()
    }

    fn has(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }

    fn num<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        match self.get(name) {
            Some(v) => v
                .parse()
                .unwrap_or_else(|_| die(&format!("bad value for --{name}: {v}"))),
            None => default,
        }
    }
}

/// Parses `N,D` (order, density).
fn parse_order_density(text: &str) -> Option<(usize, f64)> {
    let (n, d) = text.split_once(',')?;
    Some((n.trim().parse().ok()?, d.trim().parse().ok()?))
}

/// Parses an edge list: one `u v` pair per line, `#` comments.
fn parse_edge_list(text: &str) -> Result<Graph, String> {
    let mut edges = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        let (Some(u), Some(v)) = (it.next(), it.next()) else {
            return Err(format!("line {}: expected `u v`", lineno + 1));
        };
        let u: usize = u.parse().map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let v: usize = v.parse().map_err(|e| format!("line {}: {e}", lineno + 1))?;
        edges.push((u, v));
    }
    if edges.is_empty() {
        return Err("no edges".into());
    }
    Ok(Graph::from_edges(0, &edges))
}

/// Parses `NAME,ORDER` for a structured family.
fn family_graph(text: &str) -> Option<Graph> {
    let (name, order) = text.split_once(',')?;
    let n: usize = order.trim().parse().ok()?;
    Some(match name.trim() {
        "augpath" | "augmented-path" => families::augmented_path(n),
        "ladder" => families::ladder(n),
        "augladder" | "augmented-ladder" => families::augmented_ladder(n),
        "augcircladder" | "augmented-circular-ladder" => families::augmented_circular_ladder(n),
        "path" => families::path(n),
        "cycle" => families::cycle(n),
        "complete" => families::complete(n),
        "grid" => families::grid(n, n),
        _ => return None,
    })
}

fn graph_from_flags(flags: &Flags, rng: &mut StdRng) -> Graph {
    if let Some(spec) = flags.get("random") {
        let (n, d) = parse_order_density(spec).unwrap_or_else(|| die("--random expects N,D"));
        return generate::random_graph_density(n, d, rng);
    }
    if let Some(spec) = flags.get("family") {
        return family_graph(spec).unwrap_or_else(|| die("--family expects NAME,ORDER"));
    }
    if let Some(path) = flags.get("edges") {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
        return parse_edge_list(&text).unwrap_or_else(|e| die(&e));
    }
    die("need one of --random / --family / --edges")
}

fn run_and_report(query: &ConjunctiveQuery, db: &Database, flags: &Flags) {
    let method = match flags.get("method") {
        Some(name) => Method::parse(name).unwrap_or_else(|| die(&format!("unknown method {name}"))),
        None => Method::BucketElimination(OrderHeuristic::Mcs),
    };
    let seed: u64 = flags.num("seed", 0);
    let mut rng = StdRng::seed_from_u64(seed);
    if flags.has("sql") {
        println!("{}", render(&emit_sql(method, query, db, &mut rng)));
        return;
    }
    let timeout_ms: u64 = flags.num("timeout-ms", 60_000);
    let budget = Budget::tuples(u64::MAX).with_timeout(Duration::from_millis(timeout_ms));
    let plan = build_plan(method, query, db, &mut rng);
    match exec::execute(&plan, &budget) {
        Ok((rel, stats)) => {
            println!(
                "method: {}  nonempty: {}  rows: {}",
                method.name(),
                !rel.is_empty(),
                rel.len()
            );
            println!(
                "time: {:.2} ms  tuples flowed: {}  max arity: {}  materializations: {}",
                stats.elapsed.as_secs_f64() * 1e3,
                stats.tuples_flowed,
                stats.max_intermediate_arity,
                stats.materializations
            );
            if flags.has("rows") {
                for t in rel.tuples().iter().take(50) {
                    println!("  {t:?}");
                }
            }
        }
        Err(e) => {
            println!("method: {}  {e}", method.name());
            exit(1);
        }
    }
}

fn cmd_color(flags: &Flags) {
    let seed: u64 = flags.num("seed", 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let g = graph_from_flags(flags, &mut rng);
    let opts = ColorQueryOptions {
        colors: flags.num("k", 3u32),
        free_fraction: flags.num("free", 0.0f64),
    };
    eprintln!("instance: {} vertices, {} edges", g.order(), g.size());
    let (q, db) = color_query(&g, &opts, &mut rng);
    run_and_report(&q, &db, flags);
}

fn cmd_sat(flags: &Flags) {
    use projection_pushing::workload::{parse_dimacs, random_sat, sat_query};
    let seed: u64 = flags.num("seed", 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let instance = if let Some(spec) = flags.get("random") {
        let parts: Vec<&str> = spec.split(',').collect();
        if parts.len() != 3 {
            die("--random expects N,D,K");
        }
        let n: usize = parts[0].trim().parse().unwrap_or_else(|_| die("bad N"));
        let d: f64 = parts[1].trim().parse().unwrap_or_else(|_| die("bad D"));
        let k: usize = parts[2].trim().parse().unwrap_or_else(|_| die("bad K"));
        random_sat(n, (d * n as f64).round() as usize, k, &mut rng)
    } else if let Some(path) = flags.get("dimacs") {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
        parse_dimacs(&text).unwrap_or_else(|e| die(&e))
    } else {
        die("need --random N,D,K or --dimacs FILE")
    };
    eprintln!(
        "instance: {} variables, {} clauses",
        instance.num_vars,
        instance.clauses.len()
    );
    let (q, db) = sat_query(&instance, flags.num("free", 0.0f64), &mut rng);
    run_and_report(&q, &db, flags);
}

fn cmd_query(flags: &Flags) {
    use projection_pushing::query::{parse_query, parse_relation};
    let rule = flags.get("rule").unwrap_or_else(|| die("need --rule"));
    let mut query = parse_query(rule).unwrap_or_else(|e| die(&e.to_string()));
    let mut db = Database::new();
    let mut base_col = 10_000_000u32;
    for rel_text in flags.get_all("rel") {
        let rel = parse_relation(rel_text, base_col).unwrap_or_else(|e| die(&e.to_string()));
        base_col += rel.arity() as u32;
        db.add(rel);
    }
    for spec in flags.get_all("rel-file") {
        // --rel-file name=path.csv
        let Some((name, path)) = spec.split_once('=') else {
            die("--rel-file expects name=path.csv");
        };
        let text = std::fs::read_to_string(path.trim())
            .unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
        let rel = projection_pushing::relalg::csv::relation_from_csv(name.trim(), &text, base_col)
            .unwrap_or_else(|e| die(&e));
        base_col += rel.arity() as u32;
        db.add(rel);
    }
    if db.is_empty() {
        die("need at least one --rel 'name = {(…)…}' or --rel-file name=path.csv");
    }
    if flags.has("minimize") {
        let before = query.num_atoms();
        query = projection_pushing::core::minimize::minimize(&query);
        eprintln!("minimized: {before} → {} atoms", query.num_atoms());
    }
    run_and_report(&query, &db, flags);
}

fn cmd_width(flags: &Flags) {
    use projection_pushing::core::width;
    use projection_pushing::graph::treewidth;
    use projection_pushing::query::JoinGraph;
    let seed: u64 = flags.num("seed", 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let g = graph_from_flags(flags, &mut rng);
    let (q, _) = color_query(&g, &ColorQueryOptions::boolean(), &mut rng);
    let jg = JoinGraph::of(&q);
    println!(
        "join graph: {} vars, {} edges",
        jg.num_vars(),
        jg.graph.size()
    );
    println!(
        "treewidth bounds: lower {} / upper {}",
        treewidth::lower_bound(&jg.graph),
        treewidth::upper_bound(&jg.graph)
    );
    for h in [
        OrderHeuristic::Mcs,
        OrderHeuristic::MinDegree,
        OrderHeuristic::MinFill,
    ] {
        println!(
            "induced width ({h:?}): {}",
            width::heuristic_induced_width(&q, h, &mut rng)
        );
    }
    if jg.num_vars() <= 20 {
        println!(
            "treewidth (exact): {}",
            treewidth::treewidth_exact(&jg.graph)
        );
    } else {
        println!("treewidth (exact): skipped (> 20 vars)");
    }
}

/// Builds the server database: explicit `--rel` / `--rel-file` relations,
/// or the k-coloring edge relation (`--colors`, default 3) when none are
/// given — the natural database for the paper's 3-COLOR workload.
fn serve_database(flags: &Flags) -> Database {
    use projection_pushing::query::parse_relation;
    let mut db = Database::new();
    let mut base_col = 10_000_000u32;
    for rel_text in flags.get_all("rel") {
        let rel = parse_relation(rel_text, base_col).unwrap_or_else(|e| die(&e.to_string()));
        base_col += rel.arity() as u32;
        db.add(rel);
    }
    for spec in flags.get_all("rel-file") {
        let Some((name, path)) = spec.split_once('=') else {
            die("--rel-file expects name=path.csv");
        };
        let text = std::fs::read_to_string(path.trim())
            .unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
        let rel = projection_pushing::relalg::csv::relation_from_csv(name.trim(), &text, base_col)
            .unwrap_or_else(|e| die(&e));
        base_col += rel.arity() as u32;
        db.add(rel);
    }
    if db.is_empty() {
        let colors: u32 = flags.num("colors", 3);
        db.add(projection_pushing::workload::edge_relation(colors));
    }
    db
}

fn cmd_serve(flags: &Flags) {
    use projection_pushing::service::{ConnectionModel, EngineConfig, Server};
    let listen = flags.get("listen").unwrap_or("127.0.0.1:7171");
    let mut cfg = EngineConfig::default();
    cfg.workers = flags.num("workers", 4usize);
    cfg.queue_capacity = flags.num("queue", 64usize);
    cfg.cache_capacity = flags.num("cache", 256usize);
    cfg.result_cache_bytes = flags.num("result-cache-bytes", cfg.result_cache_bytes);
    cfg.exec_threads = flags.num("exec-threads", 1usize);
    cfg.max_budget = Budget::tuples(flags.num("max-tuples", u64::MAX))
        .with_timeout(Duration::from_millis(flags.num("timeout-ms", 60_000)));
    cfg.slowlog_capacity = flags.num("slowlog", cfg.slowlog_capacity);
    // Profile every serial execution: per-operator rows/time feed the
    // ppr_op_* metrics and slow-log digests (small constant overhead).
    cfg.profile_ops = flags.has("profile-ops");

    // The builder owns the whole stack: with --data-dir the catalog is
    // durable (recovered on startup, mutations committed to a
    // write-ahead log, fsync on commit unless --no-fsync); the seed
    // database applies only when the catalog lacks a `default` — a
    // recovered data dir keeps its own.
    let mut builder = Server::builder()
        .addr(listen)
        .engine_config(cfg)
        .database(serve_database(flags))
        .max_connections(flags.num("max-connections", 10_000usize));
    let idle_ms: u64 = flags.num("idle-timeout-ms", 300_000u64);
    builder = builder.idle_timeout((idle_ms > 0).then(|| Duration::from_millis(idle_ms)));
    if flags.has("threads") {
        // Escape hatch: the thread-per-connection backend (always the
        // model on non-Linux hosts, where there is no epoll).
        builder = builder.connection_model(ConnectionModel::Threads);
    }
    if let Some(dir) = flags.get("data-dir") {
        builder = builder.data_dir(dir).fsync(!flags.has("no-fsync"));
    }
    // Optional Prometheus-style pull endpoint: GET /metrics returns the
    // exposition text (engine + connection layer), GET /slowlog the
    // worst-request table with the accept-error note.
    if let Some(addr) = flags.get("metrics-addr") {
        builder = builder.metrics_addr(addr);
    }
    let server = builder
        .start()
        .unwrap_or_else(|e| die(&format!("cannot listen on {listen}: {e}")));
    if let Some(report) = server.recovery() {
        eprintln!(
            "recovered {} database(s): {} record(s) replayed, \
             {} snapshot(s) loaded, {} torn tail(s) truncated, in {} us",
            report.databases,
            report.replayed_records,
            report.snapshots_loaded,
            report.torn_tails,
            report.duration_us
        );
    }
    eprintln!("databases: {:?}", server.handle().catalog().names());
    if let Some(addr) = server.metrics_addr() {
        eprintln!("metrics endpoint on http://{addr}/metrics");
    }
    eprintln!(
        "protocol: `run method=bucket rule=q(x) :- edge(x, y)` per line; also \
         `use`/`create`/`drop`/`load`/`add` for databases, `stats`, `trace`, \
         `explain plan|analyze`, `slowlog`, `ping`"
    );
    // Last line before serving: scripts (and the e2e test) wait for it,
    // then may close their end of the stderr pipe.
    eprintln!("ppr-service listening on {}", server.local_addr());
    // Serve until the process is killed. Requests in flight at kill time
    // are lost; with --data-dir every *acknowledged* mutation is already
    // fsynced to the write-ahead log, so a restart on the same directory
    // recovers the exact acknowledged catalog (memory-only mode keeps the
    // old nothing-survives behavior).
    loop {
        std::thread::park();
    }
}

/// Parses the `--load` / `--add` argument shape `DB REL 1,2;2,3`.
fn parse_mutation(spec: &str) -> (String, String, Vec<Box<[u32]>>) {
    let mut parts = spec.split_whitespace();
    let (Some(db), Some(rel), Some(data), None) =
        (parts.next(), parts.next(), parts.next(), parts.next())
    else {
        die("expected 'DB REL 1,2;2,3'");
    };
    let tuples: Vec<Box<[u32]>> = data
        .split(';')
        .map(|tup| {
            tup.split(',')
                .map(|v| v.parse().unwrap_or_else(|_| die(&format!("bad value {v}"))))
                .collect()
        })
        .collect();
    (db.to_string(), rel.to_string(), tuples)
}

fn cmd_client(flags: &Flags) {
    use projection_pushing::service::{Client, Request};
    let addr = flags.get("connect").unwrap_or("127.0.0.1:7171");
    let mut client =
        Client::connect(addr).unwrap_or_else(|e| die(&format!("cannot connect to {addr}: {e}")));
    if flags.has("ping") {
        client.ping().unwrap_or_else(|e| die(&e.to_string()));
        println!("pong");
        return;
    }
    if flags.has("dbs") {
        let infos = client.dbs().unwrap_or_else(|e| die(&e.to_string()));
        println!("{} database(s)", infos.len());
        for d in infos {
            println!(
                "{}  version={}  fingerprint={}  relations={}",
                d.name, d.version, d.fingerprint, d.relations
            );
        }
        return;
    }
    if flags.has("stats") {
        let s = client.stats().unwrap_or_else(|e| die(&e.to_string()));
        println!(
            "served: {}  rejected: {}  inflight: {}",
            s.served, s.rejected, s.inflight
        );
        println!(
            "plans: {} hits / {} misses ({:.0}% hit rate), {} evictions, {} collisions, {} cached",
            s.cache.hits,
            s.cache.misses,
            s.cache.hit_rate() * 100.0,
            s.cache.evictions,
            s.cache.collisions,
            s.cache.len
        );
        println!(
            "results: {} hits / {} misses ({:.0}% hit rate), {} evictions, {} cached ({} bytes of {})",
            s.results.hits,
            s.results.misses,
            s.results.hit_rate() * 100.0,
            s.results.evictions,
            s.results.len,
            s.results.bytes,
            s.results.capacity_bytes
        );
        println!(
            "planner: {} passes run, {} decomp-cache plan hits ({} hits / {} misses, \
             {} evictions, {} collisions, {} cached orders)",
            s.passes_run,
            s.decomp_cache_hits,
            s.decomps.hits,
            s.decomps.misses,
            s.decomps.evictions,
            s.decomps.collisions,
            s.decomps.len
        );
        return;
    }
    // Catalog verbs: one mutation per invocation, acknowledged with the
    // database's new version.
    if let Some(name) = flags.get("create") {
        let v = client
            .create_db(name)
            .unwrap_or_else(|e| die(&e.to_string()));
        println!("created {name} (version {v})");
        return;
    }
    if let Some(name) = flags.get("drop") {
        client.drop_db(name).unwrap_or_else(|e| die(&e.to_string()));
        println!("dropped {name}");
        return;
    }
    if let Some(spec) = flags.get("load") {
        let (db, rel, tuples) = parse_mutation(spec);
        let n = tuples.len();
        let v = client
            .load(&db, &rel, tuples)
            .unwrap_or_else(|e| die(&e.to_string()));
        println!("loaded {n} tuples into {db}.{rel} (version {v})");
        return;
    }
    if let Some(spec) = flags.get("add") {
        let (db, rel, mut tuples) = parse_mutation(spec);
        if tuples.len() != 1 {
            die("--add takes exactly one tuple");
        }
        let v = client
            .add(&db, &rel, tuples.pop().unwrap())
            .unwrap_or_else(|e| die(&e.to_string()));
        println!("added to {db}.{rel} (version {v})");
        return;
    }
    let rule = flags.get("rule").unwrap_or_else(|| {
        die("need --rule (or --stats / --ping / --create / --drop / --load / --add)")
    });
    let method = match flags.get("method") {
        Some(name) => Method::parse(name).unwrap_or_else(|| die(&format!("unknown method {name}"))),
        None => Method::BucketElimination(OrderHeuristic::Mcs),
    };
    // --use selects a session database first (exercising the session
    // path); --db pins the database on the request itself.
    if let Some(name) = flags.get("use") {
        client.use_db(name).unwrap_or_else(|e| die(&e.to_string()));
    }
    let mut request = Request::new(rule, method);
    request.db = flags.get("db").map(str::to_string);
    request.max_tuples = flags.get("max-tuples").map(|_| flags.num("max-tuples", 0));
    request.timeout_ms = flags.get("timeout-ms").map(|_| flags.num("timeout-ms", 0));
    request.seed = flags.get("seed").map(|_| flags.num("seed", 0));
    // --explain renders the optimizer pass trace and the operator tree
    // instead of rows: `plan` without executing, `analyze` with measured
    // per-operator counters.
    if let Some(mode_word) = flags.get("explain") {
        use projection_pushing::service::ExplainMode;
        let mode = match mode_word {
            "plan" => ExplainMode::Plan,
            "analyze" => ExplainMode::Analyze,
            other => die(&format!("--explain takes plan|analyze, got `{other}`")),
        };
        let report = client
            .explain(&request, mode)
            .unwrap_or_else(|e| die(&e.to_string()));
        println!(
            "explain {}: {} rows in {} us (plan {} us)",
            if report.analyze { "analyze" } else { "plan" },
            report.rows,
            report.total_us,
            report.plan_us
        );
        println!("passes:");
        for p in &report.passes {
            println!(
                "  {:<24} {:>8} us  nodes {} -> {}",
                p.name, p.micros, p.nodes_before, p.nodes_after
            );
        }
        println!("operators:");
        for n in &report.ops {
            let indent = 2 + 2 * n.depth as usize;
            let label = if n.target.is_empty() {
                n.op.name().to_string()
            } else {
                format!("{}({})", n.op.name(), n.target)
            };
            if report.analyze {
                println!(
                    "{:indent$}{label}  rows_in={} rows_out={} probes={} time={} us",
                    "", n.rows_in, n.rows_out, n.probes, n.time_us
                );
            } else {
                println!("{:indent$}{label}", "");
            }
        }
        return;
    }
    // --connections N holds N concurrent pipelined connections from one
    // epoll-driven thread and reports throughput + latency percentiles —
    // the C10K load mode.
    let connections: usize = flags.num("connections", 0);
    if connections > 0 {
        run_client_load(
            addr,
            connections,
            flags.num("requests", 10_000),
            flags.num("window", 32),
            projection_pushing::service::protocol::encode_request(&request),
        );
        return;
    }
    // --pipeline N repeats the request N times over one pipelined (v2)
    // connection: the whole burst is in flight at once.
    let depth: usize = flags.num("pipeline", 1);
    if depth > 1 {
        use projection_pushing::service::Pipeline;
        let mut pipe = Pipeline::connect(addr)
            .unwrap_or_else(|e| die(&format!("cannot pipeline to {addr}: {e}")));
        if let Some(name) = flags.get("use") {
            let t = pipe
                .submit_use(name)
                .unwrap_or_else(|e| die(&e.to_string()));
            pipe.wait_ack(t).unwrap_or_else(|e| die(&e.to_string()));
        }
        let requests = vec![request; depth];
        let started = std::time::Instant::now();
        let results = pipe
            .run_batch(&requests)
            .unwrap_or_else(|e| die(&e.to_string()));
        let elapsed = started.elapsed();
        let ok = results.iter().filter(|r| r.is_ok()).count();
        let hits = results
            .iter()
            .filter(|r| r.as_ref().is_ok_and(|resp| resp.result_cache_hit))
            .count();
        println!(
            "pipelined {depth} requests (window {}): {ok} ok, {} err, {hits} result-cache hits",
            pipe.window(),
            depth - ok,
        );
        println!(
            "elapsed: {:.2} ms  ({:.0} reqs/sec)",
            elapsed.as_secs_f64() * 1e3,
            depth as f64 / elapsed.as_secs_f64()
        );
        match results.into_iter().next().unwrap() {
            Ok(first) => println!(
                "first: rows {}  cache_hit {}  result_hit {}",
                first.rows.len(),
                first.cache_hit,
                first.result_cache_hit
            ),
            Err(e) => {
                eprintln!("{e}");
                exit(1);
            }
        }
        return;
    }
    match client.run(&request) {
        Ok(resp) => {
            println!(
                "rows: {}  cache_hit: {}  result_hit: {}  plan: {} us  exec: {} us  tuples flowed: {}",
                resp.rows.len(),
                resp.cache_hit,
                resp.result_cache_hit,
                resp.plan_micros,
                resp.stats.elapsed.as_micros(),
                resp.stats.tuples_flowed
            );
            if !resp.columns.is_empty() {
                println!("columns: {}", resp.columns.join(", "));
            }
            for row in resp.rows.iter().take(50) {
                println!("  {row:?}");
            }
            if resp.rows.len() > 50 {
                println!("  … {} more", resp.rows.len() - 50);
            }
        }
        Err(e) => {
            eprintln!("{e}");
            exit(1);
        }
    }
}

/// The `client --connections` load mode: epoll-held concurrent
/// pipelined connections, single driving thread.
#[cfg(target_os = "linux")]
fn run_client_load(addr: &str, connections: usize, requests: usize, window: usize, line: String) {
    use projection_pushing::service::net::load::{run_load, LoadOptions};
    use std::net::ToSocketAddrs;
    let sock = addr
        .to_socket_addrs()
        .ok()
        .and_then(|mut it| it.next())
        .unwrap_or_else(|| die(&format!("cannot resolve {addr}")));
    let opts = LoadOptions {
        connections,
        requests,
        window,
        lines: vec![line],
        deadline: Duration::from_secs(600),
    };
    let report = run_load(sock, &opts).unwrap_or_else(|e| die(&format!("load run failed: {e}")));
    println!(
        "connections: {}  requests: {}  errors: {}",
        report.connections, report.requests, report.errors
    );
    println!(
        "elapsed: {:.2} ms  throughput: {:.0} reqs/sec  p50: {} us  p99: {} us",
        report.elapsed.as_secs_f64() * 1e3,
        report.reqs_per_sec,
        report.p50_us,
        report.p99_us
    );
}

#[cfg(not(target_os = "linux"))]
fn run_client_load(
    _addr: &str,
    _connections: usize,
    _requests: usize,
    _window: usize,
    _line: String,
) {
    die("--connections load mode needs the Linux epoll driver");
}

/// Measures pipelining against the serial protocol on one connection
/// each: the same burst of requests, seeded so every one is a cold
/// result-cache miss, driven first serially (v1) and then through a
/// [`Pipeline`] (v2). Connects to `--connect` if given; otherwise spins
/// an in-process server on a loopback ephemeral port.
///
/// [`Pipeline`]: projection_pushing::service::Pipeline
fn cmd_bench_pipe(flags: &Flags) {
    use projection_pushing::service::{Client, Pipeline, Request};
    let requests: usize = flags.num("requests", 200);
    let depth: usize = flags.num("pipeline", 32);
    let method = match flags.get("method") {
        Some(name) => Method::parse(name).unwrap_or_else(|| die(&format!("unknown method {name}"))),
        None => Method::EarlyProjection,
    };
    let rule = "q() :- edge(x, y), edge(y, z), edge(z, x)";

    // In-process server unless --connect points elsewhere.
    let mut local = None;
    let addr = match flags.get("connect") {
        Some(a) => a.to_string(),
        None => {
            use projection_pushing::service::{Catalog, Engine, EngineConfig, Server};
            let mut db = Database::new();
            db.add(projection_pushing::workload::edge_relation(
                flags.num("colors", 3),
            ));
            let mut cfg = EngineConfig::default();
            // One worker per core: on a small box, extra workers only add
            // scheduler churn between the reader, workers, and writer.
            cfg.workers = flags.num(
                "workers",
                std::thread::available_parallelism().map_or(1, |n| n.get()),
            );
            let engine = Engine::start(Catalog::with_default(db), cfg);
            let server = Server::builder()
                .addr("127.0.0.1:0")
                .engine(engine.handle())
                .start()
                .unwrap_or_else(|e| die(&format!("cannot bind loopback: {e}")));
            let addr = server.local_addr().to_string();
            local = Some((server, engine));
            addr
        }
    };

    // Distinct seeds make every request a distinct result-cache key, so
    // both phases measure real execution, not cache reads. The serial
    // and pipelined phases use disjoint seed ranges for the same reason.
    let batch = |base: u64| -> Vec<Request> {
        (0..requests)
            .map(|i| Request::new(rule, method).seed(base + i as u64))
            .collect()
    };

    let serial_reqs = batch(1_000_000);
    let mut client =
        Client::connect(&addr).unwrap_or_else(|e| die(&format!("cannot connect to {addr}: {e}")));
    let started = std::time::Instant::now();
    for req in &serial_reqs {
        client.run(req).unwrap_or_else(|e| die(&e.to_string()));
    }
    let serial = started.elapsed();

    let piped_reqs = batch(2_000_000);
    let mut pipe = Pipeline::connect(&addr)
        .unwrap_or_else(|e| die(&format!("cannot pipeline to {addr}: {e}")));
    let window = pipe.window().min(depth.max(1));
    let started = std::time::Instant::now();
    // Double-buffered half-window bursts: submit chunk k+1 before
    // redeeming chunk k, so the server always has a burst in flight
    // while the client formats the next one — no barrier stalls, and
    // each burst is one buffered write.
    let burst = (window / 2).max(1);
    let mut outstanding: Vec<projection_pushing::service::Ticket> = Vec::new();
    for chunk in piped_reqs.chunks(burst) {
        let tickets: Vec<_> = chunk
            .iter()
            .map(|req| pipe.submit(req).unwrap_or_else(|e| die(&e.to_string())))
            .collect();
        for t in outstanding.drain(..) {
            pipe.wait(t).unwrap_or_else(|e| die(&e.to_string()));
        }
        outstanding = tickets;
    }
    for t in outstanding {
        pipe.wait(t).unwrap_or_else(|e| die(&e.to_string()));
    }
    let piped = started.elapsed();

    let rate = |d: Duration| requests as f64 / d.as_secs_f64();
    println!(
        "serial    (v1): {:>9.2} ms  {:>8.0} reqs/sec",
        serial.as_secs_f64() * 1e3,
        rate(serial)
    );
    println!(
        "pipelined (v2): {:>9.2} ms  {:>8.0} reqs/sec  (window {window})",
        piped.as_secs_f64() * 1e3,
        rate(piped)
    );
    println!(
        "speedup: {:.2}x over {requests} cold {} requests",
        rate(piped) / rate(serial),
        method.name()
    );
    drop(local);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn method_names_resolve() {
        assert_eq!(
            Method::parse("bucket"),
            Some(Method::BucketElimination(OrderHeuristic::Mcs))
        );
        assert_eq!(Method::parse("sf"), Some(Method::Straightforward));
        assert_eq!(Method::parse("nope"), None);
    }

    #[test]
    fn order_density_parses() {
        assert_eq!(parse_order_density("20,3.5"), Some((20, 3.5)));
        assert_eq!(parse_order_density("20"), None);
    }

    #[test]
    fn edge_list_parses() {
        let g = parse_edge_list("# comment\n0 1\n1 2\n").unwrap();
        assert_eq!(g.order(), 3);
        assert_eq!(g.size(), 2);
        assert!(parse_edge_list("").is_err());
        assert!(parse_edge_list("0\n").is_err());
    }

    #[test]
    fn families_resolve() {
        assert!(family_graph("ladder,4").is_some());
        assert!(family_graph("augcircladder,5").is_some());
        assert!(family_graph("mystery,4").is_none());
    }

    #[test]
    fn flags_parse_pairs_and_switches() {
        let args: Vec<String> = ["--random", "10,2", "--sql", "--seed", "5"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let f = Flags::parse(&args);
        assert_eq!(f.get("random"), Some("10,2"));
        assert!(f.has("sql"));
        assert_eq!(f.num::<u64>("seed", 0), 5);
        assert_eq!(f.num::<u64>("missing", 9), 9);
    }
}
