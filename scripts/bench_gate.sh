#!/bin/sh
# Bench-regression gate: measure a fresh quick-mode serve-throughput
# report and compare its cold throughput against the committed
# results/BENCH_serve.json. Exits non-zero when any method regressed
# beyond the host-aware tolerance (25% same host shape, 60% otherwise).
#
# Usage: scripts/bench_gate.sh
#
# The fresh measurement runs at the baseline's pipeline depth —
# pipelined and serial throughput are different quantities, and the
# gate only compares rows at matching depth.
#
# The serve-throughput target always writes results/BENCH_serve.json in
# place, so the committed baseline is set aside first and restored
# afterwards no matter how the measurement run ends.
set -eu

cd "$(dirname "$0")/.."

BASELINE=results/BENCH_serve.json
SAVED=results/BENCH_serve.baseline.json
FRESH=results/BENCH_serve.fresh.json

if [ ! -f "$BASELINE" ]; then
    echo "bench_gate: no committed baseline at $BASELINE" >&2
    exit 2
fi

PIPELINE=$(sed -n 's/.*"pipeline": \([0-9][0-9]*\).*/\1/p' "$BASELINE" | head -1)
PIPELINE=${PIPELINE:-1}

cp "$BASELINE" "$SAVED"
restore() {
    mv "$SAVED" "$BASELINE"
}
trap restore EXIT

cargo run --release -p ppr-bench --bin experiments -- \
    serve-throughput --quick --pipeline "$PIPELINE"

mv "$BASELINE" "$FRESH"

cargo run --release -p ppr-bench --bin experiments -- \
    bench-gate --baseline "$SAVED" --fresh "$FRESH"
