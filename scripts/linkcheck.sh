#!/usr/bin/env bash
# Offline link check for the repo's markdown: every relative link in
# README.md and docs/*.md must point at a file or directory that exists.
# External (http/https/mailto) links are skipped — CI has no network —
# and pure-anchor links (#section) are checked only for non-emptiness.
set -u

cd "$(dirname "$0")/.."

fail=0
files=(README.md docs/*.md)

# Load-bearing docs that must exist by name: the glob above would
# silently shrink if one were deleted, so pin them explicitly.
# PLANNING.md is additionally doc-tested from ppr-core
# (crates/core/src/lib.rs includes it under cfg(doctest)).
for required in docs/ARCHITECTURE.md docs/PLANNING.md docs/PROTOCOL.md \
                docs/DURABILITY.md docs/OBSERVABILITY.md; do
  if [ ! -f "$required" ]; then
    echo "linkcheck: required doc missing: $required" >&2
    fail=1
  fi
done

for md in "${files[@]}"; do
  [ -f "$md" ] || { echo "linkcheck: missing markdown file $md" >&2; fail=1; continue; }
  dir=$(dirname "$md")
  # Inline links/images: capture the (...) target after ](, strip any
  # trailing #anchor. Code fences can't contain ](…) by accident often,
  # but tolerate false negatives rather than parsing markdown fully.
  while IFS= read -r target; do
    case "$target" in
      http://*|https://*|mailto:*) continue ;;
      '#'*) continue ;;
      '') echo "$md: empty link target" >&2; fail=1; continue ;;
    esac
    path="${target%%#*}"
    [ -z "$path" ] && continue
    if [ ! -e "$dir/$path" ] && [ ! -e "$path" ]; then
      echo "$md: broken link -> $target" >&2
      fail=1
    fi
  done < <(grep -oE '\]\([^)]+\)' "$md" | sed -E 's/^\]\(//; s/\)$//; s/ "[^"]*"$//')
done

if [ "$fail" -ne 0 ]; then
  echo "linkcheck: FAILED" >&2
  exit 1
fi
echo "linkcheck: ok (${#files[@]} files)"
