//! The newline-delimited wire format.
//!
//! One request per line, one response line per request, UTF-8, no framing
//! beyond `\n` — inspectable with `nc` and implementable in any language
//! in a dozen lines. Lines are `verb key=value … [tail]` where the tail
//! (`rule=`, `msg=`) consumes the rest of the line so query text and
//! error messages may contain spaces:
//!
//! ```text
//! → run method=bucket-mcs timeout_ms=1000 rule=q() :- edge(x,y), edge(y,x)
//! ← ok cache_hit=1 plan_us=0 elapsed_us=57 cpu_us=57 tuples=12
//!      materializations=1 join_stages=1 max_arity=2 threads=1 cols=x
//!      rows=3 data=1;2;3                       (single line on the wire)
//! → stats
//! ← ok served=2 rejected=0 inflight=0 hits=1 misses=1 evictions=0 collisions=0 cache_len=1
//! → ping
//! ← ok pong
//! ← err kind=overloaded inflight=68 capacity=68
//! ```
//!
//! Result rows ride in `data=` as `;`-separated tuples of `,`-separated
//! values (values are `u32`, so both separators are unambiguous); row
//! order is the executor's deterministic order, which keeps responses
//! byte-identical to library-level evaluation.

use ppr_core::methods::Method;
use ppr_relalg::budget::BudgetKind;
use ppr_relalg::{ExecStats, RelalgError, Value};
use std::time::Duration;

use crate::cache::CacheStats;
use crate::engine::{EngineStats, Request, Response};
use crate::ServiceError;

/// Hard cap on accepted line length (1 MiB): a wire peer cannot make the
/// server buffer unboundedly.
pub const MAX_LINE: usize = 1 << 20;

/// A decoded client command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// Evaluate a query.
    Run(Request),
    /// Report engine + cache counters.
    Stats,
    /// Liveness check.
    Ping,
}

fn perr<T>(msg: impl Into<String>) -> Result<T, ServiceError> {
    Err(ServiceError::Protocol(msg.into()))
}

/// Encodes a request as one `run` line (no trailing newline).
pub fn encode_request(req: &Request) -> String {
    let mut line = format!("run method={}", req.method.name());
    if let Some(t) = req.max_tuples {
        line.push_str(&format!(" max_tuples={t}"));
    }
    if let Some(ms) = req.timeout_ms {
        line.push_str(&format!(" timeout_ms={ms}"));
    }
    if let Some(s) = req.seed {
        line.push_str(&format!(" seed={s}"));
    }
    line.push_str(" rule=");
    line.push_str(&req.query);
    line
}

/// Decodes one client line.
pub fn decode_command(line: &str) -> Result<Command, ServiceError> {
    let line = line.trim_end_matches(['\r', '\n']);
    if line.len() > MAX_LINE {
        return perr("line too long");
    }
    let (verb, rest) = match line.split_once(' ') {
        Some((v, r)) => (v, r),
        None => (line, ""),
    };
    match verb {
        "ping" => Ok(Command::Ping),
        "stats" => Ok(Command::Stats),
        "run" => {
            let Some(rule_at) = rest.find("rule=") else {
                return perr("run line needs rule=");
            };
            let query = rest[rule_at + "rule=".len()..].trim().to_string();
            if query.is_empty() {
                return perr("empty rule");
            }
            let mut method = None;
            let mut max_tuples = None;
            let mut timeout_ms = None;
            let mut seed = None;
            for tok in rest[..rule_at].split_whitespace() {
                let Some((k, v)) = tok.split_once('=') else {
                    return perr(format!("bad token `{tok}`"));
                };
                match k {
                    "method" => match Method::parse(v) {
                        Some(m) => method = Some(m),
                        None => return Err(ServiceError::UnknownMethod(v.to_string())),
                    },
                    "max_tuples" => max_tuples = Some(parse_num(k, v)?),
                    "timeout_ms" => timeout_ms = Some(parse_num(k, v)?),
                    "seed" => seed = Some(parse_num(k, v)?),
                    _ => return perr(format!("unknown key `{k}`")),
                }
            }
            let Some(method) = method else {
                return perr("run line needs method=");
            };
            Ok(Command::Run(Request {
                query,
                method,
                max_tuples,
                timeout_ms,
                seed,
            }))
        }
        other => perr(format!("unknown verb `{other}`")),
    }
}

fn parse_num<T: std::str::FromStr>(key: &str, v: &str) -> Result<T, ServiceError> {
    v.parse()
        .map_err(|_| ServiceError::Protocol(format!("bad value for {key}: {v}")))
}

/// Encodes an evaluation outcome as one `ok`/`err` line.
pub fn encode_result(result: &Result<Response, ServiceError>) -> String {
    match result {
        Ok(r) => {
            let mut line = format!(
                "ok cache_hit={} plan_us={} elapsed_us={} cpu_us={} tuples={} \
                 materializations={} join_stages={} max_arity={} threads={} cols={} rows={} data=",
                r.cache_hit as u8,
                r.plan_micros,
                r.stats.elapsed.as_micros(),
                r.stats.cpu_time.as_micros(),
                r.stats.tuples_flowed,
                r.stats.materializations,
                r.stats.join_stages,
                r.stats.max_intermediate_arity,
                r.stats.threads_used,
                r.columns.join(","),
                r.rows.len(),
            );
            for (i, row) in r.rows.iter().enumerate() {
                if i > 0 {
                    line.push(';');
                }
                for (j, v) in row.iter().enumerate() {
                    if j > 0 {
                        line.push(',');
                    }
                    line.push_str(&v.to_string());
                }
            }
            line
        }
        Err(e) => encode_error(e),
    }
}

fn encode_error(e: &ServiceError) -> String {
    match e {
        ServiceError::Overloaded { inflight, capacity } => {
            format!("err kind=overloaded inflight={inflight} capacity={capacity}")
        }
        ServiceError::ShuttingDown => "err kind=shutting_down".to_string(),
        ServiceError::Parse(m) => format!("err kind=parse msg={m}"),
        ServiceError::MissingRelation(m) => format!("err kind=missing_relation msg={m}"),
        ServiceError::UnknownMethod(m) => format!("err kind=unknown_method msg={m}"),
        ServiceError::Exec(RelalgError::BudgetExceeded {
            kind,
            tuples_flowed,
        }) => {
            let which = match kind {
                BudgetKind::Tuples => "tuples",
                BudgetKind::Materialized => "materialized",
                BudgetKind::WallClock => "wallclock",
            };
            format!("err kind=budget which={which} tuples={tuples_flowed}")
        }
        ServiceError::Exec(other) => format!("err kind=exec msg={other}"),
        ServiceError::Protocol(m) => format!("err kind=protocol msg={m}"),
        ServiceError::Io(m) => format!("err kind=io msg={m}"),
        ServiceError::Internal(m) => format!("err kind=internal msg={m}"),
    }
}

/// Decodes a server `ok`/`err` response line for a `run` request.
pub fn decode_result(line: &str) -> Result<Response, ServiceError> {
    let line = line.trim_end_matches(['\r', '\n']);
    if let Some(rest) = line.strip_prefix("err") {
        return Err(decode_error(rest.trim_start()));
    }
    let Some(rest) = line.strip_prefix("ok ") else {
        return perr(format!("expected ok/err line, got `{line}`"));
    };
    let Some(data_at) = rest.find("data=") else {
        return perr("ok line needs data=");
    };
    let data = &rest[data_at + "data=".len()..];
    let mut stats = ExecStats::default();
    let mut cache_hit = false;
    let mut plan_micros = 0;
    let mut columns = Vec::new();
    let mut expected_rows = None;
    for tok in rest[..data_at].split_whitespace() {
        let Some((k, v)) = tok.split_once('=') else {
            return perr(format!("bad token `{tok}`"));
        };
        match k {
            "cache_hit" => cache_hit = v == "1",
            "plan_us" => plan_micros = parse_num(k, v)?,
            "elapsed_us" => stats.elapsed = Duration::from_micros(parse_num(k, v)?),
            "cpu_us" => stats.cpu_time = Duration::from_micros(parse_num(k, v)?),
            "tuples" => stats.tuples_flowed = parse_num(k, v)?,
            "materializations" => stats.materializations = parse_num(k, v)?,
            "join_stages" => stats.join_stages = parse_num(k, v)?,
            "max_arity" => stats.max_intermediate_arity = parse_num(k, v)?,
            "threads" => stats.threads_used = parse_num(k, v)?,
            "cols" => {
                columns = if v.is_empty() {
                    Vec::new()
                } else {
                    v.split(',').map(str::to_string).collect()
                }
            }
            "rows" => expected_rows = Some(parse_num::<usize>(k, v)?),
            _ => return perr(format!("unknown key `{k}`")),
        }
    }
    let mut rows: Vec<Box<[Value]>> = Vec::new();
    if !data.is_empty() {
        for tup in data.split(';') {
            let row: Result<Vec<Value>, _> = tup.split(',').map(str::parse::<Value>).collect();
            match row {
                Ok(r) => rows.push(r.into_boxed_slice()),
                Err(_) => return perr(format!("bad tuple `{tup}`")),
            }
        }
    }
    if let Some(n) = expected_rows {
        if n != rows.len() {
            return perr(format!("row count {} does not match rows={n}", rows.len()));
        }
    }
    Ok(Response {
        columns,
        rows,
        stats,
        cache_hit,
        plan_micros,
    })
}

fn decode_error(rest: &str) -> ServiceError {
    let mut kind = "";
    let mut fields: Vec<(&str, &str)> = Vec::new();
    let msg = match rest.find("msg=") {
        Some(at) => {
            for tok in rest[..at].split_whitespace() {
                if let Some(kv) = tok.split_once('=') {
                    fields.push(kv);
                }
            }
            rest[at + "msg=".len()..].to_string()
        }
        None => {
            for tok in rest.split_whitespace() {
                if let Some(kv) = tok.split_once('=') {
                    fields.push(kv);
                }
            }
            String::new()
        }
    };
    for &(k, v) in &fields {
        if k == "kind" {
            kind = v;
        }
    }
    let num = |key: &str| -> u64 {
        fields
            .iter()
            .find(|(k, _)| *k == key)
            .and_then(|(_, v)| v.parse().ok())
            .unwrap_or(0)
    };
    match kind {
        "overloaded" => ServiceError::Overloaded {
            inflight: num("inflight") as usize,
            capacity: num("capacity") as usize,
        },
        "shutting_down" => ServiceError::ShuttingDown,
        "parse" => ServiceError::Parse(msg),
        "missing_relation" => ServiceError::MissingRelation(msg),
        "unknown_method" => ServiceError::UnknownMethod(msg),
        "budget" => {
            let which = fields
                .iter()
                .find(|(k, _)| *k == "which")
                .map(|&(_, v)| v)
                .unwrap_or("tuples");
            let kind = match which {
                "materialized" => BudgetKind::Materialized,
                "wallclock" => BudgetKind::WallClock,
                _ => BudgetKind::Tuples,
            };
            ServiceError::Exec(RelalgError::BudgetExceeded {
                kind,
                tuples_flowed: num("tuples"),
            })
        }
        "exec" => ServiceError::Exec(RelalgError::InvalidPlan(msg)),
        "io" => ServiceError::Io(msg),
        "internal" => ServiceError::Internal(msg),
        _ => ServiceError::Protocol(if msg.is_empty() {
            format!("unknown error kind `{kind}`")
        } else {
            msg
        }),
    }
}

/// Encodes the `stats` reply.
pub fn encode_stats(s: &EngineStats) -> String {
    format!(
        "ok served={} rejected={} inflight={} hits={} misses={} evictions={} collisions={} cache_len={}",
        s.served,
        s.rejected,
        s.inflight,
        s.cache.hits,
        s.cache.misses,
        s.cache.evictions,
        s.cache.collisions,
        s.cache.len
    )
}

/// Decodes the `stats` reply.
pub fn decode_stats(line: &str) -> Result<EngineStats, ServiceError> {
    let line = line.trim_end_matches(['\r', '\n']);
    if let Some(rest) = line.strip_prefix("err") {
        return Err(decode_error(rest.trim_start()));
    }
    let Some(rest) = line.strip_prefix("ok ") else {
        return perr(format!("expected stats line, got `{line}`"));
    };
    let mut s = EngineStats {
        cache: CacheStats::default(),
        ..EngineStats::default()
    };
    for tok in rest.split_whitespace() {
        let Some((k, v)) = tok.split_once('=') else {
            return perr(format!("bad token `{tok}`"));
        };
        match k {
            "served" => s.served = parse_num(k, v)?,
            "rejected" => s.rejected = parse_num(k, v)?,
            "inflight" => s.inflight = parse_num(k, v)?,
            "hits" => s.cache.hits = parse_num(k, v)?,
            "misses" => s.cache.misses = parse_num(k, v)?,
            "evictions" => s.cache.evictions = parse_num(k, v)?,
            "collisions" => s.cache.collisions = parse_num(k, v)?,
            "cache_len" => s.cache.len = parse_num(k, v)?,
            _ => return perr(format!("unknown key `{k}`")),
        }
    }
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_request() -> Request {
        Request {
            query: "q(x) :- edge(x, y), edge(y, x)".into(),
            method: Method::BucketElimination(ppr_core::methods::OrderHeuristic::Mcs),
            max_tuples: Some(1000),
            timeout_ms: Some(250),
            seed: Some(7),
        }
    }

    #[test]
    fn request_round_trips() {
        let req = sample_request();
        let line = encode_request(&req);
        assert_eq!(decode_command(&line).unwrap(), Command::Run(req));
    }

    #[test]
    fn minimal_request_round_trips() {
        let req = Request::new("q() :- edge(x, y)", Method::Straightforward);
        let line = encode_request(&req);
        assert!(!line.contains("max_tuples"));
        assert_eq!(decode_command(&line).unwrap(), Command::Run(req));
    }

    #[test]
    fn rule_text_may_contain_spaces_and_equals_free_tokens() {
        let cmd = decode_command("run method=sf rule=q(x) :- edge(x, y), edge(y, z)").unwrap();
        match cmd {
            Command::Run(r) => assert_eq!(r.query, "q(x) :- edge(x, y), edge(y, z)"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn bad_lines_are_rejected() {
        assert!(matches!(
            decode_command("run rule=q() :- e(x,y)"),
            Err(ServiceError::Protocol(_))
        ));
        assert!(matches!(
            decode_command("run method=warp rule=q() :- e(x,y)"),
            Err(ServiceError::UnknownMethod(_))
        ));
        assert!(matches!(
            decode_command("run method=sf"),
            Err(ServiceError::Protocol(_))
        ));
        assert!(matches!(
            decode_command("frobnicate"),
            Err(ServiceError::Protocol(_))
        ));
        assert!(matches!(
            decode_command("run method=sf max_tuples=lots rule=q() :- e(x,y)"),
            Err(ServiceError::Protocol(_))
        ));
    }

    #[test]
    fn ping_and_stats_decode() {
        assert_eq!(decode_command("ping\n").unwrap(), Command::Ping);
        assert_eq!(decode_command("stats").unwrap(), Command::Stats);
    }

    fn sample_response() -> Response {
        Response {
            columns: vec!["x".into(), "y".into()],
            rows: vec![vec![1, 2].into_boxed_slice(), vec![3, 1].into_boxed_slice()],
            stats: ExecStats {
                tuples_flowed: 42,
                materializations: 2,
                join_stages: 3,
                max_intermediate_arity: 4,
                threads_used: 2,
                elapsed: Duration::from_micros(120),
                cpu_time: Duration::from_micros(200),
                ..ExecStats::default()
            },
            cache_hit: true,
            plan_micros: 15,
        }
    }

    #[test]
    fn response_round_trips() {
        let resp = sample_response();
        let line = encode_result(&Ok(resp.clone()));
        let back = decode_result(&line).unwrap();
        assert_eq!(back, resp);
    }

    #[test]
    fn empty_result_round_trips() {
        let resp = Response {
            columns: vec!["x".into()],
            rows: Vec::new(),
            stats: ExecStats::default(),
            cache_hit: false,
            plan_micros: 3,
        };
        let line = encode_result(&Ok(resp.clone()));
        assert!(line.ends_with("data="));
        assert_eq!(decode_result(&line).unwrap(), resp);
    }

    #[test]
    fn errors_round_trip() {
        let cases = vec![
            ServiceError::Overloaded {
                inflight: 68,
                capacity: 68,
            },
            ServiceError::ShuttingDown,
            ServiceError::Parse("expected `head :- body`".into()),
            ServiceError::MissingRelation("nope".into()),
            ServiceError::UnknownMethod("warp".into()),
            ServiceError::Exec(RelalgError::BudgetExceeded {
                kind: BudgetKind::WallClock,
                tuples_flowed: 99,
            }),
            ServiceError::Internal("worker panicked".into()),
        ];
        for e in cases {
            let line = encode_result(&Err(e.clone()));
            let back = decode_result(&line).unwrap_err();
            assert_eq!(back, e, "line was `{line}`");
        }
        // Generic exec errors round-trip by kind + message text (the
        // Display prefix is kept, so the client still sees the cause).
        let e = ServiceError::Exec(RelalgError::InvalidPlan("broken".into()));
        let back = decode_result(&encode_result(&Err(e))).unwrap_err();
        match back {
            ServiceError::Exec(RelalgError::InvalidPlan(m)) => assert!(m.contains("broken")),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn row_count_mismatch_is_caught() {
        let line = "ok cache_hit=0 plan_us=0 elapsed_us=0 cpu_us=0 tuples=0 \
                    materializations=0 join_stages=0 max_arity=0 threads=1 cols=x rows=2 data=1";
        assert!(matches!(
            decode_result(line),
            Err(ServiceError::Protocol(_))
        ));
    }

    #[test]
    fn stats_round_trip() {
        let s = EngineStats {
            served: 10,
            rejected: 2,
            inflight: 1,
            cache: CacheStats {
                hits: 7,
                misses: 3,
                evictions: 1,
                collisions: 1,
                len: 2,
                capacity: 0, // not on the wire
            },
        };
        let line = encode_stats(&s);
        assert_eq!(decode_stats(&line).unwrap(), s);
    }
}
