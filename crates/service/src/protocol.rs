//! The newline-delimited wire format: encoding and decoding.
//!
//! **The protocol specification lives in `docs/PROTOCOL.md` (repository
//! root) — the one source of truth** for the grammar (v1 untagged and v2
//! tagged), every verb, the full `err kind=` matrix, and worked serial
//! and pipelined sessions. In one breath: one UTF-8 request per line, one
//! response line per request; a v2 client may tag requests with `id=` and
//! keep many in flight, and the server echoes the tag on every `ok`/`err`
//! line while completing them out of order.

use ppr_core::methods::Method;
use ppr_obs::{OpKind, OpNode, PassSpan, Phase, Quantiles, SlowEntry, TraceSpans, PHASES};
use ppr_relalg::budget::BudgetKind;
use ppr_relalg::{ExecStats, RelalgError, Value};
use std::time::Duration;

use crate::catalog::{DbFingerprint, DbInfo, DbVersion};
use crate::engine::{EngineStats, ExplainMode, Request, Response};
use crate::ServiceError;

/// Hard cap on accepted line length (1 MiB): a wire peer cannot make the
/// server buffer unboundedly.
pub const MAX_LINE: usize = 1 << 20;

/// Highest protocol version this build speaks. v1 is the untagged
/// serial protocol; v2 adds `id=` tags and out-of-order completion.
pub const PROTO_VERSION: u32 = 2;

/// Incremental newline framing over a byte stream.
///
/// Both connection backends feed whatever the socket produced — a partial
/// line, many lines, or a line split across reads — into [`push`] and
/// pull complete lines out of [`next_line`]. The framer enforces
/// [`MAX_LINE`] on the *unterminated* tail, so a peer cannot make the
/// server buffer unboundedly by never sending a newline, and it scans
/// each byte exactly once (the scan cursor survives partial pushes, so
/// re-polling a half-line is O(new bytes), not O(buffer)).
///
/// [`push`]: LineFramer::push
/// [`next_line`]: LineFramer::next_line
#[derive(Debug, Default)]
pub struct LineFramer {
    buf: Vec<u8>,
    /// Bytes below this index are known newline-free.
    scanned: usize,
}

impl LineFramer {
    /// An empty framer.
    pub fn new() -> LineFramer {
        LineFramer::default()
    }

    /// Appends freshly read bytes to the frame buffer.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Pops the next complete line (without its newline; lossy UTF-8),
    /// `Ok(None)` if no full line is buffered yet, or a protocol error
    /// once the unterminated tail exceeds [`MAX_LINE`].
    pub fn next_line(&mut self) -> Result<Option<String>, ServiceError> {
        match self.buf[self.scanned..].iter().position(|&b| b == b'\n') {
            Some(offset) => {
                let nl = self.scanned + offset;
                let line = String::from_utf8_lossy(&self.buf[..nl]).into_owned();
                self.buf.drain(..=nl);
                self.scanned = 0;
                Ok(Some(line))
            }
            None => {
                self.scanned = self.buf.len();
                if self.buf.len() > MAX_LINE {
                    perr("line too long")
                } else {
                    Ok(None)
                }
            }
        }
    }

    /// Bytes buffered without a terminating newline yet.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }
}

/// A decoded client command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// Evaluate a query.
    Run(Request),
    /// Select the connection's session database.
    Use(String),
    /// Create a new empty database.
    Create(String),
    /// Remove a database (in-flight snapshots finish unaffected).
    Drop(String),
    /// Replace one relation of a database with the given tuples.
    Load {
        /// Target database.
        db: String,
        /// Relation name.
        rel: String,
        /// The relation's new contents (must be non-empty and
        /// arity-consistent).
        tuples: Vec<Box<[Value]>>,
    },
    /// Append one tuple to a relation (created on first `add`).
    Add {
        /// Target database.
        db: String,
        /// Relation name.
        rel: String,
        /// The tuple to append.
        tuple: Box<[Value]>,
    },
    /// Report engine + cache counters.
    Stats,
    /// Evaluate a query and return its per-phase span breakdown instead
    /// of the rows — same grammar as `run`, different reply shape.
    Trace(Request),
    /// Explain a query: `run`'s grammar after a `plan`/`analyze` mode
    /// word, replied to with the optimizer pass trace and operator tree.
    /// The mode rides on [`Request::explain`] (never
    /// [`ExplainMode::None`] for a decoded command).
    Explain(Request),
    /// Report the slow-query log (worst-N by latency).
    SlowLog,
    /// List the catalog's databases with their versions, content
    /// fingerprints, and relation counts.
    Dbs,
    /// Liveness check.
    Ping,
    /// Protocol negotiation: the highest version the client speaks.
    /// v1 clients never send this, which is the whole compatibility
    /// story — a connection is serial-untagged until `hello proto=2`.
    Hello {
        /// Highest protocol version the client speaks (≥ 2; v1 has no
        /// `hello`).
        proto: u32,
    },
}

/// Acknowledgement of a catalog verb: the database acted on and its
/// version after the mutation (`None` for `drop`, which leaves no
/// version behind).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ack {
    /// Database the verb acted on.
    pub db: String,
    /// The database's version after the mutation.
    pub version: Option<DbVersion>,
}

fn perr<T>(msg: impl Into<String>) -> Result<T, ServiceError> {
    Err(ServiceError::Protocol(msg.into()))
}

/// Database and relation names: non-empty, alphanumeric plus `_` `-` `.`
/// — no whitespace or `=`, so names never collide with the line syntax.
fn check_name(kind: &str, name: &str) -> Result<(), ServiceError> {
    if name.is_empty() {
        return perr(format!("empty {kind} name"));
    }
    if let Some(c) = name
        .chars()
        .find(|c| !(c.is_ascii_alphanumeric() || matches!(c, '_' | '-' | '.')))
    {
        return perr(format!("bad character `{c}` in {kind} name `{name}`"));
    }
    Ok(())
}

fn encode_tuples(tuples: &[Box<[Value]>]) -> String {
    let mut out = String::new();
    for (i, row) in tuples.iter().enumerate() {
        if i > 0 {
            out.push(';');
        }
        for (j, v) in row.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&v.to_string());
        }
    }
    out
}

fn decode_tuples(text: &str) -> Result<Vec<Box<[Value]>>, ServiceError> {
    let mut tuples = Vec::new();
    for tup in text.split(';') {
        let row: Result<Vec<Value>, _> = tup.split(',').map(str::parse::<Value>).collect();
        match row {
            Ok(r) => tuples.push(r.into_boxed_slice()),
            Err(_) => return perr(format!("bad tuple `{tup}`")),
        }
    }
    Ok(tuples)
}

/// Encodes a request as one `run` line (no trailing newline).
pub fn encode_request(req: &Request) -> String {
    encode_request_line("run", req)
}

/// Encodes a request as one `trace` line — `run`'s grammar, the trace
/// reply shape.
pub fn encode_trace(req: &Request) -> String {
    encode_request_line("trace", req)
}

/// Encodes a request as one `explain` line: the mode word
/// (`plan`/`analyze`, from [`Request::explain`]) then `run`'s grammar.
/// A request still at [`ExplainMode::None`] encodes as `plan` — the
/// cheaper mode is the safer default for a caller that forgot to pick.
pub fn encode_explain(req: &Request) -> String {
    let mode = match req.explain {
        ExplainMode::Analyze => "analyze",
        _ => "plan",
    };
    encode_request_line(&format!("explain {mode}"), req)
}

fn encode_request_line(verb: &str, req: &Request) -> String {
    let mut line = String::from(verb);
    if let Some(db) = &req.db {
        line.push_str(&format!(" db={db}"));
    }
    line.push_str(&format!(" method={}", req.method.name()));
    if let Some(t) = req.max_tuples {
        line.push_str(&format!(" max_tuples={t}"));
    }
    if let Some(ms) = req.timeout_ms {
        line.push_str(&format!(" timeout_ms={ms}"));
    }
    if let Some(s) = req.seed {
        line.push_str(&format!(" seed={s}"));
    }
    line.push_str(" rule=");
    line.push_str(&req.query);
    line
}

/// Encodes any client command as one line (no trailing newline).
pub fn encode_command(cmd: &Command) -> String {
    match cmd {
        Command::Run(req) => encode_request(req),
        Command::Use(db) => format!("use {db}"),
        Command::Create(db) => format!("create {db}"),
        Command::Drop(db) => format!("drop {db}"),
        Command::Load { db, rel, tuples } => {
            format!("load {db} {rel} {}", encode_tuples(tuples))
        }
        Command::Add { db, rel, tuple } => {
            format!(
                "add {db} {rel} {}",
                encode_tuples(std::slice::from_ref(tuple))
            )
        }
        Command::Stats => "stats".to_string(),
        Command::Trace(req) => encode_trace(req),
        Command::Explain(req) => encode_explain(req),
        Command::SlowLog => "slowlog".to_string(),
        Command::Dbs => "dbs".to_string(),
        Command::Ping => "ping".to_string(),
        Command::Hello { proto } => format!("hello proto={proto}"),
    }
}

/// Decodes one client line.
pub fn decode_command(line: &str) -> Result<Command, ServiceError> {
    let line = line.trim_end_matches(['\r', '\n']);
    if line.len() > MAX_LINE {
        return perr("line too long");
    }
    let (verb, rest) = match line.split_once(' ') {
        Some((v, r)) => (v, r),
        None => (line, ""),
    };
    match verb {
        "ping" => Ok(Command::Ping),
        "stats" => Ok(Command::Stats),
        "slowlog" => Ok(Command::SlowLog),
        "dbs" => Ok(Command::Dbs),
        "hello" => {
            let Some(v) = rest.trim().strip_prefix("proto=") else {
                return perr("hello needs proto=");
            };
            let proto: u32 = parse_num("proto", v)?;
            if proto < 2 {
                return perr(format!("hello proto={proto} is below 2 (v1 has no hello)"));
            }
            Ok(Command::Hello { proto })
        }
        "use" | "create" | "drop" => {
            let name = rest.trim();
            check_name("database", name)?;
            Ok(match verb {
                "use" => Command::Use(name.to_string()),
                "create" => Command::Create(name.to_string()),
                _ => Command::Drop(name.to_string()),
            })
        }
        "load" | "add" => {
            let mut parts = rest.split_whitespace();
            let (Some(db), Some(rel), Some(data), None) =
                (parts.next(), parts.next(), parts.next(), parts.next())
            else {
                return perr(format!("{verb} needs: {verb} <db> <rel> <tuples>"));
            };
            check_name("database", db)?;
            check_name("relation", rel)?;
            let tuples = decode_tuples(data)?;
            if verb == "load" {
                Ok(Command::Load {
                    db: db.to_string(),
                    rel: rel.to_string(),
                    tuples,
                })
            } else {
                if tuples.len() != 1 {
                    return perr("add takes exactly one tuple");
                }
                Ok(Command::Add {
                    db: db.to_string(),
                    rel: rel.to_string(),
                    tuple: tuples.into_iter().next().unwrap(),
                })
            }
        }
        "run" | "trace" => {
            let req = parse_run_body(verb, rest)?;
            Ok(if verb == "run" {
                Command::Run(req)
            } else {
                Command::Trace(req)
            })
        }
        "explain" => {
            let (mode_word, body) = match rest.split_once(' ') {
                Some((m, b)) => (m, b),
                None => (rest, ""),
            };
            let mode = match mode_word {
                "plan" => ExplainMode::Plan,
                "analyze" => ExplainMode::Analyze,
                other => {
                    return perr(format!(
                        "explain needs a mode word (plan|analyze), got `{other}`"
                    ))
                }
            };
            let req = parse_run_body("explain", body)?;
            Ok(Command::Explain(req.explain(mode)))
        }
        other => perr(format!("unknown verb `{other}`")),
    }
}

/// Parses `run`'s key-value grammar (`[db=] method= [max_tuples=]
/// [timeout_ms=] [seed=] rule=<text>`) — shared by the `run`, `trace`,
/// and `explain` verbs.
fn parse_run_body(verb: &str, rest: &str) -> Result<Request, ServiceError> {
    let Some(rule_at) = rest.find("rule=") else {
        return perr(format!("{verb} line needs rule="));
    };
    let query = rest[rule_at + "rule=".len()..].trim().to_string();
    if query.is_empty() {
        return perr("empty rule");
    }
    let mut method = None;
    let mut db = None;
    let mut max_tuples = None;
    let mut timeout_ms = None;
    let mut seed = None;
    for tok in rest[..rule_at].split_whitespace() {
        let Some((k, v)) = tok.split_once('=') else {
            return perr(format!("bad token `{tok}`"));
        };
        match k {
            "method" => match Method::parse(v) {
                Some(m) => method = Some(m),
                None => return Err(ServiceError::UnknownMethod(v.to_string())),
            },
            "db" => {
                check_name("database", v)?;
                db = Some(v.to_string());
            }
            "max_tuples" => max_tuples = Some(parse_num(k, v)?),
            "timeout_ms" => timeout_ms = Some(parse_num(k, v)?),
            "seed" => seed = Some(parse_num(k, v)?),
            _ => return perr(format!("unknown key `{k}`")),
        }
    }
    let Some(method) = method else {
        return perr(format!("{verb} line needs method="));
    };
    let mut req = Request::new(query, method);
    req.db = db;
    req.max_tuples = max_tuples;
    req.timeout_ms = timeout_ms;
    req.seed = seed;
    Ok(req)
}

fn parse_num<T: std::str::FromStr>(key: &str, v: &str) -> Result<T, ServiceError> {
    v.parse()
        .map_err(|_| ServiceError::Protocol(format!("bad value for {key}: {v}")))
}

/// Splits the optional v2 pipeline tag off a request line. The tag is
/// always the **first** token after the verb (`run id=7 method=…`,
/// `use id=8 graphs`), so stripping it leaves a line the v1 decoder
/// understands unchanged — one decoder, two protocol versions.
///
/// Returns the id (if present) and the de-tagged line. A malformed id
/// value is a protocol error: the reply for such a line cannot be
/// tagged, so the server answers it untagged.
pub fn split_request_tag(line: &str) -> Result<(Option<u64>, String), ServiceError> {
    let line = line.trim_end_matches(['\r', '\n']);
    let Some((verb, rest)) = line.split_once(' ') else {
        return Ok((None, line.to_string()));
    };
    let (first, tail) = match rest.split_once(' ') {
        Some((f, t)) => (f, Some(t)),
        None => (rest, None),
    };
    let Some(v) = first.strip_prefix("id=") else {
        return Ok((None, line.to_string()));
    };
    let id: u64 = parse_num("id", v)?;
    let stripped = match tail {
        Some(t) => format!("{verb} {t}"),
        None => verb.to_string(),
    };
    Ok((Some(id), stripped))
}

/// Tags a request line with a pipeline id, splicing `id=N` in as the
/// first token after the verb (the inverse of [`split_request_tag`]).
pub fn tag_request(id: u64, line: &str) -> String {
    match line.split_once(' ') {
        Some((verb, rest)) => format!("{verb} id={id} {rest}"),
        None => format!("{line} id={id}"),
    }
}

/// Tags a reply line with the request's id: `ok …` → `ok id=N …`,
/// `err …` → `err id=N …`. The payload after the tag is byte-identical
/// to the untagged reply — pipelining changes ordering, never content.
pub fn tag_reply(id: u64, line: &str) -> String {
    for prefix in ["ok", "err"] {
        if let Some(rest) = line.strip_prefix(prefix) {
            if rest.is_empty() {
                return format!("{prefix} id={id}");
            }
            if let Some(rest) = rest.strip_prefix(' ') {
                return format!("{prefix} id={id} {rest}");
            }
        }
    }
    debug_assert!(false, "tag_reply on a non-reply line: `{line}`");
    line.to_string()
}

/// Splits the id tag off a reply line (the inverse of [`tag_reply`]):
/// returns the id, if tagged, and the payload line any v1 decoder
/// (`decode_result`, `decode_ack`, `decode_stats`) understands.
pub fn split_reply_tag(line: &str) -> Result<(Option<u64>, String), ServiceError> {
    let line = line.trim_end_matches(['\r', '\n']);
    for prefix in ["ok ", "err "] {
        let Some(rest) = line.strip_prefix(prefix) else {
            continue;
        };
        let (first, tail) = match rest.split_once(' ') {
            Some((f, t)) => (f, Some(t)),
            None => (rest, None),
        };
        let Some(v) = first.strip_prefix("id=") else {
            break;
        };
        let id: u64 = parse_num("id", v)?;
        let payload = match tail {
            Some(t) => format!("{}{t}", prefix),
            None => prefix.trim_end().to_string(),
        };
        return Ok((Some(id), payload));
    }
    Ok((None, line.to_string()))
}

/// The server's answer to `hello`: the negotiated protocol version and
/// the per-connection in-flight window (how many tagged requests may be
/// outstanding before the server stops reading — backpressure, not
/// rejection).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HelloAck {
    /// Negotiated protocol version (`min(client, PROTO_VERSION)`).
    pub proto: u32,
    /// Per-connection in-flight window size.
    pub window: usize,
}

/// Encodes the handshake acceptance line.
pub fn encode_hello_ok(ack: &HelloAck) -> String {
    format!("ok proto={} window={}", ack.proto, ack.window)
}

/// Decodes the server's `hello` reply.
pub fn decode_hello_ok(line: &str) -> Result<HelloAck, ServiceError> {
    let line = line.trim_end_matches(['\r', '\n']);
    if let Some(rest) = line.strip_prefix("err") {
        return Err(decode_error(rest.trim_start()));
    }
    let Some(rest) = line.strip_prefix("ok ") else {
        return perr(format!("expected hello ack, got `{line}`"));
    };
    let mut proto = None;
    let mut window = None;
    for tok in rest.split_whitespace() {
        let Some((k, v)) = tok.split_once('=') else {
            return perr(format!("bad token `{tok}`"));
        };
        match k {
            "proto" => proto = Some(parse_num(k, v)?),
            "window" => window = Some(parse_num(k, v)?),
            _ => return perr(format!("unknown key `{k}`")),
        }
    }
    match (proto, window) {
        (Some(proto), Some(window)) => Ok(HelloAck { proto, window }),
        _ => perr("hello ack needs proto= and window="),
    }
}

/// Encodes a catalog-verb outcome as one `ok`/`err` line.
pub fn encode_ack(result: &Result<Ack, ServiceError>) -> String {
    match result {
        Ok(Ack { db, version }) => match version {
            Some(v) => format!("ok db={db} version={v}"),
            None => format!("ok db={db}"),
        },
        Err(e) => encode_error(e),
    }
}

/// Decodes a server `ok`/`err` line for a catalog verb.
pub fn decode_ack(line: &str) -> Result<Ack, ServiceError> {
    let line = line.trim_end_matches(['\r', '\n']);
    if let Some(rest) = line.strip_prefix("err") {
        return Err(decode_error(rest.trim_start()));
    }
    let Some(rest) = line.strip_prefix("ok ") else {
        return perr(format!("expected ack line, got `{line}`"));
    };
    let mut db = None;
    let mut version = None;
    for tok in rest.split_whitespace() {
        let Some((k, v)) = tok.split_once('=') else {
            return perr(format!("bad token `{tok}`"));
        };
        match k {
            "db" => db = Some(v.to_string()),
            "version" => version = Some(DbVersion(parse_num(k, v)?)),
            _ => return perr(format!("unknown key `{k}`")),
        }
    }
    let Some(db) = db else {
        return perr("ack line needs db=");
    };
    Ok(Ack { db, version })
}

/// Encodes an evaluation outcome as one `ok`/`err` line.
pub fn encode_result(result: &Result<Response, ServiceError>) -> String {
    match result {
        Ok(r) => {
            let mut line = format!(
                "ok cache_hit={} result_hit={} plan_us={} elapsed_us={} cpu_us={} tuples={} \
                 scanned={} emitted={} ix_probes={} ix_builds={} \
                 materializations={} join_stages={} max_arity={} threads={} cols={} rows={} data=",
                r.cache_hit as u8,
                r.result_cache_hit as u8,
                r.plan_micros,
                r.stats.elapsed.as_micros(),
                r.stats.cpu_time.as_micros(),
                r.stats.tuples_flowed,
                r.stats.rows_scanned,
                r.stats.rows_emitted,
                r.stats.index_probes,
                r.stats.index_builds,
                r.stats.materializations,
                r.stats.join_stages,
                r.stats.max_intermediate_arity,
                r.stats.threads_used,
                r.columns.join(","),
                r.rows.len(),
            );
            line.push_str(&encode_tuples(&r.rows));
            line
        }
        Err(e) => encode_error(e),
    }
}

fn encode_error(e: &ServiceError) -> String {
    match e {
        ServiceError::Overloaded { inflight, capacity } => {
            format!("err kind=overloaded inflight={inflight} capacity={capacity}")
        }
        ServiceError::ShuttingDown => "err kind=shutting_down".to_string(),
        ServiceError::Parse(m) => format!("err kind=parse msg={m}"),
        ServiceError::MissingRelation(m) => format!("err kind=missing_relation msg={m}"),
        ServiceError::UnknownDatabase(m) => format!("err kind=unknown_db msg={m}"),
        ServiceError::Catalog(m) => format!("err kind=catalog msg={m}"),
        ServiceError::UnknownMethod(m) => format!("err kind=unknown_method msg={m}"),
        ServiceError::Exec(RelalgError::BudgetExceeded {
            kind,
            tuples_flowed,
        }) => {
            let which = match kind {
                BudgetKind::Tuples => "tuples",
                BudgetKind::Materialized => "materialized",
                BudgetKind::WallClock => "wallclock",
            };
            format!("err kind=budget which={which} tuples={tuples_flowed}")
        }
        // `InvalidPlan` round-trips losslessly; `MissingAttr` degrades to
        // `InvalidPlan` carrying its Display text (the client cannot act
        // on the distinction — both mean "the server built a bad plan").
        ServiceError::Exec(RelalgError::InvalidPlan(m)) => format!("err kind=exec msg={m}"),
        ServiceError::Exec(other) => format!("err kind=exec msg={other}"),
        ServiceError::Protocol(m) => format!("err kind=protocol msg={m}"),
        ServiceError::Io(m) => format!("err kind=io msg={m}"),
        ServiceError::Internal(m) => format!("err kind=internal msg={m}"),
    }
}

/// Decodes a server `ok`/`err` response line for a `run` request.
pub fn decode_result(line: &str) -> Result<Response, ServiceError> {
    let line = line.trim_end_matches(['\r', '\n']);
    if let Some(rest) = line.strip_prefix("err") {
        return Err(decode_error(rest.trim_start()));
    }
    let Some(rest) = line.strip_prefix("ok ") else {
        return perr(format!("expected ok/err line, got `{line}`"));
    };
    let Some(data_at) = rest.find("data=") else {
        return perr("ok line needs data=");
    };
    let data = &rest[data_at + "data=".len()..];
    let mut stats = ExecStats::default();
    let mut cache_hit = false;
    let mut result_cache_hit = false;
    let mut plan_micros = 0;
    let mut columns = Vec::new();
    let mut expected_rows = None;
    for tok in rest[..data_at].split_whitespace() {
        let Some((k, v)) = tok.split_once('=') else {
            return perr(format!("bad token `{tok}`"));
        };
        match k {
            "cache_hit" => cache_hit = v == "1",
            "result_hit" => result_cache_hit = v == "1",
            "plan_us" => plan_micros = parse_num(k, v)?,
            "elapsed_us" => stats.elapsed = Duration::from_micros(parse_num(k, v)?),
            "cpu_us" => stats.cpu_time = Duration::from_micros(parse_num(k, v)?),
            "tuples" => stats.tuples_flowed = parse_num(k, v)?,
            "scanned" => stats.rows_scanned = parse_num(k, v)?,
            "emitted" => stats.rows_emitted = parse_num(k, v)?,
            "ix_probes" => stats.index_probes = parse_num(k, v)?,
            "ix_builds" => stats.index_builds = parse_num(k, v)?,
            "materializations" => stats.materializations = parse_num(k, v)?,
            "join_stages" => stats.join_stages = parse_num(k, v)?,
            "max_arity" => stats.max_intermediate_arity = parse_num(k, v)?,
            "threads" => stats.threads_used = parse_num(k, v)?,
            "cols" => {
                columns = if v.is_empty() {
                    Vec::new()
                } else {
                    v.split(',').map(str::to_string).collect()
                }
            }
            "rows" => expected_rows = Some(parse_num::<usize>(k, v)?),
            _ => return perr(format!("unknown key `{k}`")),
        }
    }
    let rows: Vec<Box<[Value]>> = if data.is_empty() {
        Vec::new()
    } else {
        decode_tuples(data)?
    };
    if let Some(n) = expected_rows {
        if n != rows.len() {
            return perr(format!("row count {} does not match rows={n}", rows.len()));
        }
    }
    let mut resp = Response::empty();
    resp.columns = columns;
    resp.rows = rows;
    resp.stats = stats;
    resp.cache_hit = cache_hit;
    resp.result_cache_hit = result_cache_hit;
    resp.plan_micros = plan_micros;
    Ok(resp)
}

fn decode_error(rest: &str) -> ServiceError {
    let mut kind = "";
    let mut fields: Vec<(&str, &str)> = Vec::new();
    let msg = match rest.find("msg=") {
        Some(at) => {
            for tok in rest[..at].split_whitespace() {
                if let Some(kv) = tok.split_once('=') {
                    fields.push(kv);
                }
            }
            rest[at + "msg=".len()..].to_string()
        }
        None => {
            for tok in rest.split_whitespace() {
                if let Some(kv) = tok.split_once('=') {
                    fields.push(kv);
                }
            }
            String::new()
        }
    };
    for &(k, v) in &fields {
        if k == "kind" {
            kind = v;
        }
    }
    let num = |key: &str| -> u64 {
        fields
            .iter()
            .find(|(k, _)| *k == key)
            .and_then(|(_, v)| v.parse().ok())
            .unwrap_or(0)
    };
    match kind {
        "overloaded" => ServiceError::Overloaded {
            inflight: num("inflight") as usize,
            capacity: num("capacity") as usize,
        },
        "shutting_down" => ServiceError::ShuttingDown,
        "parse" => ServiceError::Parse(msg),
        "missing_relation" => ServiceError::MissingRelation(msg),
        "unknown_db" => ServiceError::UnknownDatabase(msg),
        "catalog" => ServiceError::Catalog(msg),
        "unknown_method" => ServiceError::UnknownMethod(msg),
        "budget" => {
            let which = fields
                .iter()
                .find(|(k, _)| *k == "which")
                .map(|&(_, v)| v)
                .unwrap_or("tuples");
            let kind = match which {
                "materialized" => BudgetKind::Materialized,
                "wallclock" => BudgetKind::WallClock,
                _ => BudgetKind::Tuples,
            };
            ServiceError::Exec(RelalgError::BudgetExceeded {
                kind,
                tuples_flowed: num("tuples"),
            })
        }
        "exec" => ServiceError::Exec(RelalgError::InvalidPlan(msg)),
        "io" => ServiceError::Io(msg),
        "internal" => ServiceError::Internal(msg),
        _ => ServiceError::Protocol(if msg.is_empty() {
            format!("unknown error kind `{kind}`")
        } else {
            msg
        }),
    }
}

/// Encodes the `stats` reply: the original counters plus, per phase,
/// the `{phase}_n` / `{phase}_p50` / `{phase}_p95` / `{phase}_p99` span
/// quantiles (and `total_*` for end-to-end latency), all in microseconds
/// from the engine's shared histograms.
pub fn encode_stats(s: &EngineStats) -> String {
    let mut line = format!(
        "ok served={} rejected={} inflight={} hits={} misses={} evictions={} collisions={} \
         cache_len={} r_hits={} r_misses={} r_evictions={} r_collisions={} r_oversized={} \
         r_len={} r_bytes={} r_cap={}",
        s.served,
        s.rejected,
        s.inflight,
        s.cache.hits,
        s.cache.misses,
        s.cache.evictions,
        s.cache.collisions,
        s.cache.len,
        s.results.hits,
        s.results.misses,
        s.results.evictions,
        s.results.collisions,
        s.results.oversized,
        s.results.len,
        s.results.bytes,
        s.results.capacity_bytes,
    );
    line.push_str(&format!(
        " ix_probes={} ix_builds={}",
        s.index_probes, s.index_builds
    ));
    line.push_str(&format!(
        " passes={} decomp_hits={} d_hits={} d_misses={} d_evictions={} d_collisions={} \
         d_len={} d_cap={}",
        s.passes_run,
        s.decomp_cache_hits,
        s.decomps.hits,
        s.decomps.misses,
        s.decomps.evictions,
        s.decomps.collisions,
        s.decomps.len,
        s.decomps.capacity,
    ));
    let mut push_quantiles = |name: &str, q: &Quantiles| {
        line.push_str(&format!(
            " {name}_n={} {name}_p50={} {name}_p95={} {name}_p99={}",
            q.count, q.p50, q.p95, q.p99,
        ));
    };
    for (i, p) in PHASES.iter().enumerate() {
        push_quantiles(p.name(), &s.spans.phase[i]);
    }
    push_quantiles("total", &s.spans.total);
    line
}

/// Decodes the `stats` reply.
pub fn decode_stats(line: &str) -> Result<EngineStats, ServiceError> {
    let line = line.trim_end_matches(['\r', '\n']);
    if let Some(rest) = line.strip_prefix("err") {
        return Err(decode_error(rest.trim_start()));
    }
    let Some(rest) = line.strip_prefix("ok ") else {
        return perr(format!("expected stats line, got `{line}`"));
    };
    let mut s = EngineStats::default();
    for tok in rest.split_whitespace() {
        let Some((k, v)) = tok.split_once('=') else {
            return perr(format!("bad token `{tok}`"));
        };
        match k {
            "served" => s.served = parse_num(k, v)?,
            "rejected" => s.rejected = parse_num(k, v)?,
            "inflight" => s.inflight = parse_num(k, v)?,
            "hits" => s.cache.hits = parse_num(k, v)?,
            "misses" => s.cache.misses = parse_num(k, v)?,
            "evictions" => s.cache.evictions = parse_num(k, v)?,
            "collisions" => s.cache.collisions = parse_num(k, v)?,
            "cache_len" => s.cache.len = parse_num(k, v)?,
            "r_hits" => s.results.hits = parse_num(k, v)?,
            "r_misses" => s.results.misses = parse_num(k, v)?,
            "r_evictions" => s.results.evictions = parse_num(k, v)?,
            "r_collisions" => s.results.collisions = parse_num(k, v)?,
            "r_oversized" => s.results.oversized = parse_num(k, v)?,
            "r_len" => s.results.len = parse_num(k, v)?,
            "r_bytes" => s.results.bytes = parse_num(k, v)?,
            "r_cap" => s.results.capacity_bytes = parse_num(k, v)?,
            "ix_probes" => s.index_probes = parse_num(k, v)?,
            "ix_builds" => s.index_builds = parse_num(k, v)?,
            "passes" => s.passes_run = parse_num(k, v)?,
            "decomp_hits" => s.decomp_cache_hits = parse_num(k, v)?,
            "d_hits" => s.decomps.hits = parse_num(k, v)?,
            "d_misses" => s.decomps.misses = parse_num(k, v)?,
            "d_evictions" => s.decomps.evictions = parse_num(k, v)?,
            "d_collisions" => s.decomps.collisions = parse_num(k, v)?,
            "d_len" => s.decomps.len = parse_num(k, v)?,
            "d_cap" => s.decomps.capacity = parse_num(k, v)?,
            // Span quantiles: `{phase}_{n|p50|p95|p99}` or `total_…`.
            other => {
                let quantile = other.rsplit_once('_').and_then(|(prefix, suffix)| {
                    let q = if prefix == "total" {
                        Some(&mut s.spans.total)
                    } else {
                        Phase::parse_name(prefix).map(|p| &mut s.spans.phase[p as usize])
                    }?;
                    match suffix {
                        "n" => Some(&mut q.count),
                        "p50" => Some(&mut q.p50),
                        "p95" => Some(&mut q.p95),
                        "p99" => Some(&mut q.p99),
                        _ => None,
                    }
                });
                match quantile {
                    Some(slot) => *slot = parse_num(k, v)?,
                    None => return perr(format!("unknown key `{k}`")),
                }
            }
        }
    }
    Ok(s)
}

/// The `trace` verb's reply: where one request's time went. The spans
/// are the worker's record; the digest fields give the execution scale
/// that explains them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceReport {
    /// Per-phase durations recorded by the worker (microseconds).
    pub spans: TraceSpans,
    /// Wall time the server observed around the engine call — an upper
    /// bound on the sum of the spans.
    pub total_us: u64,
    /// Result rows.
    pub rows: u64,
    /// Whether the request skipped re-planning.
    pub cache_hit: bool,
    /// Whether the rows came from the result cache.
    pub result_cache_hit: bool,
    /// Executor tuple flow (0 on a result-cache hit).
    pub tuples_flowed: u64,
    /// Largest materialized intermediate (rows).
    pub peak_materialized: u64,
    /// Join stages executed.
    pub join_stages: u64,
    /// Executor threads used.
    pub threads_used: u64,
    /// Physical input rows the executor read (0 on a result-cache hit;
    /// low on warm repeats thanks to cached secondary indexes).
    pub rows_scanned: u64,
    /// Rows pushed into pipeline sinks before `DISTINCT` dedup.
    pub rows_emitted: u64,
    /// Secondary-index lookups performed.
    pub index_probes: u64,
    /// Secondary indexes built (cache misses).
    pub index_builds: u64,
}

/// Builds the report for a completed response: spans ride on
/// [`Response::trace`], the digest comes from its stats.
impl TraceReport {
    /// Summarizes `resp`, observed to take `total_us` of wall time.
    pub fn of(resp: &Response, total_us: u64) -> TraceReport {
        let digest = resp.stats.digest();
        TraceReport {
            spans: resp.trace,
            total_us,
            rows: resp.rows.len() as u64,
            cache_hit: resp.cache_hit,
            result_cache_hit: resp.result_cache_hit,
            tuples_flowed: digest.tuples_flowed,
            peak_materialized: digest.peak_materialized,
            join_stages: digest.join_stages,
            threads_used: digest.threads_used,
            rows_scanned: digest.rows_scanned,
            rows_emitted: digest.rows_emitted,
            index_probes: digest.index_probes,
            index_builds: digest.index_builds,
        }
    }
}

/// Encodes a `trace` outcome as one `ok`/`err` line.
pub fn encode_trace_report(result: &Result<TraceReport, ServiceError>) -> String {
    match result {
        Ok(r) => {
            let mut line = String::from("ok");
            for p in PHASES {
                line.push_str(&format!(" {}_us={}", p.name(), r.spans.get(p)));
            }
            line.push_str(&format!(
                " total_us={} rows={} cache_hit={} result_hit={} tuples={} peak={} stages={} \
                 threads={} scanned={} emitted={} ix_probes={} ix_builds={}",
                r.total_us,
                r.rows,
                r.cache_hit as u8,
                r.result_cache_hit as u8,
                r.tuples_flowed,
                r.peak_materialized,
                r.join_stages,
                r.threads_used,
                r.rows_scanned,
                r.rows_emitted,
                r.index_probes,
                r.index_builds,
            ));
            line
        }
        Err(e) => encode_error(e),
    }
}

/// Decodes a `trace` reply line.
pub fn decode_trace_report(line: &str) -> Result<TraceReport, ServiceError> {
    let line = line.trim_end_matches(['\r', '\n']);
    if let Some(rest) = line.strip_prefix("err") {
        return Err(decode_error(rest.trim_start()));
    }
    let Some(rest) = line.strip_prefix("ok ") else {
        return perr(format!("expected trace line, got `{line}`"));
    };
    let mut r = TraceReport::default();
    for tok in rest.split_whitespace() {
        let Some((k, v)) = tok.split_once('=') else {
            return perr(format!("bad token `{tok}`"));
        };
        match k {
            "total_us" => r.total_us = parse_num(k, v)?,
            "rows" => r.rows = parse_num(k, v)?,
            "cache_hit" => r.cache_hit = v == "1",
            "result_hit" => r.result_cache_hit = v == "1",
            "tuples" => r.tuples_flowed = parse_num(k, v)?,
            "peak" => r.peak_materialized = parse_num(k, v)?,
            "stages" => r.join_stages = parse_num(k, v)?,
            "threads" => r.threads_used = parse_num(k, v)?,
            "scanned" => r.rows_scanned = parse_num(k, v)?,
            "emitted" => r.rows_emitted = parse_num(k, v)?,
            "ix_probes" => r.index_probes = parse_num(k, v)?,
            "ix_builds" => r.index_builds = parse_num(k, v)?,
            other => match other.strip_suffix("_us").and_then(Phase::parse_name) {
                Some(p) => r.spans.set(p, parse_num(k, v)?),
                None => return perr(format!("unknown key `{k}`")),
            },
        }
    }
    Ok(r)
}

/// The `explain` verb's reply: the optimizer pass trace and the
/// (planned or measured) physical operator tree for one query.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ExplainReport {
    /// `true` for `explain analyze` (the tree carries measured
    /// counters); `false` for `explain plan` (all counters zero).
    pub analyze: bool,
    /// Planning wall time (microseconds). Explain bypasses both caches,
    /// so this is always a fresh planner run.
    pub plan_us: u64,
    /// Wall time the server observed around the engine call.
    pub total_us: u64,
    /// Result rows (`0` for `explain plan`, which never executes).
    pub rows: u64,
    /// Whether a cached plan was reused (always `false` today: explain
    /// bypasses the plan cache; kept on the wire for forward
    /// compatibility).
    pub cache_hit: bool,
    /// Whether the rows came from the result cache (always `false`:
    /// explain bypasses it).
    pub result_cache_hit: bool,
    /// Per-pass wall time and plan-delta spans, in pipeline order.
    pub passes: Vec<PassSpan>,
    /// The operator tree in pre-order, depth-annotated — planned shape
    /// for `plan`, measured profile for `analyze`.
    pub ops: Vec<OpNode>,
}

impl ExplainReport {
    /// Summarizes an explained response observed to take `total_us` of
    /// wall time. A response without explain data (not produced by an
    /// explain request) yields empty pass and operator lists.
    pub fn of(resp: &Response, total_us: u64) -> ExplainReport {
        let data = resp.explain.as_deref().cloned().unwrap_or_default();
        ExplainReport {
            analyze: data.analyze,
            plan_us: resp.plan_micros,
            total_us,
            rows: resp.rows.len() as u64,
            cache_hit: resp.cache_hit,
            result_cache_hit: resp.result_cache_hit,
            passes: data.passes,
            ops: data.ops,
        }
    }
}

/// Encodes an `explain` outcome as one `ok`/`err` line. Pass records are
/// `name:us:before:after`, `/`-separated; operator records are
/// `depth:kind:target:rows_in:rows_out:probes:time_us`, `/`-separated,
/// pre-order, with `-` for an empty target. Both are separator-safe:
/// pass names are fixed kebab-case identifiers and targets pass
/// `check_name` (no `:`, `/`, whitespace, or `=`).
pub fn encode_explain_report(result: &Result<ExplainReport, ServiceError>) -> String {
    let r = match result {
        Ok(r) => r,
        Err(e) => return encode_error(e),
    };
    let mut line = format!(
        "ok mode={} plan_us={} total_us={} rows={} cache_hit={} result_hit={} passes=",
        if r.analyze { "analyze" } else { "plan" },
        r.plan_us,
        r.total_us,
        r.rows,
        r.cache_hit as u8,
        r.result_cache_hit as u8,
    );
    for (i, p) in r.passes.iter().enumerate() {
        if i > 0 {
            line.push('/');
        }
        line.push_str(&format!(
            "{}:{}:{}:{}",
            p.name, p.micros, p.nodes_before, p.nodes_after
        ));
    }
    line.push_str(" ops=");
    for (i, n) in r.ops.iter().enumerate() {
        if i > 0 {
            line.push('/');
        }
        line.push_str(&format!(
            "{}:{}:{}:{}:{}:{}:{}",
            n.depth,
            n.op.name(),
            if n.target.is_empty() { "-" } else { &n.target },
            n.rows_in,
            n.rows_out,
            n.probes,
            n.time_us,
        ));
    }
    line
}

/// Decodes an `explain` reply line.
pub fn decode_explain_report(line: &str) -> Result<ExplainReport, ServiceError> {
    let line = line.trim_end_matches(['\r', '\n']);
    if let Some(rest) = line.strip_prefix("err") {
        return Err(decode_error(rest.trim_start()));
    }
    let Some(rest) = line.strip_prefix("ok ") else {
        return perr(format!("expected explain line, got `{line}`"));
    };
    let mut r = ExplainReport::default();
    for tok in rest.split_whitespace() {
        let Some((k, v)) = tok.split_once('=') else {
            return perr(format!("bad token `{tok}`"));
        };
        match k {
            "mode" => match v {
                "plan" => r.analyze = false,
                "analyze" => r.analyze = true,
                other => return perr(format!("bad explain mode `{other}`")),
            },
            "plan_us" => r.plan_us = parse_num(k, v)?,
            "total_us" => r.total_us = parse_num(k, v)?,
            "rows" => r.rows = parse_num(k, v)?,
            "cache_hit" => r.cache_hit = v == "1",
            "result_hit" => r.result_cache_hit = v == "1",
            "passes" => {
                for record in v.split('/').filter(|s| !s.is_empty()) {
                    let parts: Vec<&str> = record.split(':').collect();
                    let [name, us, before, after] = parts[..] else {
                        return perr(format!("bad pass record `{record}`"));
                    };
                    r.passes.push(PassSpan {
                        name: name.to_string(),
                        micros: parse_num("pass micros", us)?,
                        nodes_before: parse_num("pass nodes_before", before)?,
                        nodes_after: parse_num("pass nodes_after", after)?,
                    });
                }
            }
            "ops" => {
                for record in v.split('/').filter(|s| !s.is_empty()) {
                    let parts: Vec<&str> = record.split(':').collect();
                    let [depth, kind, target, rows_in, rows_out, probes, time_us] = parts[..]
                    else {
                        return perr(format!("bad op record `{record}`"));
                    };
                    let Some(op) = OpKind::from_name(kind) else {
                        return perr(format!("unknown op kind `{kind}`"));
                    };
                    r.ops.push(OpNode {
                        depth: parse_num("op depth", depth)?,
                        op,
                        target: if target == "-" {
                            String::new()
                        } else {
                            target.to_string()
                        },
                        rows_in: parse_num("op rows_in", rows_in)?,
                        rows_out: parse_num("op rows_out", rows_out)?,
                        probes: parse_num("op probes", probes)?,
                        time_us: parse_num("op time_us", time_us)?,
                    });
                }
            }
            other => return perr(format!("unknown key `{other}`")),
        }
    }
    Ok(r)
}

/// Encodes the `slowlog` reply: `ok n=<count> entries=` then one
/// `,`-separated record per entry, `;`-separated, slowest first. The
/// `db`, `method`, and `outcome` columns are separator-safe by
/// construction (`check_name` bans `,`/`;` in database names; method
/// and outcome names are fixed identifiers).
pub fn encode_slowlog(result: &Result<Vec<SlowEntry>, ServiceError>) -> String {
    let entries = match result {
        Ok(entries) => entries,
        Err(e) => return encode_error(e),
    };
    let mut line = format!("ok n={} entries=", entries.len());
    for (i, e) in entries.iter().enumerate() {
        if i > 0 {
            line.push(';');
        }
        line.push_str(&format!(
            "{},{},{:032x},{},{},{}",
            e.db, e.version, e.fingerprint, e.method, e.outcome, e.total_us
        ));
        for p in PHASES {
            line.push_str(&format!(",{}", e.spans.get(p)));
        }
        line.push_str(&format!(
            ",{},{},{},{},{},{},{},{},{},{}",
            e.rows,
            e.tuples_flowed,
            e.rows_scanned,
            e.peak_materialized,
            e.join_stages,
            e.threads_used,
            e.passes_run,
            u8::from(e.decomp_hit),
            // The operator digest uses `:` and `/` separators only, so it
            // is safe inside the `,`/`;` record syntax; `-` marks "no
            // profile" so the column is never empty.
            if e.op_digest.is_empty() {
                "-"
            } else {
                &e.op_digest
            },
            e.seq
        ));
    }
    line
}

/// Decodes the `slowlog` reply.
pub fn decode_slowlog(line: &str) -> Result<Vec<SlowEntry>, ServiceError> {
    let line = line.trim_end_matches(['\r', '\n']);
    if let Some(rest) = line.strip_prefix("err") {
        return Err(decode_error(rest.trim_start()));
    }
    let Some(rest) = line.strip_prefix("ok ") else {
        return perr(format!("expected slowlog line, got `{line}`"));
    };
    let Some(data_at) = rest.find("entries=") else {
        return perr("slowlog line needs entries=");
    };
    let mut expected = None;
    for tok in rest[..data_at].split_whitespace() {
        let Some((k, v)) = tok.split_once('=') else {
            return perr(format!("bad token `{tok}`"));
        };
        match k {
            "n" => expected = Some(parse_num::<usize>(k, v)?),
            _ => return perr(format!("unknown key `{k}`")),
        }
    }
    let data = &rest[data_at + "entries=".len()..];
    let mut entries = Vec::new();
    if !data.is_empty() {
        for record in data.split(';') {
            let fields: Vec<&str> = record.split(',').collect();
            // 6 identity/outcome columns + one per phase + 10 trailing.
            if fields.len() != 16 + Phase::COUNT {
                return perr(format!("bad slowlog record `{record}`"));
            }
            let mut spans = TraceSpans::new();
            for (i, p) in PHASES.into_iter().enumerate() {
                spans.set(p, parse_num(p.name(), fields[6 + i])?);
            }
            let tail = 6 + Phase::COUNT;
            entries.push(SlowEntry {
                db: fields[0].to_string(),
                version: parse_num("version", fields[1])?,
                fingerprint: u128::from_str_radix(fields[2], 16).map_err(|_| {
                    ServiceError::Protocol(format!("bad fingerprint `{}`", fields[2]))
                })?,
                method: fields[3].to_string(),
                outcome: fields[4].to_string(),
                total_us: parse_num("total_us", fields[5])?,
                spans,
                rows: parse_num("rows", fields[tail])?,
                tuples_flowed: parse_num("tuples", fields[tail + 1])?,
                rows_scanned: parse_num("scanned", fields[tail + 2])?,
                peak_materialized: parse_num("peak", fields[tail + 3])?,
                join_stages: parse_num("stages", fields[tail + 4])?,
                threads_used: parse_num("threads", fields[tail + 5])?,
                passes_run: parse_num("passes", fields[tail + 6])?,
                decomp_hit: fields[tail + 7] == "1",
                op_digest: if fields[tail + 8] == "-" {
                    String::new()
                } else {
                    fields[tail + 8].to_string()
                },
                seq: parse_num("seq", fields[tail + 9])?,
            });
        }
    }
    if let Some(n) = expected {
        if n != entries.len() {
            return perr(format!(
                "entry count {} does not match n={n}",
                entries.len()
            ));
        }
    }
    Ok(entries)
}

/// Encodes the `dbs` reply: `ok n=<count> dbs=` then one
/// `name,version,fingerprint,relations` record per database,
/// `;`-separated, sorted by name. Separator-safe because `check_name`
/// bans `,`/`;` in database names; the fingerprint is 32 lowercase hex
/// digits.
pub fn encode_dbs(result: &Result<Vec<DbInfo>, ServiceError>) -> String {
    let infos = match result {
        Ok(infos) => infos,
        Err(e) => return encode_error(e),
    };
    let mut line = format!("ok n={} dbs=", infos.len());
    for (i, d) in infos.iter().enumerate() {
        if i > 0 {
            line.push(';');
        }
        line.push_str(&format!(
            "{},{},{},{}",
            d.name, d.version, d.fingerprint, d.relations
        ));
    }
    line
}

/// Decodes the `dbs` reply.
pub fn decode_dbs(line: &str) -> Result<Vec<DbInfo>, ServiceError> {
    let line = line.trim_end_matches(['\r', '\n']);
    if let Some(rest) = line.strip_prefix("err") {
        return Err(decode_error(rest.trim_start()));
    }
    let Some(rest) = line.strip_prefix("ok ") else {
        return perr(format!("expected dbs line, got `{line}`"));
    };
    let Some(data_at) = rest.find("dbs=") else {
        return perr("dbs line needs dbs=");
    };
    let mut expected = None;
    for tok in rest[..data_at].split_whitespace() {
        let Some((k, v)) = tok.split_once('=') else {
            return perr(format!("bad token `{tok}`"));
        };
        match k {
            "n" => expected = Some(parse_num::<usize>(k, v)?),
            _ => return perr(format!("unknown key `{k}`")),
        }
    }
    let data = &rest[data_at + "dbs=".len()..];
    let mut infos = Vec::new();
    if !data.is_empty() {
        for record in data.split(';') {
            let fields: Vec<&str> = record.split(',').collect();
            let [name, version, fingerprint, relations] = fields[..] else {
                return perr(format!("bad dbs record `{record}`"));
            };
            check_name("database", name)?;
            infos.push(DbInfo {
                name: name.to_string(),
                version: DbVersion(parse_num("version", version)?),
                fingerprint: DbFingerprint(u128::from_str_radix(fingerprint, 16).map_err(
                    |_| ServiceError::Protocol(format!("bad fingerprint `{fingerprint}`")),
                )?),
                relations: parse_num("relations", relations)?,
            });
        }
    }
    if let Some(n) = expected {
        if n != infos.len() {
            return perr(format!("db count {} does not match n={n}", infos.len()));
        }
    }
    Ok(infos)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheStats;

    fn sample_request() -> Request {
        Request::query("q(x) :- edge(x, y), edge(y, x)")
            .method(Method::BucketElimination(
                ppr_core::methods::OrderHeuristic::Mcs,
            ))
            .on("graphs")
            .max_tuples(1000)
            .seed(7)
    }

    #[test]
    fn request_round_trips() {
        let mut req = sample_request();
        req.timeout_ms = Some(250);
        let line = encode_request(&req);
        assert!(line.contains("db=graphs"));
        assert_eq!(decode_command(&line).unwrap(), Command::Run(req));
    }

    #[test]
    fn minimal_request_round_trips() {
        let req = Request::new("q() :- edge(x, y)", Method::Straightforward);
        let line = encode_request(&req);
        assert!(!line.contains("max_tuples"));
        assert!(!line.contains("db="));
        assert_eq!(decode_command(&line).unwrap(), Command::Run(req));
    }

    #[test]
    fn rule_text_may_contain_spaces_and_equals_free_tokens() {
        let cmd = decode_command("run method=sf rule=q(x) :- edge(x, y), edge(y, z)").unwrap();
        match cmd {
            Command::Run(r) => assert_eq!(r.query, "q(x) :- edge(x, y), edge(y, z)"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn catalog_verbs_round_trip() {
        let cases = vec![
            Command::Use("graphs".into()),
            Command::Create("g-2.test".into()),
            Command::Drop("graphs".into()),
            Command::Load {
                db: "graphs".into(),
                rel: "edge".into(),
                tuples: vec![vec![1, 2].into_boxed_slice(), vec![2, 3].into_boxed_slice()],
            },
            Command::Add {
                db: "graphs".into(),
                rel: "edge".into(),
                tuple: vec![7, 9].into_boxed_slice(),
            },
        ];
        for cmd in cases {
            let line = encode_command(&cmd);
            assert_eq!(decode_command(&line).unwrap(), cmd, "line was `{line}`");
        }
    }

    #[test]
    fn bad_catalog_lines_are_rejected() {
        for line in [
            "use",                      // missing name
            "use two words",            // extra token
            "create bad name",          // space in name
            "drop semi;colon",          // bad character
            "use caf=e",                // `=` would collide with keys
            "load graphs edge",         // missing tuples
            "load graphs edge 1,2 3,4", // tuples must not contain spaces
            "load graphs edge 1,x",     // non-numeric value
            "add graphs edge 1,2;3,4",  // add takes exactly one tuple
            "add graphs bad/rel 1",     // bad relation name
        ] {
            assert!(
                matches!(decode_command(line), Err(ServiceError::Protocol(_))),
                "`{line}` should be rejected"
            );
        }
    }

    #[test]
    fn run_with_db_key_targets_that_database() {
        let cmd = decode_command("run db=g1 method=sf rule=q() :- e(x,y)").unwrap();
        match cmd {
            Command::Run(r) => assert_eq!(r.db.as_deref(), Some("g1")),
            other => panic!("{other:?}"),
        }
        assert!(matches!(
            decode_command("run db=bad/name method=sf rule=q() :- e(x,y)"),
            Err(ServiceError::Protocol(_))
        ));
    }

    #[test]
    fn bad_lines_are_rejected() {
        assert!(matches!(
            decode_command("run rule=q() :- e(x,y)"),
            Err(ServiceError::Protocol(_))
        ));
        assert!(matches!(
            decode_command("run method=warp rule=q() :- e(x,y)"),
            Err(ServiceError::UnknownMethod(_))
        ));
        assert!(matches!(
            decode_command("run method=sf"),
            Err(ServiceError::Protocol(_))
        ));
        assert!(matches!(
            decode_command("frobnicate"),
            Err(ServiceError::Protocol(_))
        ));
        assert!(matches!(
            decode_command("run method=sf max_tuples=lots rule=q() :- e(x,y)"),
            Err(ServiceError::Protocol(_))
        ));
    }

    #[test]
    fn ping_and_stats_decode() {
        assert_eq!(decode_command("ping\n").unwrap(), Command::Ping);
        assert_eq!(decode_command("stats").unwrap(), Command::Stats);
    }

    #[test]
    fn acks_round_trip() {
        let with_version = Ack {
            db: "graphs".into(),
            version: Some(DbVersion(12)),
        };
        let line = encode_ack(&Ok(with_version.clone()));
        assert_eq!(line, "ok db=graphs version=12");
        assert_eq!(decode_ack(&line).unwrap(), with_version);

        let dropped = Ack {
            db: "graphs".into(),
            version: None,
        };
        let line = encode_ack(&Ok(dropped.clone()));
        assert_eq!(line, "ok db=graphs");
        assert_eq!(decode_ack(&line).unwrap(), dropped);

        let err = ServiceError::UnknownDatabase("nope".into());
        assert_eq!(decode_ack(&encode_ack(&Err(err.clone()))).unwrap_err(), err);
    }

    fn sample_response() -> Response {
        let mut resp = Response::empty();
        resp.columns = vec!["x".into(), "y".into()];
        resp.rows = vec![vec![1, 2].into_boxed_slice(), vec![3, 1].into_boxed_slice()];
        resp.stats = ExecStats {
            tuples_flowed: 42,
            materializations: 2,
            join_stages: 3,
            max_intermediate_arity: 4,
            threads_used: 2,
            elapsed: Duration::from_micros(120),
            cpu_time: Duration::from_micros(200),
            rows_scanned: 90,
            rows_emitted: 11,
            index_probes: 5,
            index_builds: 1,
            ..ExecStats::default()
        };
        resp.cache_hit = true;
        resp.result_cache_hit = true;
        resp.plan_micros = 0;
        resp
    }

    #[test]
    fn response_round_trips() {
        let resp = sample_response();
        let line = encode_result(&Ok(resp.clone()));
        assert!(line.contains("result_hit=1"));
        let back = decode_result(&line).unwrap();
        assert_eq!(back, resp);
    }

    #[test]
    fn empty_result_round_trips() {
        let mut resp = Response::empty();
        resp.columns = vec!["x".into()];
        resp.plan_micros = 3;
        let line = encode_result(&Ok(resp.clone()));
        assert!(line.ends_with("data="));
        assert_eq!(decode_result(&line).unwrap(), resp);
    }

    #[test]
    fn row_count_mismatch_is_caught() {
        let line = "ok cache_hit=0 result_hit=0 plan_us=0 elapsed_us=0 cpu_us=0 tuples=0 \
                    materializations=0 join_stages=0 max_arity=0 threads=1 cols=x rows=2 data=1";
        assert!(matches!(
            decode_result(line),
            Err(ServiceError::Protocol(_))
        ));
    }

    #[test]
    fn stats_round_trip() {
        let mut s = EngineStats {
            served: 10,
            rejected: 2,
            inflight: 1,
            cache: CacheStats {
                hits: 7,
                misses: 3,
                evictions: 1,
                collisions: 1,
                len: 2,
                capacity: 0, // not on the wire
            },
            ..Default::default()
        };
        s.results.hits = 20;
        s.results.misses = 4;
        s.results.evictions = 2;
        s.results.collisions = 1;
        s.results.oversized = 1;
        s.results.len = 3;
        s.results.bytes = 4096;
        s.results.capacity_bytes = 8 << 20;
        s.index_probes = 31;
        s.index_builds = 4;
        s.passes_run = 12;
        s.decomp_cache_hits = 3;
        s.decomps.hits = 3;
        s.decomps.misses = 2;
        s.decomps.evictions = 1;
        s.decomps.collisions = 1;
        s.decomps.len = 1;
        s.decomps.capacity = 256;
        s.spans.phase[Phase::QueueWait as usize] = Quantiles {
            count: 10,
            p50: 3,
            p95: 15,
            p99: 31,
        };
        s.spans.phase[Phase::Exec as usize] = Quantiles {
            count: 10,
            p50: 127,
            p95: 511,
            p99: 1023,
        };
        s.spans.total = Quantiles {
            count: 10,
            p50: 255,
            p95: 511,
            p99: 2047,
        };
        let line = encode_stats(&s);
        assert!(line.contains("queue_wait_p95=15"), "{line}");
        assert!(line.contains("exec_p50=127"), "{line}");
        assert!(line.contains("total_p99=2047"), "{line}");
        assert_eq!(decode_stats(&line).unwrap(), s);
        // Unknown keys are still rejected — the quantile fallback only
        // accepts `{phase}_{n|p50|p95|p99}`.
        for bad in ["ok zap_p50=1", "ok exec_p42=1", "ok total_q=1"] {
            assert!(decode_stats(bad).is_err(), "`{bad}` should be rejected");
        }
    }

    #[test]
    fn trace_command_round_trips_and_reuses_run_grammar() {
        let mut req = sample_request();
        req.timeout_ms = Some(250);
        let cmd = Command::Trace(req.clone());
        let line = encode_command(&cmd);
        assert!(line.starts_with("trace "), "{line}");
        assert_eq!(decode_command(&line).unwrap(), cmd);
        // `trace` rejects the same malformed lines as `run`.
        assert!(matches!(
            decode_command("trace rule=q() :- e(x,y)"),
            Err(ServiceError::Protocol(_))
        ));
        assert!(matches!(
            decode_command("trace method=warp rule=q() :- e(x,y)"),
            Err(ServiceError::UnknownMethod(_))
        ));
        // Tagging works on `trace` lines like any other verb.
        let tagged = tag_request(5, &line);
        let (id, rest) = split_request_tag(&tagged).unwrap();
        assert_eq!(id, Some(5));
        assert_eq!(rest, line);
    }

    #[test]
    fn trace_report_round_trips() {
        let mut r = TraceReport {
            total_us: 1234,
            rows: 6,
            cache_hit: true,
            result_cache_hit: false,
            tuples_flowed: 42,
            peak_materialized: 9,
            join_stages: 3,
            threads_used: 2,
            rows_scanned: 77,
            rows_emitted: 8,
            index_probes: 4,
            index_builds: 2,
            ..TraceReport::default()
        };
        r.spans.set(Phase::QueueWait, 10);
        r.spans.set(Phase::Parse, 20);
        r.spans.set(Phase::Fingerprint, 5);
        r.spans.set(Phase::CacheLookup, 1);
        r.spans.set(Phase::Plan, 300);
        r.spans.set(Phase::Exec, 800);
        let line = encode_trace_report(&Ok(r));
        assert!(line.contains("queue_wait_us=10"), "{line}");
        assert!(line.contains("exec_us=800"), "{line}");
        assert_eq!(decode_trace_report(&line).unwrap(), r);
        // Errors pass through the shared err matrix.
        let err = ServiceError::UnknownDatabase("nope".into());
        assert_eq!(
            decode_trace_report(&encode_trace_report(&Err(err.clone()))).unwrap_err(),
            err
        );
    }

    #[test]
    fn explain_command_round_trips_and_reuses_run_grammar() {
        let mut req = sample_request();
        req.timeout_ms = Some(250);
        for mode in [ExplainMode::Plan, ExplainMode::Analyze] {
            let cmd = Command::Explain(req.clone().explain(mode));
            let line = encode_command(&cmd);
            let word = if mode == ExplainMode::Analyze {
                "analyze"
            } else {
                "plan"
            };
            assert!(line.starts_with(&format!("explain {word} ")), "{line}");
            assert_eq!(decode_command(&line).unwrap(), cmd);
            // Tagging splices after the verb, leaving the mode word in
            // place for the de-tagged decoder.
            let tagged = tag_request(5, &line);
            let (id, rest) = split_request_tag(&tagged).unwrap();
            assert_eq!(id, Some(5));
            assert_eq!(rest, line);
        }
        // The mode word is mandatory and checked before the run grammar.
        assert!(matches!(
            decode_command("explain method=sf rule=q() :- e(x,y)"),
            Err(ServiceError::Protocol(_))
        ));
        assert!(matches!(
            decode_command("explain plan rule=q() :- e(x,y)"),
            Err(ServiceError::Protocol(_))
        ));
        assert!(matches!(
            decode_command("explain analyze method=warp rule=q() :- e(x,y)"),
            Err(ServiceError::UnknownMethod(_))
        ));
    }

    #[test]
    fn explain_report_round_trips() {
        let r = ExplainReport {
            analyze: true,
            plan_us: 321,
            total_us: 1234,
            rows: 6,
            cache_hit: false,
            result_cache_hit: false,
            passes: vec![
                PassSpan {
                    name: "listing-order".into(),
                    micros: 12,
                    nodes_before: 0,
                    nodes_after: 0,
                },
                PassSpan {
                    name: "build-join-chain".into(),
                    micros: 30,
                    nodes_before: 0,
                    nodes_after: 5,
                },
            ],
            ops: vec![
                OpNode {
                    depth: 0,
                    op: OpKind::Distinct,
                    target: String::new(),
                    rows_in: 8,
                    rows_out: 6,
                    probes: 0,
                    time_us: 40,
                },
                OpNode {
                    depth: 1,
                    op: OpKind::IxJoin,
                    target: "edge".into(),
                    rows_in: 9,
                    rows_out: 8,
                    probes: 9,
                    time_us: 120,
                },
                OpNode {
                    depth: 2,
                    op: OpKind::TableScan,
                    target: "edge".into(),
                    rows_in: 0,
                    rows_out: 9,
                    probes: 0,
                    time_us: 15,
                },
            ],
        };
        let line = encode_explain_report(&Ok(r.clone()));
        assert!(line.starts_with("ok mode=analyze "), "{line}");
        assert!(line.contains("passes=listing-order:12:0:0/"), "{line}");
        assert!(line.contains("ops=0:distinct:-:8:6:0:40/"), "{line}");
        assert_eq!(decode_explain_report(&line).unwrap(), r);
        // A plan report with no passes or ops (cached shapes, empty
        // pipelines) still round-trips.
        let empty = ExplainReport {
            plan_us: 10,
            ..ExplainReport::default()
        };
        let line = encode_explain_report(&Ok(empty.clone()));
        assert!(line.contains("mode=plan"), "{line}");
        assert_eq!(decode_explain_report(&line).unwrap(), empty);
        // Errors pass through the shared err matrix; garbage is caught.
        let err = ServiceError::UnknownDatabase("nope".into());
        assert_eq!(
            decode_explain_report(&encode_explain_report(&Err(err.clone()))).unwrap_err(),
            err
        );
        assert!(decode_explain_report("ok mode=warp passes= ops=").is_err());
        assert!(decode_explain_report("ok mode=plan passes=a:b ops=").is_err());
        assert!(decode_explain_report("ok mode=plan passes= ops=0:warp:-:0:0:0:0").is_err());
    }

    #[test]
    fn slowlog_round_trips() {
        assert_eq!(decode_command("slowlog").unwrap(), Command::SlowLog);
        let mut spans = TraceSpans::new();
        spans.set(Phase::Exec, 900);
        let entries = vec![
            SlowEntry {
                db: "graphs".into(),
                version: 3,
                fingerprint: u128::MAX - 1,
                method: "be-mcs".into(),
                outcome: "ok".into(),
                total_us: 1000,
                spans,
                rows: 12,
                tuples_flowed: 420,
                peak_materialized: 64,
                join_stages: 4,
                threads_used: 2,
                rows_scanned: 96,
                passes_run: 4,
                decomp_hit: true,
                op_digest: "distinct:-:12:30/ix_join:edge:40:120".into(),
                seq: 7,
            },
            SlowEntry {
                db: "g-2.test".into(),
                version: 0,
                fingerprint: 0,
                method: "sf".into(),
                outcome: "budget".into(),
                total_us: 900,
                spans: TraceSpans::new(),
                rows: 0,
                tuples_flowed: 0,
                peak_materialized: 0,
                join_stages: 0,
                threads_used: 0,
                rows_scanned: 0,
                passes_run: 0,
                decomp_hit: false,
                op_digest: String::new(),
                seq: 2,
            },
        ];
        let line = encode_slowlog(&Ok(entries.clone()));
        assert!(line.starts_with("ok n=2 entries="), "{line}");
        assert_eq!(decode_slowlog(&line).unwrap(), entries);
        // Empty log round-trips too.
        assert_eq!(
            decode_slowlog(&encode_slowlog(&Ok(Vec::new()))).unwrap(),
            vec![]
        );
        // Count mismatches and malformed records are caught.
        assert!(decode_slowlog("ok n=2 entries=").is_err());
        assert!(decode_slowlog("ok n=1 entries=a,b").is_err());
        let err = ServiceError::ShuttingDown;
        assert_eq!(
            decode_slowlog(&encode_slowlog(&Err(err.clone()))).unwrap_err(),
            err
        );
    }

    #[test]
    fn dbs_round_trips() {
        assert_eq!(decode_command("dbs").unwrap(), Command::Dbs);
        assert_eq!(encode_command(&Command::Dbs), "dbs");
        let infos = vec![
            DbInfo {
                name: "default".into(),
                version: DbVersion(3),
                fingerprint: DbFingerprint(u128::MAX - 1),
                relations: 2,
            },
            DbInfo {
                name: "g-2.test".into(),
                version: DbVersion(0),
                fingerprint: DbFingerprint(0),
                relations: 0,
            },
        ];
        let line = encode_dbs(&Ok(infos.clone()));
        assert!(line.starts_with("ok n=2 dbs="), "{line}");
        assert_eq!(decode_dbs(&line).unwrap(), infos);
        // The fingerprint travels as full-width lowercase hex.
        assert!(line.contains(&format!("{:032x}", u128::MAX - 1)), "{line}");
        // An empty catalog round-trips too.
        assert_eq!(decode_dbs(&encode_dbs(&Ok(Vec::new()))).unwrap(), vec![]);
        // Count mismatches and malformed records are caught.
        assert!(decode_dbs("ok n=2 dbs=").is_err());
        assert!(decode_dbs("ok n=1 dbs=a,b").is_err());
        assert!(decode_dbs("ok n=1 dbs=a,1,zz,0").is_err(), "bad hex");
        let err = ServiceError::ShuttingDown;
        assert_eq!(decode_dbs(&encode_dbs(&Err(err.clone()))).unwrap_err(), err);
    }

    /// Every `ServiceError` variant survives the wire losslessly. The
    /// match in `variant_name` has no wildcard arm, so adding a variant
    /// to `ServiceError` without extending this matrix fails to compile;
    /// the coverage assertion at the bottom catches a variant that was
    /// added to the match but not to the sample list.
    #[test]
    fn error_matrix_round_trips() {
        fn variant_name(e: &ServiceError) -> &'static str {
            match e {
                ServiceError::Overloaded { .. } => "Overloaded",
                ServiceError::ShuttingDown => "ShuttingDown",
                ServiceError::Parse(_) => "Parse",
                ServiceError::MissingRelation(_) => "MissingRelation",
                ServiceError::UnknownDatabase(_) => "UnknownDatabase",
                ServiceError::Catalog(_) => "Catalog",
                ServiceError::UnknownMethod(_) => "UnknownMethod",
                ServiceError::Exec(_) => "Exec",
                ServiceError::Protocol(_) => "Protocol",
                ServiceError::Io(_) => "Io",
                ServiceError::Internal(_) => "Internal",
            }
        }
        const ALL: [&str; 11] = [
            "Overloaded",
            "ShuttingDown",
            "Parse",
            "MissingRelation",
            "UnknownDatabase",
            "Catalog",
            "UnknownMethod",
            "Exec",
            "Protocol",
            "Io",
            "Internal",
        ];
        // Messages exercise the awkward cases: spaces, `=`, backticks —
        // everything after `msg=` is the message, verbatim.
        let matrix = vec![
            ServiceError::Overloaded {
                inflight: 64,
                capacity: 64,
            },
            ServiceError::ShuttingDown,
            ServiceError::Parse("expected `:-` after head".into()),
            ServiceError::MissingRelation("edge (arity 2)".into()),
            ServiceError::UnknownDatabase("graphs".into()),
            ServiceError::Catalog("tuple arity 3 = bad for edge/2".into()),
            ServiceError::UnknownMethod("quantum".into()),
            ServiceError::Exec(RelalgError::BudgetExceeded {
                kind: BudgetKind::Tuples,
                tuples_flowed: 12_345,
            }),
            ServiceError::Exec(RelalgError::BudgetExceeded {
                kind: BudgetKind::Materialized,
                tuples_flowed: 7,
            }),
            ServiceError::Exec(RelalgError::BudgetExceeded {
                kind: BudgetKind::WallClock,
                tuples_flowed: u64::MAX,
            }),
            ServiceError::Exec(RelalgError::InvalidPlan("scan of unknown relation".into())),
            ServiceError::Protocol("bad token `x=`".into()),
            ServiceError::Io("connection reset by peer".into()),
            ServiceError::Internal("worker panicked: index out of bounds".into()),
        ];
        let mut covered = std::collections::BTreeSet::new();
        for e in matrix {
            covered.insert(variant_name(&e));
            let line = encode_result(&Err(e.clone()));
            assert!(line.starts_with("err "), "`{line}`");
            // The wire kind and `ServiceError::kind()` (the slow-query
            // log's outcome column) are the same vocabulary.
            assert!(
                line.starts_with(&format!("err kind={}", e.kind())),
                "`{line}` vs kind `{}`",
                e.kind()
            );
            let back = decode_result(&line).expect_err("err line must decode to an error");
            assert_eq!(back, e, "wire line was `{line}`");
        }
        for name in ALL {
            assert!(covered.contains(name), "no sample for variant {name}");
        }
    }

    #[test]
    fn hello_round_trips_and_v1_never_spoke_it() {
        let cmd = Command::Hello { proto: 2 };
        let line = encode_command(&cmd);
        assert_eq!(line, "hello proto=2");
        assert_eq!(decode_command(&line).unwrap(), cmd);
        // A client may ask for a future version; the server caps it.
        assert_eq!(
            decode_command("hello proto=9").unwrap(),
            Command::Hello { proto: 9 }
        );
        for bad in ["hello", "hello proto=1", "hello proto=x", "hello 2"] {
            assert!(
                matches!(decode_command(bad), Err(ServiceError::Protocol(_))),
                "`{bad}` should be rejected"
            );
        }
        let ack = HelloAck {
            proto: 2,
            window: 128,
        };
        let line = encode_hello_ok(&ack);
        assert_eq!(line, "ok proto=2 window=128");
        assert_eq!(decode_hello_ok(&line).unwrap(), ack);
        assert!(decode_hello_ok("ok proto=2").is_err());
        assert!(matches!(
            decode_hello_ok("err kind=protocol msg=nope"),
            Err(ServiceError::Protocol(_))
        ));
    }

    #[test]
    fn request_tags_split_off_cleanly() {
        // Tagged lines: the id comes off, the rest is a v1 line.
        let (id, rest) = split_request_tag("run id=7 method=sf rule=q() :- e(x,y)\n").unwrap();
        assert_eq!(id, Some(7));
        assert_eq!(rest, "run method=sf rule=q() :- e(x,y)");
        let (id, rest) = split_request_tag("use id=8 graphs").unwrap();
        assert_eq!(id, Some(8));
        assert_eq!(rest, "use graphs");
        let (id, rest) = split_request_tag("ping id=9").unwrap();
        assert_eq!(id, Some(9));
        assert_eq!(rest, "ping");
        // Untagged lines pass through byte-identical.
        for line in [
            "run method=sf rule=q() :- e(x,y)",
            "use graphs",
            "ping",
            "stats",
        ] {
            assert_eq!(split_request_tag(line).unwrap(), (None, line.to_string()));
        }
        // `id=` anywhere but the first slot is not a tag (rule text may
        // legitimately contain it after `rule=`).
        let (id, rest) = split_request_tag("run method=sf rule=q() :- id(x)").unwrap();
        assert_eq!(id, None);
        assert_eq!(rest, "run method=sf rule=q() :- id(x)");
        // Malformed ids are protocol errors, not silently untagged.
        assert!(matches!(
            split_request_tag("run id=abc method=sf rule=q() :- e(x,y)"),
            Err(ServiceError::Protocol(_))
        ));
    }

    #[test]
    fn reply_tags_are_spliced_after_the_status_word() {
        let cases = [
            ("ok pong", "ok id=3 pong"),
            ("ok db=graphs version=2", "ok id=3 db=graphs version=2"),
            ("err kind=shutting_down", "err id=3 kind=shutting_down"),
        ];
        for (plain, tagged) in cases {
            assert_eq!(tag_reply(3, plain), tagged);
            assert_eq!(
                split_reply_tag(tagged).unwrap(),
                (Some(3), plain.to_string())
            );
        }
        // Untagged replies split to themselves.
        assert_eq!(
            split_reply_tag("ok pong").unwrap(),
            (None, "ok pong".to_string())
        );
        assert!(matches!(
            split_reply_tag("ok id=zzz pong"),
            Err(ServiceError::Protocol(_))
        ));
    }

    mod tag_props {
        use super::*;
        use proptest::prelude::*;

        /// A small corpus of representative request lines, indexed so
        /// proptest can pick one (the vendored shim has no string
        /// strategies).
        fn request_line(which: u32) -> String {
            match which % 5 {
                0 => encode_request(&sample_request()),
                1 => "use graphs".to_string(),
                2 => "load g1 edge 1,2;2,3".to_string(),
                3 => "stats".to_string(),
                _ => "ping".to_string(),
            }
        }

        fn reply_line(which: u32) -> String {
            match which % 4 {
                0 => encode_result(&Ok(sample_response())),
                1 => encode_ack(&Ok(Ack {
                    db: "graphs".into(),
                    version: Some(DbVersion(3)),
                })),
                2 => encode_result(&Err(ServiceError::UnknownDatabase("nope".into()))),
                _ => "ok pong".to_string(),
            }
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// Any id survives tag → split on any request line, and the
            /// de-tagged remainder decodes exactly like the original.
            #[test]
            fn tagged_requests_round_trip(id in 0u64..u64::MAX, which in 0u32..5) {
                let plain = request_line(which);
                let tagged = tag_request(id, &plain);
                let (got, rest) = split_request_tag(&tagged).unwrap();
                prop_assert_eq!(got, Some(id));
                prop_assert_eq!(&rest, &plain);
                prop_assert_eq!(
                    decode_command(&rest).unwrap(),
                    decode_command(&plain).unwrap()
                );
            }

            /// Any id survives tag → split on any reply line, restoring
            /// the payload byte-for-byte.
            #[test]
            fn tagged_replies_round_trip(id in 0u64..u64::MAX, which in 0u32..4) {
                let plain = reply_line(which);
                let tagged = tag_reply(id, &plain);
                let (got, payload) = split_reply_tag(&tagged).unwrap();
                prop_assert_eq!(got, Some(id));
                prop_assert_eq!(payload, plain);
            }

            /// Out-of-order interleaving demuxes losslessly: tag a batch
            /// of distinct replies with distinct ids, deliver them
            /// rotated, and each id still maps back to its own payload.
            #[test]
            fn interleaved_replies_demux_by_id(
                ids in prop::collection::vec(0u64..u64::MAX, 2..10),
                rot in 0usize..10,
            ) {
                let mut ids = ids;
                ids.sort_unstable();
                ids.dedup();
                let expected: Vec<(u64, String)> = ids
                    .iter()
                    .enumerate()
                    .map(|(i, &id)| (id, reply_line(i as u32)))
                    .collect();
                let mut wire: Vec<String> =
                    expected.iter().map(|(id, p)| tag_reply(*id, p)).collect();
                let k = rot % wire.len();
                wire.rotate_left(k);
                let mut got: Vec<(u64, String)> = wire
                    .iter()
                    .map(|line| {
                        let (id, payload) = split_reply_tag(line).unwrap();
                        (id.expect("every line was tagged"), payload)
                    })
                    .collect();
                got.sort_by_key(|(id, _)| *id);
                prop_assert_eq!(got, expected);
            }
        }
    }

    mod verb_props {
        use super::*;
        use proptest::prelude::*;

        /// The vendored proptest shim has no string strategies, so names
        /// are minted from integers (and stay inside the protocol's
        /// `[A-Za-z0-9_.-]` alphabet by construction).
        fn name(salt: u32, i: u32) -> String {
            match salt % 3 {
                0 => format!("db{i}"),
                1 => format!("g-{i}.v2"),
                _ => format!("rel_{i}"),
            }
        }

        fn tuples(raw: Vec<Vec<u32>>) -> Vec<Box<[u32]>> {
            raw.into_iter().map(Vec::into_boxed_slice).collect()
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            #[test]
            fn use_create_drop_round_trip(salt in 0u32..3, i in 0u32..1_000_000, which in 0u32..3) {
                let n = name(salt, i);
                let cmd = match which {
                    0 => Command::Use(n),
                    1 => Command::Create(n),
                    _ => Command::Drop(n),
                };
                let line = encode_command(&cmd);
                prop_assert_eq!(decode_command(&line).unwrap(), cmd);
            }

            #[test]
            fn load_round_trips(
                salt in 0u32..3,
                i in 0u32..1_000_000,
                raw in prop::collection::vec(prop::collection::vec(0u32..u32::MAX, 1..5), 1..8),
            ) {
                let cmd = Command::Load {
                    db: name(salt, i),
                    rel: name(salt.wrapping_add(1), i),
                    tuples: tuples(raw),
                };
                let line = encode_command(&cmd);
                prop_assert_eq!(decode_command(&line).unwrap(), cmd);
            }

            #[test]
            fn add_round_trips(
                salt in 0u32..3,
                i in 0u32..1_000_000,
                raw in prop::collection::vec(0u32..u32::MAX, 1..5),
            ) {
                let cmd = Command::Add {
                    db: name(salt, i),
                    rel: name(salt.wrapping_add(2), i),
                    tuple: raw.into_boxed_slice(),
                };
                let line = encode_command(&cmd);
                prop_assert_eq!(decode_command(&line).unwrap(), cmd);
            }

            #[test]
            fn acks_round_trip_for_any_version(i in 0u32..1_000_000, v in 0u64..u64::MAX, versioned in prop::bool::ANY) {
                let ack = Ack {
                    db: name(i % 3, i),
                    version: if versioned { Some(DbVersion(v)) } else { None },
                };
                let line = encode_ack(&Ok(ack.clone()));
                prop_assert_eq!(decode_ack(&line).unwrap(), ack);
            }
        }
    }
}

#[cfg(test)]
mod framer_tests {
    use super::*;

    #[test]
    fn framer_reassembles_split_lines_and_bounds_the_tail() {
        let mut f = LineFramer::new();
        f.push(b"pi");
        assert!(f.next_line().unwrap().is_none());
        f.push(b"ng\nstats\nsl");
        assert_eq!(f.next_line().unwrap().as_deref(), Some("ping"));
        assert_eq!(f.next_line().unwrap().as_deref(), Some("stats"));
        assert!(f.next_line().unwrap().is_none());
        assert_eq!(f.buffered(), 2);
        f.push(b"owlog\n");
        assert_eq!(f.next_line().unwrap().as_deref(), Some("slowlog"));
        assert_eq!(f.buffered(), 0);

        // An unterminated line past MAX_LINE is a protocol error, but a
        // terminated line of any buffered size under it still frames.
        let mut f = LineFramer::new();
        f.push(&vec![b'x'; MAX_LINE + 1]);
        assert!(matches!(f.next_line(), Err(ServiceError::Protocol(_))));
    }

    #[test]
    fn framer_handles_empty_lines_and_crlf_is_not_special() {
        let mut f = LineFramer::new();
        f.push(b"\n\nping\n");
        assert_eq!(f.next_line().unwrap().as_deref(), Some(""));
        assert_eq!(f.next_line().unwrap().as_deref(), Some(""));
        assert_eq!(f.next_line().unwrap().as_deref(), Some("ping"));
        assert!(f.next_line().unwrap().is_none());
    }
}
