//! The event-driven connection layer: a single-threaded epoll loop
//! carrying every connection, sized for C10K on one core.
//!
//! The thread-per-connection backend in [`crate::server`] spends two OS
//! threads per peer; past a few hundred clients the scheduler, stacks,
//! and context switches dominate the serving path. This module replaces
//! the I/O layer only — admission control, batching, the window
//! protocol, and every reply byte stay identical:
//!
//! * `sys` (private) — hand-rolled `epoll`/`eventfd` bindings (Linux
//!   only; the builder falls back to the threaded backend elsewhere).
//! * `timer` (private) — a hashed timer wheel driving the
//!   idle-connection (slow-loris) timeout.
//! * `event_loop` (private) — the loop itself: nonblocking accept,
//!   per-connection read/write buffers with incremental newline framing
//!   ([`crate::protocol::LineFramer`]), dispatch into the engine's worker
//!   pool, and a completion queue drained through an eventfd doorbell.
//! * [`load`] — an epoll-based load driver (the `ppr client
//!   --connections` mode and the bench's `--connections` axis) that holds
//!   thousands of pipelined connections from one thread.
//!
//! **Backpressure semantics are inherited, not reinvented.** A full
//! in-flight window deregisters read interest — the unread socket is the
//! backpressure, exactly like the threaded reader that stops reading —
//! and never synthesizes `Overloaded`. On the write side, a slow
//! consumer's replies queue in a bounded per-connection output buffer;
//! overflow closes the connection with the typed
//! [`CloseReason::OutbufOverflow`].

#[cfg(target_os = "linux")]
pub(crate) mod event_loop;
#[cfg(target_os = "linux")]
pub mod load;
#[cfg(target_os = "linux")]
pub(crate) mod sys;
pub(crate) mod timer;

/// The two fd-exhaustion errnos, shared by both backends' accept loops.
/// The values are identical on every Unix the threaded backend runs on.
pub(crate) mod sys_errno {
    /// "Process out of file descriptors."
    pub const EMFILE: i32 = 24;
    /// "System out of file descriptors."
    pub const ENFILE: i32 = 23;
}

use std::sync::{Arc, Mutex};

use ppr_obs::{Counter, Gauge, Registry};

/// The soft `RLIMIT_NOFILE` cap — how many fds this process may hold.
/// Load drivers and the C10K test scale their connection counts to it.
/// `None` where the limit cannot be read (non-Linux builds).
pub fn nofile_limit() -> Option<u64> {
    #[cfg(target_os = "linux")]
    {
        sys::nofile_limit()
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

/// Why the server closed a connection — the typed vocabulary behind the
/// connection-close counters and log lines. Every close increments
/// exactly one [`NetMetrics`] counter keyed by this reason.
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CloseReason {
    /// The peer closed (or half-closed) the connection.
    PeerClosed,
    /// A protocol violation that cannot be answered in-band (an
    /// over-long line, for example).
    Protocol(String),
    /// The idle timeout fired: no bytes and no in-flight work for the
    /// configured window (the slow-loris guard).
    IdleTimeout,
    /// The bounded per-connection output buffer overflowed: the peer
    /// stopped reading while completions kept arriving.
    OutbufOverflow {
        /// Bytes queued when the limit tripped.
        buffered: usize,
        /// The configured limit.
        limit: usize,
    },
    /// A transport error on read or write.
    Io(String),
    /// Server shutdown.
    Shutdown,
}

impl std::fmt::Display for CloseReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CloseReason::PeerClosed => write!(f, "peer closed"),
            CloseReason::Protocol(m) => write!(f, "protocol violation: {m}"),
            CloseReason::IdleTimeout => write!(f, "idle timeout"),
            CloseReason::OutbufOverflow { buffered, limit } => {
                write!(
                    f,
                    "output buffer overflow ({buffered} bytes, limit {limit})"
                )
            }
            CloseReason::Io(m) => write!(f, "transport error: {m}"),
            CloseReason::Shutdown => write!(f, "server shutdown"),
        }
    }
}

/// Connection-layer counters, shared by both backends and rendered after
/// the engine's exposition on the `/metrics` endpoint.
pub struct NetMetrics {
    registry: Arc<Registry>,
    /// `ppr_connections_open` — currently open connections.
    pub connections_open: Arc<Gauge>,
    /// `ppr_connections_accepted_total` — connections ever accepted.
    pub connections_accepted: Arc<Counter>,
    /// `ppr_accept_errors_total` — failed `accept` calls (all causes).
    pub accept_errors: Arc<Counter>,
    /// `ppr_accept_backoffs_total` — accepts paused for fd pressure
    /// (`EMFILE`/`ENFILE`).
    pub accept_backoffs: Arc<Counter>,
    /// `ppr_idle_timeout_closes_total` — connections closed by the
    /// slow-loris guard.
    pub idle_closes: Arc<Counter>,
    /// `ppr_outbuf_overflow_closes_total` — connections closed for
    /// overflowing the bounded output buffer.
    pub outbuf_closes: Arc<Counter>,
    /// The most recent accept error, for the `/slowlog` operator note.
    last_accept_error: Mutex<Option<String>>,
}

impl NetMetrics {
    /// A fresh registry with every connection-layer series registered.
    pub fn new() -> Arc<NetMetrics> {
        let registry = Arc::new(Registry::new());
        Arc::new(NetMetrics {
            connections_open: registry.gauge(
                "ppr_connections_open",
                "Open client connections on the query port.",
            ),
            connections_accepted: registry.counter(
                "ppr_connections_accepted_total",
                "Client connections accepted since start.",
            ),
            accept_errors: registry.counter(
                "ppr_accept_errors_total",
                "Failed accept(2) calls, any cause.",
            ),
            accept_backoffs: registry.counter(
                "ppr_accept_backoffs_total",
                "Accept pauses due to fd exhaustion (EMFILE/ENFILE).",
            ),
            idle_closes: registry.counter(
                "ppr_idle_timeout_closes_total",
                "Connections closed by the idle (slow-loris) timeout.",
            ),
            outbuf_closes: registry.counter(
                "ppr_outbuf_overflow_closes_total",
                "Connections closed for overflowing the bounded output buffer.",
            ),
            last_accept_error: Mutex::new(None),
            registry,
        })
    }

    /// Prometheus text exposition of the connection-layer series.
    pub fn render_prometheus(&self) -> String {
        self.registry.render_prometheus()
    }

    /// Records a failed accept: counter, structured log line, and the
    /// operator note `/slowlog` serves — never a silent sleep-retry.
    pub fn note_accept_error(&self, error: &std::io::Error, fd_pressure: bool) {
        self.accept_errors.inc();
        if fd_pressure {
            self.accept_backoffs.inc();
        }
        let note = format!(
            "accept error{}: {error}",
            if fd_pressure {
                " (fd pressure, backing off)"
            } else {
                ""
            }
        );
        ppr_obs::ppr_warn!("{note}");
        *self.last_accept_error.lock().expect("accept-error note") = Some(note);
    }

    /// The operator note appended to the `/slowlog` page: accept-error
    /// totals plus the most recent failure, or `None` if accepts have
    /// never failed.
    pub fn accept_note(&self) -> Option<String> {
        let errors = self.accept_errors.get();
        if errors == 0 {
            return None;
        }
        let last = self
            .last_accept_error
            .lock()
            .expect("accept-error note")
            .clone()
            .unwrap_or_default();
        Some(format!(
            "note: {errors} accept error(s), {} fd-pressure backoff(s); last: {last}",
            self.accept_backoffs.get(),
        ))
    }

    /// Bumps the close counter matching `reason`.
    pub(crate) fn record_close(&self, reason: &CloseReason) {
        match reason {
            CloseReason::IdleTimeout => self.idle_closes.inc(),
            CloseReason::OutbufOverflow { .. } => self.outbuf_closes.inc(),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accept_note_tracks_errors_and_renders() {
        let m = NetMetrics::new();
        assert!(m.accept_note().is_none(), "no errors, no note");
        m.note_accept_error(
            &std::io::Error::from_raw_os_error(24), // EMFILE
            true,
        );
        let note = m.accept_note().expect("note after an error");
        assert!(note.contains("1 accept error(s)"), "{note}");
        assert!(note.contains("1 fd-pressure backoff(s)"), "{note}");
        let text = m.render_prometheus();
        assert!(text.contains("ppr_accept_errors_total 1"), "{text}");
        assert!(text.contains("ppr_accept_backoffs_total 1"), "{text}");
        assert!(text.contains("ppr_connections_open 0"), "{text}");
    }

    #[test]
    fn close_reasons_map_to_their_counters() {
        let m = NetMetrics::new();
        m.record_close(&CloseReason::IdleTimeout);
        m.record_close(&CloseReason::OutbufOverflow {
            buffered: 9,
            limit: 4,
        });
        m.record_close(&CloseReason::PeerClosed);
        assert_eq!(m.idle_closes.get(), 1);
        assert_eq!(m.outbuf_closes.get(), 1);
        let shown = CloseReason::OutbufOverflow {
            buffered: 9,
            limit: 4,
        }
        .to_string();
        assert!(shown.contains("9 bytes"), "{shown}");
    }
}
