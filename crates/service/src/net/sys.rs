//! Hand-rolled Linux `epoll`/`eventfd` bindings.
//!
//! The event-loop backend needs exactly five syscalls beyond what
//! `std::net` exposes — `epoll_create1`, `epoll_ctl`, `epoll_wait`,
//! `eventfd`, and `getrlimit` — so they are declared here directly
//! against the C library `std` already links, keeping the tree free of
//! crates.io dependencies. Everything is wrapped in the two RAII types
//! [`Epoll`] and [`EventFd`]; raw fds never escape unowned.

use std::io;
use std::os::fd::RawFd;

/// Readable (incl. accepted connections pending on a listener).
pub const EPOLLIN: u32 = 0x001;
/// Writable without blocking.
pub const EPOLLOUT: u32 = 0x004;
/// Error condition (always reported; no need to register).
pub const EPOLLERR: u32 = 0x008;
/// Hangup (always reported; no need to register).
pub const EPOLLHUP: u32 = 0x010;
/// Peer shut down the write half of the connection.
pub const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;

const EPOLL_CLOEXEC: i32 = 0o2000000;
const EFD_CLOEXEC: i32 = 0o2000000;
const EFD_NONBLOCK: i32 = 0o4000;

/// The kernel's readiness record. x86-64 is the one Linux ABI where
/// `struct epoll_event` is packed; everywhere else it has natural
/// alignment — mirror glibc's `__EPOLL_PACKED` exactly or `epoll_wait`
/// scribbles events at the wrong offsets.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    /// Ready-state bitmask (`EPOLLIN` | …).
    pub events: u32,
    /// The caller's token, echoed back verbatim.
    pub token: u64,
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    fn eventfd(initval: u32, flags: i32) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    fn close(fd: i32) -> i32;
    fn getrlimit(resource: i32, rlim: *mut RLimit) -> i32;
}

#[repr(C)]
struct RLimit {
    cur: u64,
    max: u64,
}

/// The soft `RLIMIT_NOFILE` cap — how many fds this process may hold.
/// Load drivers and the C10K test scale their connection counts to it.
pub fn nofile_limit() -> Option<u64> {
    const RLIMIT_NOFILE: i32 = 7;
    let mut lim = RLimit { cur: 0, max: 0 };
    let rc = unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) };
    (rc == 0).then_some(lim.cur)
}

/// An owned epoll instance.
pub struct Epoll {
    fd: RawFd,
}

impl Epoll {
    /// Creates the epoll fd (close-on-exec).
    pub fn new() -> io::Result<Epoll> {
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Epoll { fd })
    }

    fn ctl(&self, op: i32, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent { events, token };
        let rc = unsafe { epoll_ctl(self.fd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Registers `fd` with the given interest and token.
    pub fn add(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, events, token)
    }

    /// Changes an existing registration's interest set.
    pub fn modify(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, events, token)
    }

    /// Removes `fd` from the interest list.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        // The event argument is ignored for DEL but must be non-null on
        // pre-2.6.9 kernels; passing a real struct costs nothing.
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Blocks up to `timeout_ms` (-1 = forever) for readiness; fills
    /// `events` and returns how many are valid. A signal interruption
    /// reports as zero events rather than an error — callers just loop.
    pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        let n = unsafe {
            epoll_wait(
                self.fd,
                events.as_mut_ptr(),
                events.len().min(i32::MAX as usize) as i32,
                timeout_ms,
            )
        };
        if n < 0 {
            let e = io::Error::last_os_error();
            return if e.kind() == io::ErrorKind::Interrupted {
                Ok(0)
            } else {
                Err(e)
            };
        }
        Ok(n as usize)
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        unsafe { close(self.fd) };
    }
}

/// A nonblocking eventfd: the cross-thread doorbell that lets engine
/// workers wake the event loop out of `epoll_wait` when a completion
/// lands on the queue.
pub struct EventFd {
    fd: RawFd,
}

impl EventFd {
    /// Creates the eventfd (nonblocking, close-on-exec).
    pub fn new() -> io::Result<EventFd> {
        let fd = unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(EventFd { fd })
    }

    /// The fd to register with [`Epoll`].
    pub fn raw(&self) -> RawFd {
        self.fd
    }

    /// Rings the doorbell. A full counter (EAGAIN) already means the
    /// loop has a pending wakeup, so the error is safely ignored.
    pub fn signal(&self) {
        let one: u64 = 1;
        unsafe { write(self.fd, one.to_ne_bytes().as_ptr(), 8) };
    }

    /// Clears the counter so level-triggered epoll stops reporting it.
    pub fn drain(&self) {
        let mut buf = [0u8; 8];
        unsafe { read(self.fd, buf.as_mut_ptr(), 8) };
    }
}

impl Drop for EventFd {
    fn drop(&mut self) {
        unsafe { close(self.fd) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::os::fd::AsRawFd;

    #[test]
    fn epoll_reports_readable_sockets_and_eventfd_wakeups() {
        let epoll = Epoll::new().unwrap();
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        epoll.add(listener.as_raw_fd(), EPOLLIN, 7).unwrap();

        let efd = EventFd::new().unwrap();
        epoll.add(efd.raw(), EPOLLIN, 9).unwrap();

        // Nothing ready yet: a zero-timeout wait returns no events.
        let mut events = [EpollEvent {
            events: 0,
            token: 0,
        }; 8];
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);

        // A connecting peer makes the listener readable under its token.
        let mut peer = std::net::TcpStream::connect(addr).unwrap();
        let n = epoll.wait(&mut events, 1000).unwrap();
        assert!(n >= 1);
        assert!((0..n).any(|i| events[i].token == 7));

        // Accept, then watch the connection go readable on peer bytes.
        let (conn, _) = listener.accept().unwrap();
        conn.set_nonblocking(true).unwrap();
        epoll
            .add(conn.as_raw_fd(), EPOLLIN | EPOLLRDHUP, 11)
            .unwrap();
        peer.write_all(b"ping\n").unwrap();
        let n = epoll.wait(&mut events, 1000).unwrap();
        assert!((0..n).any(|i| events[i].token == 11));

        // The eventfd doorbell: signal → readable; drain → silent again.
        efd.signal();
        let n = epoll.wait(&mut events, 1000).unwrap();
        assert!((0..n).any(|i| events[i].token == 9));
        efd.drain();
        epoll.delete(listener.as_raw_fd()).unwrap();
        epoll.delete(conn.as_raw_fd()).unwrap();
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0, "drained + deleted");
    }

    #[test]
    fn nofile_limit_is_reported() {
        let lim = nofile_limit().expect("getrlimit works on linux");
        assert!(lim >= 64, "implausibly low fd limit {lim}");
    }
}
