//! The single-threaded epoll event loop: every connection, one thread.
//!
//! One `epoll` instance watches the listener, an eventfd doorbell, and
//! every connection socket. Request lines are framed incrementally by
//! [`LineFramer`], dispatched into the engine's worker pool, and
//! completed through a mutex-guarded completion queue the loop drains
//! when the doorbell rings. The loop itself never blocks on a socket and
//! never executes a query — OS thread count stays O(engine workers), not
//! O(connections).
//!
//! **Ordering and backpressure are the threaded backend's, verbatim:**
//!
//! * v1 (and untagged v2) lines are strictly serial: a `run`/`trace`
//!   submits to the engine and *holds* the connection — no further line
//!   is processed (or read) until its completion writes the reply, which
//!   is exactly the blocking reader thread's behavior.
//! * v2 tagged `run`s batch while consecutive against one database and
//!   submit together, pinning one catalog snapshot per batch; tagged
//!   catalog verbs flush the batch first, preserving serial equivalence
//!   around `use`/`load`/`add`.
//! * A full in-flight window **deregisters read interest** — the unread
//!   socket stalls the peer's writes in TCP. The loop never answers
//!   window pressure with `Overloaded`; rejection remains the engine's
//!   admission decision.
//! * Completions append to a bounded per-connection output buffer,
//!   flushed opportunistically and on `EPOLLOUT`; overflow (a peer that
//!   stopped reading) closes the connection with
//!   [`CloseReason::OutbufOverflow`].
//!
//! The idle (slow-loris) timeout rides the [`TimerWheel`]: expiry is
//! lazy, so per-request activity only stamps `last_activity`, and a
//! fired timer either closes a genuinely idle connection or re-files
//! itself for the remainder.

use std::collections::HashSet;
use std::io::{ErrorKind, Read, Write};
use std::mem;
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::engine::{EngineHandle, ReplyFn, Request};
use crate::protocol::{self, ExplainReport, LineFramer, TraceReport};
use crate::server::{self, Dispatch, WINDOW};
use crate::ServiceError;

use super::sys::{Epoll, EpollEvent, EventFd, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP};
use super::sys_errno::{EMFILE, ENFILE};
use super::timer::TimerWheel;
use super::{CloseReason, NetMetrics};

/// How a serially-submitted request's reply line is encoded: the row
/// result (`run`), a [`TraceReport`] (`trace`), or an [`ExplainReport`]
/// (`explain`) — the latter two clocked end-to-end by the server.
#[derive(Clone, Copy)]
enum ReplyShape {
    Rows,
    Trace,
    Explain,
}

/// Token for the listening socket.
const LISTENER: u64 = u64::MAX;
/// Token for the completion-queue doorbell.
const DOORBELL: u64 = u64::MAX - 1;

/// How long accepts stay paused after an fd-pressure failure.
const ACCEPT_BACKOFF: Duration = Duration::from_millis(100);

/// Ceiling on bytes read from one connection per readiness event, so a
/// firehose peer cannot starve its neighbors inside one loop iteration
/// (level-triggered epoll re-reports whatever is left).
const READ_QUANTUM: usize = 256 * 1024;

/// Graceful-drain budget at shutdown: in-flight completions get this
/// long to finish and flush before remaining connections are dropped.
const DRAIN_DEADLINE: Duration = Duration::from_secs(10);

/// Tuning handed down from [`crate::server::ServerConfig`].
pub(crate) struct LoopConfig {
    pub engine: EngineHandle,
    pub metrics: Arc<NetMetrics>,
    pub max_connections: usize,
    pub idle_timeout: Option<Duration>,
    pub outbuf_limit: usize,
}

/// One finished engine job headed back to its connection.
struct Completion {
    /// Slot/generation token of the owning connection at submit time.
    token: u64,
    /// The fully encoded reply line (tagged if the request was).
    line: String,
    /// v2 window id to free.
    release: Option<u64>,
    /// Completes a v1/untagged serial hold.
    serial: bool,
}

/// The worker→loop handoff: a locked vector plus the eventfd doorbell.
/// Workers push and ring; the loop drains on readiness. `wake` alone is
/// the shutdown signal.
pub(crate) struct CompletionQueue {
    ready: Mutex<Vec<Completion>>,
    doorbell: EventFd,
}

impl CompletionQueue {
    fn push(&self, completion: Completion) {
        self.ready
            .lock()
            .expect("completion queue")
            .push(completion);
        self.doorbell.signal();
    }

    fn drain(&self) -> Vec<Completion> {
        self.doorbell.drain();
        mem::take(&mut *self.ready.lock().expect("completion queue"))
    }

    /// Rings the doorbell without a completion (shutdown wakeup).
    pub(crate) fn wake(&self) {
        self.doorbell.signal();
    }
}

/// A running event loop; dropping or [`shutdown`]ing it stops the loop
/// and drains in-flight replies.
///
/// [`shutdown`]: EventLoopHandle::shutdown
pub(crate) struct EventLoopHandle {
    stop: Arc<AtomicBool>,
    queue: Arc<CompletionQueue>,
    thread: Option<JoinHandle<()>>,
}

impl EventLoopHandle {
    /// Stops accepting, drains in-flight work, and joins the loop
    /// thread. Idempotent.
    pub(crate) fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        self.queue.wake();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for EventLoopHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Binds the loop over an already-bound listener and starts it on its
/// own thread. Fails fast (before the thread spawns) if the epoll or
/// eventfd plumbing cannot be created.
pub(crate) fn spawn(listener: TcpListener, cfg: LoopConfig) -> std::io::Result<EventLoopHandle> {
    listener.set_nonblocking(true)?;
    let epoll = Epoll::new()?;
    let queue = Arc::new(CompletionQueue {
        ready: Mutex::new(Vec::new()),
        doorbell: EventFd::new()?,
    });
    epoll.add(listener.as_raw_fd(), EPOLLIN, LISTENER)?;
    epoll.add(queue.doorbell.raw(), EPOLLIN, DOORBELL)?;
    let stop = Arc::new(AtomicBool::new(false));
    let mut looper = Loop {
        epoll,
        listener,
        queue: queue.clone(),
        stop: stop.clone(),
        engine: cfg.engine,
        metrics: cfg.metrics,
        max_connections: cfg.max_connections.max(1),
        idle_timeout: cfg.idle_timeout,
        outbuf_limit: cfg.outbuf_limit.max(4096),
        conns: Vec::new(),
        gens: Vec::new(),
        free: Vec::new(),
        open: 0,
        wheel: cfg.idle_timeout.map(|t| TimerWheel::new(t, Instant::now())),
        accept_registered: true,
        accept_resume_at: None,
    };
    let thread = std::thread::Builder::new()
        .name("ppr-event-loop".into())
        .spawn(move || looper.run())?;
    Ok(EventLoopHandle {
        stop,
        queue,
        thread: Some(thread),
    })
}

/// Per-connection state. The read side is a [`LineFramer`]; the write
/// side a single buffer with a flush cursor; the protocol state mirrors
/// the threaded backend's `Conn` field for field.
struct Conn {
    stream: TcpStream,
    token: u64,
    framer: LineFramer,
    out: Vec<u8>,
    out_pos: usize,
    /// Interest set currently registered with epoll.
    interest: u32,
    proto: u32,
    session_db: Option<String>,
    /// v2 tagged ids in flight (doubles as the duplicate-id detector).
    inflight: HashSet<u64>,
    /// Effective window: [`WINDOW`] capped by the engine's safe window.
    window: usize,
    /// A v1/untagged `run`/`trace` is in flight: strictly serial, so no
    /// further line is processed until its completion lands.
    serial_hold: bool,
    last_activity: Instant,
    /// Peer shut down its write half; finish in-flight replies, then close.
    peer_closed: bool,
    /// Server is shutting down; stop reading, drain, then close.
    draining: bool,
}

impl Conn {
    fn busy(&self) -> bool {
        self.serial_hold || !self.inflight.is_empty()
    }

    fn out_pending(&self) -> usize {
        self.out.len() - self.out_pos
    }

    fn desired_interest(&self) -> u32 {
        let mut want = 0;
        let reading = !self.peer_closed
            && !self.draining
            && !self.serial_hold
            && self.inflight.len() < self.window;
        if reading {
            want |= EPOLLIN | EPOLLRDHUP;
        }
        if self.out_pending() > 0 {
            want |= EPOLLOUT;
        }
        want
    }
}

struct Loop {
    epoll: Epoll,
    listener: TcpListener,
    queue: Arc<CompletionQueue>,
    stop: Arc<AtomicBool>,
    engine: EngineHandle,
    metrics: Arc<NetMetrics>,
    max_connections: usize,
    idle_timeout: Option<Duration>,
    outbuf_limit: usize,
    /// Connection slab: slot-indexed, with per-slot generations so a
    /// completion for a closed connection's token falls on the floor
    /// instead of a stranger's socket.
    conns: Vec<Option<Conn>>,
    gens: Vec<u32>,
    free: Vec<usize>,
    open: usize,
    wheel: Option<TimerWheel>,
    accept_registered: bool,
    /// Set while accepts are backing off from fd pressure.
    accept_resume_at: Option<Instant>,
}

fn token_of(slot: usize, gen: u32) -> u64 {
    ((gen as u64) << 32) | slot as u64
}

fn split_token(token: u64) -> (usize, u32) {
    ((token & 0xffff_ffff) as usize, (token >> 32) as u32)
}

impl Loop {
    fn run(&mut self) {
        let mut events = vec![
            EpollEvent {
                events: 0,
                token: 0
            };
            1024
        ];
        while !self.stop.load(Ordering::Acquire) {
            let timeout = self.wait_timeout_ms();
            let n = match self.epoll.wait(&mut events, timeout) {
                Ok(n) => n,
                Err(_) => break,
            };
            for ev in events.iter().take(n).copied() {
                match ev.token {
                    LISTENER => self.accept_ready(),
                    DOORBELL => self.apply_completions(),
                    token => {
                        let readable = ev.events & (EPOLLIN | EPOLLRDHUP | EPOLLHUP) != 0;
                        let writable = ev.events & EPOLLOUT != 0;
                        let errored = ev.events & EPOLLERR != 0;
                        self.service_conn(token, readable, writable, errored);
                    }
                }
            }
            self.fire_timers();
            self.maybe_resume_accept();
        }
        self.drain_shutdown();
    }

    /// Sleep no longer than the next timer tick or accept-backoff expiry.
    fn wait_timeout_ms(&self) -> i32 {
        let now = Instant::now();
        let mut deadline: Option<Instant> = self.wheel.as_ref().map(|w| w.next_deadline());
        if let Some(at) = self.accept_resume_at {
            deadline = Some(deadline.map_or(at, |d| d.min(at)));
        }
        match deadline {
            Some(at) => at
                .saturating_duration_since(now)
                .as_millis()
                .clamp(1, 1_000) as i32,
            None => 1_000,
        }
    }

    // ---- accept path ----------------------------------------------------

    fn accept_ready(&mut self) {
        loop {
            if self.open >= self.max_connections {
                // At capacity: park the listener (level-triggered epoll
                // would spin otherwise); closing a connection resumes it.
                self.pause_accept(None);
                return;
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => self.install(stream),
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                Err(e) => {
                    let fd_pressure = matches!(e.raw_os_error(), Some(EMFILE) | Some(ENFILE));
                    self.metrics.note_accept_error(&e, fd_pressure);
                    if fd_pressure {
                        // Out of fds: accepting again immediately would
                        // fail immediately. Park the listener briefly.
                        self.pause_accept(Some(Instant::now() + ACCEPT_BACKOFF));
                    }
                    return;
                }
            }
        }
    }

    fn install(&mut self, stream: TcpStream) {
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let _ = stream.set_nodelay(true);
        let slot = self.free.pop().unwrap_or_else(|| {
            self.conns.push(None);
            self.gens.push(0);
            self.conns.len() - 1
        });
        let token = token_of(slot, self.gens[slot]);
        let interest = EPOLLIN | EPOLLRDHUP;
        if self.epoll.add(stream.as_raw_fd(), interest, token).is_err() {
            self.free.push(slot);
            return;
        }
        let now = Instant::now();
        self.conns[slot] = Some(Conn {
            stream,
            token,
            framer: LineFramer::new(),
            out: Vec::new(),
            out_pos: 0,
            interest,
            proto: 1,
            session_db: None,
            inflight: HashSet::new(),
            window: WINDOW.min(self.engine.safe_window()),
            serial_hold: false,
            last_activity: now,
            peer_closed: false,
            draining: false,
        });
        self.open += 1;
        self.metrics.connections_accepted.inc();
        self.metrics.connections_open.inc();
        if let (Some(wheel), Some(timeout)) = (self.wheel.as_mut(), self.idle_timeout) {
            wheel.schedule(token, timeout, now);
        }
    }

    fn pause_accept(&mut self, resume_at: Option<Instant>) {
        if self.accept_registered {
            let _ = self.epoll.delete(self.listener.as_raw_fd());
            self.accept_registered = false;
        }
        self.accept_resume_at = resume_at;
    }

    fn maybe_resume_accept(&mut self) {
        if self.accept_registered {
            return;
        }
        let backoff_over = self.accept_resume_at.is_none_or(|at| Instant::now() >= at);
        if backoff_over
            && self.open < self.max_connections
            && self
                .epoll
                .add(self.listener.as_raw_fd(), EPOLLIN, LISTENER)
                .is_ok()
        {
            self.accept_registered = true;
            self.accept_resume_at = None;
        }
    }

    // ---- connection servicing -------------------------------------------

    fn conn_slot(&self, token: u64) -> Option<usize> {
        let (slot, gen) = split_token(token);
        (slot < self.gens.len() && self.gens[slot] == gen && self.conns[slot].is_some())
            .then_some(slot)
    }

    fn service_conn(&mut self, token: u64, readable: bool, writable: bool, errored: bool) {
        let Some(slot) = self.conn_slot(token) else {
            return;
        };
        let mut conn = self.conns[slot].take().expect("live slot");
        let mut close: Option<CloseReason> = if errored {
            Some(CloseReason::Io("socket error (EPOLLERR)".into()))
        } else {
            None
        };
        if close.is_none() && writable {
            close = self.flush_out(&mut conn).err();
        }
        if close.is_none() && readable {
            close = self.read_ready(&mut conn).err();
        }
        if close.is_none() {
            close = self.process(&mut conn).err();
        }
        self.finish_service(slot, conn, close);
    }

    /// Re-installs or closes a just-serviced connection.
    fn finish_service(&mut self, slot: usize, mut conn: Conn, mut close: Option<CloseReason>) {
        if close.is_none() && conn.peer_closed && !conn.busy() && conn.out_pending() == 0 {
            close = Some(CloseReason::PeerClosed);
        }
        match close {
            Some(reason) => self.close_conn(slot, conn, reason),
            None => {
                let want = conn.desired_interest();
                if want != conn.interest {
                    if self
                        .epoll
                        .modify(conn.stream.as_raw_fd(), want, conn.token)
                        .is_err()
                    {
                        self.close_conn(slot, conn, CloseReason::Io("epoll_ctl failed".into()));
                        return;
                    }
                    conn.interest = want;
                }
                self.conns[slot] = Some(conn);
            }
        }
    }

    fn close_conn(&mut self, slot: usize, conn: Conn, reason: CloseReason) {
        let _ = self.epoll.delete(conn.stream.as_raw_fd());
        if matches!(
            reason,
            CloseReason::OutbufOverflow { .. } | CloseReason::Protocol(_)
        ) {
            ppr_obs::ppr_warn!("closing connection: {reason}");
        }
        self.metrics.record_close(&reason);
        self.metrics.connections_open.dec();
        self.open -= 1;
        self.gens[slot] = self.gens[slot].wrapping_add(1);
        self.free.push(slot);
        drop(conn);
        // A parked listener (connection cap) can accept again now.
        if self.accept_resume_at.is_none() {
            self.maybe_resume_accept();
        }
    }

    fn read_ready(&self, conn: &mut Conn) -> Result<(), CloseReason> {
        let mut chunk = [0u8; 16 * 1024];
        let mut consumed = 0usize;
        while consumed < READ_QUANTUM && !conn.peer_closed {
            match conn.stream.read(&mut chunk) {
                Ok(0) => conn.peer_closed = true,
                Ok(n) => {
                    conn.framer.push(&chunk[..n]);
                    conn.last_activity = Instant::now();
                    consumed += n;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(CloseReason::Io(e.to_string())),
            }
        }
        Ok(())
    }

    /// Processes framed lines until the connection blocks on input, a
    /// serial hold, or a full window — mirroring the threaded
    /// `process_lines` including the consecutive-same-db run batching.
    fn process(&mut self, conn: &mut Conn) -> Result<(), CloseReason> {
        let mut batch: Vec<(u64, Request)> = Vec::new();
        let mut batch_db: Option<String> = None;
        let mut result = Ok(());
        loop {
            if conn.draining || conn.serial_hold || conn.inflight.len() >= conn.window {
                break;
            }
            let line = match conn.framer.next_line() {
                Ok(Some(line)) => line,
                Ok(None) => break,
                Err(_) => {
                    // Same farewell as the threaded backend, best-effort.
                    let _ = self.send_line(conn, "err kind=protocol msg=line too long");
                    result = Err(CloseReason::Protocol("line too long".into()));
                    break;
                }
            };
            if let Err(reason) = self.handle_line(conn, &line, &mut batch, &mut batch_db) {
                result = Err(reason);
                break;
            }
        }
        self.flush_batch(conn, &mut batch, batch_db);
        result
    }

    fn handle_line(
        &self,
        conn: &mut Conn,
        line: &str,
        batch: &mut Vec<(u64, Request)>,
        batch_db: &mut Option<String>,
    ) -> Result<(), CloseReason> {
        if conn.proto < 2 {
            return self.serial_line(conn, line);
        }
        match protocol::split_request_tag(line) {
            Ok((Some(id), rest)) => match protocol::decode_command(&rest) {
                Ok(protocol::Command::Run(mut request)) => {
                    if request.db.is_none() {
                        request.db = conn.session_db.clone();
                    }
                    if !batch.is_empty() && *batch_db != request.db {
                        self.flush_batch(conn, batch, batch_db.take());
                    }
                    *batch_db = request.db.clone();
                    if conn.inflight.contains(&id) {
                        self.send_line(conn, &protocol::tag_reply(id, &server::duplicate_id(id)))
                    } else {
                        conn.inflight.insert(id);
                        batch.push((id, request));
                        Ok(())
                    }
                }
                Ok(cmd) => {
                    // Tagged catalog verbs / ping / stats / trace come
                    // after the pending runs have pinned their snapshots.
                    self.flush_batch(conn, batch, batch_db.take());
                    if conn.inflight.contains(&id) {
                        return self
                            .send_line(conn, &protocol::tag_reply(id, &server::duplicate_id(id)));
                    }
                    match server::dispatch_command(
                        cmd,
                        &self.engine,
                        &mut conn.proto,
                        &mut conn.session_db,
                        conn.window,
                    ) {
                        Dispatch::Reply(reply) => {
                            self.send_line(conn, &protocol::tag_reply(id, &reply))
                        }
                        Dispatch::Execute(request) => {
                            self.submit_serial(conn, request, Some(id), ReplyShape::Rows)
                        }
                        Dispatch::Trace(request) => {
                            self.submit_serial(conn, request, Some(id), ReplyShape::Trace)
                        }
                        Dispatch::Explain(request) => {
                            self.submit_serial(conn, request, Some(id), ReplyShape::Explain)
                        }
                    }
                }
                Err(e) => self.send_line(
                    conn,
                    &protocol::tag_reply(id, &protocol::encode_result(&Err(e))),
                ),
            },
            Ok((None, _)) => {
                // Untagged lines remain legal after the upgrade and run
                // serially, exactly like v1.
                self.flush_batch(conn, batch, batch_db.take());
                self.serial_line(conn, line)
            }
            Err(e) => {
                // A malformed id cannot tag its own error reply.
                self.send_line(conn, &protocol::encode_result(&Err(e)))
            }
        }
    }

    /// One strictly serial line: synchronous verbs answer inline;
    /// `run`/`trace` submit to the worker pool and hold the connection
    /// until the completion lands (the event-loop translation of the
    /// reader thread blocking in `execute`).
    fn serial_line(&self, conn: &mut Conn, line: &str) -> Result<(), CloseReason> {
        if line.trim().is_empty() {
            return self.send_line(
                conn,
                &protocol::encode_result(&Err(ServiceError::Protocol("empty line".into()))),
            );
        }
        match protocol::decode_command(line) {
            Ok(cmd) => match server::dispatch_command(
                cmd,
                &self.engine,
                &mut conn.proto,
                &mut conn.session_db,
                conn.window,
            ) {
                Dispatch::Reply(reply) => self.send_line(conn, &reply),
                Dispatch::Execute(request) => {
                    self.submit_serial(conn, request, None, ReplyShape::Rows)
                }
                Dispatch::Trace(request) => {
                    self.submit_serial(conn, request, None, ReplyShape::Trace)
                }
                Dispatch::Explain(request) => {
                    self.submit_serial(conn, request, None, ReplyShape::Explain)
                }
            },
            Err(e) => self.send_line(conn, &protocol::encode_result(&Err(e))),
        }
    }

    /// One strictly serial engine submission, completed through the
    /// event queue with the reply encoded per the requesting verb.
    fn submit_serial(
        &self,
        conn: &mut Conn,
        request: Request,
        tag: Option<u64>,
        shape: ReplyShape,
    ) -> Result<(), CloseReason> {
        conn.serial_hold = true;
        let queue = self.queue.clone();
        let token = conn.token;
        let started = Instant::now();
        self.engine.submit(request, move |result| {
            let reply = match shape {
                ReplyShape::Rows => protocol::encode_result(&result),
                ReplyShape::Trace => {
                    let total_us = started.elapsed().as_micros() as u64;
                    protocol::encode_trace_report(
                        &result.map(|resp| TraceReport::of(&resp, total_us)),
                    )
                }
                ReplyShape::Explain => {
                    let total_us = started.elapsed().as_micros() as u64;
                    protocol::encode_explain_report(
                        &result.map(|resp| ExplainReport::of(&resp, total_us)),
                    )
                }
            };
            let line = match tag {
                Some(id) => protocol::tag_reply(id, &reply),
                None => reply,
            };
            queue.push(Completion {
                token,
                line,
                release: None,
                serial: true,
            });
        });
        Ok(())
    }

    /// Submits the accumulated tagged batch: one catalog snapshot and
    /// one queue lock for the lot, completions tagged and window slots
    /// freed by the callbacks.
    fn flush_batch(&self, conn: &mut Conn, batch: &mut Vec<(u64, Request)>, db: Option<String>) {
        if batch.is_empty() {
            return;
        }
        let token = conn.token;
        let jobs: Vec<(Request, ReplyFn)> = batch
            .drain(..)
            .map(|(id, request)| {
                let queue = self.queue.clone();
                let reply: ReplyFn = Box::new(move |result| {
                    queue.push(Completion {
                        token,
                        line: protocol::tag_reply(id, &protocol::encode_result(&result)),
                        release: Some(id),
                        serial: false,
                    });
                });
                (request, reply)
            })
            .collect();
        self.engine.submit_batch(db.as_deref(), jobs);
    }

    // ---- write path ------------------------------------------------------

    fn send_line(&self, conn: &mut Conn, line: &str) -> Result<(), CloseReason> {
        conn.out.reserve(line.len() + 1);
        conn.out.extend_from_slice(line.as_bytes());
        conn.out.push(b'\n');
        self.flush_out(conn)?;
        let buffered = conn.out_pending();
        if buffered > self.outbuf_limit {
            return Err(CloseReason::OutbufOverflow {
                buffered,
                limit: self.outbuf_limit,
            });
        }
        Ok(())
    }

    fn flush_out(&self, conn: &mut Conn) -> Result<(), CloseReason> {
        while conn.out_pos < conn.out.len() {
            match conn.stream.write(&conn.out[conn.out_pos..]) {
                Ok(0) => return Err(CloseReason::Io("write returned zero".into())),
                Ok(n) => conn.out_pos += n,
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(CloseReason::Io(e.to_string())),
            }
        }
        if conn.out_pos == conn.out.len() {
            conn.out.clear();
            conn.out_pos = 0;
        } else if conn.out_pos > 64 * 1024 {
            // Reclaim the flushed prefix so the buffer tracks the
            // backlog, not the connection's lifetime high-water mark.
            conn.out.drain(..conn.out_pos);
            conn.out_pos = 0;
        }
        Ok(())
    }

    // ---- completions -----------------------------------------------------

    fn apply_completions(&mut self) {
        let completions = self.queue.drain();
        let mut touched: Vec<usize> = Vec::new();
        for completion in completions {
            let Some(slot) = self.conn_slot(completion.token) else {
                continue; // connection closed while the job ran
            };
            let conn = self.conns[slot].as_mut().expect("live slot");
            conn.out.extend_from_slice(completion.line.as_bytes());
            conn.out.push(b'\n');
            if let Some(id) = completion.release {
                conn.inflight.remove(&id);
            }
            if completion.serial {
                conn.serial_hold = false;
            }
            conn.last_activity = Instant::now();
            if !touched.contains(&slot) {
                touched.push(slot);
            }
        }
        // Flush and resume per connection once, after the whole drain:
        // a burst of completions for one peer becomes one write syscall.
        for slot in touched {
            let Some(mut conn) = self.conns[slot].take() else {
                continue;
            };
            let mut close = self.flush_out(&mut conn).err();
            if close.is_none() && conn.out_pending() > self.outbuf_limit {
                close = Some(CloseReason::OutbufOverflow {
                    buffered: conn.out_pending(),
                    limit: self.outbuf_limit,
                });
            }
            if close.is_none() {
                close = self.process(&mut conn).err();
            }
            self.finish_service(slot, conn, close);
        }
    }

    // ---- timers ----------------------------------------------------------

    fn fire_timers(&mut self) {
        let Some(timeout) = self.idle_timeout else {
            return;
        };
        let now = Instant::now();
        let mut expired = Vec::new();
        if let Some(wheel) = self.wheel.as_mut() {
            wheel.tick(now, &mut expired);
        }
        for token in expired {
            let Some(slot) = self.conn_slot(token) else {
                continue;
            };
            let conn = self.conns[slot].as_ref().expect("live slot");
            let idle = now.saturating_duration_since(conn.last_activity);
            if !conn.busy() && idle >= timeout {
                let conn = self.conns[slot].take().expect("live slot");
                self.close_conn(slot, conn, CloseReason::IdleTimeout);
            } else if let Some(wheel) = self.wheel.as_mut() {
                // Lazy expiry: re-file for the remainder (or a fresh
                // period while the connection has work in flight).
                let remaining = timeout.saturating_sub(idle).max(Duration::from_millis(10));
                wheel.schedule(token, remaining, now);
            }
        }
    }

    // ---- shutdown --------------------------------------------------------

    /// Graceful drain: stop accepting and reading, let in-flight jobs
    /// complete and their replies flush, then close everything. Mirrors
    /// the threaded shutdown, where writer threads drain outstanding
    /// completions before joining.
    fn drain_shutdown(&mut self) {
        self.pause_accept(None);
        for conn in self.conns.iter_mut().flatten() {
            conn.draining = true;
        }
        let deadline = Instant::now() + DRAIN_DEADLINE;
        let mut events = vec![
            EpollEvent {
                events: 0,
                token: 0
            };
            256
        ];
        loop {
            // Close everything that has no work left.
            for slot in 0..self.conns.len() {
                let done = self.conns[slot]
                    .as_ref()
                    .is_some_and(|c| !c.busy() && c.out_pending() == 0);
                if done {
                    let conn = self.conns[slot].take().expect("live slot");
                    self.close_conn(slot, conn, CloseReason::Shutdown);
                }
            }
            if self.open == 0 || Instant::now() >= deadline {
                break;
            }
            let n = match self.epoll.wait(&mut events, 50) {
                Ok(n) => n,
                Err(_) => break,
            };
            for ev in events.iter().take(n).copied() {
                match ev.token {
                    DOORBELL => self.apply_completions(),
                    LISTENER => {}
                    token => {
                        let writable = ev.events & EPOLLOUT != 0;
                        let errored = ev.events & (EPOLLERR | EPOLLHUP) != 0;
                        self.service_conn(token, false, writable, errored);
                    }
                }
            }
        }
        // Whatever is left exceeded the drain budget.
        for slot in 0..self.conns.len() {
            if let Some(conn) = self.conns[slot].take() {
                self.close_conn(slot, conn, CloseReason::Shutdown);
            }
        }
    }
}
