//! An epoll-based load driver: thousands of pipelined v2 connections
//! from one thread.
//!
//! The serving benchmark's `--connections` axis and `ppr client
//! --connections` both need to *hold* 1k–10k concurrent connections
//! against a server — impossible with a thread per connection on the
//! driving side without perturbing the very measurement being taken.
//! This driver reuses the server's own epoll plumbing (the private
//! `net::sys` bindings) from the client side: every connection performs
//! the `hello proto=2`
//! upgrade, keeps up to `window` tagged requests in flight (capped by
//! the server's advertised window), and per-request latency is clocked
//! from enqueue to tagged reply.

use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::os::fd::AsRawFd;
use std::time::{Duration, Instant};

use crate::protocol::{self, LineFramer};

use super::sys::{Epoll, EpollEvent, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP};

/// What to drive and how hard.
#[derive(Debug, Clone)]
pub struct LoadOptions {
    /// Concurrent connections to hold open.
    pub connections: usize,
    /// Total requests across all connections.
    pub requests: usize,
    /// Per-connection pipeline depth (clamped by the server's
    /// advertised window).
    pub window: usize,
    /// Untagged request lines to cycle through (the driver tags them).
    pub lines: Vec<String>,
    /// Give up if the run has not completed within this budget.
    pub deadline: Duration,
}

impl Default for LoadOptions {
    fn default() -> Self {
        LoadOptions {
            connections: 1,
            requests: 1024,
            window: 32,
            lines: vec!["ping".to_string()],
            deadline: Duration::from_secs(120),
        }
    }
}

/// What a load run measured.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Connections held open.
    pub connections: usize,
    /// Requests completed (tagged replies received).
    pub requests: u64,
    /// Replies that were wire-level errors (`err …`).
    pub errors: u64,
    /// Wall-clock duration of the request phase.
    pub elapsed: Duration,
    /// Completed requests per second of wall clock.
    pub reqs_per_sec: f64,
    /// Median request latency (enqueue → tagged reply), microseconds.
    pub p50_us: u64,
    /// 99th-percentile request latency, microseconds.
    pub p99_us: u64,
}

struct LoadConn {
    stream: TcpStream,
    framer: LineFramer,
    out: Vec<u8>,
    out_pos: usize,
    interest: u32,
    /// Tagged ids in flight, with their enqueue timestamps.
    inflight: HashMap<u64, Instant>,
    /// Effective pipeline depth after the server's hello ack.
    window: usize,
    hello_done: bool,
    next_id: u64,
    /// Requests this connection still has to issue.
    quota: usize,
    /// Round-robin cursor into `lines`.
    cursor: usize,
}

/// Runs the load and reports throughput + latency percentiles.
///
/// Latencies are exact (recorded per request and sorted), not bucketed:
/// with bench-scale request counts the memory cost is trivial and the
/// p99 is a real sample, not a bucket upper bound.
pub fn run_load(addr: SocketAddr, opts: &LoadOptions) -> std::io::Result<LoadReport> {
    if opts.connections == 0 || opts.requests == 0 || opts.lines.is_empty() {
        return Err(std::io::Error::other(
            "load needs connections, requests, and lines",
        ));
    }
    let epoll = Epoll::new()?;
    let mut conns: Vec<LoadConn> = Vec::with_capacity(opts.connections);
    // Sequential blocking connects pace the server's accept loop; each
    // connection's hello goes out through the loop like any other write.
    for i in 0..opts.connections {
        let stream = TcpStream::connect(addr)?;
        stream.set_nonblocking(true)?;
        let _ = stream.set_nodelay(true);
        let quota =
            opts.requests / opts.connections + usize::from(i < opts.requests % opts.connections);
        let mut conn = LoadConn {
            stream,
            framer: LineFramer::new(),
            out: b"hello proto=2\n".to_vec(),
            out_pos: 0,
            interest: EPOLLIN | EPOLLRDHUP | EPOLLOUT,
            inflight: HashMap::new(),
            window: opts.window.max(1),
            hello_done: false,
            next_id: 1,
            quota,
            cursor: i % opts.lines.len(),
        };
        epoll.add(conn.stream.as_raw_fd(), conn.interest, i as u64)?;
        let _ = flush(&mut conn);
        conns.push(conn);
    }

    let started = Instant::now();
    let hard_deadline = started + opts.deadline;
    let mut latencies: Vec<u64> = Vec::with_capacity(opts.requests);
    let mut errors = 0u64;
    let mut completed = 0u64;
    let target = opts.requests as u64;
    let mut events = vec![
        EpollEvent {
            events: 0,
            token: 0
        };
        1024
    ];

    while completed < target {
        if Instant::now() >= hard_deadline {
            return Err(std::io::Error::new(
                ErrorKind::TimedOut,
                format!(
                    "load run incomplete after {:?}: {completed}/{target} replies",
                    opts.deadline
                ),
            ));
        }
        let n = epoll.wait(&mut events, 100)?;
        for ev in events.iter().take(n).copied() {
            let slot = ev.token as usize;
            let conn = &mut conns[slot];
            if ev.events & (EPOLLERR | EPOLLHUP) != 0 {
                return Err(std::io::Error::other(format!(
                    "connection {slot} failed mid-run"
                )));
            }
            if ev.events & EPOLLOUT != 0 {
                flush(conn)?;
            }
            if ev.events & (EPOLLIN | EPOLLRDHUP) != 0 {
                read_replies(conn, &mut latencies, &mut errors, &mut completed)?;
            }
            pump(conn, &opts.lines)?;
            let want = desired(conn);
            if want != conn.interest {
                epoll.modify(conn.stream.as_raw_fd(), want, ev.token)?;
                conn.interest = want;
            }
        }
    }
    let elapsed = started.elapsed();

    latencies.sort_unstable();
    let pct = |q: f64| -> u64 {
        if latencies.is_empty() {
            return 0;
        }
        let rank = ((q * latencies.len() as f64).ceil() as usize).clamp(1, latencies.len());
        latencies[rank - 1]
    };
    Ok(LoadReport {
        connections: opts.connections,
        requests: completed,
        errors,
        elapsed,
        reqs_per_sec: completed as f64 / elapsed.as_secs_f64().max(1e-9),
        p50_us: pct(0.50),
        p99_us: pct(0.99),
    })
}

fn desired(conn: &LoadConn) -> u32 {
    let mut want = EPOLLIN | EPOLLRDHUP;
    if conn.out_pos < conn.out.len() {
        want |= EPOLLOUT;
    }
    want
}

/// Tops the connection's pipeline up to its window.
fn pump(conn: &mut LoadConn, lines: &[String]) -> std::io::Result<()> {
    if !conn.hello_done {
        return Ok(());
    }
    while conn.quota > 0 && conn.inflight.len() < conn.window {
        let id = conn.next_id;
        conn.next_id += 1;
        let line = protocol::tag_request(id, &lines[conn.cursor]);
        conn.cursor = (conn.cursor + 1) % lines.len();
        conn.out.extend_from_slice(line.as_bytes());
        conn.out.push(b'\n');
        conn.inflight.insert(id, Instant::now());
        conn.quota -= 1;
    }
    flush(conn)
}

fn flush(conn: &mut LoadConn) -> std::io::Result<()> {
    while conn.out_pos < conn.out.len() {
        match conn.stream.write(&conn.out[conn.out_pos..]) {
            Ok(0) => return Err(std::io::Error::other("write returned zero")),
            Ok(n) => conn.out_pos += n,
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    if conn.out_pos == conn.out.len() {
        conn.out.clear();
        conn.out_pos = 0;
    }
    Ok(())
}

fn read_replies(
    conn: &mut LoadConn,
    latencies: &mut Vec<u64>,
    errors: &mut u64,
    completed: &mut u64,
) -> std::io::Result<()> {
    let mut chunk = [0u8; 16 * 1024];
    loop {
        match conn.stream.read(&mut chunk) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    ErrorKind::UnexpectedEof,
                    "server closed a load connection mid-run",
                ))
            }
            Ok(n) => conn.framer.push(&chunk[..n]),
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    while let Some(line) = conn
        .framer
        .next_line()
        .map_err(|e| std::io::Error::other(e.to_string()))?
    {
        if !conn.hello_done {
            // First reply is the hello ack: adopt the server's window
            // as the pipeline cap if it is tighter than ours.
            let ack = protocol::decode_hello_ok(&line)
                .map_err(|e| std::io::Error::other(format!("bad hello ack: {e}")))?;
            conn.window = conn.window.min(ack.window.max(1));
            conn.hello_done = true;
            continue;
        }
        let (tag, rest) = protocol::split_reply_tag(&line)
            .map_err(|e| std::io::Error::other(format!("bad reply: {e}")))?;
        let Some(id) = tag else {
            return Err(std::io::Error::other(format!("untagged reply: {line}")));
        };
        let Some(sent) = conn.inflight.remove(&id) else {
            return Err(std::io::Error::other(format!("unexpected reply id {id}")));
        };
        latencies.push(sent.elapsed().as_micros() as u64);
        if rest.starts_with("err") {
            *errors += 1;
        }
        *completed += 1;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use crate::engine::{Engine, EngineConfig, Request};
    use crate::server::Server;
    use ppr_core::methods::Method;
    use ppr_query::Database;

    #[test]
    fn load_driver_round_trips_pipelined_connections() {
        let mut db = Database::new();
        db.add(ppr_workload::edge_relation(3));
        let engine = Engine::start(Catalog::with_default(db), EngineConfig::default());
        let mut server = Server::builder()
            .addr("127.0.0.1:0")
            .engine(engine.handle())
            .start()
            .expect("server starts");
        let req = Request::new("q(x, y) :- edge(x, y), edge(y, x)", Method::EarlyProjection);
        // 8 connections × window 4 = 32 in flight, well under the default
        // engine's admission cap — every reply must be a clean `ok`.
        // (Larger aggregate windows can legitimately see `Overloaded`:
        // safe_window protects one connection, not a fleet.)
        let opts = LoadOptions {
            connections: 8,
            requests: 200,
            window: 4,
            lines: vec![protocol::encode_request(&req)],
            deadline: Duration::from_secs(30),
        };
        let report = run_load(server.local_addr(), &opts).expect("load completes");
        assert_eq!(report.requests, 200);
        assert_eq!(report.errors, 0, "no wire errors expected");
        assert!(report.p50_us <= report.p99_us);
        assert!(report.reqs_per_sec > 0.0);
        server.shutdown();
        engine.shutdown();
    }
}
