//! A coarse hashed timer wheel for idle-connection deadlines.
//!
//! One slot per `granularity` of wall clock, a cursor that advances as
//! time passes, and tokens hashed into the slot their deadline lands in.
//! Scheduling and firing are O(1); a full wheel revolution covers the
//! idle timeout with slack, and deadlines beyond the horizon clamp to
//! the furthest slot (the owner re-schedules on fire if the connection
//! is not actually idle yet — *lazy* expiry, so per-request activity
//! never touches the wheel, only the connection's `last_activity`
//! stamp).

use std::time::{Duration, Instant};

/// The wheel. Tokens are opaque `u64`s (the event loop's slot/generation
/// connection tokens); stale tokens are the owner's problem to filter,
/// which is what makes cancellation free.
pub struct TimerWheel {
    slots: Vec<Vec<u64>>,
    granularity: Duration,
    /// Slot index the next tick will drain.
    cursor: usize,
    /// Wall-clock time the cursor slot's interval began.
    base: Instant,
}

impl TimerWheel {
    /// A wheel sized for deadlines up to `horizon`, with slot width
    /// `horizon / 8` clamped to [10 ms, 1 s].
    pub fn new(horizon: Duration, now: Instant) -> TimerWheel {
        let granularity = (horizon / 8)
            .max(Duration::from_millis(10))
            .min(Duration::from_secs(1));
        let slots = (horizon.as_nanos() / granularity.as_nanos()).max(1) as usize + 2;
        TimerWheel {
            slots: vec![Vec::new(); slots],
            granularity,
            cursor: 0,
            base: now,
        }
    }

    /// Files `token` to fire no earlier than `after` from now. Deadlines
    /// beyond the wheel's horizon clamp to the furthest slot.
    pub fn schedule(&mut self, token: u64, after: Duration, now: Instant) {
        let elapsed = now.saturating_duration_since(self.base);
        let ticks = ((elapsed + after).as_nanos() / self.granularity.as_nanos()) as usize + 1;
        let slot = (self.cursor + ticks.min(self.slots.len() - 1)) % self.slots.len();
        self.slots[slot].push(token);
    }

    /// When the next slot is due — the event loop's `epoll_wait` timeout
    /// never sleeps past it.
    pub fn next_deadline(&self) -> Instant {
        self.base + self.granularity
    }

    /// Advances the cursor over every slot whose interval has fully
    /// passed, draining their tokens into `expired`.
    pub fn tick(&mut self, now: Instant, expired: &mut Vec<u64>) {
        while now.saturating_duration_since(self.base) >= self.granularity {
            expired.append(&mut self.slots[self.cursor]);
            self.cursor = (self.cursor + 1) % self.slots.len();
            self.base += self.granularity;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_in_deadline_order_and_clamps_the_horizon() {
        let t0 = Instant::now();
        let mut wheel = TimerWheel::new(Duration::from_millis(800), t0);
        wheel.schedule(1, Duration::from_millis(150), t0);
        wheel.schedule(2, Duration::from_millis(650), t0);
        // Far beyond the horizon: clamped, not lost.
        wheel.schedule(3, Duration::from_secs(3600), t0);

        let mut fired = Vec::new();
        wheel.tick(t0 + Duration::from_millis(100), &mut fired);
        assert!(fired.is_empty(), "nothing due yet: {fired:?}");
        wheel.tick(t0 + Duration::from_millis(400), &mut fired);
        assert_eq!(fired, vec![1]);
        fired.clear();
        wheel.tick(t0 + Duration::from_millis(2000), &mut fired);
        fired.sort_unstable();
        assert_eq!(fired, vec![2, 3], "full revolution drains everything");
    }

    #[test]
    fn rescheduling_after_fire_extends_the_deadline() {
        let t0 = Instant::now();
        let mut wheel = TimerWheel::new(Duration::from_millis(400), t0);
        wheel.schedule(9, Duration::from_millis(120), t0);
        let mut fired = Vec::new();
        let t1 = t0 + Duration::from_millis(300);
        wheel.tick(t1, &mut fired);
        assert_eq!(fired, vec![9]);
        fired.clear();
        // Lazy expiry: the owner saw recent activity and re-files.
        wheel.schedule(9, Duration::from_millis(120), t1);
        wheel.tick(t1 + Duration::from_millis(50), &mut fired);
        assert!(fired.is_empty());
        wheel.tick(t1 + Duration::from_millis(400), &mut fired);
        assert_eq!(fired, vec![9]);
    }
}
