//! Structure-keyed LRU cache of chosen variable orders.
//!
//! Bucket elimination's expensive planning step is *decomposition*:
//! choosing the variable elimination order (MCS, min-degree, or min-fill
//! over the join graph). The [`crate::cache::PlanCache`] already reuses
//! whole plans, but its key includes the database content fingerprint —
//! plans embed `Arc<Relation>` scans, so any catalog mutation rightly
//! invalidates them. The variable order has no such dependency: it is a
//! function of the query's *structure* alone. This cache exploits that
//! asymmetry. The key is [`DecompKey`]: query [`Fingerprint`] ×
//! [`OrderHeuristic`] × planner seed — deliberately **without** the data
//! fingerprint, so a catalog mutation that forces a re-plan still skips
//! re-decomposition for every structurally repeated query.
//!
//! Variable orders are stored *rank-encoded*: a cached entry holds the
//! positions of the chosen order's variables within the query's
//! renaming-invariant [`ppr_query::canonical_var_order`]. Two isomorphic queries
//! disagree on raw [`AttrId`]s (each has its own interner), but they
//! share fingerprint, shape, and canonical-order length, so ranks decode
//! into the incoming query's own ids. For an exact repeat the decode is
//! the identity and the resulting plan is byte-identical to the cold one
//! (the `Decompose` pass consumes no randomness when a hint covers the
//! query — see `ppr_core::passes` and docs/PLANNING.md). For a renamed
//! repeat the decoded order is a valid total order over the new query's
//! variables; WL color ties mean it may differ from the order a fresh
//! decomposition would have chosen, but bucket construction is correct
//! under *any* total order, so collisions and tie-flips cost optimality,
//! never soundness.
//!
//! Like the plan cache, the WL fingerprint is a 1-WL invariant, so every
//! entry also stores the [`QueryShape`] that built it and a lookup only
//! hits on a shape match (a mismatch counts as `collisions`). Eviction is
//! strict LRU over the same intrusive slab-list as the plan cache.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use ppr_core::methods::OrderHeuristic;
use ppr_query::{Fingerprint, QueryShape};
use ppr_relalg::AttrId;
use rustc_hash::FxHashMap;

/// Cache key: canonical query structure × decomposition heuristic ×
/// planner seed. No database identity — the order is pure query
/// structure and survives catalog mutations.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DecompKey {
    /// Canonical query fingerprint.
    pub fingerprint: Fingerprint,
    /// Which elimination-order heuristic chose the order.
    pub heuristic: OrderHeuristic,
    /// Effective planner seed (heuristics break ties randomly).
    pub seed: u64,
}

/// Rank-encodes `order` against `canonical` (the query's
/// [`ppr_query::canonical_var_order`]): position `i` of the result is the index in
/// `canonical` of the `i`-th order variable. Returns `None` unless
/// `order` is exactly a permutation of `canonical` — anything else is
/// not a decomposition of this query and must not be cached.
pub fn encode_order(order: &[AttrId], canonical: &[AttrId]) -> Option<Vec<u32>> {
    if order.len() != canonical.len() {
        return None;
    }
    let mut ranks = Vec::with_capacity(order.len());
    for v in order {
        ranks.push(canonical.iter().position(|c| c == v)? as u32);
    }
    let mut seen = vec![false; canonical.len()];
    for &r in &ranks {
        if std::mem::replace(&mut seen[r as usize], true) {
            return None;
        }
    }
    Some(ranks)
}

/// Decodes `ranks` into the incoming query's own [`AttrId`]s via its
/// [`ppr_query::canonical_var_order`]. Returns `None` unless `ranks` is a
/// permutation of `0..canonical.len()` — a stale or colliding entry
/// yields a fresh decomposition, never a bad order.
pub fn decode_order(ranks: &[u32], canonical: &[AttrId]) -> Option<Vec<AttrId>> {
    if ranks.len() != canonical.len() {
        return None;
    }
    let mut seen = vec![false; canonical.len()];
    let mut order = Vec::with_capacity(ranks.len());
    for &r in ranks {
        let i = r as usize;
        if i >= canonical.len() || std::mem::replace(&mut seen[i], true) {
            return None;
        }
        order.push(canonical[i]);
    }
    Some(order)
}

const NIL: usize = usize::MAX;

struct Node {
    key: DecompKey,
    shape: QueryShape,
    ranks: Vec<u32>,
    prev: usize,
    next: usize,
}

struct Inner {
    map: FxHashMap<DecompKey, usize>,
    nodes: Vec<Node>,
    free: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
}

impl Inner {
    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.nodes[i].prev, self.nodes[i].next);
        if prev == NIL {
            self.head = next;
        } else {
            self.nodes[prev].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.nodes[next].prev = prev;
        }
    }

    fn push_front(&mut self, i: usize) {
        self.nodes[i].prev = NIL;
        self.nodes[i].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }
}

/// Counter snapshot (plus occupancy) of a [`DecompCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DecompStats {
    /// Lookups that found a cached order.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries displaced by capacity pressure.
    pub evictions: u64,
    /// Key matches whose [`QueryShape`] differed (1-WL collision); each
    /// also counts as a miss.
    pub collisions: u64,
    /// Entries currently cached.
    pub len: usize,
    /// Maximum entries.
    pub capacity: usize,
}

/// Thread-safe LRU cache from [`DecompKey`] to rank-encoded variable
/// orders.
pub struct DecompCache {
    inner: Mutex<Inner>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    collisions: AtomicU64,
}

impl DecompCache {
    /// A cache holding at most `capacity` orders (at least 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        DecompCache {
            inner: Mutex::new(Inner {
                map: FxHashMap::default(),
                nodes: Vec::new(),
                free: Vec::new(),
                head: NIL,
                tail: NIL,
            }),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            collisions: AtomicU64::new(0),
        }
    }

    /// Looks up `key`, counting a hit (and refreshing recency) or a
    /// miss. A key match with a different [`QueryShape`] is a fingerprint
    /// collision: counted as a miss plus `collisions`, returns `None`.
    pub fn get(&self, key: &DecompKey, shape: &QueryShape) -> Option<Vec<u32>> {
        let mut inner = self.inner.lock().expect("decomp cache lock");
        match inner.map.get(key).copied() {
            Some(i) if inner.nodes[i].shape == *shape => {
                inner.unlink(i);
                inner.push_front(i);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(inner.nodes[i].ranks.clone())
            }
            Some(_) => {
                self.collisions.fetch_add(1, Ordering::Relaxed);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts `ranks` under `key`, evicting the LRU entry at capacity.
    /// An existing same-shape entry wins (orders built under one key are
    /// interchangeable); a different shape displaces the entry so a
    /// colliding query never decodes the wrong structure's order.
    pub fn insert(&self, key: DecompKey, shape: QueryShape, ranks: Vec<u32>) {
        let mut inner = self.inner.lock().expect("decomp cache lock");
        if let Some(&i) = inner.map.get(&key) {
            if inner.nodes[i].shape != shape {
                inner.nodes[i].shape = shape;
                inner.nodes[i].ranks = ranks;
            }
            inner.unlink(i);
            inner.push_front(i);
            return;
        }
        if inner.map.len() >= self.capacity {
            let lru = inner.tail;
            inner.unlink(lru);
            let old_key = inner.nodes[lru].key.clone();
            inner.map.remove(&old_key);
            inner.free.push(lru);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        let node = Node {
            key: key.clone(),
            shape,
            ranks,
            prev: NIL,
            next: NIL,
        };
        let i = match inner.free.pop() {
            Some(i) => {
                inner.nodes[i] = node;
                i
            }
            None => {
                inner.nodes.push(node);
                inner.nodes.len() - 1
            }
        };
        inner.push_front(i);
        inner.map.insert(key, i);
    }

    /// Current counters and occupancy.
    pub fn stats(&self) -> DecompStats {
        DecompStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            collisions: self.collisions.load(Ordering::Relaxed),
            len: self.inner.lock().expect("decomp cache lock").map.len(),
            capacity: self.capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppr_query::{canonical_var_order, parse_query};

    fn key(n: u128) -> DecompKey {
        DecompKey {
            fingerprint: Fingerprint(n),
            heuristic: OrderHeuristic::Mcs,
            seed: 0,
        }
    }

    fn shape() -> QueryShape {
        QueryShape::of(&parse_query("q(x) :- e(x, y)").unwrap())
    }

    fn other_shape() -> QueryShape {
        QueryShape::of(&parse_query("q(x) :- e(x, y), e(y, z)").unwrap())
    }

    #[test]
    fn rank_round_trip_is_identity_on_the_same_query() {
        let q = parse_query("q() :- e(a,b), e(b,c), e(c,a)").unwrap();
        let canonical = canonical_var_order(&q);
        let mut order = q.all_vars();
        order.reverse();
        let ranks = encode_order(&order, &canonical).unwrap();
        assert_eq!(decode_order(&ranks, &canonical).unwrap(), order);
    }

    #[test]
    fn renamed_query_decodes_to_its_own_ids() {
        // The pentagon under two different variable namings: ranks
        // encoded against one query's canonical order decode into the
        // other's AttrIds, covering every variable exactly once.
        let a = parse_query("q() :- e(a,b), e(b,c), e(c,d), e(d,f), e(f,a)").unwrap();
        let b = parse_query("q() :- e(v,w), e(u,v), e(z,u), e(y,z), e(w,y)").unwrap();
        let ca = canonical_var_order(&a);
        let cb = canonical_var_order(&b);
        let order = a.all_vars();
        let ranks = encode_order(&order, &ca).unwrap();
        let decoded = decode_order(&ranks, &cb).unwrap();
        let mut sorted = decoded.clone();
        sorted.sort_unstable();
        let mut all = b.all_vars();
        all.sort_unstable();
        assert_eq!(sorted, all, "decoded order must cover b's variables");
    }

    #[test]
    fn invalid_encodings_are_rejected() {
        let q = parse_query("q() :- e(a,b), e(b,c)").unwrap();
        let canonical = canonical_var_order(&q);
        let order = q.all_vars();
        // Too short.
        assert!(encode_order(&order[..2], &canonical).is_none());
        // Repeated variable.
        let dup = vec![order[0], order[0], order[1]];
        assert!(encode_order(&dup, &canonical).is_none());
        // Foreign variable id.
        let mut foreign = order.clone();
        foreign[0] = ppr_relalg::AttrId(9999);
        assert!(encode_order(&foreign, &canonical).is_none());
        // Bad ranks on decode: out of range, duplicated, wrong length.
        assert!(decode_order(&[0, 1, 7], &canonical).is_none());
        assert!(decode_order(&[0, 1, 1], &canonical).is_none());
        assert!(decode_order(&[0, 1], &canonical).is_none());
    }

    #[test]
    fn hit_miss_collision_and_eviction_counters() {
        let c = DecompCache::new(2);
        assert!(c.get(&key(1), &shape()).is_none());
        c.insert(key(1), shape(), vec![0, 1]);
        assert_eq!(c.get(&key(1), &shape()), Some(vec![0, 1]));
        // Shape mismatch on a key match is a collision, not a hit.
        assert!(c.get(&key(1), &other_shape()).is_none());
        // Fill past capacity: key(1) was refreshed, key(2) is LRU.
        c.insert(key(2), shape(), vec![1, 0]);
        assert!(c.get(&key(1), &shape()).is_some());
        c.insert(key(3), shape(), vec![0, 1]);
        assert!(c.get(&key(2), &shape()).is_none(), "LRU entry evicted");
        let s = c.stats();
        assert_eq!(s.hits, 2);
        assert_eq!(s.collisions, 1);
        assert_eq!(s.evictions, 1);
        assert_eq!(s.len, 2);
        assert_eq!(s.capacity, 2);
    }

    #[test]
    fn colliding_shape_displaces_the_entry() {
        let c = DecompCache::new(4);
        c.insert(key(1), shape(), vec![0, 1]);
        c.insert(key(1), other_shape(), vec![1, 0]);
        assert_eq!(c.get(&key(1), &other_shape()), Some(vec![1, 0]));
        assert!(c.get(&key(1), &shape()).is_none());
        assert_eq!(c.stats().len, 1);
    }
}
