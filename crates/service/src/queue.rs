//! A bounded MPMC queue with fast-fail admission.
//!
//! `std::sync::mpsc` channels are single-consumer; the engine's worker
//! pool needs many consumers, and admission control needs a non-blocking
//! `try_push` that reports "full" without ever waiting. This is the
//! smallest queue with those two properties: a `Mutex<VecDeque>` plus one
//! condvar. The lock is held for O(1) push/pop only — the expensive work
//! (planning, execution) happens outside.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a push was refused.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at capacity; the item is handed back.
    Full(T),
    /// The queue is closed; the item is handed back.
    Closed(T),
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// Bounded multi-producer multi-consumer FIFO.
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    available: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` items.
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            state: Mutex::new(State {
                items: VecDeque::with_capacity(capacity.min(1024)),
                closed: false,
            }),
            available: Condvar::new(),
            capacity,
        }
    }

    /// Enqueues without blocking; fails fast when full or closed.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut state = self.state.lock().expect("queue lock");
        if state.closed {
            return Err(PushError::Closed(item));
        }
        if state.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        state.items.push_back(item);
        drop(state);
        self.available.notify_one();
        Ok(())
    }

    /// Enqueues a whole batch under **one** lock acquisition — the point
    /// of pipelined submission is that a burst of requests costs one
    /// mutex round trip, not one per request. Items that do not fit are
    /// handed back: `Full(tail)` carries the unpushed suffix (everything
    /// before it was enqueued), `Closed(all)` hands the whole batch back.
    pub fn try_push_batch(&self, mut items: Vec<T>) -> Result<(), PushError<Vec<T>>> {
        if items.is_empty() {
            return Ok(());
        }
        let mut state = self.state.lock().expect("queue lock");
        if state.closed {
            return Err(PushError::Closed(items));
        }
        let free = self.capacity.saturating_sub(state.items.len());
        let take = free.min(items.len());
        for item in items.drain(..take) {
            state.items.push_back(item);
        }
        drop(state);
        match take {
            0 => {}
            1 => self.available.notify_one(),
            _ => self.available.notify_all(),
        }
        if items.is_empty() {
            Ok(())
        } else {
            Err(PushError::Full(items))
        }
    }

    /// Dequeues up to `max` items under **one** lock acquisition,
    /// blocking while the queue is open and empty. Returns as soon as
    /// anything is available — it never waits to fill the batch, so a
    /// lone item pops with the latency of a plain single-item pop.
    /// FIFO order is preserved within the returned batch. Returns `None`
    /// once the queue is closed *and* drained — consumers see every item
    /// pushed before `close`, which is what makes engine shutdown
    /// graceful. This is the consumer half of pipelined submission: a
    /// burst pushed by [`try_push_batch`] is drained with one mutex
    /// round trip instead of one per item.
    ///
    /// [`try_push_batch`]: BoundedQueue::try_push_batch
    pub fn pop_batch(&self, max: usize) -> Option<Vec<T>> {
        let mut state = self.state.lock().expect("queue lock");
        loop {
            if !state.items.is_empty() {
                let take = state.items.len().min(max.max(1));
                return Some(state.items.drain(..take).collect());
            }
            if state.closed {
                return None;
            }
            state = self.available.wait(state).expect("queue lock");
        }
    }

    /// Closes the queue: pushes fail from now on, pops drain the backlog.
    pub fn close(&self) {
        self.state.lock().expect("queue lock").closed = true;
        self.available.notify_all();
    }

    /// The queue's fixed capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently queued (racy; for stats only — the metrics
    /// endpoint reports it as the queue-depth gauge).
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue lock").items.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// Single-item pop for tests, on top of the batch primitive.
    fn pop1<T>(q: &BoundedQueue<T>) -> Option<T> {
        q.pop_batch(1)
            .map(|mut batch| batch.pop().expect("non-empty batch"))
    }

    #[test]
    fn fifo_order() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(pop1(&q), Some(1));
        assert_eq!(pop1(&q), Some(2));
    }

    #[test]
    fn full_fails_fast() {
        let q = BoundedQueue::new(1);
        q.try_push(1).unwrap();
        assert_eq!(q.try_push(2), Err(PushError::Full(2)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn batch_push_fills_then_hands_back_the_tail() {
        let q = BoundedQueue::new(3);
        q.try_push(0).unwrap();
        // 3 items into 2 free slots: 1 and 2 land, 3 comes back.
        let leftover = match q.try_push_batch(vec![1, 2, 3]) {
            Err(PushError::Full(tail)) => tail,
            other => panic!("{other:?}"),
        };
        assert_eq!(leftover, vec![3]);
        assert_eq!(q.len(), 3);
        assert_eq!(pop1(&q), Some(0));
        assert_eq!(pop1(&q), Some(1));
        assert_eq!(pop1(&q), Some(2));
        // With room again, the whole batch fits.
        q.try_push_batch(vec![7, 8]).unwrap();
        assert_eq!(q.len(), 2);
        q.close();
        assert_eq!(q.try_push_batch(vec![9]), Err(PushError::Closed(vec![9])));
        assert_eq!(q.try_push_batch(Vec::new()), Ok(()));
    }

    #[test]
    fn batch_pop_drains_up_to_max_without_waiting_for_more() {
        let q = BoundedQueue::new(8);
        for i in 0..5 {
            q.try_push(i).unwrap();
        }
        // Never more than max, FIFO within the batch.
        assert_eq!(q.pop_batch(3), Some(vec![0, 1, 2]));
        // Never waits to fill: returns what is there.
        assert_eq!(q.pop_batch(3), Some(vec![3, 4]));
        q.try_push(9).unwrap();
        // A degenerate max still makes progress.
        assert_eq!(q.pop_batch(0), Some(vec![9]));
        q.close();
        assert_eq!(q.pop_batch(3), None);
    }

    #[test]
    fn batch_pop_sees_items_pushed_before_close() {
        let q = BoundedQueue::new(8);
        q.try_push(1).unwrap();
        q.close();
        assert_eq!(q.pop_batch(4), Some(vec![1]));
        assert_eq!(q.pop_batch(4), None);
    }

    #[test]
    fn close_drains_then_ends() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.close();
        assert_eq!(q.try_push(2), Err(PushError::Closed(2)));
        assert_eq!(pop1(&q), Some(1));
        assert_eq!(pop1(&q), None);
    }

    #[test]
    fn close_wakes_blocked_consumers() {
        let q = Arc::new(BoundedQueue::<u32>::new(4));
        let q2 = q.clone();
        let h = std::thread::spawn(move || pop1(&q2));
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(h.join().unwrap(), None);
    }

    #[test]
    fn many_producers_many_consumers() {
        let q = Arc::new(BoundedQueue::<u32>::new(1024));
        let mut handles = Vec::new();
        for t in 0..4u32 {
            let q = q.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..100 {
                    q.try_push(t * 100 + i).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        q.close();
        let mut seen = Vec::new();
        let mut consumers = Vec::new();
        for _ in 0..4 {
            let q = q.clone();
            consumers.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(x) = pop1(&q) {
                    got.push(x);
                }
                got
            }));
        }
        for c in consumers {
            seen.extend(c.join().unwrap());
        }
        seen.sort_unstable();
        assert_eq!(seen.len(), 400);
        seen.dedup();
        assert_eq!(seen.len(), 400);
    }
}
