//! A bounded MPMC queue with fast-fail admission.
//!
//! `std::sync::mpsc` channels are single-consumer; the engine's worker
//! pool needs many consumers, and admission control needs a non-blocking
//! `try_push` that reports "full" without ever waiting. This is the
//! smallest queue with those two properties: a `Mutex<VecDeque>` plus one
//! condvar. The lock is held for O(1) push/pop only — the expensive work
//! (planning, execution) happens outside.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a push was refused.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at capacity; the item is handed back.
    Full(T),
    /// The queue is closed; the item is handed back.
    Closed(T),
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// Bounded multi-producer multi-consumer FIFO.
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    available: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` items.
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            state: Mutex::new(State {
                items: VecDeque::with_capacity(capacity.min(1024)),
                closed: false,
            }),
            available: Condvar::new(),
            capacity,
        }
    }

    /// Enqueues without blocking; fails fast when full or closed.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut state = self.state.lock().expect("queue lock");
        if state.closed {
            return Err(PushError::Closed(item));
        }
        if state.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        state.items.push_back(item);
        drop(state);
        self.available.notify_one();
        Ok(())
    }

    /// Dequeues, blocking while the queue is open and empty. Returns
    /// `None` once the queue is closed *and* drained — consumers see every
    /// item pushed before `close`, which is what makes engine shutdown
    /// graceful.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("queue lock");
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.available.wait(state).expect("queue lock");
        }
    }

    /// Closes the queue: pushes fail from now on, pops drain the backlog.
    pub fn close(&self) {
        self.state.lock().expect("queue lock").closed = true;
        self.available.notify_all();
    }

    /// Items currently queued (racy; for stats only).
    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue lock").items.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn full_fails_fast() {
        let q = BoundedQueue::new(1);
        q.try_push(1).unwrap();
        assert_eq!(q.try_push(2), Err(PushError::Full(2)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn close_drains_then_ends() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.close();
        assert_eq!(q.try_push(2), Err(PushError::Closed(2)));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn close_wakes_blocked_consumers() {
        let q = Arc::new(BoundedQueue::<u32>::new(4));
        let q2 = q.clone();
        let h = std::thread::spawn(move || q2.pop());
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(h.join().unwrap(), None);
    }

    #[test]
    fn many_producers_many_consumers() {
        let q = Arc::new(BoundedQueue::<u32>::new(1024));
        let mut handles = Vec::new();
        for t in 0..4u32 {
            let q = q.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..100 {
                    q.try_push(t * 100 + i).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        q.close();
        let mut seen = Vec::new();
        let mut consumers = Vec::new();
        for _ in 0..4 {
            let q = q.clone();
            consumers.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(x) = q.pop() {
                    got.push(x);
                }
                got
            }));
        }
        for c in consumers {
            seen.extend(c.join().unwrap());
        }
        seen.sort_unstable();
        assert_eq!(seen.len(), 400);
        seen.dedup();
        assert_eq!(seen.len(), 400);
    }
}
