//! Versioned result cache: rows with zero execution.
//!
//! The plan cache amortizes *planning*; this cache amortizes *execution*.
//! It is the serving-side analogue of reusing decompositions across
//! isomorphic instances: the key is
//! `(DbFingerprint, Fingerprint, Method, seed)` — a *content hash* of
//! the database crossed with the canonical query identity — so a
//! repeated query — under any variable renaming or atom reordering,
//! against the same database or any content-identical one (another name,
//! another load order, a recovered post-crash catalog) — returns its
//! rows without touching the executor, and **any content-changing
//! mutation invalidates naturally**: a `load`/`add` that changes the data
//! changes the fingerprint, the next request computes a key nobody has
//! written, and the stale entry simply ages out of the LRU. There is no
//! purge logic to get wrong — and nothing to *wrongly* purge: a restart
//! or a no-op mutation keeps the fingerprint, so warm entries survive
//! both.
//!
//! Results (unlike plans) have data-dependent size, so the budget is in
//! **bytes**, not entries: strict LRU eviction runs until the cache fits,
//! and an entry bigger than the whole budget is refused outright (counted
//! in [`ResultCacheStats::oversized`]) rather than flushing everything
//! else. Fingerprints are 1-WL invariants with constructible collisions,
//! so — exactly like the plan cache — every entry stores the
//! [`QueryShape`] that built it and a lookup only hits on a shape match;
//! a mismatch is a counted collision and a miss, never wrong rows.
//!
//! Budgets are deliberately *not* part of the key: execution budgets
//! bound work, successful results are budget-independent (an exhausted
//! budget is an error, never a truncation), and a hit does no work at
//! all, so it cannot exceed any budget.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use ppr_core::methods::Method;
use ppr_query::{Fingerprint, QueryShape};
use ppr_relalg::{ExecStats, Value};
use rustc_hash::FxHashMap;

use crate::catalog::DbFingerprint;

/// Result-cache key: which data (content hash), which query (canonical
/// fingerprint), and which plan family (method + tie-breaking seed).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ResultKey {
    /// Content fingerprint of the database the rows were computed at.
    pub data: DbFingerprint,
    /// Canonical query fingerprint.
    pub fingerprint: Fingerprint,
    /// Planning method.
    pub method: Method,
    /// Effective planner seed.
    pub seed: u64,
}

/// The cached outcome of one successful evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachedResult {
    /// Output column names of the query that produced the rows. Cached
    /// per *fingerprint*, so a renamed variant of the query receives the
    /// original's column names; positions (and rows) are identical.
    pub columns: Vec<String>,
    /// Result rows, byte-identical to cold execution at this version.
    pub rows: Vec<Box<[Value]>>,
    /// Stats of the execution that originally produced the rows.
    pub stats: ExecStats,
}

impl CachedResult {
    /// Approximate heap footprint, used for the byte budget. Counts the
    /// row payload exactly and the per-row/column overheads approximately;
    /// the budget is a sizing knob, not an allocator audit.
    pub fn approx_bytes(&self) -> usize {
        let row_overhead = std::mem::size_of::<Box<[Value]>>();
        let rows: usize = self
            .rows
            .iter()
            .map(|r| r.len() * std::mem::size_of::<Value>() + row_overhead)
            .sum();
        let columns: usize = self.columns.iter().map(|c| c.len() + 24).sum();
        rows + columns + std::mem::size_of::<Self>()
    }
}

const NIL: usize = usize::MAX;

struct Node {
    key: ResultKey,
    shape: QueryShape,
    result: Arc<CachedResult>,
    bytes: usize,
    prev: usize,
    next: usize,
}

struct Inner {
    map: FxHashMap<ResultKey, usize>,
    nodes: Vec<Node>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    bytes: usize,
}

impl Inner {
    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.nodes[i].prev, self.nodes[i].next);
        if prev == NIL {
            self.head = next;
        } else {
            self.nodes[prev].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.nodes[next].prev = prev;
        }
    }

    fn push_front(&mut self, i: usize) {
        self.nodes[i].prev = NIL;
        self.nodes[i].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }
}

/// Counter snapshot (plus occupancy) of a [`ResultCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResultCacheStats {
    /// Lookups that returned cached rows.
    pub hits: u64,
    /// Lookups that found nothing (or a version-stale key).
    pub misses: u64,
    /// Entries displaced by the byte budget.
    pub evictions: u64,
    /// Key matches whose [`QueryShape`] differed — fingerprint collisions
    /// between structurally different queries, counted as misses.
    pub collisions: u64,
    /// Results refused because they alone exceed the byte budget.
    pub oversized: u64,
    /// Entries currently cached.
    pub len: usize,
    /// Bytes currently cached (approximate; see
    /// [`CachedResult::approx_bytes`]).
    pub bytes: usize,
    /// The byte budget (0 = caching disabled).
    pub capacity_bytes: usize,
}

impl ResultCacheStats {
    /// Hit fraction over all lookups (0 when none happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Thread-safe, byte-budgeted LRU cache from [`ResultKey`] to rows.
/// A zero budget disables caching entirely (every lookup misses, every
/// insert is dropped) — useful for isolating the plan cache in tests.
pub struct ResultCache {
    inner: Mutex<Inner>,
    capacity_bytes: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    collisions: AtomicU64,
    oversized: AtomicU64,
}

impl ResultCache {
    /// A cache holding at most `capacity_bytes` of results (0 disables).
    pub fn new(capacity_bytes: usize) -> Self {
        ResultCache {
            inner: Mutex::new(Inner {
                map: FxHashMap::default(),
                nodes: Vec::new(),
                free: Vec::new(),
                head: NIL,
                tail: NIL,
                bytes: 0,
            }),
            capacity_bytes,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            collisions: AtomicU64::new(0),
            oversized: AtomicU64::new(0),
        }
    }

    /// Whether caching is enabled at all.
    pub fn enabled(&self) -> bool {
        self.capacity_bytes > 0
    }

    /// Looks up `key`, refreshing recency on a hit. A key match with a
    /// different stored [`QueryShape`] is a collision: counted, missed,
    /// and left for [`insert`](ResultCache::insert) to displace.
    pub fn get(&self, key: &ResultKey, shape: &QueryShape) -> Option<Arc<CachedResult>> {
        if !self.enabled() {
            return None;
        }
        let mut inner = self.inner.lock().expect("result cache lock");
        match inner.map.get(key).copied() {
            Some(i) if inner.nodes[i].shape == *shape => {
                inner.unlink(i);
                inner.push_front(i);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(inner.nodes[i].result.clone())
            }
            Some(_) => {
                self.collisions.fetch_add(1, Ordering::Relaxed);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts `result` under `key`, evicting LRU entries until the byte
    /// budget holds. A result bigger than the whole budget is refused. On
    /// a same-shape race the existing entry wins; a different shape
    /// (collision) displaces it.
    pub fn insert(&self, key: ResultKey, shape: QueryShape, result: Arc<CachedResult>) {
        if !self.enabled() {
            return;
        }
        let bytes = result.approx_bytes();
        if bytes > self.capacity_bytes {
            self.oversized.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let mut inner = self.inner.lock().expect("result cache lock");
        if let Some(&i) = inner.map.get(&key) {
            if inner.nodes[i].shape != shape {
                inner.bytes = inner.bytes - inner.nodes[i].bytes + bytes;
                inner.nodes[i].shape = shape;
                inner.nodes[i].result = result;
                inner.nodes[i].bytes = bytes;
            }
            inner.unlink(i);
            inner.push_front(i);
        } else {
            while inner.bytes + bytes > self.capacity_bytes && inner.tail != NIL {
                let lru = inner.tail;
                inner.unlink(lru);
                let old_key = inner.nodes[lru].key.clone();
                inner.map.remove(&old_key);
                inner.bytes -= inner.nodes[lru].bytes;
                inner.free.push(lru);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
            let node = Node {
                key: key.clone(),
                shape,
                result,
                bytes,
                prev: NIL,
                next: NIL,
            };
            let i = match inner.free.pop() {
                Some(i) => {
                    inner.nodes[i] = node;
                    i
                }
                None => {
                    inner.nodes.push(node);
                    inner.nodes.len() - 1
                }
            };
            inner.push_front(i);
            inner.map.insert(key, i);
            inner.bytes += bytes;
        }
    }

    /// Current counters and occupancy.
    pub fn stats(&self) -> ResultCacheStats {
        let inner = self.inner.lock().expect("result cache lock");
        ResultCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            collisions: self.collisions.load(Ordering::Relaxed),
            oversized: self.oversized.load(Ordering::Relaxed),
            len: inner.map.len(),
            bytes: inner.bytes,
            capacity_bytes: self.capacity_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppr_query::parse_query;

    fn key(data: u128, fp: u128) -> ResultKey {
        ResultKey {
            data: DbFingerprint(data),
            fingerprint: Fingerprint(fp),
            method: Method::Straightforward,
            seed: 0,
        }
    }

    fn shape() -> QueryShape {
        QueryShape::of(&parse_query("q(x) :- e(x, y)").unwrap())
    }

    fn other_shape() -> QueryShape {
        QueryShape::of(&parse_query("q(x) :- e(x, y), e(y, z)").unwrap())
    }

    fn result(rows: usize, tag: u32) -> Arc<CachedResult> {
        Arc::new(CachedResult {
            columns: vec!["x".into()],
            rows: (0..rows as Value)
                .map(|i| vec![tag as Value, i].into_boxed_slice())
                .collect(),
            stats: ExecStats::default(),
        })
    }

    #[test]
    fn hit_returns_rows_and_counts() {
        let c = ResultCache::new(1 << 16);
        assert!(c.get(&key(1, 7), &shape()).is_none());
        c.insert(key(1, 7), shape(), result(3, 9));
        let hit = c.get(&key(1, 7), &shape()).unwrap();
        assert_eq!(hit.rows.len(), 3);
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.len), (1, 1, 1));
        assert!(s.bytes > 0);
        assert!((s.hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn data_fingerprint_is_part_of_the_key() {
        let c = ResultCache::new(1 << 16);
        c.insert(key(1, 7), shape(), result(3, 9));
        assert!(
            c.get(&key(2, 7), &shape()).is_none(),
            "a content change must miss"
        );
        // …but the same content under any other name/version hits: only
        // the fingerprint identifies the data.
        assert!(c.get(&key(1, 7), &shape()).is_some());
    }

    #[test]
    fn shape_mismatch_is_a_collision() {
        let c = ResultCache::new(1 << 16);
        c.insert(key(1, 7), shape(), result(2, 1));
        assert!(c.get(&key(1, 7), &other_shape()).is_none());
        let s = c.stats();
        assert_eq!((s.collisions, s.misses), (1, 1));
        // The colliding query's result displaces the entry.
        c.insert(key(1, 7), other_shape(), result(5, 2));
        assert_eq!(c.get(&key(1, 7), &other_shape()).unwrap().rows.len(), 5);
        assert_eq!(c.stats().len, 1);
    }

    #[test]
    fn byte_budget_evicts_lru() {
        let one = result(10, 0).approx_bytes();
        let c = ResultCache::new(one * 2 + one / 2); // fits 2, not 3
        c.insert(key(1, 1), shape(), result(10, 1));
        c.insert(key(1, 2), shape(), result(10, 2));
        assert!(c.get(&key(1, 1), &shape()).is_some()); // 2 is LRU
        c.insert(key(1, 3), shape(), result(10, 3));
        assert!(c.get(&key(1, 2), &shape()).is_none(), "LRU evicted");
        assert!(c.get(&key(1, 1), &shape()).is_some());
        assert!(c.get(&key(1, 3), &shape()).is_some());
        let s = c.stats();
        assert_eq!(s.evictions, 1);
        assert!(s.bytes <= s.capacity_bytes);
    }

    #[test]
    fn oversized_results_are_refused_without_flushing() {
        let small = result(2, 0).approx_bytes();
        let c = ResultCache::new(small + small / 2);
        c.insert(key(1, 1), shape(), result(2, 1));
        c.insert(key(1, 2), shape(), result(10_000, 2));
        let s = c.stats();
        assert_eq!(s.oversized, 1);
        assert_eq!(s.evictions, 0, "the oversized insert must not evict");
        assert!(c.get(&key(1, 1), &shape()).is_some());
    }

    #[test]
    fn zero_budget_disables() {
        let c = ResultCache::new(0);
        assert!(!c.enabled());
        c.insert(key(1, 1), shape(), result(2, 1));
        assert!(c.get(&key(1, 1), &shape()).is_none());
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.len), (0, 0, 0));
    }

    #[test]
    fn same_shape_race_keeps_first() {
        let c = ResultCache::new(1 << 16);
        c.insert(key(1, 1), shape(), result(2, 1));
        c.insert(key(1, 1), shape(), result(9, 2));
        assert_eq!(c.get(&key(1, 1), &shape()).unwrap().rows.len(), 2);
        assert_eq!(c.stats().len, 1);
    }

    #[test]
    fn concurrent_access_is_consistent() {
        let c = Arc::new(ResultCache::new(1 << 14));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let c = c.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..200u64 {
                    let k = key(1, ((t * 4 + i) % 16) as u128);
                    if c.get(&k, &shape()).is_none() {
                        c.insert(k, shape(), result(3, i as u32));
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let s = c.stats();
        assert_eq!(s.hits + s.misses, 800);
        assert!(s.bytes <= s.capacity_bytes);
    }
}
