//! Blocking TCP client for the line protocol.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

use crate::engine::{EngineStats, Request, Response};
use crate::protocol;
use crate::ServiceError;

/// A connected client. One request is in flight at a time per client;
/// open more clients for concurrency (the server is thread-per-connection).
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a running [`crate::Server`].
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ServiceError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: stream,
        })
    }

    fn round_trip(&mut self, line: &str) -> Result<String, ServiceError> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut reply = String::new();
        if self.reader.read_line(&mut reply)? == 0 {
            return Err(ServiceError::Io("server closed the connection".into()));
        }
        Ok(reply)
    }

    /// Evaluates a query on the server.
    pub fn run(&mut self, request: &Request) -> Result<Response, ServiceError> {
        let reply = self.round_trip(&protocol::encode_request(request))?;
        protocol::decode_result(&reply)
    }

    /// Fetches engine + cache counters.
    pub fn stats(&mut self) -> Result<EngineStats, ServiceError> {
        let reply = self.round_trip("stats")?;
        protocol::decode_stats(&reply)
    }

    /// Liveness check.
    pub fn ping(&mut self) -> Result<(), ServiceError> {
        let reply = self.round_trip("ping")?;
        if reply.trim_end() == "ok pong" {
            Ok(())
        } else {
            Err(ServiceError::Protocol(format!(
                "unexpected ping reply: {}",
                reply.trim_end()
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, EngineConfig};
    use crate::server::Server;
    use ppr_core::methods::Method;
    use ppr_query::Database;

    fn serve() -> (Server, std::net::SocketAddr, Engine) {
        let mut db = Database::new();
        db.add(ppr_workload::edge_relation(3));
        let engine = Engine::start(db, EngineConfig::default());
        let server = Server::start("127.0.0.1:0", engine.handle()).expect("bind");
        let addr = server.local_addr();
        (server, addr, engine)
    }

    #[test]
    fn round_trips_over_tcp() {
        let (mut server, addr, engine) = serve();
        let mut client = Client::connect(addr).unwrap();
        client.ping().unwrap();

        let req = Request::new("q(x, y) :- edge(x, y), edge(y, x)", Method::EarlyProjection);
        let first = client.run(&req).unwrap();
        assert!(!first.cache_hit);
        assert_eq!(first.columns, vec!["x", "y"]);
        // K3 is symmetric: every ordered pair of distinct colors.
        assert_eq!(first.rows.len(), 6);

        let second = client.run(&req).unwrap();
        assert!(second.cache_hit, "second request must hit the plan cache");
        assert_eq!(first.rows, second.rows);

        let stats = client.stats().unwrap();
        assert_eq!(stats.served, 2);
        assert_eq!(stats.cache.hits, 1);
        assert_eq!(stats.cache.misses, 1);

        let bad = client.run(&Request::new("nope", Method::Naive));
        assert!(matches!(bad, Err(ServiceError::Parse(_))));

        server.shutdown();
        engine.shutdown();
    }

    #[test]
    fn multiple_clients_share_one_cache() {
        let (mut server, addr, engine) = serve();
        let req = Request::new("q() :- edge(a, b), edge(b, c)", Method::Straightforward);
        let mut c1 = Client::connect(addr).unwrap();
        let mut c2 = Client::connect(addr).unwrap();
        assert!(!c1.run(&req).unwrap().cache_hit);
        assert!(
            c2.run(&req).unwrap().cache_hit,
            "cache is engine-wide, not per-connection"
        );
        server.shutdown();
        engine.shutdown();
    }
}
