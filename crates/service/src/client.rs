//! Blocking TCP client for the line protocol.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

use ppr_relalg::Value;

use crate::catalog::DbVersion;
use crate::engine::{EngineStats, Request, Response};
use crate::protocol::{self, Ack, Command};
use crate::ServiceError;

/// A connected client. One request is in flight at a time per client;
/// open more clients for concurrency (the server is thread-per-connection).
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a running [`crate::Server`].
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ServiceError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: stream,
        })
    }

    fn round_trip(&mut self, line: &str) -> Result<String, ServiceError> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut reply = String::new();
        if self.reader.read_line(&mut reply)? == 0 {
            return Err(ServiceError::Io("server closed the connection".into()));
        }
        Ok(reply)
    }

    fn ack(&mut self, cmd: &Command) -> Result<Ack, ServiceError> {
        let reply = self.round_trip(&protocol::encode_command(cmd))?;
        protocol::decode_ack(&reply)
    }

    /// Evaluates a query on the server.
    pub fn run(&mut self, request: &Request) -> Result<Response, ServiceError> {
        let reply = self.round_trip(&protocol::encode_request(request))?;
        protocol::decode_result(&reply)
    }

    /// Selects this connection's session database: subsequent [`run`]
    /// requests without an explicit db target it. Returns the database's
    /// current version.
    ///
    /// [`run`]: Client::run
    pub fn use_db(&mut self, db: &str) -> Result<DbVersion, ServiceError> {
        let ack = self.ack(&Command::Use(db.to_string()))?;
        ack.version
            .ok_or_else(|| ServiceError::Protocol("use ack without version".into()))
    }

    /// Creates a new empty database on the server.
    pub fn create_db(&mut self, db: &str) -> Result<DbVersion, ServiceError> {
        let ack = self.ack(&Command::Create(db.to_string()))?;
        ack.version
            .ok_or_else(|| ServiceError::Protocol("create ack without version".into()))
    }

    /// Drops a database. In-flight requests holding its snapshot finish
    /// unaffected; new requests naming it fail with
    /// [`ServiceError::UnknownDatabase`].
    pub fn drop_db(&mut self, db: &str) -> Result<(), ServiceError> {
        self.ack(&Command::Drop(db.to_string())).map(|_| ())
    }

    /// Bulk-loads one relation of `db`, replacing any existing relation
    /// of that name, and returns the database's new version. Every
    /// mutation bumps the version, invalidating cached plans and results.
    pub fn load(
        &mut self,
        db: &str,
        rel: &str,
        tuples: Vec<Box<[Value]>>,
    ) -> Result<DbVersion, ServiceError> {
        let ack = self.ack(&Command::Load {
            db: db.to_string(),
            rel: rel.to_string(),
            tuples,
        })?;
        ack.version
            .ok_or_else(|| ServiceError::Protocol("load ack without version".into()))
    }

    /// Appends one tuple to a relation of `db` (creating the relation on
    /// first `add`) and returns the database's new version.
    pub fn add(
        &mut self,
        db: &str,
        rel: &str,
        tuple: Box<[Value]>,
    ) -> Result<DbVersion, ServiceError> {
        let ack = self.ack(&Command::Add {
            db: db.to_string(),
            rel: rel.to_string(),
            tuple,
        })?;
        ack.version
            .ok_or_else(|| ServiceError::Protocol("add ack without version".into()))
    }

    /// Fetches engine + cache counters.
    pub fn stats(&mut self) -> Result<EngineStats, ServiceError> {
        let reply = self.round_trip("stats")?;
        protocol::decode_stats(&reply)
    }

    /// Liveness check.
    pub fn ping(&mut self) -> Result<(), ServiceError> {
        let reply = self.round_trip("ping")?;
        if reply.trim_end() == "ok pong" {
            Ok(())
        } else {
            Err(ServiceError::Protocol(format!(
                "unexpected ping reply: {}",
                reply.trim_end()
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use crate::engine::{Engine, EngineConfig};
    use crate::server::Server;
    use ppr_core::methods::Method;
    use ppr_query::Database;

    fn serve() -> (Server, std::net::SocketAddr, Engine) {
        let mut db = Database::new();
        db.add(ppr_workload::edge_relation(3));
        let engine = Engine::start(Catalog::with_default(db), EngineConfig::default());
        let server = Server::start("127.0.0.1:0", engine.handle()).expect("bind");
        let addr = server.local_addr();
        (server, addr, engine)
    }

    #[test]
    fn round_trips_over_tcp() {
        let (mut server, addr, engine) = serve();
        let mut client = Client::connect(addr).unwrap();
        client.ping().unwrap();

        let req = Request::new("q(x, y) :- edge(x, y), edge(y, x)", Method::EarlyProjection);
        let first = client.run(&req).unwrap();
        assert!(!first.cache_hit);
        assert!(!first.result_cache_hit);
        assert_eq!(first.columns, vec!["x", "y"]);
        // K3 is symmetric: every ordered pair of distinct colors.
        assert_eq!(first.rows.len(), 6);

        let second = client.run(&req).unwrap();
        assert!(second.cache_hit, "repeat request must skip planning");
        assert!(second.result_cache_hit, "…via the result cache");
        assert_eq!(first.rows, second.rows);

        let stats = client.stats().unwrap();
        assert_eq!(stats.served, 2);
        assert_eq!(stats.results.hits, 1);
        assert_eq!(stats.results.misses, 1);
        assert_eq!(stats.cache.misses, 1, "only the cold request planned");

        let bad = client.run(&Request::new("nope", Method::Naive));
        assert!(matches!(bad, Err(ServiceError::Parse(_))));

        server.shutdown();
        engine.shutdown();
    }

    #[test]
    fn multiple_clients_share_one_cache() {
        let (mut server, addr, engine) = serve();
        let req = Request::new("q() :- edge(a, b), edge(b, c)", Method::Straightforward);
        let mut c1 = Client::connect(addr).unwrap();
        let mut c2 = Client::connect(addr).unwrap();
        assert!(!c1.run(&req).unwrap().cache_hit);
        assert!(
            c2.run(&req).unwrap().cache_hit,
            "caches are engine-wide, not per-connection"
        );
        server.shutdown();
        engine.shutdown();
    }

    #[test]
    fn session_database_lifecycle_over_tcp() {
        let (mut server, addr, engine) = serve();
        let mut client = Client::connect(addr).unwrap();

        let v1 = client.create_db("graphs").unwrap();
        let v2 = client
            .load(
                "graphs",
                "e",
                vec![
                    vec![1, 2].into_boxed_slice(),
                    vec![2, 3].into_boxed_slice(),
                    vec![3, 1].into_boxed_slice(),
                ],
            )
            .unwrap();
        assert!(v2 > v1, "load must bump the version");

        // `use` routes subsequent runs at the session database.
        client.use_db("graphs").unwrap();
        let req = Request::query("q() :- e(x,y), e(y,z), e(z,x)").method(Method::Straightforward);
        let triangle = client.run(&req).unwrap();
        assert!(!triangle.rows.is_empty(), "the 3-cycle is a triangle");

        // Another connection has its own session: the same run without a
        // db targets `default`, which has no relation `e`.
        let mut other = Client::connect(addr).unwrap();
        assert!(matches!(
            other.run(&req),
            Err(ServiceError::MissingRelation(_))
        ));
        // …but an explicit db= reaches it from any connection.
        let explicit = other.run(&req.clone().on("graphs")).unwrap();
        assert_eq!(explicit.rows, triangle.rows);

        // Mutations invalidate by version bump.
        let v3 = client
            .add("graphs", "e", vec![9, 9].into_boxed_slice())
            .unwrap();
        assert!(v3 > v2);
        assert!(!client.run(&req).unwrap().result_cache_hit);

        // Drop: the session falls back to default, named access fails.
        client.drop_db("graphs").unwrap();
        assert!(matches!(
            other.run(&req.clone().on("graphs")),
            Err(ServiceError::UnknownDatabase(_))
        ));
        assert!(matches!(
            client.run(&req),
            Err(ServiceError::MissingRelation(_))
        ));

        // Errors from catalog verbs are typed.
        assert!(matches!(
            client.use_db("graphs"),
            Err(ServiceError::UnknownDatabase(_))
        ));
        assert!(matches!(
            client.add("default", "edge", vec![1].into_boxed_slice()),
            Err(ServiceError::Catalog(_))
        ));
        // An empty load is unrepresentable on the wire: the protocol
        // rejects it before the catalog ever sees it.
        assert!(matches!(
            client.load("default", "edge", vec![]),
            Err(ServiceError::Protocol(_))
        ));

        server.shutdown();
        engine.shutdown();
    }
}
