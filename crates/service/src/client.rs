//! Blocking TCP clients for the line protocol: the serial [`Client`]
//! (protocol v1) and the pipelined [`Pipeline`] (protocol v2).

use std::collections::{HashMap, HashSet};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use ppr_relalg::Value;

use ppr_obs::SlowEntry;

use crate::catalog::{DbInfo, DbVersion};
use crate::engine::{EngineStats, ExplainMode, Request, Response};
use crate::protocol::{self, Ack, Command, ExplainReport, TraceReport};
use crate::ServiceError;

/// A connected client. One request is in flight at a time per client;
/// open more clients for concurrency (the server is thread-per-connection).
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a running [`crate::Server`].
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ServiceError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: stream,
        })
    }

    fn round_trip(&mut self, line: &str) -> Result<String, ServiceError> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut reply = String::new();
        if self.reader.read_line(&mut reply)? == 0 {
            return Err(ServiceError::Io("server closed the connection".into()));
        }
        Ok(reply)
    }

    fn ack(&mut self, cmd: &Command) -> Result<Ack, ServiceError> {
        let reply = self.round_trip(&protocol::encode_command(cmd))?;
        protocol::decode_ack(&reply)
    }

    /// Evaluates a query on the server.
    pub fn run(&mut self, request: &Request) -> Result<Response, ServiceError> {
        let reply = self.round_trip(&protocol::encode_request(request))?;
        protocol::decode_result(&reply)
    }

    /// Selects this connection's session database: subsequent [`run`]
    /// requests without an explicit db target it. Returns the database's
    /// current version.
    ///
    /// [`run`]: Client::run
    pub fn use_db(&mut self, db: &str) -> Result<DbVersion, ServiceError> {
        let ack = self.ack(&Command::Use(db.to_string()))?;
        ack.version
            .ok_or_else(|| ServiceError::Protocol("use ack without version".into()))
    }

    /// Creates a new empty database on the server.
    pub fn create_db(&mut self, db: &str) -> Result<DbVersion, ServiceError> {
        let ack = self.ack(&Command::Create(db.to_string()))?;
        ack.version
            .ok_or_else(|| ServiceError::Protocol("create ack without version".into()))
    }

    /// Drops a database. In-flight requests holding its snapshot finish
    /// unaffected; new requests naming it fail with
    /// [`ServiceError::UnknownDatabase`].
    pub fn drop_db(&mut self, db: &str) -> Result<(), ServiceError> {
        self.ack(&Command::Drop(db.to_string())).map(|_| ())
    }

    /// Bulk-loads one relation of `db`, replacing any existing relation
    /// of that name, and returns the database's new version. Every
    /// mutation bumps the version, invalidating cached plans and results.
    pub fn load(
        &mut self,
        db: &str,
        rel: &str,
        tuples: Vec<Box<[Value]>>,
    ) -> Result<DbVersion, ServiceError> {
        let ack = self.ack(&Command::Load {
            db: db.to_string(),
            rel: rel.to_string(),
            tuples,
        })?;
        ack.version
            .ok_or_else(|| ServiceError::Protocol("load ack without version".into()))
    }

    /// Appends one tuple to a relation of `db` (creating the relation on
    /// first `add`) and returns the database's new version.
    pub fn add(
        &mut self,
        db: &str,
        rel: &str,
        tuple: Box<[Value]>,
    ) -> Result<DbVersion, ServiceError> {
        let ack = self.ack(&Command::Add {
            db: db.to_string(),
            rel: rel.to_string(),
            tuple,
        })?;
        ack.version
            .ok_or_else(|| ServiceError::Protocol("add ack without version".into()))
    }

    /// Fetches engine + cache counters (including per-phase latency
    /// quantiles from the server's shared histograms).
    pub fn stats(&mut self) -> Result<EngineStats, ServiceError> {
        let reply = self.round_trip("stats")?;
        protocol::decode_stats(&reply)
    }

    /// Evaluates a query and returns where its time went instead of the
    /// rows: the worker's per-phase span breakdown plus the execution
    /// digest. Same grammar and budget semantics as [`run`].
    ///
    /// [`run`]: Client::run
    pub fn trace(&mut self, request: &Request) -> Result<TraceReport, ServiceError> {
        let reply = self.round_trip(&protocol::encode_trace(request))?;
        protocol::decode_trace_report(&reply)
    }

    /// Explains a query: the optimizer pass trace plus the physical
    /// operator tree. `mode` picks between rendering the planned shape
    /// without executing ([`ExplainMode::Plan`]) and executing with
    /// per-operator profiling ([`ExplainMode::Analyze`]); a request
    /// already carrying a mode is overridden. Explain bypasses the
    /// server's plan and result caches.
    pub fn explain(
        &mut self,
        request: &Request,
        mode: ExplainMode,
    ) -> Result<ExplainReport, ServiceError> {
        let req = request.clone().explain(mode);
        let reply = self.round_trip(&protocol::encode_explain(&req))?;
        protocol::decode_explain_report(&reply)
    }

    /// Fetches the server's slow-query log, slowest first.
    pub fn slowlog(&mut self) -> Result<Vec<SlowEntry>, ServiceError> {
        let reply = self.round_trip("slowlog")?;
        protocol::decode_slowlog(&reply)
    }

    /// Lists the server's databases: name, version, content fingerprint,
    /// and relation count, sorted by name.
    pub fn dbs(&mut self) -> Result<Vec<DbInfo>, ServiceError> {
        let reply = self.round_trip("dbs")?;
        protocol::decode_dbs(&reply)
    }

    /// Liveness check.
    pub fn ping(&mut self) -> Result<(), ServiceError> {
        let reply = self.round_trip("ping")?;
        if reply.trim_end() == "ok pong" {
            Ok(())
        } else {
            Err(ServiceError::Protocol(format!(
                "unexpected ping reply: {}",
                reply.trim_end()
            )))
        }
    }
}

/// Receipt for a request submitted on a [`Pipeline`]; redeem it exactly
/// once with [`Pipeline::wait`] (or [`Pipeline::wait_ack`] for tagged
/// catalog verbs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ticket(u64);

/// A pipelined (protocol v2) connection: many tagged requests in flight
/// at once, completed by the server in any order.
///
/// [`submit`] queues a request without waiting — request bytes are
/// buffered and flushed lazily, so a burst of submissions costs one
/// write syscall, which is where the single-core pipelining win comes
/// from. [`wait`] redeems a ticket, stashing any other replies that
/// arrive first. The connection respects the server's advertised
/// window: submitting past it first drains one completion, so the
/// client can never deadlock against the server's read backpressure.
///
/// ```no_run
/// # use ppr_service::{Pipeline, Request};
/// # use ppr_core::methods::Method;
/// # fn main() -> Result<(), ppr_service::ServiceError> {
/// let mut pipe = Pipeline::connect("127.0.0.1:7878")?;
/// let req = Request::query("q() :- edge(x,y), edge(y,z), edge(z,x)")
///     .method(Method::EarlyProjection);
/// let a = pipe.submit(&req)?;
/// let b = pipe.submit(&req)?;
/// let rb = pipe.wait(b)?; // order of redemption is free
/// let ra = pipe.wait(a)?;
/// assert_eq!(ra.rows, rb.rows);
/// # Ok(()) }
/// ```
///
/// [`submit`]: Pipeline::submit
/// [`wait`]: Pipeline::wait
pub struct Pipeline {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    next_id: u64,
    /// Ids submitted and not yet redeemed or stashed.
    pending: HashSet<u64>,
    /// Replies that arrived while waiting for a different id.
    ready: HashMap<u64, String>,
    window: usize,
}

impl Pipeline {
    /// Connects to a running [`crate::Server`] and performs the
    /// `hello proto=2` handshake. Fails with [`ServiceError::Protocol`]
    /// against a v1-only server.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Pipeline, ServiceError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        let mut pipe = Pipeline {
            reader,
            writer: BufWriter::new(stream),
            next_id: 1,
            pending: HashSet::new(),
            ready: HashMap::new(),
            window: 1,
        };
        pipe.writer.write_all(b"hello proto=2\n")?;
        pipe.writer.flush()?;
        let mut reply = String::new();
        if pipe.reader.read_line(&mut reply)? == 0 {
            return Err(ServiceError::Io("server closed the connection".into()));
        }
        let ack = protocol::decode_hello_ok(&reply)?;
        if ack.proto < 2 || ack.window == 0 {
            return Err(ServiceError::Protocol(format!(
                "server negotiated proto={} window={}",
                ack.proto, ack.window
            )));
        }
        pipe.window = ack.window;
        Ok(pipe)
    }

    /// The server's in-flight window for this connection.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Requests currently in flight (submitted, reply not yet read).
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    fn submit_line(&mut self, line: &str) -> Result<Ticket, ServiceError> {
        // Never outrun the server's window: it would stop reading, our
        // writes would stall in TCP, and a client that only writes would
        // deadlock. Draining one completion first makes that impossible.
        while self.pending.len() >= self.window {
            self.writer.flush()?;
            self.stash_one()?;
        }
        let id = self.next_id;
        self.next_id += 1;
        let tagged = protocol::tag_request(id, line);
        self.writer.write_all(tagged.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.pending.insert(id);
        Ok(Ticket(id))
    }

    /// Queues a query without waiting for the result.
    pub fn submit(&mut self, request: &Request) -> Result<Ticket, ServiceError> {
        self.submit_line(&protocol::encode_request(request))
    }

    /// Queues a tagged `use`: the session switch takes effect, in order,
    /// for every request submitted after it, while earlier in-flight
    /// requests keep their database — the server pins snapshots at
    /// submission order. Redeem with [`Pipeline::wait_ack`].
    pub fn submit_use(&mut self, db: &str) -> Result<Ticket, ServiceError> {
        self.submit_line(&protocol::encode_command(&Command::Use(db.to_string())))
    }

    /// Redeems a ticket for its query result, reading (and stashing)
    /// other replies until this one arrives.
    pub fn wait(&mut self, ticket: Ticket) -> Result<Response, ServiceError> {
        let line = self.wait_line(ticket)?;
        protocol::decode_result(&line)
    }

    /// Redeems a ticket from [`Pipeline::submit_use`] for its ack.
    pub fn wait_ack(&mut self, ticket: Ticket) -> Result<Ack, ServiceError> {
        let line = self.wait_line(ticket)?;
        protocol::decode_ack(&line)
    }

    fn wait_line(&mut self, Ticket(id): Ticket) -> Result<String, ServiceError> {
        loop {
            if let Some(line) = self.ready.remove(&id) {
                return Ok(line);
            }
            if !self.pending.contains(&id) {
                return Err(ServiceError::Protocol(format!(
                    "ticket {id} was never submitted or already redeemed"
                )));
            }
            self.writer.flush()?;
            self.stash_one()?;
        }
    }

    /// Reads one reply line and files it by id.
    fn stash_one(&mut self) -> Result<(), ServiceError> {
        let mut reply = String::new();
        if self.reader.read_line(&mut reply)? == 0 {
            return Err(ServiceError::Io("server closed the connection".into()));
        }
        let (id, payload) = protocol::split_reply_tag(&reply)?;
        let Some(id) = id else {
            return Err(ServiceError::Protocol(format!(
                "untagged reply on a pipelined connection: `{}`",
                payload.trim_end()
            )));
        };
        if !self.pending.remove(&id) {
            return Err(ServiceError::Protocol(format!("reply for unknown id {id}")));
        }
        self.ready.insert(id, payload);
        Ok(())
    }

    /// Submits every request, then collects the results in request
    /// order: the whole batch rides the window, so the server sees it
    /// as one burst. Per-request failures come back in the `Vec`;
    /// transport failure fails the call.
    pub fn run_batch(
        &mut self,
        requests: &[Request],
    ) -> Result<Vec<Result<Response, ServiceError>>, ServiceError> {
        let tickets: Vec<Ticket> = requests
            .iter()
            .map(|r| self.submit(r))
            .collect::<Result<_, _>>()?;
        tickets
            .into_iter()
            .map(|t| match self.wait_line(t) {
                Ok(line) => Ok(protocol::decode_result(&line)),
                Err(e) => Err(e),
            })
            .collect()
    }
}

impl Drop for Pipeline {
    /// Best-effort drain: collect outstanding replies (briefly) so the
    /// socket closes cleanly instead of resetting under the server's
    /// in-flight completions.
    fn drop(&mut self) {
        if self.pending.is_empty() || self.writer.flush().is_err() {
            return;
        }
        let _ = self
            .reader
            .get_ref()
            .set_read_timeout(Some(Duration::from_secs(2)));
        while !self.pending.is_empty() {
            if self.stash_one().is_err() {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use crate::engine::{Engine, EngineConfig};
    use crate::server::Server;
    use ppr_core::methods::Method;
    use ppr_query::Database;

    fn serve() -> (Server, std::net::SocketAddr, Engine) {
        let mut db = Database::new();
        db.add(ppr_workload::edge_relation(3));
        let engine = Engine::start(Catalog::with_default(db), EngineConfig::default());
        let server = Server::builder()
            .addr("127.0.0.1:0")
            .engine(engine.handle())
            .start()
            .expect("bind");
        let addr = server.local_addr();
        (server, addr, engine)
    }

    #[test]
    fn round_trips_over_tcp() {
        let (mut server, addr, engine) = serve();
        let mut client = Client::connect(addr).unwrap();
        client.ping().unwrap();

        let req = Request::new("q(x, y) :- edge(x, y), edge(y, x)", Method::EarlyProjection);
        let first = client.run(&req).unwrap();
        assert!(!first.cache_hit);
        assert!(!first.result_cache_hit);
        assert_eq!(first.columns, vec!["x", "y"]);
        // K3 is symmetric: every ordered pair of distinct colors.
        assert_eq!(first.rows.len(), 6);

        let second = client.run(&req).unwrap();
        assert!(second.cache_hit, "repeat request must skip planning");
        assert!(second.result_cache_hit, "…via the result cache");
        assert_eq!(first.rows, second.rows);

        let stats = client.stats().unwrap();
        assert_eq!(stats.served, 2);
        assert_eq!(stats.results.hits, 1);
        assert_eq!(stats.results.misses, 1);
        assert_eq!(stats.cache.misses, 1, "only the cold request planned");

        let bad = client.run(&Request::new("nope", Method::Naive));
        assert!(matches!(bad, Err(ServiceError::Parse(_))));

        server.shutdown();
        engine.shutdown();
    }

    #[test]
    fn pipeline_round_trips_out_of_order() {
        let (mut server, addr, engine) = serve();
        let mut pipe = Pipeline::connect(addr).unwrap();
        assert!(pipe.window() >= 1);

        let reqs: Vec<Request> = [
            "q(x, y) :- edge(x, y), edge(y, x)",
            "q() :- edge(a, b), edge(b, c)",
            "q(x) :- edge(x, y), edge(y, z), edge(z, x)",
        ]
        .iter()
        .map(|r| Request::new(*r, Method::EarlyProjection))
        .collect();

        // Serial ground truth over the same engine.
        let mut serial = Client::connect(addr).unwrap();
        let expected: Vec<Response> = reqs.iter().map(|r| serial.run(r).unwrap()).collect();

        let tickets: Vec<Ticket> = reqs.iter().map(|r| pipe.submit(r).unwrap()).collect();
        assert_eq!(pipe.in_flight(), 3);
        // Redeem in reverse order: the stash demuxes whatever arrives.
        for (ticket, want) in tickets.into_iter().zip(&expected).rev() {
            let got = pipe.wait(ticket).unwrap();
            assert_eq!(got.rows, want.rows);
            assert_eq!(got.columns, want.columns);
        }
        assert_eq!(pipe.in_flight(), 0);

        // A ticket redeems exactly once.
        let t = pipe.submit(&reqs[0]).unwrap();
        pipe.wait(t).unwrap();
        assert!(matches!(pipe.wait(t), Err(ServiceError::Protocol(_))));

        // run_batch keeps request order regardless of completion order.
        let batch = pipe.run_batch(&reqs).unwrap();
        assert_eq!(batch.len(), 3);
        for (got, want) in batch.iter().zip(&expected) {
            assert_eq!(got.as_ref().unwrap().rows, want.rows);
        }

        // Per-request errors ride inside the batch.
        let mixed = pipe
            .run_batch(&[
                reqs[0].clone(),
                Request::new("nope", Method::Naive),
                reqs[1].clone(),
            ])
            .unwrap();
        assert!(mixed[0].is_ok());
        assert!(matches!(mixed[1], Err(ServiceError::Parse(_))));
        assert!(mixed[2].is_ok());

        server.shutdown();
        engine.shutdown();
    }

    #[test]
    fn pipeline_submits_past_the_window_without_deadlock() {
        let (mut server, addr, engine) = serve();
        let mut pipe = Pipeline::connect(addr).unwrap();
        let req = Request::new("q() :- edge(a, b), edge(b, c)", Method::Straightforward);
        let n = pipe.window() * 2 + 3;
        let reqs = vec![req; n];
        let results = pipe.run_batch(&reqs).unwrap();
        assert_eq!(results.len(), n);
        assert!(results.iter().all(|r| r.is_ok()));
        server.shutdown();
        engine.shutdown();
    }

    #[test]
    fn pipelined_use_orders_against_surrounding_runs() {
        let (mut server, addr, engine) = serve();
        let mut setup = Client::connect(addr).unwrap();
        setup.create_db("left").unwrap();
        setup
            .load("left", "e", vec![vec![1, 1].into_boxed_slice()])
            .unwrap();
        setup.create_db("right").unwrap();
        setup
            .load(
                "right",
                "e",
                vec![vec![1, 1].into_boxed_slice(), vec![2, 2].into_boxed_slice()],
            )
            .unwrap();

        let mut pipe = Pipeline::connect(addr).unwrap();
        let req = Request::query("q(x) :- e(x, y)").method(Method::Straightforward);
        let u1 = pipe.submit_use("left").unwrap();
        let a = pipe.submit(&req).unwrap();
        let u2 = pipe.submit_use("right").unwrap();
        let b = pipe.submit(&req).unwrap();
        // Session switches take effect in submission order even though
        // everything is in flight at once.
        assert_eq!(pipe.wait(b).unwrap().rows.len(), 2);
        assert_eq!(pipe.wait(a).unwrap().rows.len(), 1);
        assert_eq!(pipe.wait_ack(u1).unwrap().db, "left");
        assert_eq!(pipe.wait_ack(u2).unwrap().db, "right");

        server.shutdown();
        engine.shutdown();
    }

    #[test]
    fn trace_slowlog_and_span_stats_over_tcp() {
        let (mut server, addr, engine) = serve();
        let mut client = Client::connect(addr).unwrap();

        let req = Request::new("q(x, y) :- edge(x, y), edge(y, x)", Method::EarlyProjection);
        let cold = client.trace(&req).unwrap();
        assert!(!cold.result_cache_hit);
        assert_eq!(cold.rows, 6, "K3 symmetric pairs");
        assert!(cold.tuples_flowed > 0, "cold trace executed");
        assert!(
            cold.spans.total() <= cold.total_us,
            "span sum {} must not exceed wall time {}",
            cold.spans.total(),
            cold.total_us
        );

        // The repeat is a result-cache hit: exec span zero, flagged.
        let warm = client.trace(&req).unwrap();
        assert!(warm.result_cache_hit);
        assert_eq!(warm.spans.get(ppr_obs::Phase::Exec), 0);
        assert_eq!(warm.spans.get(ppr_obs::Phase::Plan), 0);

        // Both traced requests landed in the shared histograms.
        let stats = client.stats().unwrap();
        assert_eq!(stats.spans.total.count, 2);
        assert_eq!(
            stats.spans.phase[ppr_obs::Phase::Exec as usize].count,
            2,
            "every completion records every phase"
        );

        // The slow-query log saw both, slowest first, with the shared
        // identity (same db/fingerprint) and outcome vocabulary.
        let log = client.slowlog().unwrap();
        assert_eq!(log.len(), 2);
        assert!(log[0].total_us >= log[1].total_us);
        assert_eq!(log[0].fingerprint, log[1].fingerprint);
        assert!(log.iter().all(|e| e.outcome == "ok"));

        // A failed request shows up with its error kind as the outcome.
        let _ = client.run(&Request::new("q() :- nope(x, y)", Method::Naive));
        let log = client.slowlog().unwrap();
        assert_eq!(
            log.len(),
            2,
            "no identity before fingerprinting → not logged"
        );
        // A fresh query (no cached result to bypass the budget) that
        // cannot fit one tuple of flow.
        let heavy = Request::new(
            "q() :- edge(a, b), edge(b, c), edge(c, d)",
            Method::Straightforward,
        )
        .max_tuples(1);
        let _ = client.run(&heavy);
        let log = client.slowlog().unwrap();
        assert!(
            log.iter().any(|e| e.outcome == "budget"),
            "{:?}",
            log.iter().map(|e| e.outcome.clone()).collect::<Vec<_>>()
        );

        server.shutdown();
        engine.shutdown();
    }

    #[test]
    fn multiple_clients_share_one_cache() {
        let (mut server, addr, engine) = serve();
        let req = Request::new("q() :- edge(a, b), edge(b, c)", Method::Straightforward);
        let mut c1 = Client::connect(addr).unwrap();
        let mut c2 = Client::connect(addr).unwrap();
        assert!(!c1.run(&req).unwrap().cache_hit);
        assert!(
            c2.run(&req).unwrap().cache_hit,
            "caches are engine-wide, not per-connection"
        );
        server.shutdown();
        engine.shutdown();
    }

    #[test]
    fn session_database_lifecycle_over_tcp() {
        let (mut server, addr, engine) = serve();
        let mut client = Client::connect(addr).unwrap();

        let v1 = client.create_db("graphs").unwrap();
        let v2 = client
            .load(
                "graphs",
                "e",
                vec![
                    vec![1, 2].into_boxed_slice(),
                    vec![2, 3].into_boxed_slice(),
                    vec![3, 1].into_boxed_slice(),
                ],
            )
            .unwrap();
        assert!(v2 > v1, "load must bump the version");

        // `use` routes subsequent runs at the session database.
        client.use_db("graphs").unwrap();
        let req = Request::query("q() :- e(x,y), e(y,z), e(z,x)").method(Method::Straightforward);
        let triangle = client.run(&req).unwrap();
        assert!(!triangle.rows.is_empty(), "the 3-cycle is a triangle");

        // Another connection has its own session: the same run without a
        // db targets `default`, which has no relation `e`.
        let mut other = Client::connect(addr).unwrap();
        assert!(matches!(
            other.run(&req),
            Err(ServiceError::MissingRelation(_))
        ));
        // …but an explicit db= reaches it from any connection.
        let explicit = other.run(&req.clone().on("graphs")).unwrap();
        assert_eq!(explicit.rows, triangle.rows);

        // Mutations invalidate by version bump.
        let v3 = client
            .add("graphs", "e", vec![9, 9].into_boxed_slice())
            .unwrap();
        assert!(v3 > v2);
        assert!(!client.run(&req).unwrap().result_cache_hit);

        // Drop: the session falls back to default, named access fails.
        client.drop_db("graphs").unwrap();
        assert!(matches!(
            other.run(&req.clone().on("graphs")),
            Err(ServiceError::UnknownDatabase(_))
        ));
        assert!(matches!(
            client.run(&req),
            Err(ServiceError::MissingRelation(_))
        ));

        // Errors from catalog verbs are typed.
        assert!(matches!(
            client.use_db("graphs"),
            Err(ServiceError::UnknownDatabase(_))
        ));
        assert!(matches!(
            client.add("default", "edge", vec![1].into_boxed_slice()),
            Err(ServiceError::Catalog(_))
        ));
        // An empty load is unrepresentable on the wire: the protocol
        // rejects it before the catalog ever sees it.
        assert!(matches!(
            client.load("default", "edge", vec![]),
            Err(ServiceError::Protocol(_))
        ));

        server.shutdown();
        engine.shutdown();
    }
}
