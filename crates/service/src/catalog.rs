//! A multi-database catalog with copy-on-write versioned snapshots,
//! content-hash identities, and optional durability.
//!
//! The paper's regime is many queries over *tiny* databases, and a
//! long-lived server wants to hold many such databases at once — one per
//! tenant, workload, or experiment — and mutate them over the wire
//! without pausing query traffic. The [`Catalog`] is that collection:
//!
//! * Every database carries a [`DbVersion`] that increases monotonically
//!   across the whole catalog on every mutation (`create`, `load`, `add`,
//!   `insert`) — the number clients see in `ok db=… version=…` acks and
//!   the slow-query log. With a durable catalog the version is persisted
//!   and resumes above its pre-crash high-water mark.
//! * Every snapshot also carries a [`DbFingerprint`]: a 128-bit
//!   **content hash** of the database (relation names, arities, and
//!   tuple *sets* — independent of load order, database name, and
//!   internal column ids). The result and plan caches key on it, so
//!   isomorphic databases share cache entries and a recovered database
//!   resumes its pre-crash cache identity — a restart (or a re-load of
//!   identical data under another name) does not re-plan or re-execute
//!   anything the cache still holds.
//! * Reads are **copy-on-write snapshots**: [`Catalog::snapshot`] hands
//!   back an `Arc<Database>` plus its version and fingerprint, and
//!   in-flight requests keep that consistent snapshot for as long as
//!   they need it. Writers build the successor database beside the
//!   current one (a [`Database`] clone is cheap — a map of
//!   `Arc<Relation>` handles) and publish it with a brief map-lock swap,
//!   so **writers never block readers** — not even on the durable
//!   catalog's commit `fsync`, which happens outside the map lock.
//! * Writers are serialized against each other by a separate mutex, so
//!   two concurrent `add`s both land (no lost read-modify-write).
//!
//! ## Durability
//!
//! [`Catalog::open`] recovers a catalog from a data directory and wires
//! a [`Persister`] (the `ppr-durability` store) into every mutating
//! path: the mutation is logged — and under the default sync policy
//! `fsync`ed — *before* it is published, so a client that saw `ok` will
//! see the mutation after a crash. A persist failure aborts the
//! mutation with [`CatalogError::Persist`]; the in-memory state never
//! runs ahead of the log. Catalogs built with [`Catalog::new`] /
//! [`Catalog::with_default`] have no persister and behave exactly as
//! before — memory-only mode is byte-for-byte unchanged on the wire.
//!
//! Relations created over the wire get fresh [`AttrId`] columns from a
//! catalog-wide allocator, far above the interned query-variable space,
//! so wire-loaded schemas can never collide with query variables or the
//! CLI's `--rel` columns. Attribute ids are *not* persisted — recovery
//! re-allocates them — which is safe because query evaluation binds
//! columns by position and the fingerprint deliberately excludes them.

use std::collections::hash_map::DefaultHasher;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use ppr_durability::{
    DbContents, DurabilityStats, DurableStore, Persister, RecoveryError, RecoveryReport,
    RelationData, StoreOptions,
};
use ppr_query::Database;
use ppr_relalg::{AttrId, Relation, Schema, Value};
use rustc_hash::FxHashMap;

/// The database every request runs against when it does not name one.
pub const DEFAULT_DB: &str = "default";

/// First column id handed to wire-created relations. Above the CLI's
/// `--rel` base (10M) and far above interned query variables (which start
/// at 0), so the three id spaces never collide.
const WIRE_COL_BASE: u32 = 20_000_000;

/// A monotonically increasing database version. Bumped by every mutation
/// and unique across the catalog's lifetime (two live databases never
/// share a version). Durable catalogs persist it, so versions keep
/// increasing across restarts. The caches key on [`DbFingerprint`], not
/// on this — the version is the *observable* mutation counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct DbVersion(pub u64);

impl fmt::Display for DbVersion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A 128-bit content hash of one database: relation names, arities, and
/// tuple sets, combined order-independently. Two databases with the same
/// content — regardless of name, load order, or internal column ids —
/// get the same fingerprint, and any content change (including via
/// crash recovery replaying a different history) changes it.
///
/// The hash is two independently-seeded passes of the standard library's
/// deterministic SipHash (`DefaultHasher::new`), so it is stable across
/// processes of the same build — which is what lets a recovered database
/// resume its pre-crash cache identity. It is *not* cryptographic:
/// collisions are astronomically unlikely by accident but constructible
/// on purpose, the same stance the query-fingerprint caches take.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct DbFingerprint(pub u128);

impl fmt::Display for DbFingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// Content hash of `db`. Relations are visited in sorted name order and
/// each relation's tuples are combined with an order-independent sum, so
/// the result depends only on the database's logical content.
pub fn fingerprint_db(db: &Database) -> DbFingerprint {
    let mut words = [0u64; 2];
    for (pass, word) in words.iter_mut().enumerate() {
        let mut h = DefaultHasher::new();
        // Domain-separate the two passes so they are independent.
        (0x7072_7062_6466_7030u64 + pass as u64).hash(&mut h);
        let names = db.names();
        names.len().hash(&mut h);
        for name in names {
            let rel = db.get(name).expect("name came from names()");
            name.hash(&mut h);
            rel.arity().hash(&mut h);
            let mut sum = 0u64;
            let mut count = 0u64;
            for t in rel.tuples() {
                let mut th = DefaultHasher::new();
                (pass as u64).hash(&mut th);
                t.hash(&mut th);
                sum = sum.wrapping_add(th.finish());
                count += 1;
            }
            count.hash(&mut h);
            sum.hash(&mut h);
        }
        *word = h.finish();
    }
    DbFingerprint(((words[0] as u128) << 64) | words[1] as u128)
}

/// A consistent read view of one database: the shared data plus the
/// version and content fingerprint it was published under. Requests hold
/// one snapshot end to end, so a concurrent mutation can never tear a
/// single evaluation.
#[derive(Debug, Clone)]
pub struct DbSnapshot {
    /// The shared, immutable database at this version.
    pub db: Arc<Database>,
    /// The version the snapshot was published under.
    pub version: DbVersion,
    /// Content hash of `db` — the caches' data-identity key.
    pub fingerprint: DbFingerprint,
}

/// One row of [`Catalog::list`] — what the `dbs` wire verb reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DbInfo {
    /// Database name.
    pub name: String,
    /// Current version.
    pub version: DbVersion,
    /// Current content fingerprint.
    pub fingerprint: DbFingerprint,
    /// Number of relations.
    pub relations: usize,
}

/// Why a catalog operation was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CatalogError {
    /// The named database does not exist.
    UnknownDatabase(String),
    /// `create` targeted a name that already exists.
    DatabaseExists(String),
    /// A tuple's arity disagreed with the relation (or with the other
    /// tuples in the same `load`).
    ArityMismatch {
        /// The relation being mutated.
        relation: String,
        /// Arity the relation (or the load's first tuple) has.
        have: usize,
        /// Arity the offending tuple carried.
        got: usize,
    },
    /// A bulk load carried no tuples, so the relation's arity is unknown.
    EmptyLoad(String),
    /// The durable catalog could not commit the mutation to its log; the
    /// mutation was not applied (in-memory state never runs ahead of the
    /// write-ahead log).
    Persist(String),
}

impl fmt::Display for CatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CatalogError::UnknownDatabase(n) => write!(f, "unknown database: {n}"),
            CatalogError::DatabaseExists(n) => write!(f, "database already exists: {n}"),
            CatalogError::ArityMismatch {
                relation,
                have,
                got,
            } => write!(f, "{relation} has arity {have}, tuple has {got}"),
            CatalogError::EmptyLoad(r) => {
                write!(f, "load of {r} carries no tuples (arity unknown)")
            }
            CatalogError::Persist(e) => write!(f, "mutation not applied: {e}"),
        }
    }
}

impl std::error::Error for CatalogError {}

/// A named collection of versioned databases, shared between the engine's
/// workers (readers) and the wire mutation verbs (writers).
pub struct Catalog {
    /// Name → current published snapshot. Held only for O(1) get/swap.
    map: Mutex<FxHashMap<String, DbSnapshot>>,
    /// Serializes writers so concurrent mutations cannot lose updates.
    /// Writers do their tuple work (and commit fsyncs) while holding only
    /// this, not `map`.
    write: Mutex<()>,
    /// Catalog-wide version fountain.
    ticks: AtomicU64,
    /// Column-id allocator for wire-created relations.
    next_col: AtomicU32,
    /// Durability hook; `None` for memory-only catalogs.
    persister: Option<Arc<dyn Persister>>,
}

impl Default for Catalog {
    fn default() -> Self {
        Catalog::new()
    }
}

impl Catalog {
    /// An empty, memory-only catalog (no databases, not even
    /// [`DEFAULT_DB`]; nothing survives the process).
    pub fn new() -> Self {
        Catalog {
            map: Mutex::new(FxHashMap::default()),
            write: Mutex::new(()),
            ticks: AtomicU64::new(0),
            next_col: AtomicU32::new(WIRE_COL_BASE),
            persister: None,
        }
    }

    /// A memory-only catalog whose [`DEFAULT_DB`] is `db` — the migration
    /// path for everything that used to call `Engine::start(db, …)`.
    pub fn with_default(db: Database) -> Self {
        let catalog = Catalog::new();
        catalog
            .insert(DEFAULT_DB, db)
            .expect("memory-only insert cannot fail");
        catalog
    }

    /// Opens a durable catalog rooted at `data_dir` with the default
    /// store options (fsync on every commit): recovers every database
    /// from its newest snapshot plus write-ahead-log replay, resumes the
    /// version fountain above the recovered high-water mark, and hooks
    /// the store into every subsequent mutation.
    ///
    /// Recovery truncates torn log tails (unacknowledged residue of a
    /// crash) and refuses with a typed [`RecoveryError`] on anything
    /// worse — serving a wrong database is never an option.
    pub fn open(data_dir: impl Into<PathBuf>) -> Result<(Catalog, RecoveryReport), RecoveryError> {
        Catalog::open_with(data_dir, StoreOptions::default())
    }

    /// [`Catalog::open`] with explicit store tuning (sync policy,
    /// checkpoint cadence) — the bench's persistence axis and the tests
    /// use this.
    pub fn open_with(
        data_dir: impl Into<PathBuf>,
        options: StoreOptions,
    ) -> Result<(Catalog, RecoveryReport), RecoveryError> {
        let (store, recovered, report) = DurableStore::open(data_dir, options)?;
        let mut catalog = Catalog::new();
        catalog.ticks = AtomicU64::new(report.max_version);
        {
            let mut map = catalog.map.lock().expect("catalog map lock");
            for db in recovered {
                let database = catalog.rebuild(db.contents);
                let fingerprint = fingerprint_db(&database);
                map.insert(
                    db.name,
                    DbSnapshot {
                        db: Arc::new(database),
                        version: DbVersion(db.version),
                        fingerprint,
                    },
                );
            }
        }
        catalog.persister = Some(Arc::new(store));
        Ok((catalog, report))
    }

    /// Converts recovered contents back into a [`Database`], allocating
    /// fresh column ids (ids are not persisted; evaluation binds columns
    /// by position).
    fn rebuild(&self, contents: DbContents) -> Database {
        let mut database = Database::new();
        for rel in contents.relations {
            let base = self.next_col.fetch_add(rel.arity as u32, Ordering::Relaxed);
            let schema = Schema::new((0..rel.arity as u32).map(|i| AttrId(base + i)).collect());
            let mut relation = Relation::new(&rel.name, schema, rel.tuples);
            relation.dedup();
            database.add(relation);
        }
        database
    }

    /// The durability hook, if this catalog persists (set by
    /// [`Catalog::open`]).
    pub fn persister(&self) -> Option<&Arc<dyn Persister>> {
        self.persister.as_ref()
    }

    /// Durability counters, if this catalog persists.
    pub fn durability_stats(&self) -> Option<DurabilityStats> {
        self.persister.as_ref().map(|p| p.stats())
    }

    fn next_version(&self) -> DbVersion {
        DbVersion(self.ticks.fetch_add(1, Ordering::Relaxed) + 1)
    }

    fn persist<F>(&self, commit: F) -> Result<(), CatalogError>
    where
        F: FnOnce(&dyn Persister) -> Result<(), ppr_durability::PersistError>,
    {
        match &self.persister {
            Some(p) => commit(p.as_ref()).map_err(|e| CatalogError::Persist(e.to_string())),
            None => Ok(()),
        }
    }

    /// Publishes `db` under `name`, creating or wholesale-replacing it.
    /// This is the embedded (in-process) entry point; the wire verbs go
    /// through [`create`](Catalog::create) / [`load`](Catalog::load) /
    /// [`add`](Catalog::add). Returns the new version. On a durable
    /// catalog the whole database is checkpointed first; a persist
    /// failure leaves the catalog unchanged.
    pub fn insert(&self, name: impl Into<String>, db: Database) -> Result<DbVersion, CatalogError> {
        let name = name.into();
        let _w = self.write.lock().expect("catalog write lock");
        let version = self.next_version();
        self.persist(|p| p.record_insert(&name, &contents_of(&db), version.0))?;
        self.publish_at(&name, db, version);
        Ok(version)
    }

    /// Creates an empty database. Fails if the name is taken (use
    /// [`insert`](Catalog::insert) to replace).
    pub fn create(&self, name: &str) -> Result<DbVersion, CatalogError> {
        let _w = self.write.lock().expect("catalog write lock");
        if self
            .map
            .lock()
            .expect("catalog map lock")
            .contains_key(name)
        {
            return Err(CatalogError::DatabaseExists(name.to_string()));
        }
        let version = self.next_version();
        self.persist(|p| p.record_create(name, version.0))?;
        self.publish_at(name, Database::new(), version);
        Ok(version)
    }

    /// Removes a database. In-flight requests holding its snapshot finish
    /// normally; only new snapshots fail. On a durable catalog the drop
    /// is made durable before it is visible.
    pub fn drop_db(&self, name: &str) -> Result<(), CatalogError> {
        let _w = self.write.lock().expect("catalog write lock");
        if !self
            .map
            .lock()
            .expect("catalog map lock")
            .contains_key(name)
        {
            return Err(CatalogError::UnknownDatabase(name.to_string()));
        }
        let version = self.next_version();
        self.persist(|p| p.record_drop(name, version.0))?;
        self.map.lock().expect("catalog map lock").remove(name);
        Ok(())
    }

    /// The current snapshot of `name`, or `None` if absent. O(1): an Arc
    /// clone under a briefly-held lock.
    pub fn snapshot(&self, name: &str) -> Option<DbSnapshot> {
        self.map
            .lock()
            .expect("catalog map lock")
            .get(name)
            .cloned()
    }

    /// Bulk-loads `rel` in database `db`, **replacing** any existing
    /// relation of that name. All tuples must share one arity; at least
    /// one tuple is required (an empty load has no arity to infer).
    /// Returns the database's new version.
    pub fn load(
        &self,
        db: &str,
        rel: &str,
        tuples: Vec<Box<[Value]>>,
    ) -> Result<DbVersion, CatalogError> {
        let Some(first) = tuples.first() else {
            return Err(CatalogError::EmptyLoad(rel.to_string()));
        };
        let arity = first.len();
        for t in &tuples {
            if t.len() != arity {
                return Err(CatalogError::ArityMismatch {
                    relation: rel.to_string(),
                    have: arity,
                    got: t.len(),
                });
            }
        }
        let _w = self.write.lock().expect("catalog write lock");
        let current = self
            .snapshot(db)
            .ok_or_else(|| CatalogError::UnknownDatabase(db.to_string()))?;
        // Tuple work happens here, outside the map lock: readers snapshot
        // the *old* version undisturbed until the swap below.
        let base = self.next_col.fetch_add(arity as u32, Ordering::Relaxed);
        let schema = Schema::new((0..arity as u32).map(|i| AttrId(base + i)).collect());
        let mut relation = Relation::new(rel, schema, tuples);
        relation.dedup();
        let version = self.next_version();
        // The log stores the post-dedup rows in relation order, so replay
        // reconstructs byte-identical scans.
        self.persist(|p| p.record_load(db, rel, arity, relation.tuples(), version.0))?;
        let mut next = (*current.db).clone();
        next.add(relation);
        self.publish_at(db, next, version);
        Ok(version)
    }

    /// Appends one tuple to `rel` in database `db`, creating the relation
    /// (with the tuple's arity) if it does not exist yet. Returns the
    /// database's new version.
    pub fn add(&self, db: &str, rel: &str, tuple: Box<[Value]>) -> Result<DbVersion, CatalogError> {
        let _w = self.write.lock().expect("catalog write lock");
        let current = self
            .snapshot(db)
            .ok_or_else(|| CatalogError::UnknownDatabase(db.to_string()))?;
        if let Some(existing) = current.db.get(rel) {
            if existing.arity() != tuple.len() {
                return Err(CatalogError::ArityMismatch {
                    relation: rel.to_string(),
                    have: existing.arity(),
                    got: tuple.len(),
                });
            }
        }
        let version = self.next_version();
        self.persist(|p| p.record_add(db, rel, &tuple, version.0))?;
        let relation = match current.db.get(rel) {
            Some(existing) => {
                let mut grown = (**existing).clone();
                grown.push(tuple);
                grown.dedup();
                grown
            }
            None => {
                let arity = tuple.len() as u32;
                let base = self.next_col.fetch_add(arity, Ordering::Relaxed);
                let schema = Schema::new((0..arity).map(|i| AttrId(base + i)).collect());
                Relation::new(rel, schema, vec![tuple])
            }
        };
        let mut next = (*current.db).clone();
        next.add(relation);
        self.publish_at(db, next, version);
        Ok(version)
    }

    /// Swaps in `next` under `version`, fingerprinting its content.
    /// Caller holds `write` and has already persisted the mutation.
    fn publish_at(&self, name: &str, next: Database, version: DbVersion) {
        let fingerprint = fingerprint_db(&next);
        self.map.lock().expect("catalog map lock").insert(
            name.to_string(),
            DbSnapshot {
                db: Arc::new(next),
                version,
                fingerprint,
            },
        );
    }

    /// Database names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .map
            .lock()
            .expect("catalog map lock")
            .keys()
            .cloned()
            .collect();
        names.sort_unstable();
        names
    }

    /// One [`DbInfo`] per database, sorted by name — the `dbs` verb's
    /// payload.
    pub fn list(&self) -> Vec<DbInfo> {
        let mut infos: Vec<DbInfo> = self
            .map
            .lock()
            .expect("catalog map lock")
            .iter()
            .map(|(name, snap)| DbInfo {
                name: name.clone(),
                version: snap.version,
                fingerprint: snap.fingerprint,
                relations: snap.db.len(),
            })
            .collect();
        infos.sort_unstable_by(|a, b| a.name.cmp(&b.name));
        infos
    }

    /// Number of databases.
    pub fn len(&self) -> usize {
        self.map.lock().expect("catalog map lock").len()
    }

    /// True when the catalog holds no databases.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Extracts a database's logical content for wholesale persistence
/// (attribute ids are deliberately dropped).
fn contents_of(db: &Database) -> DbContents {
    let relations = db
        .names()
        .into_iter()
        .map(|name| {
            let rel = db.get(name).expect("name came from names()");
            RelationData {
                name: name.to_string(),
                arity: rel.arity(),
                tuples: rel.tuples().to_vec(),
            }
        })
        .collect();
    DbContents { relations }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tuple(vals: &[Value]) -> Box<[Value]> {
        vals.to_vec().into_boxed_slice()
    }

    fn tmpdir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ppr-catalog-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn versions_are_monotonic_and_catalog_unique() {
        let c = Catalog::new();
        let v1 = c.create("a").unwrap();
        let v2 = c.create("b").unwrap();
        let v3 = c.load("a", "e", vec![tuple(&[1, 2])]).unwrap();
        assert!(v1 < v2 && v2 < v3);
        // Drop + recreate never revisits an old version.
        c.drop_db("a").unwrap();
        let v4 = c.create("a").unwrap();
        assert!(v4 > v3);
    }

    #[test]
    fn snapshots_are_stable_under_mutation() {
        let c = Catalog::new();
        c.create("g").unwrap();
        c.load("g", "e", vec![tuple(&[1, 2])]).unwrap();
        let before = c.snapshot("g").unwrap();
        c.add("g", "e", tuple(&[2, 3])).unwrap();
        let after = c.snapshot("g").unwrap();
        // The old snapshot still sees one tuple; the new one sees two.
        assert_eq!(before.db.expect("e").len(), 1);
        assert_eq!(after.db.expect("e").len(), 2);
        assert!(after.version > before.version);
        assert_ne!(after.fingerprint, before.fingerprint);
    }

    #[test]
    fn load_replaces_add_appends_and_dedups() {
        let c = Catalog::new();
        c.create("g").unwrap();
        c.load("g", "e", vec![tuple(&[1, 2]), tuple(&[2, 3])])
            .unwrap();
        c.load("g", "e", vec![tuple(&[7, 8])]).unwrap();
        assert_eq!(c.snapshot("g").unwrap().db.expect("e").len(), 1);
        let v1 = c.add("g", "e", tuple(&[7, 8])).unwrap(); // duplicate
        assert_eq!(c.snapshot("g").unwrap().db.expect("e").len(), 1);
        let v2 = c.add("g", "e", tuple(&[8, 9])).unwrap();
        assert_eq!(c.snapshot("g").unwrap().db.expect("e").len(), 2);
        // Even the no-op duplicate bumped the version (cheap, and keeps
        // the observable mutation counter honest)…
        assert!(v2 > v1);
    }

    #[test]
    fn noop_mutation_keeps_the_fingerprint() {
        let c = Catalog::new();
        c.create("g").unwrap();
        c.load("g", "e", vec![tuple(&[1, 2])]).unwrap();
        let before = c.snapshot("g").unwrap();
        c.add("g", "e", tuple(&[1, 2])).unwrap(); // duplicate: no content change
        let after = c.snapshot("g").unwrap();
        assert!(after.version > before.version, "version still bumps");
        assert_eq!(
            after.fingerprint, before.fingerprint,
            "content unchanged ⇒ cache identity unchanged ⇒ warm entries survive"
        );
    }

    #[test]
    fn isomorphic_databases_share_a_fingerprint() {
        let c = Catalog::new();
        // Same content under different names, loaded in different order,
        // through different verbs (⇒ different AttrIds internally).
        c.create("a").unwrap();
        c.load("a", "e", vec![tuple(&[1, 2]), tuple(&[2, 3])])
            .unwrap();
        c.load("a", "f", vec![tuple(&[9])]).unwrap();
        c.create("b").unwrap();
        c.load("b", "f", vec![tuple(&[9])]).unwrap();
        c.add("b", "e", tuple(&[2, 3])).unwrap();
        c.add("b", "e", tuple(&[1, 2])).unwrap();
        let (a, b) = (c.snapshot("a").unwrap(), c.snapshot("b").unwrap());
        assert_eq!(a.fingerprint, b.fingerprint);
        // And content differences do split them.
        c.add("b", "e", tuple(&[3, 4])).unwrap();
        assert_ne!(
            c.snapshot("a").unwrap().fingerprint,
            c.snapshot("b").unwrap().fingerprint
        );
        // The empty database has a fingerprint too, distinct per content.
        c.create("empty").unwrap();
        assert_ne!(c.snapshot("empty").unwrap().fingerprint, a.fingerprint);
    }

    #[test]
    fn add_creates_missing_relation_with_tuple_arity() {
        let c = Catalog::new();
        c.create("g").unwrap();
        c.add("g", "t", tuple(&[1, 2, 3])).unwrap();
        let snap = c.snapshot("g").unwrap();
        assert_eq!(snap.db.expect("t").arity(), 3);
    }

    #[test]
    fn typed_errors() {
        let c = Catalog::new();
        c.create("g").unwrap();
        assert_eq!(c.create("g"), Err(CatalogError::DatabaseExists("g".into())));
        assert_eq!(
            c.load("nope", "e", vec![tuple(&[1])]),
            Err(CatalogError::UnknownDatabase("nope".into()))
        );
        assert_eq!(
            c.load("g", "e", Vec::new()),
            Err(CatalogError::EmptyLoad("e".into()))
        );
        assert!(matches!(
            c.load("g", "e", vec![tuple(&[1, 2]), tuple(&[1])]),
            Err(CatalogError::ArityMismatch { .. })
        ));
        c.load("g", "e", vec![tuple(&[1, 2])]).unwrap();
        assert!(matches!(
            c.add("g", "e", tuple(&[1, 2, 3])),
            Err(CatalogError::ArityMismatch { .. })
        ));
        assert_eq!(
            c.drop_db("missing"),
            Err(CatalogError::UnknownDatabase("missing".into()))
        );
    }

    #[test]
    fn wire_created_schemas_never_collide() {
        let c = Catalog::new();
        c.create("g").unwrap();
        c.load("g", "a", vec![tuple(&[1, 2])]).unwrap();
        c.load("g", "b", vec![tuple(&[3])]).unwrap();
        let snap = c.snapshot("g").unwrap();
        let a: Vec<AttrId> = snap.db.expect("a").schema().attrs().to_vec();
        let b: Vec<AttrId> = snap.db.expect("b").schema().attrs().to_vec();
        assert!(a.iter().all(|x| !b.contains(x)));
    }

    #[test]
    fn concurrent_writers_lose_no_updates() {
        let c = Arc::new(Catalog::new());
        c.create("g").unwrap();
        let mut handles = Vec::new();
        for t in 0..4u32 {
            let c = c.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..25u32 {
                    c.add("g", "e", tuple(&[t, i])).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let snap = c.snapshot("g").unwrap();
        assert_eq!(snap.db.expect("e").len(), 100, "every add must land");
        assert_eq!(snap.version, DbVersion(101), "100 adds + 1 create");
    }

    #[test]
    fn durable_catalog_recovers_content_version_and_fingerprint() {
        let dir = tmpdir("recover");
        let (before_v, before_fp);
        {
            let (c, report) = Catalog::open(&dir).unwrap();
            assert_eq!(report.databases, 0);
            c.create("g").unwrap();
            c.load("g", "e", vec![tuple(&[1, 2]), tuple(&[2, 3])])
                .unwrap();
            c.add("g", "e", tuple(&[3, 1])).unwrap();
            let snap = c.snapshot("g").unwrap();
            before_v = snap.version;
            before_fp = snap.fingerprint;
        }
        let (c, report) = Catalog::open(&dir).unwrap();
        assert_eq!(report.databases, 1);
        let snap = c.snapshot("g").unwrap();
        assert_eq!(snap.version, before_v, "version resumes, not resets");
        assert_eq!(
            snap.fingerprint, before_fp,
            "recovered database keeps its cache identity"
        );
        assert_eq!(
            snap.db.expect("e").tuples(),
            &[tuple(&[1, 2]), tuple(&[2, 3]), tuple(&[3, 1])],
            "row order is replayed exactly (byte-identical scans)"
        );
        // New mutations continue above the recovered high-water mark.
        let v = c.add("g", "e", tuple(&[9, 9])).unwrap();
        assert!(v > before_v);
    }

    #[test]
    fn durable_drop_does_not_resurrect() {
        let dir = tmpdir("drop");
        {
            let (c, _) = Catalog::open(&dir).unwrap();
            c.create("keep").unwrap();
            c.create("gone").unwrap();
            c.load("gone", "e", vec![tuple(&[1, 1])]).unwrap();
            c.drop_db("gone").unwrap();
        }
        let (c, _) = Catalog::open(&dir).unwrap();
        assert_eq!(c.names(), vec!["keep".to_string()]);
    }

    #[test]
    fn durable_insert_checkpoints_wholesale() {
        let dir = tmpdir("insert");
        let mut db = Database::new();
        db.add(Relation::new(
            "edge",
            Schema::new(vec![AttrId(1), AttrId(2)]),
            vec![tuple(&[4, 5])],
        ));
        let fp = fingerprint_db(&db);
        {
            let (c, _) = Catalog::open(&dir).unwrap();
            c.insert(DEFAULT_DB, db).unwrap();
            assert!(c.durability_stats().unwrap().snapshot_writes >= 1);
        }
        let (c, report) = Catalog::open(&dir).unwrap();
        assert_eq!(report.snapshots_loaded, 1);
        let snap = c.snapshot(DEFAULT_DB).unwrap();
        assert_eq!(snap.fingerprint, fp, "fingerprint ignores column ids");
        assert_eq!(snap.db.expect("edge").len(), 1);
    }

    #[test]
    fn list_reports_versions_and_relation_counts() {
        let c = Catalog::new();
        c.create("b").unwrap();
        c.create("a").unwrap();
        c.load("a", "e", vec![tuple(&[1, 2])]).unwrap();
        let infos = c.list();
        assert_eq!(infos.len(), 2);
        assert_eq!(infos[0].name, "a");
        assert_eq!(infos[0].relations, 1);
        assert_eq!(infos[1].name, "b");
        assert_eq!(infos[1].relations, 0);
        assert_eq!(infos[0].fingerprint, c.snapshot("a").unwrap().fingerprint);
    }
}
