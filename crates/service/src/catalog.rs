//! A multi-database catalog with copy-on-write versioned snapshots.
//!
//! The paper's regime is many queries over *tiny* databases, and a
//! long-lived server wants to hold many such databases at once — one per
//! tenant, workload, or experiment — and mutate them over the wire
//! without pausing query traffic. The [`Catalog`] is that collection:
//!
//! * Every database carries a [`DbVersion`] that increases monotonically
//!   across the whole catalog on every mutation (`create`, `load`, `add`,
//!   `insert`). Versions are catalog-unique, so dropping a database and
//!   recreating it under the same name can never alias an old version —
//!   which is what lets the result cache key on `(name, version)` with no
//!   explicit purge logic.
//! * Reads are **copy-on-write snapshots**: [`Catalog::snapshot`] hands
//!   back an `Arc<Database>` plus its version, and in-flight requests keep
//!   that consistent snapshot for as long as they need it. Writers build
//!   the successor database beside the current one (a [`Database`] clone
//!   is cheap — a map of `Arc<Relation>` handles) and publish it with a
//!   brief map-lock swap, so **writers never block readers**: a reader
//!   only ever waits for the O(1) pointer clone, never for tuple work.
//! * Writers are serialized against each other by a separate mutex, so
//!   two concurrent `add`s both land (no lost read-modify-write).
//!
//! Relations created over the wire get fresh [`AttrId`] columns from a
//! catalog-wide allocator, far above the interned query-variable space,
//! so wire-loaded schemas can never collide with query variables or the
//! CLI's `--rel` columns.

use std::fmt;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use ppr_query::Database;
use ppr_relalg::{AttrId, Relation, Schema, Value};
use rustc_hash::FxHashMap;

/// The database every request runs against when it does not name one.
pub const DEFAULT_DB: &str = "default";

/// First column id handed to wire-created relations. Above the CLI's
/// `--rel` base (10M) and far above interned query variables (which start
/// at 0), so the three id spaces never collide.
const WIRE_COL_BASE: u32 = 20_000_000;

/// A monotonically increasing database version. Bumped by every mutation
/// and unique across the whole catalog (two databases never share a
/// version, and a dropped-then-recreated name starts at a fresh one).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct DbVersion(pub u64);

impl fmt::Display for DbVersion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A consistent read view of one database: the shared data plus the
/// version it was published under. Requests hold one snapshot end to end,
/// so a concurrent mutation can never tear a single evaluation.
#[derive(Debug, Clone)]
pub struct DbSnapshot {
    /// The shared, immutable database at this version.
    pub db: Arc<Database>,
    /// The version the snapshot was published under.
    pub version: DbVersion,
}

/// Why a catalog operation was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CatalogError {
    /// The named database does not exist.
    UnknownDatabase(String),
    /// `create` targeted a name that already exists.
    DatabaseExists(String),
    /// A tuple's arity disagreed with the relation (or with the other
    /// tuples in the same `load`).
    ArityMismatch {
        /// The relation being mutated.
        relation: String,
        /// Arity the relation (or the load's first tuple) has.
        have: usize,
        /// Arity the offending tuple carried.
        got: usize,
    },
    /// A bulk load carried no tuples, so the relation's arity is unknown.
    EmptyLoad(String),
}

impl fmt::Display for CatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CatalogError::UnknownDatabase(n) => write!(f, "unknown database: {n}"),
            CatalogError::DatabaseExists(n) => write!(f, "database already exists: {n}"),
            CatalogError::ArityMismatch {
                relation,
                have,
                got,
            } => write!(f, "{relation} has arity {have}, tuple has {got}"),
            CatalogError::EmptyLoad(r) => {
                write!(f, "load of {r} carries no tuples (arity unknown)")
            }
        }
    }
}

impl std::error::Error for CatalogError {}

/// A named collection of versioned databases, shared between the engine's
/// workers (readers) and the wire mutation verbs (writers).
pub struct Catalog {
    /// Name → current published snapshot. Held only for O(1) get/swap.
    map: Mutex<FxHashMap<String, DbSnapshot>>,
    /// Serializes writers so concurrent mutations cannot lose updates.
    /// Writers do their tuple work while holding only this, not `map`.
    write: Mutex<()>,
    /// Catalog-wide version fountain.
    ticks: AtomicU64,
    /// Column-id allocator for wire-created relations.
    next_col: AtomicU32,
}

impl Default for Catalog {
    fn default() -> Self {
        Catalog::new()
    }
}

impl Catalog {
    /// An empty catalog (no databases, not even [`DEFAULT_DB`]).
    pub fn new() -> Self {
        Catalog {
            map: Mutex::new(FxHashMap::default()),
            write: Mutex::new(()),
            ticks: AtomicU64::new(0),
            next_col: AtomicU32::new(WIRE_COL_BASE),
        }
    }

    /// A catalog whose [`DEFAULT_DB`] is `db` — the migration path for
    /// everything that used to call `Engine::start(db, …)`.
    pub fn with_default(db: Database) -> Self {
        let catalog = Catalog::new();
        catalog.insert(DEFAULT_DB, db);
        catalog
    }

    fn next_version(&self) -> DbVersion {
        DbVersion(self.ticks.fetch_add(1, Ordering::Relaxed) + 1)
    }

    /// Publishes `db` under `name`, creating or wholesale-replacing it.
    /// This is the embedded (in-process) entry point; the wire verbs go
    /// through [`create`](Catalog::create) / [`load`](Catalog::load) /
    /// [`add`](Catalog::add). Returns the new version.
    pub fn insert(&self, name: impl Into<String>, db: Database) -> DbVersion {
        let _w = self.write.lock().expect("catalog write lock");
        let version = self.next_version();
        self.map.lock().expect("catalog map lock").insert(
            name.into(),
            DbSnapshot {
                db: Arc::new(db),
                version,
            },
        );
        version
    }

    /// Creates an empty database. Fails if the name is taken (use
    /// [`insert`](Catalog::insert) to replace).
    pub fn create(&self, name: &str) -> Result<DbVersion, CatalogError> {
        let _w = self.write.lock().expect("catalog write lock");
        let mut map = self.map.lock().expect("catalog map lock");
        if map.contains_key(name) {
            return Err(CatalogError::DatabaseExists(name.to_string()));
        }
        let version = self.next_version();
        map.insert(
            name.to_string(),
            DbSnapshot {
                db: Arc::new(Database::new()),
                version,
            },
        );
        Ok(version)
    }

    /// Removes a database. In-flight requests holding its snapshot finish
    /// normally; only new snapshots fail.
    pub fn drop_db(&self, name: &str) -> Result<(), CatalogError> {
        let _w = self.write.lock().expect("catalog write lock");
        match self.map.lock().expect("catalog map lock").remove(name) {
            Some(_) => Ok(()),
            None => Err(CatalogError::UnknownDatabase(name.to_string())),
        }
    }

    /// The current snapshot of `name`, or `None` if absent. O(1): an Arc
    /// clone under a briefly-held lock.
    pub fn snapshot(&self, name: &str) -> Option<DbSnapshot> {
        self.map
            .lock()
            .expect("catalog map lock")
            .get(name)
            .cloned()
    }

    /// Bulk-loads `rel` in database `db`, **replacing** any existing
    /// relation of that name. All tuples must share one arity; at least
    /// one tuple is required (an empty load has no arity to infer).
    /// Returns the database's new version.
    pub fn load(
        &self,
        db: &str,
        rel: &str,
        tuples: Vec<Box<[Value]>>,
    ) -> Result<DbVersion, CatalogError> {
        let Some(first) = tuples.first() else {
            return Err(CatalogError::EmptyLoad(rel.to_string()));
        };
        let arity = first.len();
        for t in &tuples {
            if t.len() != arity {
                return Err(CatalogError::ArityMismatch {
                    relation: rel.to_string(),
                    have: arity,
                    got: t.len(),
                });
            }
        }
        let _w = self.write.lock().expect("catalog write lock");
        let current = self
            .snapshot(db)
            .ok_or_else(|| CatalogError::UnknownDatabase(db.to_string()))?;
        // Tuple work happens here, outside the map lock: readers snapshot
        // the *old* version undisturbed until the swap below.
        let base = self.next_col.fetch_add(arity as u32, Ordering::Relaxed);
        let schema = Schema::new((0..arity as u32).map(|i| AttrId(base + i)).collect());
        let mut relation = Relation::new(rel, schema, tuples);
        relation.dedup();
        let mut next = (*current.db).clone();
        next.add(relation);
        self.publish(db, next)
    }

    /// Appends one tuple to `rel` in database `db`, creating the relation
    /// (with the tuple's arity) if it does not exist yet. Returns the
    /// database's new version.
    pub fn add(&self, db: &str, rel: &str, tuple: Box<[Value]>) -> Result<DbVersion, CatalogError> {
        let _w = self.write.lock().expect("catalog write lock");
        let current = self
            .snapshot(db)
            .ok_or_else(|| CatalogError::UnknownDatabase(db.to_string()))?;
        let relation = match current.db.get(rel) {
            Some(existing) => {
                if existing.arity() != tuple.len() {
                    return Err(CatalogError::ArityMismatch {
                        relation: rel.to_string(),
                        have: existing.arity(),
                        got: tuple.len(),
                    });
                }
                let mut grown = (**existing).clone();
                grown.push(tuple);
                grown.dedup();
                grown
            }
            None => {
                let arity = tuple.len() as u32;
                let base = self.next_col.fetch_add(arity, Ordering::Relaxed);
                let schema = Schema::new((0..arity).map(|i| AttrId(base + i)).collect());
                Relation::new(rel, schema, vec![tuple])
            }
        };
        let mut next = (*current.db).clone();
        next.add(relation);
        self.publish(db, next)
    }

    /// Swaps in `next` under a fresh version. Caller holds `write`.
    fn publish(&self, name: &str, next: Database) -> Result<DbVersion, CatalogError> {
        let version = self.next_version();
        self.map.lock().expect("catalog map lock").insert(
            name.to_string(),
            DbSnapshot {
                db: Arc::new(next),
                version,
            },
        );
        Ok(version)
    }

    /// Database names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .map
            .lock()
            .expect("catalog map lock")
            .keys()
            .cloned()
            .collect();
        names.sort_unstable();
        names
    }

    /// Number of databases.
    pub fn len(&self) -> usize {
        self.map.lock().expect("catalog map lock").len()
    }

    /// True when the catalog holds no databases.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tuple(vals: &[Value]) -> Box<[Value]> {
        vals.to_vec().into_boxed_slice()
    }

    #[test]
    fn versions_are_monotonic_and_catalog_unique() {
        let c = Catalog::new();
        let v1 = c.create("a").unwrap();
        let v2 = c.create("b").unwrap();
        let v3 = c.load("a", "e", vec![tuple(&[1, 2])]).unwrap();
        assert!(v1 < v2 && v2 < v3);
        // Drop + recreate never revisits an old version.
        c.drop_db("a").unwrap();
        let v4 = c.create("a").unwrap();
        assert!(v4 > v3);
    }

    #[test]
    fn snapshots_are_stable_under_mutation() {
        let c = Catalog::new();
        c.create("g").unwrap();
        c.load("g", "e", vec![tuple(&[1, 2])]).unwrap();
        let before = c.snapshot("g").unwrap();
        c.add("g", "e", tuple(&[2, 3])).unwrap();
        let after = c.snapshot("g").unwrap();
        // The old snapshot still sees one tuple; the new one sees two.
        assert_eq!(before.db.expect("e").len(), 1);
        assert_eq!(after.db.expect("e").len(), 2);
        assert!(after.version > before.version);
    }

    #[test]
    fn load_replaces_add_appends_and_dedups() {
        let c = Catalog::new();
        c.create("g").unwrap();
        c.load("g", "e", vec![tuple(&[1, 2]), tuple(&[2, 3])])
            .unwrap();
        c.load("g", "e", vec![tuple(&[7, 8])]).unwrap();
        assert_eq!(c.snapshot("g").unwrap().db.expect("e").len(), 1);
        let v1 = c.add("g", "e", tuple(&[7, 8])).unwrap(); // duplicate
        assert_eq!(c.snapshot("g").unwrap().db.expect("e").len(), 1);
        let v2 = c.add("g", "e", tuple(&[8, 9])).unwrap();
        assert_eq!(c.snapshot("g").unwrap().db.expect("e").len(), 2);
        // Even the no-op duplicate bumped the version (cheap, and keeps
        // invalidation conservative rather than clever).
        assert!(v2 > v1);
    }

    #[test]
    fn add_creates_missing_relation_with_tuple_arity() {
        let c = Catalog::new();
        c.create("g").unwrap();
        c.add("g", "t", tuple(&[1, 2, 3])).unwrap();
        let snap = c.snapshot("g").unwrap();
        assert_eq!(snap.db.expect("t").arity(), 3);
    }

    #[test]
    fn typed_errors() {
        let c = Catalog::new();
        c.create("g").unwrap();
        assert_eq!(c.create("g"), Err(CatalogError::DatabaseExists("g".into())));
        assert_eq!(
            c.load("nope", "e", vec![tuple(&[1])]),
            Err(CatalogError::UnknownDatabase("nope".into()))
        );
        assert_eq!(
            c.load("g", "e", Vec::new()),
            Err(CatalogError::EmptyLoad("e".into()))
        );
        assert!(matches!(
            c.load("g", "e", vec![tuple(&[1, 2]), tuple(&[1])]),
            Err(CatalogError::ArityMismatch { .. })
        ));
        c.load("g", "e", vec![tuple(&[1, 2])]).unwrap();
        assert!(matches!(
            c.add("g", "e", tuple(&[1, 2, 3])),
            Err(CatalogError::ArityMismatch { .. })
        ));
        assert_eq!(
            c.drop_db("missing"),
            Err(CatalogError::UnknownDatabase("missing".into()))
        );
    }

    #[test]
    fn wire_created_schemas_never_collide() {
        let c = Catalog::new();
        c.create("g").unwrap();
        c.load("g", "a", vec![tuple(&[1, 2])]).unwrap();
        c.load("g", "b", vec![tuple(&[3])]).unwrap();
        let snap = c.snapshot("g").unwrap();
        let a: Vec<AttrId> = snap.db.expect("a").schema().attrs().to_vec();
        let b: Vec<AttrId> = snap.db.expect("b").schema().attrs().to_vec();
        assert!(a.iter().all(|x| !b.contains(x)));
    }

    #[test]
    fn concurrent_writers_lose_no_updates() {
        let c = Arc::new(Catalog::new());
        c.create("g").unwrap();
        let mut handles = Vec::new();
        for t in 0..4u32 {
            let c = c.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..25u32 {
                    c.add("g", "e", tuple(&[t, i])).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let snap = c.snapshot("g").unwrap();
        assert_eq!(snap.db.expect("e").len(), 100, "every add must land");
        assert_eq!(snap.version, DbVersion(101), "100 adds + 1 create");
    }
}
