//! Blocking `std::net` TCP server for the line protocol.
//!
//! One OS thread per connection, no async runtime. That is a deliberate
//! fit for this engine: concurrency is limited by the engine's bounded
//! queue and in-flight cap, not by connection count, so connection
//! threads spend their lives blocked in `read` — cheap — and admission
//! control (not the accept loop) is what sheds load. Graceful shutdown
//! needs no reactor either: the accept loop polls a stop flag through a
//! nonblocking listener, and connection threads poll the same flag
//! through short read timeouts, so `shutdown()` converges in one poll
//! interval.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::engine::EngineHandle;
use crate::protocol::{self, Ack, Command, MAX_LINE};
use crate::ServiceError;

/// How often blocked I/O re-checks the stop flag.
const POLL: Duration = Duration::from_millis(25);

/// A running TCP front-end over an [`EngineHandle`].
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    connections: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts
    /// accepting connections on a background thread.
    pub fn start(addr: impl ToSocketAddrs, engine: EngineHandle) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let connections: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        let accept_stop = stop.clone();
        let accept_conns = connections.clone();
        let accept_thread = std::thread::spawn(move || {
            while !accept_stop.load(Ordering::Acquire) {
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        let engine = engine.clone();
                        let stop = accept_stop.clone();
                        let handle =
                            std::thread::spawn(move || serve_connection(stream, engine, stop));
                        let mut conns = accept_conns.lock().expect("connection list");
                        // Reap finished connection threads here so a
                        // long-lived server does not accumulate one
                        // JoinHandle per connection ever accepted.
                        let mut i = 0;
                        while i < conns.len() {
                            if conns[i].is_finished() {
                                let _ = conns.swap_remove(i).join();
                            } else {
                                i += 1;
                            }
                        }
                        conns.push(handle);
                    }
                    // Accept errors (ECONNABORTED, EMFILE, …) are
                    // transient: a peer resetting mid-handshake or fd
                    // pressure must not permanently stop the server from
                    // accepting while it appears healthy. Back off and
                    // retry; shutdown is signalled through `stop`, never
                    // through accept errors.
                    Err(e) if e.kind() == ErrorKind::WouldBlock => {
                        std::thread::sleep(POLL);
                    }
                    Err(_) => std::thread::sleep(POLL),
                }
            }
        });

        Ok(Server {
            addr,
            stop,
            accept_thread: Some(accept_thread),
            connections,
        })
    }

    /// The bound address — read this after `start("127.0.0.1:0", …)` to
    /// learn the ephemeral port.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, lets in-progress requests finish, and joins every
    /// I/O thread. Idempotent.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
        let handles: Vec<_> = self
            .connections
            .lock()
            .expect("connection list")
            .drain(..)
            .collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn serve_connection(stream: TcpStream, engine: EngineHandle, stop: Arc<AtomicBool>) {
    // Short read timeouts make the blocking read loop responsive to the
    // stop flag without a reactor.
    if stream.set_read_timeout(Some(POLL)).is_err() {
        return;
    }
    let _ = stream.set_nodelay(true);
    let mut reader = stream;
    let mut writer = match reader.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };

    let mut pending: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    // The connection's session database, set by `use`; `run` lines
    // without an explicit `db=` target it (engine default otherwise).
    let mut session_db: Option<String> = None;
    loop {
        // Process every complete line already buffered before reading more.
        while let Some(nl) = pending.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = pending.drain(..=nl).collect();
            let line = String::from_utf8_lossy(&line[..nl]);
            let reply = handle_line(&line, &engine, &mut session_db);
            if writer
                .write_all(reply.as_bytes())
                .and_then(|_| writer.write_all(b"\n"))
                .is_err()
            {
                return;
            }
        }
        if pending.len() > MAX_LINE {
            let _ = writer.write_all(b"err kind=protocol msg=line too long\n");
            return;
        }
        if stop.load(Ordering::Acquire) {
            return;
        }
        match reader.read(&mut chunk) {
            Ok(0) => return, // peer closed
            Ok(n) => pending.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

fn handle_line(line: &str, engine: &EngineHandle, session_db: &mut Option<String>) -> String {
    if line.trim().is_empty() {
        return protocol::encode_result(&Err(ServiceError::Protocol("empty line".into())));
    }
    match protocol::decode_command(line) {
        Ok(Command::Ping) => "ok pong".to_string(),
        Ok(Command::Stats) => protocol::encode_stats(&engine.stats()),
        Ok(Command::Run(mut request)) => {
            if request.db.is_none() {
                request.db = session_db.clone();
            }
            protocol::encode_result(&engine.execute(request))
        }
        // Catalog verbs run on the connection thread, not the worker
        // queue: mutations are O(tiny database), and admission control
        // exists to bound query execution, not metadata traffic.
        Ok(Command::Use(db)) => {
            let ack = match engine.catalog().snapshot(&db) {
                Some(snap) => {
                    *session_db = Some(db.clone());
                    Ok(Ack {
                        db,
                        version: Some(snap.version),
                    })
                }
                None => Err(ServiceError::UnknownDatabase(db)),
            };
            protocol::encode_ack(&ack)
        }
        Ok(Command::Create(db)) => {
            let ack = engine
                .catalog()
                .create(&db)
                .map(|version| Ack {
                    db,
                    version: Some(version),
                })
                .map_err(ServiceError::from);
            protocol::encode_ack(&ack)
        }
        Ok(Command::Drop(db)) => {
            let ack = engine
                .catalog()
                .drop_db(&db)
                .map(|()| {
                    // A dropped session database falls back to the default.
                    if session_db.as_deref() == Some(db.as_str()) {
                        *session_db = None;
                    }
                    Ack { db, version: None }
                })
                .map_err(ServiceError::from);
            protocol::encode_ack(&ack)
        }
        Ok(Command::Load { db, rel, tuples }) => {
            let ack = engine
                .catalog()
                .load(&db, &rel, tuples)
                .map(|version| Ack {
                    db,
                    version: Some(version),
                })
                .map_err(ServiceError::from);
            protocol::encode_ack(&ack)
        }
        Ok(Command::Add { db, rel, tuple }) => {
            let ack = engine
                .catalog()
                .add(&db, &rel, tuple)
                .map(|version| Ack {
                    db,
                    version: Some(version),
                })
                .map_err(ServiceError::from);
            protocol::encode_ack(&ack)
        }
        Err(e) => protocol::encode_result(&Err(e)),
    }
}
