//! The TCP front-end: one listening socket, two connection backends,
//! one wire protocol.
//!
//! A [`Server`] is built with [`Server::builder`] and carries everything
//! the serving stack needs — the engine (owned or borrowed), an optional
//! durable catalog, the metrics endpoint, and the connection layer. Two
//! interchangeable backends answer the same wire grammar byte for byte:
//!
//! * [`ConnectionModel::EventLoop`] (default on Linux) — a
//!   single-threaded epoll loop in [`crate::net`] carrying every
//!   connection; OS thread count stays O(engine workers) no matter how
//!   many peers connect, which is what makes C10K practical on one core.
//! * [`ConnectionModel::Threads`] — the original blocking backend: one
//!   reader and one writer thread per connection. Still the portable
//!   fallback (and the reference implementation the event loop is tested
//!   against for byte-identical replies).
//!
//! A connection starts in protocol v1: strictly serial, untagged, one
//! reply per request in order. `hello proto=2` upgrades it to v2, where
//! the client may tag requests with `id=` and keep up to [`WINDOW`] of
//! them in flight; the server demuxes tags, groups consecutive tagged
//! `run`s against the same database into one batch submission (one
//! catalog snapshot, one queue lock), and completions flow back in
//! whatever order the engine finishes them. A full window is handled by
//! **not reading the socket** — TCP backpressure — never by
//! synthesizing `Overloaded`; rejection remains the engine's admission
//! decision. See `docs/PROTOCOL.md` for the wire grammar and
//! `docs/ARCHITECTURE.md` for the connection lifecycle under each
//! backend.

use std::collections::HashSet;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ppr_durability::{RecoveryReport, StoreOptions, SyncPolicy};
use ppr_obs::MetricsServer;
use ppr_query::Database;

use crate::catalog::{Catalog, DEFAULT_DB};
use crate::engine::{Engine, EngineConfig, EngineHandle, ReplyFn, Request};
use crate::net::{CloseReason, NetMetrics};
use crate::protocol::{self, Ack, Command, ExplainReport, HelloAck, TraceReport};
use crate::ServiceError;

/// How often blocked I/O re-checks the stop flag.
const POLL: Duration = Duration::from_millis(25);

/// Upper bound on the per-connection in-flight window for protocol v2:
/// how many tagged requests may be outstanding before the server stops
/// draining the socket. Window-full is backpressure, not an error — the
/// client's writes stall in TCP until completions free slots. The
/// effective window is capped at [`EngineHandle::safe_window`] so a
/// lone well-behaved pipelined client is throttled by backpressure,
/// never shed by admission control.
pub const WINDOW: usize = 128;

/// Which connection backend carries client sockets.
#[non_exhaustive]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnectionModel {
    /// Single-threaded epoll event loop (Linux only; other platforms
    /// fall back to [`ConnectionModel::Threads`]). Thread count stays
    /// O(engine workers) regardless of connection count.
    EventLoop,
    /// One reader + one writer OS thread per connection. Portable;
    /// thread count is O(connections).
    Threads,
}

impl Default for ConnectionModel {
    fn default() -> Self {
        if cfg!(target_os = "linux") {
            ConnectionModel::EventLoop
        } else {
            ConnectionModel::Threads
        }
    }
}

/// Everything a [`Server`] is configured by. Construct via
/// [`ServerConfig::default`] (or, more usually, [`Server::builder`]) and
/// override fields; the struct is `#[non_exhaustive]` so new knobs can
/// land without breaking callers.
#[non_exhaustive]
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Hard cap on simultaneously open client connections; at the cap
    /// the listener stops accepting until a connection closes.
    pub max_connections: usize,
    /// Close connections idle (no bytes, nothing in flight) this long —
    /// the slow-loris guard. `None` disables the timeout.
    pub idle_timeout: Option<Duration>,
    /// Bound on the per-connection output buffer under the event loop; a
    /// peer that stops reading while replies accumulate past this is
    /// disconnected with [`CloseReason::OutbufOverflow`].
    pub outbuf_limit: usize,
    /// Connection backend. Defaults to the epoll event loop on Linux and
    /// the thread-per-connection backend elsewhere.
    pub connection_model: ConnectionModel,
    /// Durable catalog directory; `None` serves memory-only.
    pub data_dir: Option<PathBuf>,
    /// Whether durable commits fsync (`data_dir` mode only).
    pub fsync: bool,
    /// Prometheus-style metrics endpoint address (`/metrics` +
    /// `/slowlog`); `None` disables the endpoint.
    pub metrics_addr: Option<String>,
    /// Engine tuning for a builder-owned engine (ignored when an
    /// existing [`EngineHandle`] is supplied).
    pub engine: EngineConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7171".to_string(),
            max_connections: 10_000,
            idle_timeout: Some(Duration::from_secs(300)),
            outbuf_limit: 4 << 20,
            connection_model: ConnectionModel::default(),
            data_dir: None,
            fsync: true,
            metrics_addr: None,
            engine: EngineConfig::default(),
        }
    }
}

/// Fluent construction for [`Server`]:
///
/// ```no_run
/// # use ppr_service::Server;
/// # fn main() -> std::io::Result<()> {
/// let mut server = Server::builder()
///     .addr("127.0.0.1:0")
///     .max_connections(5_000)
///     .idle_timeout(Some(std::time::Duration::from_secs(60)))
///     .start()?;
/// let addr = server.local_addr();
/// # server.shutdown();
/// # Ok(())
/// # }
/// ```
///
/// The engine comes from one of three places, in precedence order: an
/// explicit [`engine`](ServerBuilder::engine) handle (the server borrows
/// it), an explicit [`catalog`](ServerBuilder::catalog) /
/// [`database`](ServerBuilder::database) (the server starts and owns an
/// engine over it), or [`data_dir`](ServerBuilder::data_dir) (the server
/// recovers a durable catalog, then starts and owns an engine). With
/// none of those, the server owns an engine over an empty memory-only
/// catalog seeded with whatever [`database`](ServerBuilder::database)
/// provided — or nothing.
#[derive(Default)]
pub struct ServerBuilder {
    cfg: ServerConfig,
    engine: Option<EngineHandle>,
    catalog: Option<Catalog>,
    database: Option<Database>,
}

impl ServerBuilder {
    /// Listen address (default `127.0.0.1:7171`; use port 0 for an
    /// ephemeral port).
    pub fn addr(mut self, addr: impl Into<String>) -> Self {
        self.cfg.addr = addr.into();
        self
    }

    /// Serve an engine the caller already runs; the server will not own
    /// or shut it down. Takes precedence over
    /// [`catalog`](ServerBuilder::catalog) /
    /// [`data_dir`](ServerBuilder::data_dir).
    pub fn engine(mut self, engine: EngineHandle) -> Self {
        self.engine = Some(engine);
        self
    }

    /// Engine tuning for the builder-owned engine (ignored when
    /// [`engine`](ServerBuilder::engine) supplies a handle).
    pub fn engine_config(mut self, cfg: EngineConfig) -> Self {
        self.cfg.engine = cfg;
        self
    }

    /// Serve this catalog through a builder-owned engine.
    pub fn catalog(mut self, catalog: Catalog) -> Self {
        self.catalog = Some(catalog);
        self
    }

    /// Seed the default database of a builder-owned catalog (skipped if
    /// the catalog already has one — a recovered data dir keeps its own).
    pub fn database(mut self, db: Database) -> Self {
        self.database = Some(db);
        self
    }

    /// Recover (or initialise) a durable catalog in `dir` and serve it
    /// through a builder-owned engine. The recovery report is available
    /// as [`Server::recovery`] afterwards.
    pub fn data_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.cfg.data_dir = Some(dir.into());
        self
    }

    /// Whether durable commits fsync (default true; only meaningful with
    /// [`data_dir`](ServerBuilder::data_dir)).
    pub fn fsync(mut self, fsync: bool) -> Self {
        self.cfg.fsync = fsync;
        self
    }

    /// Expose `/metrics` and `/slowlog` on this address (port 0 for
    /// ephemeral). The exposition includes both the engine's and the
    /// connection layer's series.
    pub fn metrics_addr(mut self, addr: impl Into<String>) -> Self {
        self.cfg.metrics_addr = Some(addr.into());
        self
    }

    /// Cap on simultaneously open client connections (default 10 000).
    pub fn max_connections(mut self, cap: usize) -> Self {
        self.cfg.max_connections = cap.max(1);
        self
    }

    /// Idle-connection timeout (default 5 minutes); `None` disables it.
    pub fn idle_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.cfg.idle_timeout = timeout;
        self
    }

    /// Per-connection output-buffer bound under the event loop (default
    /// 4 MiB).
    pub fn outbuf_limit(mut self, bytes: usize) -> Self {
        self.cfg.outbuf_limit = bytes;
        self
    }

    /// Connection backend (default: event loop on Linux, threads
    /// elsewhere). Requesting the event loop off-Linux falls back to
    /// threads.
    pub fn connection_model(mut self, model: ConnectionModel) -> Self {
        self.cfg.connection_model = model;
        self
    }

    /// Replace the whole config at once (field overrides set earlier are
    /// lost; engine/catalog/database selections are kept).
    pub fn config(mut self, cfg: ServerConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Binds, starts the connection backend (and the engine + metrics
    /// endpoint when owned), and returns the running [`Server`].
    pub fn start(self) -> std::io::Result<Server> {
        let ServerBuilder {
            cfg,
            engine,
            catalog,
            database,
        } = self;

        // Resolve the engine: borrow the caller's, or build one over the
        // resolved catalog and own it.
        let mut recovery = None;
        let (engine_owned, handle) = match engine {
            Some(handle) => (None, handle),
            None => {
                let catalog = match (catalog, &cfg.data_dir) {
                    (Some(c), _) => c,
                    (None, Some(dir)) => {
                        let opts = StoreOptions {
                            sync: if cfg.fsync {
                                SyncPolicy::Always
                            } else {
                                SyncPolicy::Never
                            },
                            ..StoreOptions::default()
                        };
                        let (catalog, report) = Catalog::open_with(dir, opts)
                            .map_err(|e| std::io::Error::other(e.to_string()))?;
                        recovery = Some(report);
                        catalog
                    }
                    (None, None) => Catalog::new(),
                };
                if let Some(db) = database {
                    // A recovered catalog keeps its own default database.
                    if catalog.snapshot(DEFAULT_DB).is_none() {
                        catalog
                            .insert(DEFAULT_DB, db)
                            .map_err(|e| std::io::Error::other(e.to_string()))?;
                    }
                }
                let engine = Engine::start(catalog, cfg.engine.clone());
                let handle = engine.handle();
                (Some(engine), handle)
            }
        };

        let net_metrics = NetMetrics::new();
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;

        let backend = start_backend(listener, &cfg, handle.clone(), net_metrics.clone())?;

        let metrics_server = match &cfg.metrics_addr {
            Some(metrics_addr) => {
                let routes_handle = handle.clone();
                let routes_net = net_metrics.clone();
                let routes: ppr_obs::Routes = Arc::new(move |path| match path {
                    "/metrics" => Some(format!(
                        "{}{}",
                        routes_handle.render_prometheus(),
                        routes_net.render_prometheus()
                    )),
                    "/slowlog" => {
                        let mut page =
                            crate::render_slowlog(&routes_handle.metrics().slowlog.snapshot());
                        if let Some(note) = routes_net.accept_note() {
                            page.push_str(&note);
                            page.push('\n');
                        }
                        Some(page)
                    }
                    _ => None,
                });
                Some(MetricsServer::start(metrics_addr, routes)?)
            }
            None => None,
        };

        Ok(Server {
            addr,
            backend: Some(backend),
            engine_owned,
            handle,
            net_metrics,
            metrics_server,
            recovery,
        })
    }
}

/// Spawns the configured connection backend over a bound listener.
fn start_backend(
    listener: TcpListener,
    cfg: &ServerConfig,
    engine: EngineHandle,
    metrics: Arc<NetMetrics>,
) -> std::io::Result<Backend> {
    #[cfg(target_os = "linux")]
    if cfg.connection_model == ConnectionModel::EventLoop {
        let handle = crate::net::event_loop::spawn(
            listener,
            crate::net::event_loop::LoopConfig {
                engine,
                metrics,
                max_connections: cfg.max_connections,
                idle_timeout: cfg.idle_timeout,
                outbuf_limit: cfg.outbuf_limit,
            },
        )?;
        return Ok(Backend::EventLoop(handle));
    }
    Ok(Backend::Threads(spawn_threaded(
        listener,
        engine,
        metrics,
        cfg.idle_timeout,
        cfg.max_connections,
    )?))
}

/// A running TCP front-end. Build one with [`Server::builder`].
pub struct Server {
    addr: SocketAddr,
    backend: Option<Backend>,
    /// Engine started (and therefore drained at shutdown) by the
    /// builder; `None` when serving a caller-owned [`EngineHandle`].
    engine_owned: Option<Engine>,
    handle: EngineHandle,
    net_metrics: Arc<NetMetrics>,
    metrics_server: Option<MetricsServer>,
    recovery: Option<RecoveryReport>,
}

enum Backend {
    Threads(ThreadedBackend),
    #[cfg(target_os = "linux")]
    EventLoop(crate::net::event_loop::EventLoopHandle),
}

impl Server {
    /// Starts configuring a server; finish with
    /// [`start`](ServerBuilder::start).
    pub fn builder() -> ServerBuilder {
        ServerBuilder::default()
    }

    /// Binds `addr` and serves `engine` with default settings.
    #[deprecated(
        since = "0.8.0",
        note = "use Server::builder().addr(..).engine(..).start()"
    )]
    pub fn start(addr: impl ToSocketAddrs, engine: EngineHandle) -> std::io::Result<Server> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| std::io::Error::other("address resolved to nothing"))?;
        Server::builder()
            .addr(addr.to_string())
            .engine(engine)
            .start()
    }

    /// The bound address — read this after `.addr("127.0.0.1:0")` to
    /// learn the ephemeral port.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A submission handle to the engine this server fronts (the
    /// builder-owned engine, or the one supplied to
    /// [`engine`](ServerBuilder::engine)).
    pub fn handle(&self) -> EngineHandle {
        self.handle.clone()
    }

    /// Connection-layer metrics (open/accepted/closed counters); shared
    /// with the `/metrics` exposition.
    pub fn net_metrics(&self) -> Arc<NetMetrics> {
        self.net_metrics.clone()
    }

    /// The metrics endpoint's bound address, when one was configured.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_server.as_ref().map(|m| m.local_addr())
    }

    /// The durable catalog's recovery report, when the builder opened a
    /// [`data_dir`](ServerBuilder::data_dir).
    pub fn recovery(&self) -> Option<&RecoveryReport> {
        self.recovery.as_ref()
    }

    /// Stops accepting, lets in-progress requests finish, joins the
    /// connection backend, and — when the builder owns the engine —
    /// drains and shuts it down too. Idempotent.
    pub fn shutdown(&mut self) {
        match self.backend.take() {
            Some(Backend::Threads(mut t)) => t.shutdown(),
            #[cfg(target_os = "linux")]
            Some(Backend::EventLoop(mut h)) => h.shutdown(),
            None => {}
        }
        if let Some(mut m) = self.metrics_server.take() {
            m.shutdown();
        }
        if let Some(engine) = self.engine_owned.take() {
            engine.shutdown();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

// ---------------------------------------------------------------------
// Shared command dispatch
// ---------------------------------------------------------------------

/// What a decoded command asks of the connection backend: answer
/// immediately, or hand the request to the engine (serially, from the
/// connection's point of view).
pub(crate) enum Dispatch {
    /// The reply line, complete (synchronous verbs: hello, ping, stats,
    /// catalog mutations, …).
    Reply(String),
    /// Execute on the engine; encode with [`protocol::encode_result`].
    Execute(Request),
    /// Execute on the engine; encode as a [`TraceReport`] clocked
    /// end-to-end by the server.
    Trace(Request),
    /// Execute on the engine; encode as an [`ExplainReport`] clocked
    /// end-to-end by the server.
    Explain(Request),
}

/// The protocol state machine both backends share: everything except
/// *how* an [`Dispatch::Execute`] reaches the engine (blocking call on a
/// connection thread vs. submission from the event loop) is decided
/// here, which is what keeps the two backends byte-identical.
pub(crate) fn dispatch_command(
    cmd: Command,
    engine: &EngineHandle,
    proto: &mut u32,
    session_db: &mut Option<String>,
    window: usize,
) -> Dispatch {
    match cmd {
        Command::Hello { proto: asked } => {
            // Negotiate down to what this build speaks; the client asked
            // for ≥ 2 (the decoder enforces it), so the connection is
            // tagged from the next line on.
            *proto = asked.min(protocol::PROTO_VERSION);
            Dispatch::Reply(protocol::encode_hello_ok(&HelloAck {
                proto: *proto,
                window,
            }))
        }
        Command::Ping => Dispatch::Reply("ok pong".to_string()),
        Command::Stats => Dispatch::Reply(protocol::encode_stats(&engine.stats())),
        Command::SlowLog => Dispatch::Reply(protocol::encode_slowlog(&Ok(engine
            .metrics()
            .slowlog
            .snapshot()))),
        Command::Dbs => Dispatch::Reply(protocol::encode_dbs(&Ok(engine.catalog().list()))),
        Command::Run(mut request) => {
            if request.db.is_none() {
                request.db = session_db.clone();
            }
            Dispatch::Execute(request)
        }
        Command::Trace(mut request) => {
            if request.db.is_none() {
                request.db = session_db.clone();
            }
            Dispatch::Trace(request)
        }
        Command::Explain(mut request) => {
            if request.db.is_none() {
                request.db = session_db.clone();
            }
            Dispatch::Explain(request)
        }
        // Catalog verbs run on the connection's own thread (or the event
        // loop), not the worker queue: mutations are O(tiny database),
        // and admission control exists to bound query execution, not
        // metadata traffic.
        Command::Use(db) => {
            let ack = match engine.catalog().snapshot(&db) {
                Some(snap) => {
                    *session_db = Some(db.clone());
                    Ok(Ack {
                        db,
                        version: Some(snap.version),
                    })
                }
                None => Err(ServiceError::UnknownDatabase(db)),
            };
            Dispatch::Reply(protocol::encode_ack(&ack))
        }
        Command::Create(db) => {
            let ack = engine
                .catalog()
                .create(&db)
                .map(|version| Ack {
                    db,
                    version: Some(version),
                })
                .map_err(ServiceError::from);
            Dispatch::Reply(protocol::encode_ack(&ack))
        }
        Command::Drop(db) => {
            let ack = engine
                .catalog()
                .drop_db(&db)
                .map(|()| {
                    // A dropped session database falls back to the default.
                    if session_db.as_deref() == Some(db.as_str()) {
                        *session_db = None;
                    }
                    Ack { db, version: None }
                })
                .map_err(ServiceError::from);
            Dispatch::Reply(protocol::encode_ack(&ack))
        }
        Command::Load { db, rel, tuples } => {
            let ack = engine
                .catalog()
                .load(&db, &rel, tuples)
                .map(|version| Ack {
                    db,
                    version: Some(version),
                })
                .map_err(ServiceError::from);
            Dispatch::Reply(protocol::encode_ack(&ack))
        }
        Command::Add { db, rel, tuple } => {
            let ack = engine
                .catalog()
                .add(&db, &rel, tuple)
                .map(|version| Ack {
                    db,
                    version: Some(version),
                })
                .map_err(ServiceError::from);
            Dispatch::Reply(protocol::encode_ack(&ack))
        }
    }
}

/// The reply for a tagged id that is already in flight on this
/// connection.
pub(crate) fn duplicate_id(id: u64) -> String {
    protocol::encode_result(&Err(ServiceError::Protocol(format!(
        "id {id} already in flight"
    ))))
}

// ---------------------------------------------------------------------
// Thread-per-connection backend
// ---------------------------------------------------------------------

struct ThreadedBackend {
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    connections: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl ThreadedBackend {
    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
        let handles: Vec<_> = self
            .connections
            .lock()
            .expect("connection list")
            .drain(..)
            .collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

fn spawn_threaded(
    listener: TcpListener,
    engine: EngineHandle,
    metrics: Arc<NetMetrics>,
    idle_timeout: Option<Duration>,
    max_connections: usize,
) -> std::io::Result<ThreadedBackend> {
    listener.set_nonblocking(true)?;
    let stop = Arc::new(AtomicBool::new(false));
    let connections: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

    let accept_stop = stop.clone();
    let accept_conns = connections.clone();
    let accept_thread = std::thread::Builder::new()
        .name("ppr-accept".into())
        .spawn(move || {
            while !accept_stop.load(Ordering::Acquire) {
                if metrics.connections_open.get() >= max_connections as u64 {
                    // At the connection cap: stop accepting until one
                    // closes. Pending peers wait in the listen backlog.
                    std::thread::sleep(POLL);
                    continue;
                }
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        metrics.connections_accepted.inc();
                        let engine = engine.clone();
                        let stop = accept_stop.clone();
                        let conn_metrics = metrics.clone();
                        let handle = std::thread::spawn(move || {
                            serve_connection(stream, engine, stop, conn_metrics, idle_timeout)
                        });
                        let mut conns = accept_conns.lock().expect("connection list");
                        // Reap finished connection threads here so a
                        // long-lived server does not accumulate one
                        // JoinHandle per connection ever accepted.
                        let mut i = 0;
                        while i < conns.len() {
                            if conns[i].is_finished() {
                                let _ = conns.swap_remove(i).join();
                            } else {
                                i += 1;
                            }
                        }
                        conns.push(handle);
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => {
                        std::thread::sleep(POLL);
                    }
                    // Accept errors (ECONNABORTED, EMFILE, …) are
                    // transient: a peer resetting mid-handshake or fd
                    // pressure must not permanently stop the server from
                    // accepting while it appears healthy. Count, log,
                    // surface on /slowlog, back off, retry; shutdown is
                    // signalled through `stop`, never through accept
                    // errors.
                    Err(e) => {
                        let fd_pressure = matches!(
                            e.raw_os_error(),
                            Some(crate::net::sys_errno::EMFILE)
                                | Some(crate::net::sys_errno::ENFILE)
                        );
                        metrics.note_accept_error(&e, fd_pressure);
                        std::thread::sleep(if fd_pressure { POLL * 4 } else { POLL });
                    }
                }
            }
        })
        .expect("spawn accept thread");

    Ok(ThreadedBackend {
        stop,
        accept_thread: Some(accept_thread),
        connections,
    })
}

/// The v2 in-flight window: the set of tagged ids awaiting completion.
/// Doubles as the duplicate-id detector — an id stays reserved from the
/// moment the reader accepts it until its completion callback fires.
struct Window {
    state: Mutex<HashSet<u64>>,
    freed: Condvar,
    capacity: usize,
}

enum TryReserve {
    Reserved,
    Duplicate,
    Full,
}

impl Window {
    fn new(capacity: usize) -> Window {
        Window {
            state: Mutex::new(HashSet::new()),
            freed: Condvar::new(),
            capacity,
        }
    }

    fn try_reserve(&self, id: u64) -> TryReserve {
        let mut set = self.state.lock().expect("window lock");
        if set.contains(&id) {
            TryReserve::Duplicate
        } else if set.len() >= self.capacity {
            TryReserve::Full
        } else {
            set.insert(id);
            TryReserve::Reserved
        }
    }

    fn contains(&self, id: u64) -> bool {
        self.state.lock().expect("window lock").contains(&id)
    }

    fn is_empty(&self) -> bool {
        self.state.lock().expect("window lock").is_empty()
    }

    /// Blocks until at least one slot is free (or `stop` is raised).
    /// While the reader sits here it is not reading the socket — that
    /// unread socket is the backpressure.
    fn wait_for_room(&self, stop: &AtomicBool) -> bool {
        let mut set = self.state.lock().expect("window lock");
        loop {
            if set.len() < self.capacity {
                return true;
            }
            if stop.load(Ordering::Acquire) {
                return false;
            }
            set = self.freed.wait_timeout(set, POLL).expect("window lock").0;
        }
    }

    fn release(&self, id: u64) {
        self.state.lock().expect("window lock").remove(&id);
        self.freed.notify_one();
    }
}

/// Per-connection state shared by the command handlers.
struct Conn {
    engine: EngineHandle,
    /// Reply lines (without trailing newline) bound for the writer thread.
    tx: mpsc::Sender<String>,
    /// Negotiated protocol version: 1 until `hello proto=2` arrives.
    proto: u32,
    /// The connection's session database, set by `use`; `run` lines
    /// without an explicit `db=` target it (engine default otherwise).
    session_db: Option<String>,
    window: Arc<Window>,
    stop: Arc<AtomicBool>,
}

fn serve_connection(
    stream: TcpStream,
    engine: EngineHandle,
    stop: Arc<AtomicBool>,
    metrics: Arc<NetMetrics>,
    idle_timeout: Option<Duration>,
) {
    metrics.connections_open.inc();
    let close_reason = serve_connection_inner(stream, engine, stop, idle_timeout);
    metrics.record_close(&close_reason);
    metrics.connections_open.dec();
}

fn serve_connection_inner(
    stream: TcpStream,
    engine: EngineHandle,
    stop: Arc<AtomicBool>,
    idle_timeout: Option<Duration>,
) -> CloseReason {
    // Short read timeouts make the blocking read loop responsive to the
    // stop flag (and the idle timeout) without a reactor.
    if stream.set_read_timeout(Some(POLL)).is_err() {
        return CloseReason::Io("set_read_timeout failed".into());
    }
    let _ = stream.set_nodelay(true);
    let mut reader = stream;
    let writer = match reader.try_clone() {
        Ok(w) => w,
        Err(e) => return CloseReason::Io(e.to_string()),
    };

    let (tx, rx) = mpsc::channel::<String>();
    let writer_thread = std::thread::spawn(move || write_loop(writer, rx));

    let window = Arc::new(Window::new(WINDOW.min(engine.safe_window())));
    let mut conn = Conn {
        engine,
        tx,
        proto: 1,
        session_db: None,
        window,
        stop,
    };

    let mut framer = protocol::LineFramer::new();
    let mut chunk = [0u8; 4096];
    let mut last_activity = Instant::now();
    let mut reason = CloseReason::PeerClosed;
    'serve: loop {
        // Process every complete line already buffered before reading
        // more: in v2 this is what lets a burst of tagged requests become
        // one batch submission.
        let mut lines: Vec<String> = Vec::new();
        loop {
            match framer.next_line() {
                Ok(Some(line)) => lines.push(line),
                Ok(None) => break,
                Err(_) => {
                    let _ = conn
                        .tx
                        .send("err kind=protocol msg=line too long".to_string());
                    reason = CloseReason::Protocol("line too long".into());
                    break 'serve;
                }
            }
        }
        if !lines.is_empty() {
            if process_lines(&mut conn, lines).is_err() {
                reason = CloseReason::Io("reply channel closed".into());
                break;
            }
            last_activity = Instant::now();
        }
        if conn.stop.load(Ordering::Acquire) {
            reason = CloseReason::Shutdown;
            break;
        }
        match reader.read(&mut chunk) {
            Ok(0) => break, // peer closed
            Ok(n) => {
                framer.push(&chunk[..n]);
                last_activity = Instant::now();
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                // The slow-loris guard: a connection with no bytes and
                // nothing in flight for the whole idle window is closed.
                if let Some(timeout) = idle_timeout {
                    if conn.window.is_empty() && last_activity.elapsed() >= timeout {
                        reason = CloseReason::IdleTimeout;
                        break;
                    }
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => {
                reason = CloseReason::Io(e.to_string());
                break;
            }
        }
    }
    // Drop the reader's Sender; the writer keeps draining replies for
    // jobs still in flight (their callbacks hold Sender clones) and
    // exits once the last completion fires.
    drop(conn);
    let _ = writer_thread.join();
    reason
}

/// The connection's write half: single consumer of the reply channel.
/// Consecutive ready replies are coalesced into one `write_all` — under
/// pipelining this is the difference between one syscall per reply and
/// one per burst.
fn write_loop(mut writer: TcpStream, rx: mpsc::Receiver<String>) {
    while let Ok(line) = rx.recv() {
        let mut buf = line.into_bytes();
        buf.push(b'\n');
        while buf.len() < 64 * 1024 {
            match rx.try_recv() {
                Ok(more) => {
                    buf.extend_from_slice(more.as_bytes());
                    buf.push(b'\n');
                }
                Err(_) => break,
            }
        }
        if writer.write_all(&buf).is_err() {
            return;
        }
    }
}

fn send(conn: &Conn, line: String) -> Result<(), ()> {
    conn.tx.send(line).map_err(|_| ())
}

/// Handles a chunk of complete request lines. Consecutive tagged `run`s
/// against the same effective database accumulate into one batch; the
/// batch is flushed — pinning its catalog snapshot — before any other
/// command is handled, which is what keeps pipelined execution
/// serially equivalent around `use`/`load`/`add`.
fn process_lines(conn: &mut Conn, lines: Vec<String>) -> Result<(), ()> {
    let mut batch: Vec<(u64, Request)> = Vec::new();
    let mut batch_db: Option<String> = None;
    for line in lines {
        if conn.proto < 2 {
            // v1: strictly serial, byte-identical to the pre-pipelining
            // server (the writer channel preserves order — the reader is
            // its only producer here).
            let reply = dispatch_untagged(&line, conn);
            send(conn, reply)?;
            continue;
        }
        match protocol::split_request_tag(&line) {
            Ok((Some(id), rest)) => match protocol::decode_command(&rest) {
                Ok(Command::Run(mut request)) => {
                    if request.db.is_none() {
                        request.db = conn.session_db.clone();
                    }
                    if !batch.is_empty() && batch_db != request.db {
                        flush_batch(conn, &mut batch, batch_db.take());
                    }
                    batch_db = request.db.clone();
                    loop {
                        match conn.window.try_reserve(id) {
                            TryReserve::Reserved => {
                                batch.push((id, request));
                                break;
                            }
                            TryReserve::Duplicate => {
                                send(conn, protocol::tag_reply(id, &duplicate_id(id)))?;
                                break;
                            }
                            TryReserve::Full => {
                                // Submit what we have — those jobs free
                                // slots as they complete — then block.
                                flush_batch(conn, &mut batch, batch_db.clone());
                                if !conn.window.wait_for_room(&conn.stop) {
                                    return Err(());
                                }
                            }
                        }
                    }
                }
                Ok(cmd) => {
                    // Tagged catalog verbs / ping / stats complete
                    // synchronously on the reader thread, after the
                    // pending runs have pinned their snapshots.
                    flush_batch(conn, &mut batch, batch_db.take());
                    let reply = if conn.window.contains(id) {
                        duplicate_id(id)
                    } else {
                        handle_command(cmd, conn)
                    };
                    send(conn, protocol::tag_reply(id, &reply))?;
                }
                Err(e) => {
                    send(
                        conn,
                        protocol::tag_reply(id, &protocol::encode_result(&Err(e))),
                    )?;
                }
            },
            Ok((None, _)) => {
                // Untagged lines remain legal after the upgrade and run
                // serially on the reader thread, exactly like v1.
                flush_batch(conn, &mut batch, batch_db.take());
                let reply = dispatch_untagged(&line, conn);
                send(conn, reply)?;
            }
            Err(e) => {
                // A malformed id cannot tag its own error reply.
                send(conn, protocol::encode_result(&Err(e)))?;
            }
        }
    }
    flush_batch(conn, &mut batch, batch_db);
    Ok(())
}

/// Submits the accumulated batch: one catalog snapshot and one queue
/// lock for the lot. Each job's completion callback tags its reply,
/// hands it to the writer thread, and frees its window slot.
fn flush_batch(conn: &Conn, batch: &mut Vec<(u64, Request)>, db: Option<String>) {
    if batch.is_empty() {
        return;
    }
    let jobs: Vec<(Request, ReplyFn)> = batch
        .drain(..)
        .map(|(id, request)| {
            let tx = conn.tx.clone();
            let window = conn.window.clone();
            let reply: ReplyFn = Box::new(move |result| {
                let _ = tx.send(protocol::tag_reply(id, &protocol::encode_result(&result)));
                window.release(id);
            });
            (request, reply)
        })
        .collect();
    conn.engine.submit_batch(db.as_deref(), jobs);
}

fn dispatch_untagged(line: &str, conn: &mut Conn) -> String {
    if line.trim().is_empty() {
        return protocol::encode_result(&Err(ServiceError::Protocol("empty line".into())));
    }
    match protocol::decode_command(line) {
        Ok(cmd) => handle_command(cmd, conn),
        Err(e) => protocol::encode_result(&Err(e)),
    }
}

/// The threaded backend's realization of [`dispatch_command`]:
/// synchronous verbs answer inline; `run`/`trace` block the connection
/// thread in [`EngineHandle::execute`], which is what makes v1 strictly
/// serial.
fn handle_command(cmd: Command, conn: &mut Conn) -> String {
    let capacity = conn.window.capacity;
    match dispatch_command(
        cmd,
        &conn.engine,
        &mut conn.proto,
        &mut conn.session_db,
        capacity,
    ) {
        Dispatch::Reply(reply) => reply,
        Dispatch::Execute(request) => protocol::encode_result(&conn.engine.execute(request)),
        Dispatch::Trace(request) => {
            // The server clocks the engine call so the reported total
            // bounds the span sum even if a phase is mismeasured.
            let started = Instant::now();
            let result = conn.engine.execute(request);
            let total_us = started.elapsed().as_micros() as u64;
            protocol::encode_trace_report(&result.map(|resp| TraceReport::of(&resp, total_us)))
        }
        Dispatch::Explain(request) => {
            let started = Instant::now();
            let result = conn.engine.execute(request);
            let total_us = started.elapsed().as_micros() as u64;
            protocol::encode_explain_report(&result.map(|resp| ExplainReport::of(&resp, total_us)))
        }
    }
}
