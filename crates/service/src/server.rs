//! Blocking `std::net` TCP server for the line protocol.
//!
//! One OS thread per connection for the read side plus one for the
//! write side, no async runtime. That is a deliberate fit for this
//! engine: concurrency is limited by the engine's bounded queue and
//! in-flight cap, not by connection count, so connection threads spend
//! their lives blocked in `read` — cheap — and admission control (not
//! the accept loop) is what sheds load. Graceful shutdown needs no
//! reactor either: the accept loop polls a stop flag through a
//! nonblocking listener, and connection threads poll the same flag
//! through short read timeouts, so `shutdown()` converges in one poll
//! interval.
//!
//! A connection starts in protocol v1: strictly serial, untagged, one
//! reply per request in order. `hello proto=2` upgrades it to v2, where
//! the client may tag requests with `id=` and keep up to [`WINDOW`] of
//! them in flight; the reader thread demuxes tags, groups consecutive
//! tagged `run`s against the same database into one batch submission
//! (one catalog snapshot, one queue lock), and completions flow back
//! through the writer thread in whatever order the engine finishes
//! them. A full window is handled by **not reading the socket** — TCP
//! backpressure — never by synthesizing `Overloaded`; rejection remains
//! the engine's admission decision. See `docs/PROTOCOL.md` for the wire
//! grammar and `docs/ARCHITECTURE.md` for the request lifecycle.

use std::collections::HashSet;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::engine::{EngineHandle, ReplyFn, Request};
use crate::protocol::{self, Ack, Command, HelloAck, TraceReport, MAX_LINE};
use crate::ServiceError;

/// How often blocked I/O re-checks the stop flag.
const POLL: Duration = Duration::from_millis(25);

/// Upper bound on the per-connection in-flight window for protocol v2:
/// how many tagged requests may be outstanding before the reader stops
/// draining the socket. Window-full is backpressure, not an error — the
/// client's writes stall in TCP until completions free slots. The
/// effective window is capped at [`EngineHandle::safe_window`] so a
/// lone well-behaved pipelined client is throttled by backpressure,
/// never shed by admission control.
pub const WINDOW: usize = 128;

/// A running TCP front-end over an [`EngineHandle`].
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    connections: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts
    /// accepting connections on a background thread.
    pub fn start(addr: impl ToSocketAddrs, engine: EngineHandle) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let connections: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        let accept_stop = stop.clone();
        let accept_conns = connections.clone();
        let accept_thread = std::thread::spawn(move || {
            while !accept_stop.load(Ordering::Acquire) {
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        let engine = engine.clone();
                        let stop = accept_stop.clone();
                        let handle =
                            std::thread::spawn(move || serve_connection(stream, engine, stop));
                        let mut conns = accept_conns.lock().expect("connection list");
                        // Reap finished connection threads here so a
                        // long-lived server does not accumulate one
                        // JoinHandle per connection ever accepted.
                        let mut i = 0;
                        while i < conns.len() {
                            if conns[i].is_finished() {
                                let _ = conns.swap_remove(i).join();
                            } else {
                                i += 1;
                            }
                        }
                        conns.push(handle);
                    }
                    // Accept errors (ECONNABORTED, EMFILE, …) are
                    // transient: a peer resetting mid-handshake or fd
                    // pressure must not permanently stop the server from
                    // accepting while it appears healthy. Back off and
                    // retry; shutdown is signalled through `stop`, never
                    // through accept errors.
                    Err(e) if e.kind() == ErrorKind::WouldBlock => {
                        std::thread::sleep(POLL);
                    }
                    Err(e) => {
                        ppr_obs::ppr_warn!("accept error (backing off): {e}");
                        std::thread::sleep(POLL);
                    }
                }
            }
        });

        Ok(Server {
            addr,
            stop,
            accept_thread: Some(accept_thread),
            connections,
        })
    }

    /// The bound address — read this after `start("127.0.0.1:0", …)` to
    /// learn the ephemeral port.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, lets in-progress requests finish, and joins every
    /// I/O thread. Idempotent.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
        let handles: Vec<_> = self
            .connections
            .lock()
            .expect("connection list")
            .drain(..)
            .collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The v2 in-flight window: the set of tagged ids awaiting completion.
/// Doubles as the duplicate-id detector — an id stays reserved from the
/// moment the reader accepts it until its completion callback fires.
struct Window {
    state: Mutex<HashSet<u64>>,
    freed: Condvar,
    capacity: usize,
}

enum TryReserve {
    Reserved,
    Duplicate,
    Full,
}

impl Window {
    fn new(capacity: usize) -> Window {
        Window {
            state: Mutex::new(HashSet::new()),
            freed: Condvar::new(),
            capacity,
        }
    }

    fn try_reserve(&self, id: u64) -> TryReserve {
        let mut set = self.state.lock().expect("window lock");
        if set.contains(&id) {
            TryReserve::Duplicate
        } else if set.len() >= self.capacity {
            TryReserve::Full
        } else {
            set.insert(id);
            TryReserve::Reserved
        }
    }

    fn contains(&self, id: u64) -> bool {
        self.state.lock().expect("window lock").contains(&id)
    }

    /// Blocks until at least one slot is free (or `stop` is raised).
    /// While the reader sits here it is not reading the socket — that
    /// unread socket is the backpressure.
    fn wait_for_room(&self, stop: &AtomicBool) -> bool {
        let mut set = self.state.lock().expect("window lock");
        loop {
            if set.len() < self.capacity {
                return true;
            }
            if stop.load(Ordering::Acquire) {
                return false;
            }
            set = self.freed.wait_timeout(set, POLL).expect("window lock").0;
        }
    }

    fn release(&self, id: u64) {
        self.state.lock().expect("window lock").remove(&id);
        self.freed.notify_one();
    }
}

/// Per-connection state shared by the command handlers.
struct Conn {
    engine: EngineHandle,
    /// Reply lines (without trailing newline) bound for the writer thread.
    tx: mpsc::Sender<String>,
    /// Negotiated protocol version: 1 until `hello proto=2` arrives.
    proto: u32,
    /// The connection's session database, set by `use`; `run` lines
    /// without an explicit `db=` target it (engine default otherwise).
    session_db: Option<String>,
    window: Arc<Window>,
    stop: Arc<AtomicBool>,
}

fn serve_connection(stream: TcpStream, engine: EngineHandle, stop: Arc<AtomicBool>) {
    // Short read timeouts make the blocking read loop responsive to the
    // stop flag without a reactor.
    if stream.set_read_timeout(Some(POLL)).is_err() {
        return;
    }
    let _ = stream.set_nodelay(true);
    let mut reader = stream;
    let writer = match reader.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };

    let (tx, rx) = mpsc::channel::<String>();
    let writer_thread = std::thread::spawn(move || write_loop(writer, rx));

    let window = Arc::new(Window::new(WINDOW.min(engine.safe_window())));
    let mut conn = Conn {
        engine,
        tx,
        proto: 1,
        session_db: None,
        window,
        stop,
    };

    let mut pending: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    let mut lines: Vec<String> = Vec::new();
    loop {
        // Process every complete line already buffered before reading
        // more: in v2 this is what lets a burst of tagged requests become
        // one batch submission.
        while let Some(nl) = pending.iter().position(|&b| b == b'\n') {
            let raw: Vec<u8> = pending.drain(..=nl).collect();
            lines.push(String::from_utf8_lossy(&raw[..nl]).into_owned());
        }
        if !lines.is_empty() && process_lines(&mut conn, std::mem::take(&mut lines)).is_err() {
            break;
        }
        if pending.len() > MAX_LINE {
            let _ = conn
                .tx
                .send("err kind=protocol msg=line too long".to_string());
            break;
        }
        if conn.stop.load(Ordering::Acquire) {
            break;
        }
        match reader.read(&mut chunk) {
            Ok(0) => break, // peer closed
            Ok(n) => pending.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => break,
        }
    }
    // Drop the reader's Sender; the writer keeps draining replies for
    // jobs still in flight (their callbacks hold Sender clones) and
    // exits once the last completion fires.
    drop(conn);
    let _ = writer_thread.join();
}

/// The connection's write half: single consumer of the reply channel.
/// Consecutive ready replies are coalesced into one `write_all` — under
/// pipelining this is the difference between one syscall per reply and
/// one per burst.
fn write_loop(mut writer: TcpStream, rx: mpsc::Receiver<String>) {
    while let Ok(line) = rx.recv() {
        let mut buf = line.into_bytes();
        buf.push(b'\n');
        while buf.len() < 64 * 1024 {
            match rx.try_recv() {
                Ok(more) => {
                    buf.extend_from_slice(more.as_bytes());
                    buf.push(b'\n');
                }
                Err(_) => break,
            }
        }
        if writer.write_all(&buf).is_err() {
            return;
        }
    }
}

fn send(conn: &Conn, line: String) -> Result<(), ()> {
    conn.tx.send(line).map_err(|_| ())
}

/// Handles a chunk of complete request lines. Consecutive tagged `run`s
/// against the same effective database accumulate into one batch; the
/// batch is flushed — pinning its catalog snapshot — before any other
/// command is handled, which is what keeps pipelined execution
/// serially equivalent around `use`/`load`/`add`.
fn process_lines(conn: &mut Conn, lines: Vec<String>) -> Result<(), ()> {
    let mut batch: Vec<(u64, Request)> = Vec::new();
    let mut batch_db: Option<String> = None;
    for line in lines {
        if conn.proto < 2 {
            // v1: strictly serial, byte-identical to the pre-pipelining
            // server (the writer channel preserves order — the reader is
            // its only producer here).
            let reply = dispatch_untagged(&line, conn);
            send(conn, reply)?;
            continue;
        }
        match protocol::split_request_tag(&line) {
            Ok((Some(id), rest)) => match protocol::decode_command(&rest) {
                Ok(Command::Run(mut request)) => {
                    if request.db.is_none() {
                        request.db = conn.session_db.clone();
                    }
                    if !batch.is_empty() && batch_db != request.db {
                        flush_batch(conn, &mut batch, batch_db.take());
                    }
                    batch_db = request.db.clone();
                    loop {
                        match conn.window.try_reserve(id) {
                            TryReserve::Reserved => {
                                batch.push((id, request));
                                break;
                            }
                            TryReserve::Duplicate => {
                                send(conn, protocol::tag_reply(id, &duplicate_id(id)))?;
                                break;
                            }
                            TryReserve::Full => {
                                // Submit what we have — those jobs free
                                // slots as they complete — then block.
                                flush_batch(conn, &mut batch, batch_db.clone());
                                if !conn.window.wait_for_room(&conn.stop) {
                                    return Err(());
                                }
                            }
                        }
                    }
                }
                Ok(cmd) => {
                    // Tagged catalog verbs / ping / stats complete
                    // synchronously on the reader thread, after the
                    // pending runs have pinned their snapshots.
                    flush_batch(conn, &mut batch, batch_db.take());
                    let reply = if conn.window.contains(id) {
                        duplicate_id(id)
                    } else {
                        handle_command(cmd, conn)
                    };
                    send(conn, protocol::tag_reply(id, &reply))?;
                }
                Err(e) => {
                    send(
                        conn,
                        protocol::tag_reply(id, &protocol::encode_result(&Err(e))),
                    )?;
                }
            },
            Ok((None, _)) => {
                // Untagged lines remain legal after the upgrade and run
                // serially on the reader thread, exactly like v1.
                flush_batch(conn, &mut batch, batch_db.take());
                let reply = dispatch_untagged(&line, conn);
                send(conn, reply)?;
            }
            Err(e) => {
                // A malformed id cannot tag its own error reply.
                send(conn, protocol::encode_result(&Err(e)))?;
            }
        }
    }
    flush_batch(conn, &mut batch, batch_db);
    Ok(())
}

fn duplicate_id(id: u64) -> String {
    protocol::encode_result(&Err(ServiceError::Protocol(format!(
        "id {id} already in flight"
    ))))
}

/// Submits the accumulated batch: one catalog snapshot and one queue
/// lock for the lot. Each job's completion callback tags its reply,
/// hands it to the writer thread, and frees its window slot.
fn flush_batch(conn: &Conn, batch: &mut Vec<(u64, Request)>, db: Option<String>) {
    if batch.is_empty() {
        return;
    }
    let jobs: Vec<(Request, ReplyFn)> = batch
        .drain(..)
        .map(|(id, request)| {
            let tx = conn.tx.clone();
            let window = conn.window.clone();
            let reply: ReplyFn = Box::new(move |result| {
                let _ = tx.send(protocol::tag_reply(id, &protocol::encode_result(&result)));
                window.release(id);
            });
            (request, reply)
        })
        .collect();
    conn.engine.submit_batch(db.as_deref(), jobs);
}

fn dispatch_untagged(line: &str, conn: &mut Conn) -> String {
    if line.trim().is_empty() {
        return protocol::encode_result(&Err(ServiceError::Protocol("empty line".into())));
    }
    match protocol::decode_command(line) {
        Ok(cmd) => handle_command(cmd, conn),
        Err(e) => protocol::encode_result(&Err(e)),
    }
}

fn handle_command(cmd: Command, conn: &mut Conn) -> String {
    match cmd {
        Command::Hello { proto } => {
            // Negotiate down to what this build speaks; the client asked
            // for ≥ 2 (the decoder enforces it), so the connection is
            // tagged from the next line on.
            conn.proto = proto.min(protocol::PROTO_VERSION);
            protocol::encode_hello_ok(&HelloAck {
                proto: conn.proto,
                window: conn.window.capacity,
            })
        }
        Command::Ping => "ok pong".to_string(),
        Command::Stats => protocol::encode_stats(&conn.engine.stats()),
        Command::SlowLog => protocol::encode_slowlog(&Ok(conn.engine.metrics().slowlog.snapshot())),
        Command::Dbs => protocol::encode_dbs(&Ok(conn.engine.catalog().list())),
        Command::Run(mut request) => {
            if request.db.is_none() {
                request.db = conn.session_db.clone();
            }
            protocol::encode_result(&conn.engine.execute(request))
        }
        Command::Trace(mut request) => {
            if request.db.is_none() {
                request.db = conn.session_db.clone();
            }
            // The server clocks the engine call so the reported total
            // bounds the span sum even if a phase is mismeasured.
            let started = std::time::Instant::now();
            let result = conn.engine.execute(request);
            let total_us = started.elapsed().as_micros() as u64;
            protocol::encode_trace_report(&result.map(|resp| TraceReport::of(&resp, total_us)))
        }
        // Catalog verbs run on the connection thread, not the worker
        // queue: mutations are O(tiny database), and admission control
        // exists to bound query execution, not metadata traffic.
        Command::Use(db) => {
            let ack = match conn.engine.catalog().snapshot(&db) {
                Some(snap) => {
                    conn.session_db = Some(db.clone());
                    Ok(Ack {
                        db,
                        version: Some(snap.version),
                    })
                }
                None => Err(ServiceError::UnknownDatabase(db)),
            };
            protocol::encode_ack(&ack)
        }
        Command::Create(db) => {
            let ack = conn
                .engine
                .catalog()
                .create(&db)
                .map(|version| Ack {
                    db,
                    version: Some(version),
                })
                .map_err(ServiceError::from);
            protocol::encode_ack(&ack)
        }
        Command::Drop(db) => {
            let ack = conn
                .engine
                .catalog()
                .drop_db(&db)
                .map(|()| {
                    // A dropped session database falls back to the default.
                    if conn.session_db.as_deref() == Some(db.as_str()) {
                        conn.session_db = None;
                    }
                    Ack { db, version: None }
                })
                .map_err(ServiceError::from);
            protocol::encode_ack(&ack)
        }
        Command::Load { db, rel, tuples } => {
            let ack = conn
                .engine
                .catalog()
                .load(&db, &rel, tuples)
                .map(|version| Ack {
                    db,
                    version: Some(version),
                })
                .map_err(ServiceError::from);
            protocol::encode_ack(&ack)
        }
        Command::Add { db, rel, tuple } => {
            let ack = conn
                .engine
                .catalog()
                .add(&db, &rel, tuple)
                .map(|version| Ack {
                    db,
                    version: Some(version),
                })
                .map_err(ServiceError::from);
            protocol::encode_ack(&ack)
        }
    }
}
