//! Fingerprint-keyed LRU plan cache.
//!
//! Planning is the per-request fixed cost the serving layer exists to
//! amortize: for the structural methods it is pure query analysis
//! (independent of the data), so a compiled [`Plan`] is reusable for every
//! future request whose query is *isomorphic* to the one that built it.
//! The cache key is therefore ([`Fingerprint`], [`Method`]) — the
//! fingerprint already quotients out variable renaming and atom order —
//! and the value is an `Arc<Plan>` shared with however many requests are
//! concurrently executing it.
//!
//! Eviction is strict LRU over an intrusive doubly-linked list threaded
//! through a slab, so `get`/`insert` are O(1) and the cache never scans.
//! Hit/miss/eviction counters are atomics read by the `stats` wire
//! command.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use ppr_core::methods::Method;
use ppr_query::Fingerprint;
use ppr_relalg::Plan;
use rustc_hash::FxHashMap;

/// Cache key: canonical query identity × planning method.
pub type CacheKey = (Fingerprint, Method);

const NIL: usize = usize::MAX;

struct Node {
    key: CacheKey,
    plan: Arc<Plan>,
    prev: usize,
    next: usize,
}

struct Inner {
    map: FxHashMap<CacheKey, usize>,
    nodes: Vec<Node>,
    free: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
}

impl Inner {
    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.nodes[i].prev, self.nodes[i].next);
        if prev == NIL {
            self.head = next;
        } else {
            self.nodes[prev].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.nodes[next].prev = prev;
        }
    }

    fn push_front(&mut self, i: usize) {
        self.nodes[i].prev = NIL;
        self.nodes[i].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }
}

/// Counter snapshot (plus occupancy) of a [`PlanCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups that found a cached plan.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries displaced by capacity pressure.
    pub evictions: u64,
    /// Entries currently cached.
    pub len: usize,
    /// Maximum entries.
    pub capacity: usize,
}

impl CacheStats {
    /// Hit fraction over all lookups (0 when none happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Thread-safe LRU cache from [`CacheKey`] to compiled plans.
pub struct PlanCache {
    inner: Mutex<Inner>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl PlanCache {
    /// A cache holding at most `capacity` plans (at least 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        PlanCache {
            inner: Mutex::new(Inner {
                map: FxHashMap::default(),
                nodes: Vec::new(),
                free: Vec::new(),
                head: NIL,
                tail: NIL,
            }),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Looks up `key`, counting a hit (and refreshing recency) or a miss.
    pub fn get(&self, key: &CacheKey) -> Option<Arc<Plan>> {
        let mut inner = self.inner.lock().expect("cache lock");
        match inner.map.get(key).copied() {
            Some(i) => {
                inner.unlink(i);
                inner.push_front(i);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(inner.nodes[i].plan.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts `plan` under `key`, evicting the least-recently-used entry
    /// at capacity. If a racing request inserted the key first, the
    /// existing plan wins (and is returned), so all concurrent requests
    /// for one query execute the same plan.
    pub fn insert(&self, key: CacheKey, plan: Arc<Plan>) -> Arc<Plan> {
        let mut inner = self.inner.lock().expect("cache lock");
        if let Some(&i) = inner.map.get(&key) {
            inner.unlink(i);
            inner.push_front(i);
            return inner.nodes[i].plan.clone();
        }
        if inner.map.len() >= self.capacity {
            let lru = inner.tail;
            inner.unlink(lru);
            let old_key = inner.nodes[lru].key;
            inner.map.remove(&old_key);
            inner.free.push(lru);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        let i = match inner.free.pop() {
            Some(i) => {
                inner.nodes[i] = Node {
                    key,
                    plan: plan.clone(),
                    prev: NIL,
                    next: NIL,
                };
                i
            }
            None => {
                inner.nodes.push(Node {
                    key,
                    plan: plan.clone(),
                    prev: NIL,
                    next: NIL,
                });
                inner.nodes.len() - 1
            }
        };
        inner.push_front(i);
        inner.map.insert(key, i);
        plan
    }

    /// Current counters and occupancy.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            len: self.inner.lock().expect("cache lock").map.len(),
            capacity: self.capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppr_relalg::{AttrId, Relation, Schema};

    fn key(n: u128) -> CacheKey {
        (Fingerprint(n), Method::Straightforward)
    }

    fn plan(tag: u32) -> Arc<Plan> {
        let rel = Relation::empty(format!("r{tag}"), Schema::new(vec![AttrId(tag)]));
        Arc::new(Plan::scan(rel.into_shared(), vec![AttrId(tag)]))
    }

    fn scan_name(p: &Plan) -> &str {
        match p {
            Plan::Scan { base, .. } => base.name(),
            _ => unreachable!(),
        }
    }

    #[test]
    fn hit_miss_counters() {
        let c = PlanCache::new(4);
        assert!(c.get(&key(1)).is_none());
        c.insert(key(1), plan(1));
        assert!(c.get(&key(1)).is_some());
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.evictions, s.len), (1, 1, 0, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn method_is_part_of_the_key() {
        let c = PlanCache::new(4);
        c.insert((Fingerprint(7), Method::Straightforward), plan(1));
        assert!(c.get(&(Fingerprint(7), Method::EarlyProjection)).is_none());
        assert!(c.get(&(Fingerprint(7), Method::Straightforward)).is_some());
    }

    #[test]
    fn evicts_least_recently_used() {
        let c = PlanCache::new(2);
        c.insert(key(1), plan(1));
        c.insert(key(2), plan(2));
        assert!(c.get(&key(1)).is_some()); // 2 is now LRU
        c.insert(key(3), plan(3));
        assert!(c.get(&key(2)).is_none(), "LRU entry should be evicted");
        assert!(c.get(&key(1)).is_some());
        assert!(c.get(&key(3)).is_some());
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.stats().len, 2);
    }

    #[test]
    fn insert_race_keeps_first_plan() {
        let c = PlanCache::new(4);
        let first = c.insert(key(1), plan(10));
        let second = c.insert(key(1), plan(20));
        assert_eq!(scan_name(&first), "r10");
        assert_eq!(scan_name(&second), "r10", "existing entry must win");
        assert_eq!(c.stats().len, 1);
    }

    #[test]
    fn eviction_slot_reuse_is_sound() {
        let c = PlanCache::new(2);
        for i in 0..100u128 {
            c.insert(key(i), plan(i as u32));
        }
        let s = c.stats();
        assert_eq!(s.len, 2);
        assert_eq!(s.evictions, 98);
        assert!(c.get(&key(99)).is_some());
        assert!(c.get(&key(98)).is_some());
        assert!(c.get(&key(0)).is_none());
    }

    #[test]
    fn concurrent_access_is_consistent() {
        let c = Arc::new(PlanCache::new(8));
        let mut handles = Vec::new();
        for t in 0..4u128 {
            let c = c.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..200u128 {
                    let k = key((t * 4 + i) % 16);
                    if c.get(&k).is_none() {
                        c.insert(k, plan(i as u32));
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let s = c.stats();
        assert_eq!(s.len, 8);
        assert_eq!(s.hits + s.misses, 800, "every lookup is counted once");
    }
}
