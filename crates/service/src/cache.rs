//! Fingerprint-keyed LRU plan cache.
//!
//! Planning is the per-request fixed cost the serving layer exists to
//! amortize: for the structural methods it is pure query analysis
//! (independent of the data), so a compiled [`Plan`] is reusable for every
//! future request whose query is *isomorphic* to the one that built it.
//! The cache key is [`CacheKey`]: database *content* ([`DbFingerprint`]),
//! [`Fingerprint`], [`Method`], and planner seed. The query fingerprint
//! quotients out variable renaming and atom order; the seed is part of
//! the key because it breaks planner ties, so plans built under different
//! seeds may legitimately differ; and the data identity is part of the
//! key because a compiled plan *embeds* `Arc<Relation>` handles in its
//! scan leaves. Keying on the content hash rather than on the database's
//! name + version means isomorphic databases (same content under another
//! name, load order, or a post-crash recovery) share plans, while any
//! content-changing mutation naturally invalidates: the new fingerprint
//! makes a fresh key and the stale entry ages out of the LRU. A plan hit
//! from a *different* (content-identical) database executes the embedded
//! snapshot's relations — same tuple sets, so same answers. The value is
//! an `Arc<Plan>` shared with however many requests are concurrently
//! executing it.
//!
//! The fingerprint is a 1-WL refinement invariant, so non-isomorphic
//! queries *can* share a key (see `ppr_query::fingerprint`). Every entry
//! therefore also stores the [`QueryShape`] of the query that built it,
//! and a lookup only hits when the incoming query's shape matches; a
//! mismatch counts as a miss (plus a `collisions` counter) and the fresh
//! plan displaces the colliding entry. Collisions cost a re-plan, never
//! a wrong answer.
//!
//! Eviction is strict LRU over an intrusive doubly-linked list threaded
//! through a slab, so `get`/`insert` are O(1) and the cache never scans.
//! Hit/miss/eviction counters are atomics read by the `stats` wire
//! command.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use ppr_core::methods::Method;
use ppr_query::{Fingerprint, QueryShape};
use ppr_relalg::Plan;
use rustc_hash::FxHashMap;

use crate::catalog::DbFingerprint;

/// Cache key: data identity (database content hash) × canonical query
/// identity × planning method × planner seed.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Content fingerprint of the database the plan's scans are bound to.
    pub data: DbFingerprint,
    /// Canonical query fingerprint.
    pub fingerprint: Fingerprint,
    /// Planning method.
    pub method: Method,
    /// Effective planner seed.
    pub seed: u64,
}

const NIL: usize = usize::MAX;

struct Node {
    key: CacheKey,
    shape: QueryShape,
    plan: Arc<Plan>,
    prev: usize,
    next: usize,
}

struct Inner {
    map: FxHashMap<CacheKey, usize>,
    nodes: Vec<Node>,
    free: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
}

impl Inner {
    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.nodes[i].prev, self.nodes[i].next);
        if prev == NIL {
            self.head = next;
        } else {
            self.nodes[prev].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.nodes[next].prev = prev;
        }
    }

    fn push_front(&mut self, i: usize) {
        self.nodes[i].prev = NIL;
        self.nodes[i].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }
}

/// Counter snapshot (plus occupancy) of a [`PlanCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups that found a cached plan.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries displaced by capacity pressure.
    pub evictions: u64,
    /// Lookups whose key matched but whose [`QueryShape`] did not — a
    /// fingerprint collision between structurally different queries. Each
    /// is also counted as a miss.
    pub collisions: u64,
    /// Entries currently cached.
    pub len: usize,
    /// Maximum entries.
    pub capacity: usize,
}

impl CacheStats {
    /// Hit fraction over all lookups (0 when none happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Thread-safe LRU cache from [`CacheKey`] to compiled plans.
pub struct PlanCache {
    inner: Mutex<Inner>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    collisions: AtomicU64,
}

impl PlanCache {
    /// A cache holding at most `capacity` plans (at least 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        PlanCache {
            inner: Mutex::new(Inner {
                map: FxHashMap::default(),
                nodes: Vec::new(),
                free: Vec::new(),
                head: NIL,
                tail: NIL,
            }),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            collisions: AtomicU64::new(0),
        }
    }

    /// Looks up `key`, counting a hit (and refreshing recency) or a miss.
    /// A key match whose stored [`QueryShape`] differs from `shape` is a
    /// fingerprint collision between structurally different queries: it is
    /// counted as a miss (plus `collisions`) and returns `None`, so the
    /// caller re-plans instead of running the wrong query's plan.
    pub fn get(&self, key: &CacheKey, shape: &QueryShape) -> Option<Arc<Plan>> {
        let mut inner = self.inner.lock().expect("cache lock");
        match inner.map.get(key).copied() {
            Some(i) if inner.nodes[i].shape == *shape => {
                inner.unlink(i);
                inner.push_front(i);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(inner.nodes[i].plan.clone())
            }
            Some(_) => {
                self.collisions.fetch_add(1, Ordering::Relaxed);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts `plan` under `key`, evicting the least-recently-used entry
    /// at capacity. If a racing request inserted the key first *for the
    /// same shape*, the existing plan wins (and is returned), so all
    /// concurrent requests for one query execute the same plan; a
    /// different shape (fingerprint collision) displaces the entry so the
    /// cache never serves a structurally different query's plan.
    pub fn insert(&self, key: CacheKey, shape: QueryShape, plan: Arc<Plan>) -> Arc<Plan> {
        let mut inner = self.inner.lock().expect("cache lock");
        if let Some(&i) = inner.map.get(&key) {
            if inner.nodes[i].shape != shape {
                inner.nodes[i].shape = shape;
                inner.nodes[i].plan = plan.clone();
            }
            inner.unlink(i);
            inner.push_front(i);
            return inner.nodes[i].plan.clone();
        }
        if inner.map.len() >= self.capacity {
            let lru = inner.tail;
            inner.unlink(lru);
            let old_key = inner.nodes[lru].key.clone();
            inner.map.remove(&old_key);
            inner.free.push(lru);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        let node = Node {
            key: key.clone(),
            shape,
            plan: plan.clone(),
            prev: NIL,
            next: NIL,
        };
        let i = match inner.free.pop() {
            Some(i) => {
                inner.nodes[i] = node;
                i
            }
            None => {
                inner.nodes.push(node);
                inner.nodes.len() - 1
            }
        };
        inner.push_front(i);
        inner.map.insert(key, i);
        plan
    }

    /// Current counters and occupancy.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            collisions: self.collisions.load(Ordering::Relaxed),
            len: self.inner.lock().expect("cache lock").map.len(),
            capacity: self.capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppr_query::parse_query;
    use ppr_relalg::{AttrId, Relation, Schema};

    fn key(n: u128) -> CacheKey {
        keyed(n, Method::Straightforward, 0)
    }

    fn keyed(n: u128, method: Method, seed: u64) -> CacheKey {
        CacheKey {
            data: DbFingerprint(1),
            fingerprint: Fingerprint(n),
            method,
            seed,
        }
    }

    fn shape() -> QueryShape {
        QueryShape::of(&parse_query("q(x) :- e(x, y)").unwrap())
    }

    fn other_shape() -> QueryShape {
        QueryShape::of(&parse_query("q(x) :- e(x, y), e(y, z)").unwrap())
    }

    fn plan(tag: u32) -> Arc<Plan> {
        let rel = Relation::empty(format!("r{tag}"), Schema::new(vec![AttrId(tag)]));
        Arc::new(Plan::scan(rel.into_shared(), vec![AttrId(tag)]))
    }

    fn scan_name(p: &Plan) -> &str {
        match p {
            Plan::Scan { base, .. } => base.name(),
            _ => unreachable!(),
        }
    }

    #[test]
    fn hit_miss_counters() {
        let c = PlanCache::new(4);
        assert!(c.get(&key(1), &shape()).is_none());
        c.insert(key(1), shape(), plan(1));
        assert!(c.get(&key(1), &shape()).is_some());
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.evictions, s.len), (1, 1, 0, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn method_is_part_of_the_key() {
        let c = PlanCache::new(4);
        c.insert(keyed(7, Method::Straightforward, 0), shape(), plan(1));
        assert!(c
            .get(&keyed(7, Method::EarlyProjection, 0), &shape())
            .is_none());
        assert!(c
            .get(&keyed(7, Method::Straightforward, 0), &shape())
            .is_some());
    }

    #[test]
    fn seed_is_part_of_the_key() {
        // The seed breaks planner ties, so plans built under different
        // seeds may differ and must not share an entry.
        let c = PlanCache::new(4);
        c.insert(keyed(7, Method::Straightforward, 0), shape(), plan(1));
        assert!(c
            .get(&keyed(7, Method::Straightforward, 1), &shape())
            .is_none());
        assert!(c
            .get(&keyed(7, Method::Straightforward, 0), &shape())
            .is_some());
    }

    #[test]
    fn data_fingerprint_is_part_of_the_key() {
        // Plans embed `Arc<Relation>` scans, so a plan is only valid for
        // databases whose content matches the one it was built against.
        let c = PlanCache::new(4);
        c.insert(key(7), shape(), plan(1));
        let mut changed = key(7);
        changed.data = DbFingerprint(2);
        assert!(
            c.get(&changed, &shape()).is_none(),
            "a content change must re-plan"
        );
        assert!(c.get(&key(7), &shape()).is_some());
    }

    #[test]
    fn shape_mismatch_is_a_collision_not_a_hit() {
        // Two structurally different queries sharing a fingerprint (forced
        // here by reusing the key) must never share a plan.
        let c = PlanCache::new(4);
        c.insert(key(1), shape(), plan(10));
        assert!(c.get(&key(1), &other_shape()).is_none());
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.collisions), (0, 1, 1));
        // Inserting the colliding query's plan displaces the entry…
        let got = c.insert(key(1), other_shape(), plan(20));
        assert_eq!(scan_name(&got), "r20");
        assert_eq!(c.stats().len, 1);
        // …so the new shape now hits and the old one misses.
        assert!(c.get(&key(1), &other_shape()).is_some());
        assert!(c.get(&key(1), &shape()).is_none());
    }

    #[test]
    fn evicts_least_recently_used() {
        let c = PlanCache::new(2);
        c.insert(key(1), shape(), plan(1));
        c.insert(key(2), shape(), plan(2));
        assert!(c.get(&key(1), &shape()).is_some()); // 2 is now LRU
        c.insert(key(3), shape(), plan(3));
        assert!(
            c.get(&key(2), &shape()).is_none(),
            "LRU entry should be evicted"
        );
        assert!(c.get(&key(1), &shape()).is_some());
        assert!(c.get(&key(3), &shape()).is_some());
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.stats().len, 2);
    }

    #[test]
    fn insert_race_keeps_first_plan() {
        let c = PlanCache::new(4);
        let first = c.insert(key(1), shape(), plan(10));
        let second = c.insert(key(1), shape(), plan(20));
        assert_eq!(scan_name(&first), "r10");
        assert_eq!(scan_name(&second), "r10", "existing entry must win");
        assert_eq!(c.stats().len, 1);
    }

    #[test]
    fn eviction_slot_reuse_is_sound() {
        let c = PlanCache::new(2);
        for i in 0..100u128 {
            c.insert(key(i), shape(), plan(i as u32));
        }
        let s = c.stats();
        assert_eq!(s.len, 2);
        assert_eq!(s.evictions, 98);
        assert!(c.get(&key(99), &shape()).is_some());
        assert!(c.get(&key(98), &shape()).is_some());
        assert!(c.get(&key(0), &shape()).is_none());
    }

    #[test]
    fn concurrent_access_is_consistent() {
        let c = Arc::new(PlanCache::new(8));
        let mut handles = Vec::new();
        for t in 0..4u128 {
            let c = c.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..200u128 {
                    let k = key((t * 4 + i) % 16);
                    if c.get(&k, &shape()).is_none() {
                        c.insert(k, shape(), plan(i as u32));
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let s = c.stats();
        assert_eq!(s.len, 8);
        assert_eq!(s.hits + s.misses, 800, "every lookup is counted once");
    }
}
