//! The request engine: worker pool, admission control, two-level cache.
//!
//! One [`Engine`] owns a [`Catalog`] of versioned databases (the paper's
//! workloads run many large queries over tiny databases, so databases are
//! server state and queries are the traffic — but unlike PR 2's single
//! frozen database, the catalog is mutable over the wire), a
//! [`ResultCache`], a [`PlanCache`], and a pool of worker threads
//! draining a bounded queue. The life of a request:
//!
//! 1. **Admission** — [`EngineHandle::execute`] fast-fails with
//!    [`ServiceError::Overloaded`] when the in-flight cap or the bounded
//!    queue is full. Nothing ever waits for queue space: under overload
//!    the server sheds load in O(1) rather than building an unbounded
//!    backlog.
//! 2. **Snapshot** — the worker resolves the request's database name
//!    against the catalog, pinning one `(Arc<Database>, DbVersion)`
//!    snapshot for the whole request; concurrent mutations publish new
//!    versions beside it and never tear an evaluation.
//! 3. **Parse + identity** — parse the Datalog-ish text, check every atom
//!    against the snapshot, compute the canonical
//!    [`ppr_query::QueryIdentity`] once for both caches.
//! 4. **Result cache** — a hit on `(db, version, fingerprint, method,
//!    seed)` returns the cached rows with **zero execution**; any catalog
//!    mutation bumped the version and so naturally invalidated every
//!    older entry.
//! 5. **Plan cache / plan** — on a result miss, a plan-cache hit returns
//!    the shared `Arc<Plan>`; a miss builds the plan and publishes it.
//!    The plan key carries the same `(db, version)` prefix, because plans
//!    embed `Arc<Relation>` scans of the snapshot they were built on.
//! 6. **Execute + publish** — serial or partitioned-parallel executor
//!    under the request budget clamped by the server maximum; a
//!    successful result is offered to the result cache (byte-budgeted,
//!    LRU).
//!
//! Shutdown is graceful: the queue closes, workers drain every admitted
//! request (each waiting client still gets its answer), then exit.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ppr_core::methods::{Method, OrderHeuristic};
use ppr_core::passes::plan_query;
use ppr_obs::{OpNode, PassSpan, Phase, ProfileMode, Quantiles, SlowEntry, TraceSpans, PHASES};
use ppr_query::{ConjunctiveQuery, Database, QueryIdentity};
use ppr_relalg::{exec, parallel, streaming_shape, Budget, ExecStats, Value};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::cache::{CacheKey, CacheStats, PlanCache};
use crate::catalog::{Catalog, DbSnapshot, DEFAULT_DB};
use crate::decomp::{self, DecompCache, DecompKey, DecompStats};
use crate::metrics::ServiceMetrics;
use crate::queue::{BoundedQueue, PushError};
use crate::result_cache::{CachedResult, ResultCache, ResultCacheStats, ResultKey};
use crate::ServiceError;

/// Completion callback for an asynchronously submitted request. Invoked
/// exactly once — with the response, or with the admission/refusal error.
pub type ReplyFn = Box<dyn FnOnce(Result<Response, ServiceError>) + Send + 'static>;

/// What an `explain` request wants back.
///
/// `#[non_exhaustive]`: future modes (e.g. verbose costing) extend the
/// enum without a breaking change.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub enum ExplainMode {
    /// Not an explain request: execute normally.
    #[default]
    None,
    /// Run the optimizer pipeline and render the operator tree the
    /// streaming executor *would* run, without executing anything.
    Plan,
    /// Execute with per-operator profiling on and annotate the tree with
    /// measured rows, probes, and self times.
    Analyze,
}

/// The planner and executor detail an `explain` request carries back on
/// its [`Response`]. Boxed there so non-explain responses pay one
/// pointer.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ExplainData {
    /// True when the operators carry measured counters
    /// (`explain analyze`); false for the zero-counter planned tree.
    pub analyze: bool,
    /// Per-pass wall time and plan-delta spans from the optimizer run.
    /// Explain bypasses the plan cache, so these are always fresh.
    pub passes: Vec<PassSpan>,
    /// The operator tree, pre-order with depths. Counters are zero under
    /// `explain plan`, measured under `explain analyze`.
    pub ops: Vec<OpNode>,
}

/// One query request, embedded or decoded from the wire.
///
/// Build one with the fluent constructors —
/// `Request::query("q(x) :- edge(x, y)").method(m).on("graphs")` — or
/// start from [`Request::new`] and set fields. The struct is
/// `#[non_exhaustive]`: future protocol extensions add fields without a
/// breaking change, so downstream code uses the builders (or field
/// mutation), never struct literals.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub struct Request {
    /// Datalog-ish rule text, e.g. `q(x) :- e(x, y), e(y, x)`.
    pub query: String,
    /// Planning method.
    pub method: Method,
    /// Database to run against; `None` targets
    /// [`crate::catalog::DEFAULT_DB`] (or the connection's
    /// `use`-selected session database on the wire).
    pub db: Option<String>,
    /// Tuple-flow budget override (clamped by the server maximum).
    pub max_tuples: Option<u64>,
    /// Wall-clock budget override in milliseconds (clamped likewise).
    pub timeout_ms: Option<u64>,
    /// Planner tie-breaking seed; `None` uses the engine default so that
    /// repeated requests are deterministic.
    pub seed: Option<u64>,
    /// Explain mode. Anything but [`ExplainMode::None`] bypasses both
    /// caches (the report must describe a fresh planner run) and returns
    /// [`Response::explain`] data; `Analyze` additionally forces the
    /// serial streaming executor with per-operator profiling on.
    pub explain: ExplainMode,
}

impl Request {
    /// A request for `query` with `method` and no overrides.
    pub fn new(query: impl Into<String>, method: Method) -> Self {
        Request {
            query: query.into(),
            method,
            db: None,
            max_tuples: None,
            timeout_ms: None,
            seed: None,
            explain: ExplainMode::None,
        }
    }

    /// Starts a builder for `query` with the default method
    /// (bucket elimination under the MCS order — the paper's winner).
    pub fn query(query: impl Into<String>) -> Self {
        Request::new(query, Method::BucketElimination(OrderHeuristic::Mcs))
    }

    /// Selects the planning method.
    pub fn method(mut self, method: Method) -> Self {
        self.method = method;
        self
    }

    /// Targets a named catalog database instead of the default.
    pub fn on(mut self, db: impl Into<String>) -> Self {
        self.db = Some(db.into());
        self
    }

    /// Overrides the tuple-flow budget (clamped by the server maximum).
    pub fn max_tuples(mut self, max: u64) -> Self {
        self.max_tuples = Some(max);
        self
    }

    /// Overrides the wall-clock budget (clamped by the server maximum).
    /// Stored with millisecond granularity, matching the wire protocol.
    pub fn timeout(mut self, limit: Duration) -> Self {
        self.timeout_ms = Some(limit.as_millis() as u64);
        self
    }

    /// Pins the planner tie-breaking seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Selects an explain mode (see [`Request::explain`]).
    pub fn explain(mut self, mode: ExplainMode) -> Self {
        self.explain = mode;
        self
    }
}

/// A successful evaluation.
///
/// `#[non_exhaustive]`: responses grow fields (as `result_cache_hit` did)
/// without breaking downstream constructors.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub struct Response {
    /// Output column names (the query's free variables, in order). On a
    /// result-cache hit these are the column names of the query that
    /// originally produced the rows (same positions under renaming).
    pub columns: Vec<String>,
    /// Result rows, byte-identical to library-level evaluation of the
    /// same query, method, and database snapshot — whether executed cold
    /// or served from the result cache.
    pub rows: Vec<Box<[Value]>>,
    /// Executor statistics. On a result-cache hit, the stats of the
    /// execution that originally produced the rows.
    pub stats: ExecStats,
    /// Whether the request skipped re-planning (plan-cache hit, or a
    /// result-cache hit, which never consults the planner at all).
    pub cache_hit: bool,
    /// Whether the rows came from the result cache (zero execution).
    pub result_cache_hit: bool,
    /// Time spent building the plan (0 on either kind of hit).
    pub plan_micros: u64,
    /// Per-phase span breakdown recorded by the worker
    /// (queue-wait → parse → fingerprint → cache-lookup → plan → exec).
    /// Zeroed on wire-decoded responses — `run` replies do not carry it;
    /// the `trace` verb does.
    pub trace: TraceSpans,
    /// Planner/operator detail, present exactly when the request carried
    /// an explain mode. `None` on every other path (including wire
    /// decodes of `run` replies — `explain` replies travel as an
    /// [`crate::protocol::ExplainReport`] instead).
    pub explain: Option<Box<ExplainData>>,
}

impl Response {
    /// An empty cold-execution response — the decoding seed for the wire
    /// layer and the only way to construct one outside this crate (the
    /// struct is `#[non_exhaustive]`).
    pub fn empty() -> Response {
        Response {
            columns: Vec::new(),
            rows: Vec::new(),
            stats: ExecStats::default(),
            cache_hit: false,
            result_cache_hit: false,
            plan_micros: 0,
            trace: TraceSpans::new(),
            explain: None,
        }
    }
}

/// Engine sizing and limits.
///
/// `#[non_exhaustive]`: start from [`EngineConfig::default`] and set
/// fields — struct literals would break on the next added knob.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct EngineConfig {
    /// Worker threads executing requests.
    pub workers: usize,
    /// Bounded-queue capacity (requests admitted but not yet picked up).
    pub queue_capacity: usize,
    /// Hard cap on requests queued + executing; 0 derives
    /// `workers + queue_capacity`.
    pub max_inflight: usize,
    /// Plan-cache entries.
    pub cache_capacity: usize,
    /// Result-cache byte budget; 0 disables result caching (every request
    /// executes, as in PR 2).
    pub result_cache_bytes: usize,
    /// Threads per request inside the executor: 1 = the serial push-based
    /// streaming executor (probing secondary indexes cached on the
    /// snapshot), else [`parallel::execute_parallel`] (0 = all cores).
    pub exec_threads: usize,
    /// Server-side budget ceiling; request overrides are clamped to it.
    pub max_budget: Budget,
    /// Planner seed used when a request does not carry one.
    pub default_seed: u64,
    /// Slow-query-log entries retained (worst-N by latency); 0 selects
    /// [`crate::metrics::DEFAULT_SLOWLOG_CAPACITY`].
    pub slowlog_capacity: usize,
    /// Run every serial execution with per-operator profiling on, feeding
    /// the `ppr_op_*` metrics and slow-log operator digests. Costs a few
    /// clock reads per row on the streaming executor's hot path, so it is
    /// off by default; `explain analyze` profiles its own request
    /// regardless.
    pub profile_ops: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: 4,
            queue_capacity: 64,
            max_inflight: 0,
            cache_capacity: 256,
            result_cache_bytes: 8 << 20,
            exec_threads: 1,
            max_budget: Budget::tuples(u64::MAX).with_timeout(Duration::from_secs(60)),
            default_seed: 0,
            slowlog_capacity: 0,
            profile_ops: false,
        }
    }
}

struct Job {
    request: Request,
    /// Snapshot pinned at submission time (batch submission): the worker
    /// skips catalog resolution and every request of the batch evaluates
    /// against the same published version.
    pinned: Option<(String, DbSnapshot)>,
    /// When admission accepted the job — the worker's pickup time minus
    /// this is the queue-wait span.
    submitted: Instant,
    reply: ReplyFn,
}

struct Shared {
    catalog: Arc<Catalog>,
    cache: PlanCache,
    decomps: DecompCache,
    results: ResultCache,
    queue: BoundedQueue<Job>,
    accepting: AtomicBool,
    inflight: AtomicUsize,
    max_inflight: usize,
    served: AtomicU64,
    rejected: AtomicU64,
    exec_threads: usize,
    max_budget: Budget,
    default_seed: u64,
    profile_ops: bool,
    obs: Arc<ServiceMetrics>,
}

/// Aggregate engine counters, reported by the `stats` wire command.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineStats {
    /// Requests answered (ok or error) by workers.
    pub served: u64,
    /// Requests refused by admission control.
    pub rejected: u64,
    /// Requests currently queued or executing.
    pub inflight: usize,
    /// Plan-cache counters.
    pub cache: CacheStats,
    /// Result-cache counters.
    pub results: ResultCacheStats,
    /// Secondary-index lookups performed by the streaming executor
    /// across all served requests.
    pub index_probes: u64,
    /// Secondary indexes built (cache misses); stops growing once the
    /// serving snapshot's indexes are warm.
    pub index_builds: u64,
    /// Optimizer passes executed by the planning pipeline across all
    /// planned requests (plan- and result-cache hits run none).
    pub passes_run: u64,
    /// Bucket decompositions skipped because the structure-keyed
    /// [`DecompCache`] supplied the variable order as a pass hint.
    pub decomp_cache_hits: u64,
    /// Decomposition-cache counters.
    pub decomps: DecompStats,
    /// Per-phase latency quantiles from the shared histograms.
    pub spans: SpanStats,
}

/// Latency quantiles per request phase, extracted from the engine's
/// shared histograms at [`EngineHandle::stats`] time. Quantile values
/// are upper bucket bounds (see `ppr_obs::HistSnapshot::quantile`), in
/// microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpanStats {
    /// One [`Quantiles`] per [`Phase`], indexed by `Phase as usize`.
    pub phase: [Quantiles; Phase::COUNT],
    /// End-to-end latency (admission to completion).
    pub total: Quantiles,
}

/// Cloneable submission handle; the [`Engine`] keeps thread ownership.
#[derive(Clone)]
pub struct EngineHandle {
    shared: Arc<Shared>,
}

impl EngineHandle {
    /// The largest per-connection pipeline window that admission control
    /// can never shed: a lone client with at most this many requests in
    /// flight always fits both the in-flight cap and the queue outright,
    /// so backpressure (not `Overloaded`) is what bounds it.
    pub fn safe_window(&self) -> usize {
        self.shared
            .queue
            .capacity()
            .min(self.shared.max_inflight)
            .max(1)
    }

    /// Submits `request` and blocks until its result. Fast-fails with
    /// [`ServiceError::Overloaded`] under saturation and
    /// [`ServiceError::ShuttingDown`] during drain.
    pub fn execute(&self, request: Request) -> Result<Response, ServiceError> {
        let (tx, rx) = mpsc::channel();
        self.submit(request, move |result| {
            let _ = tx.send(result);
        });
        rx.recv().unwrap_or(Err(ServiceError::ShuttingDown))
    }

    /// Submits `request` without waiting: `on_done` is invoked exactly
    /// once — from a worker thread with the response, or inline with the
    /// admission error ([`ServiceError::Overloaded`] /
    /// [`ServiceError::ShuttingDown`]). This is the pipelining primitive:
    /// a connection can keep many requests in flight and complete them
    /// out of order.
    pub fn submit<F>(&self, request: Request, on_done: F)
    where
        F: FnOnce(Result<Response, ServiceError>) + Send + 'static,
    {
        self.submit_job(Job {
            request,
            pinned: None,
            submitted: Instant::now(),
            reply: Box::new(on_done),
        });
    }

    /// Submits a whole batch against one database under **one** catalog
    /// lookup and **one** queue lock: the snapshot of `db` (the engine
    /// default when `None`) is resolved once and pinned into every
    /// request of the batch, so the batch evaluates against a single
    /// published version and submission does no per-request locking.
    /// Every callback is invoked exactly once, as in [`submit`].
    ///
    /// Requests carrying their own `db` field are still evaluated against
    /// `db` — callers group requests by effective database first.
    ///
    /// [`submit`]: EngineHandle::submit
    pub fn submit_batch(&self, db: Option<&str>, batch: Vec<(Request, ReplyFn)>) {
        if batch.is_empty() {
            return;
        }
        let s = &self.shared;
        if !s.accepting.load(Ordering::Acquire) {
            for (_, reply) in batch {
                reply(Err(ServiceError::ShuttingDown));
            }
            return;
        }
        let name = db.unwrap_or(DEFAULT_DB);
        let Some(snapshot) = s.catalog.snapshot(name) else {
            for (_, reply) in batch {
                reply(Err(ServiceError::UnknownDatabase(name.to_string())));
            }
            return;
        };
        // Reserve in-flight slots for the whole batch at once; the
        // suffix that does not fit under the cap is refused without ever
        // touching the queue.
        let want = batch.len();
        let prior = s.inflight.fetch_add(want, Ordering::AcqRel);
        let granted = s.max_inflight.saturating_sub(prior).min(want);
        if granted < want {
            s.inflight.fetch_sub(want - granted, Ordering::AcqRel);
        }
        let mut batch = batch;
        let refused: Vec<(Request, ReplyFn)> = batch.split_off(granted);
        let submitted = Instant::now();
        let jobs: Vec<Job> = batch
            .into_iter()
            .map(|(request, reply)| Job {
                request,
                pinned: Some((name.to_string(), snapshot.clone())),
                submitted,
                reply,
            })
            .collect();
        match s.queue.try_push_batch(jobs) {
            Ok(()) => {}
            Err(PushError::Full(tail)) => {
                for job in tail {
                    s.inflight.fetch_sub(1, Ordering::AcqRel);
                    s.rejected.fetch_add(1, Ordering::Relaxed);
                    (job.reply)(Err(ServiceError::Overloaded {
                        inflight: prior,
                        capacity: s.max_inflight,
                    }));
                }
            }
            Err(PushError::Closed(all)) => {
                for job in all {
                    s.inflight.fetch_sub(1, Ordering::AcqRel);
                    (job.reply)(Err(ServiceError::ShuttingDown));
                }
            }
        }
        for (_, reply) in refused {
            s.rejected.fetch_add(1, Ordering::Relaxed);
            reply(Err(ServiceError::Overloaded {
                inflight: prior,
                capacity: s.max_inflight,
            }));
        }
    }

    fn submit_job(&self, job: Job) {
        let s = &self.shared;
        if !s.accepting.load(Ordering::Acquire) {
            (job.reply)(Err(ServiceError::ShuttingDown));
            return;
        }
        // Reserve an in-flight slot before touching the queue so the cap
        // covers queued *and* executing requests.
        let prior = s.inflight.fetch_add(1, Ordering::AcqRel);
        if prior >= s.max_inflight {
            s.inflight.fetch_sub(1, Ordering::AcqRel);
            s.rejected.fetch_add(1, Ordering::Relaxed);
            (job.reply)(Err(ServiceError::Overloaded {
                inflight: prior,
                capacity: s.max_inflight,
            }));
            return;
        }
        match s.queue.try_push(job) {
            Ok(()) => {}
            Err(PushError::Full(job)) => {
                s.inflight.fetch_sub(1, Ordering::AcqRel);
                s.rejected.fetch_add(1, Ordering::Relaxed);
                (job.reply)(Err(ServiceError::Overloaded {
                    inflight: prior,
                    capacity: s.max_inflight,
                }));
            }
            Err(PushError::Closed(job)) => {
                s.inflight.fetch_sub(1, Ordering::AcqRel);
                (job.reply)(Err(ServiceError::ShuttingDown));
            }
        }
    }

    /// The engine's catalog — the mutation surface the wire verbs
    /// (`create` / `load` / `add` / `drop`) act on. Mutations are O(tiny
    /// database), so they run on the caller's thread, not the worker
    /// queue; admission control governs query execution only.
    pub fn catalog(&self) -> Arc<Catalog> {
        self.shared.catalog.clone()
    }

    /// Current counters.
    pub fn stats(&self) -> EngineStats {
        let obs = &self.shared.obs;
        EngineStats {
            served: self.shared.served.load(Ordering::Relaxed),
            rejected: self.shared.rejected.load(Ordering::Relaxed),
            inflight: self.shared.inflight.load(Ordering::Relaxed),
            cache: self.shared.cache.stats(),
            results: self.shared.results.stats(),
            index_probes: obs.index_probes.get(),
            index_builds: obs.index_builds.get(),
            passes_run: obs.passes_run.get(),
            decomp_cache_hits: obs.decomp_hits.get(),
            decomps: self.shared.decomps.stats(),
            spans: SpanStats {
                phase: std::array::from_fn(|i| obs.phase_us[i].snapshot().quantiles()),
                total: obs.total_us.snapshot().quantiles(),
            },
        }
    }

    /// The engine's observability surface: the metric registry the
    /// workers record into and the slow-query log. Shared — cloning the
    /// `Arc` observes the live engine, it does not copy counters.
    pub fn metrics(&self) -> Arc<ServiceMetrics> {
        self.shared.obs.clone()
    }

    /// Renders the full Prometheus text page: every registry metric plus
    /// the engine/cache counters and the queue-depth gauge sampled at
    /// scrape time (pull model — the hot path never mirrors them).
    pub fn render_prometheus(&self) -> String {
        let mut out = self.shared.obs.registry.render_prometheus();
        let mut push = |name: &str, kind: &str, help: &str, value: u64| {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} {kind}\n{name} {value}\n"
            ));
        };
        let s = &self.shared;
        push(
            "ppr_served_total",
            "counter",
            "Requests answered (ok or error) by workers",
            s.served.load(Ordering::Relaxed),
        );
        push(
            "ppr_rejected_total",
            "counter",
            "Requests refused by admission control",
            s.rejected.load(Ordering::Relaxed),
        );
        push(
            "ppr_inflight",
            "gauge",
            "Requests currently queued or executing",
            s.inflight.load(Ordering::Relaxed) as u64,
        );
        push(
            "ppr_queue_depth",
            "gauge",
            "Requests admitted but not yet picked up by a worker",
            s.queue.len() as u64,
        );
        let cache = s.cache.stats();
        push(
            "ppr_plan_cache_hits_total",
            "counter",
            "Plan-cache hits",
            cache.hits,
        );
        push(
            "ppr_plan_cache_misses_total",
            "counter",
            "Plan-cache misses",
            cache.misses,
        );
        push(
            "ppr_plan_cache_evictions_total",
            "counter",
            "Plan-cache evictions",
            cache.evictions,
        );
        let results = s.results.stats();
        push(
            "ppr_result_cache_hits_total",
            "counter",
            "Result-cache hits",
            results.hits,
        );
        push(
            "ppr_result_cache_misses_total",
            "counter",
            "Result-cache misses",
            results.misses,
        );
        push(
            "ppr_result_cache_bytes",
            "gauge",
            "Bytes held by the result cache",
            results.bytes as u64,
        );
        // Durable catalogs append the store's own exposition (WAL appends,
        // fsync latency, snapshot writes, recovery gauges).
        if let Some(p) = s.catalog.persister() {
            out.push_str(&p.render_prometheus());
        }
        out
    }
}

/// The worker pool plus its shared state. Create with [`Engine::start`],
/// submit through [`Engine::handle`], stop with [`Engine::shutdown`].
pub struct Engine {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Engine {
    /// Spawns the worker pool over `catalog`. To serve one fixed database
    /// the way PR 2's `Engine::start(db, cfg)` did, pass
    /// [`Catalog::with_default`]`(db)`.
    pub fn start(catalog: Catalog, cfg: EngineConfig) -> Engine {
        let workers = cfg.workers.max(1);
        let max_inflight = if cfg.max_inflight == 0 {
            workers + cfg.queue_capacity
        } else {
            cfg.max_inflight
        };
        let shared = Arc::new(Shared {
            catalog: Arc::new(catalog),
            cache: PlanCache::new(cfg.cache_capacity),
            decomps: DecompCache::new(cfg.cache_capacity),
            results: ResultCache::new(cfg.result_cache_bytes),
            queue: BoundedQueue::new(cfg.queue_capacity.max(1)),
            accepting: AtomicBool::new(true),
            inflight: AtomicUsize::new(0),
            max_inflight,
            served: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            exec_threads: cfg.exec_threads,
            max_budget: cfg.max_budget,
            default_seed: cfg.default_seed,
            profile_ops: cfg.profile_ops,
            obs: ServiceMetrics::new(cfg.slowlog_capacity),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("ppr-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker")
            })
            .collect();
        Engine {
            shared,
            workers: handles,
        }
    }

    /// A cloneable submission handle.
    pub fn handle(&self) -> EngineHandle {
        EngineHandle {
            shared: self.shared.clone(),
        }
    }

    /// Graceful drain-and-shutdown: stop admitting, answer everything
    /// already queued, join the workers.
    pub fn shutdown(self) {
        self.shared.accepting.store(false, Ordering::Release);
        self.shared.queue.close();
        for h in self.workers {
            let _ = h.join();
        }
    }
}

/// Jobs a worker drains per queue lock. Bounded so one worker cannot
/// hoard a burst while its siblings idle; small enough that a pipelined
/// batch still spreads across the pool.
const WORKER_BATCH: usize = 8;

fn worker_loop(shared: &Shared) {
    // Batch pop: under pipelined load the queue holds whole bursts, and
    // draining one per lock acquisition made the mutex+condvar round trip
    // a per-request cost. A lone queued job still pops immediately —
    // `pop_batch` never waits for a full batch.
    while let Some(jobs) = shared.queue.pop_batch(WORKER_BATCH) {
        for job in jobs {
            let mut spans = TraceSpans::new();
            spans.set(Phase::QueueWait, job.submitted.elapsed().as_micros() as u64);
            let mut slow_id = None;
            // Panic isolation: requests come off the wire, and a panic
            // escaping `process` would kill this worker *and* leak its
            // in-flight slot — enough such requests would empty the pool
            // and leave later admitted requests waiting forever.
            // Known-bad inputs are rejected with typed errors before they
            // can panic; this is the backstop for the unknown ones.
            // `process` writes spans through an out-parameter so a failed
            // (or panicked) request keeps the phases it did complete.
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                process(
                    shared,
                    &job.request,
                    job.pinned.as_ref(),
                    &mut spans,
                    &mut slow_id,
                )
            }))
            .unwrap_or_else(|payload| {
                let msg = panic_message(payload.as_ref());
                ppr_obs::ppr_error!("worker caught a panic processing a request: {msg}");
                Err(ServiceError::Internal(msg))
            })
            .map(|mut resp| {
                resp.trace = spans;
                resp
            });
            // Total latency is measured from admission, so the recorded
            // spans always sum to at most the recorded total.
            let total_us = job.submitted.elapsed().as_micros() as u64;
            record_completion(shared, &job.request, &result, spans, total_us, slow_id);
            shared.served.fetch_add(1, Ordering::Relaxed);
            shared.inflight.fetch_sub(1, Ordering::AcqRel);
            // The callback owns delivery; a vanished caller (client
            // disconnected mid-request) just makes it a no-op.
            (job.reply)(result);
        }
    }
}

/// The identity a slow-query-log entry aggregates by, known once the
/// worker has fingerprinted the request. Requests failing before that
/// point (unknown database, parse error, missing relation) are counted
/// in the error metrics but not logged — they have no identity.
struct SlowIdentity {
    db: String,
    version: u64,
    fingerprint: u128,
    /// Optimizer passes this request ran (0 on plan/result-cache hits).
    passes_run: u64,
    /// Whether the decomposition cache supplied the variable order.
    decomp_hit: bool,
}

/// Records one completed request into the metrics registry and, when its
/// identity is known, the slow-query log. Every completion records all
/// six phases — a zero means the phase did not run or was
/// sub-microsecond, which keeps phase counts comparable.
fn record_completion(
    shared: &Shared,
    request: &Request,
    result: &Result<Response, ServiceError>,
    spans: TraceSpans,
    total_us: u64,
    slow_id: Option<SlowIdentity>,
) {
    let obs = &shared.obs;
    obs.requests_total.inc();
    for p in PHASES {
        obs.phase_us[p as usize].record(spans.get(p));
    }
    obs.total_us.record(total_us);
    let (rows, digest, op_digest, outcome) = match result {
        Ok(resp) => {
            obs.result_rows.record(resp.rows.len() as u64);
            let (digest, op_digest) = if resp.result_cache_hit {
                // A result-cache hit executed nothing; recording the
                // original execution's flow (or its operator profile)
                // would double-count it.
                (ppr_relalg::ExecDigest::default(), String::new())
            } else {
                let op_digest = match resp.stats.op_profile.as_deref() {
                    Some(profile) => {
                        // Per-operator metrics ride on the same profile
                        // the slow-log digest compresses.
                        for node in profile.flatten() {
                            obs.op_rows[node.op as usize].add(node.rows_out);
                            obs.op_time_us[node.op as usize].record(node.time_us);
                        }
                        profile.digest()
                    }
                    None => String::new(),
                };
                (resp.stats.digest(), op_digest)
            };
            obs.tuples_flowed.record(digest.tuples_flowed);
            obs.rows_scanned.record(digest.rows_scanned);
            obs.index_probes.add(digest.index_probes);
            obs.index_builds.add(digest.index_builds);
            (resp.rows.len() as u64, digest, op_digest, "ok")
        }
        Err(e) => {
            obs.errors_total.inc();
            (
                0,
                ppr_relalg::ExecDigest::default(),
                String::new(),
                e.kind(),
            )
        }
    };
    if let Some(id) = slow_id {
        let seq = obs.slowlog.next_seq();
        obs.slowlog.record(SlowEntry {
            db: id.db,
            version: id.version,
            fingerprint: id.fingerprint,
            method: request.method.name().to_string(),
            outcome: outcome.to_string(),
            total_us,
            spans,
            rows,
            tuples_flowed: digest.tuples_flowed,
            peak_materialized: digest.peak_materialized,
            join_stages: digest.join_stages,
            threads_used: digest.threads_used,
            rows_scanned: digest.rows_scanned,
            passes_run: id.passes_run,
            decomp_hit: id.decomp_hit,
            op_digest,
            seq,
        });
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked".to_string()
    }
}

/// Validates every atom against the snapshot database before planning, so
/// a bad request fails with a typed error instead of a worker panic.
fn check_relations(query: &ConjunctiveQuery, db: &Database) -> Result<(), ServiceError> {
    for atom in &query.atoms {
        match db.get(&atom.relation) {
            None => return Err(ServiceError::MissingRelation(atom.relation.clone())),
            Some(rel) if rel.arity() != atom.arity() => {
                return Err(ServiceError::MissingRelation(format!(
                    "{} has arity {}, query uses {}",
                    atom.relation,
                    rel.arity(),
                    atom.arity()
                )))
            }
            Some(_) => {}
        }
    }
    Ok(())
}

fn process(
    shared: &Shared,
    request: &Request,
    pinned: Option<&(String, DbSnapshot)>,
    spans: &mut TraceSpans,
    slow_id: &mut Option<SlowIdentity>,
) -> Result<Response, ServiceError> {
    // One snapshot for the whole request: concurrent catalog mutations
    // publish new versions beside it and never tear this evaluation.
    // Batch submission already pinned one; single submission resolves it
    // here.
    let (db_name, snapshot) = match pinned {
        Some((name, snap)) => (name.as_str(), snap.clone()),
        None => {
            let name = request.db.as_deref().unwrap_or(DEFAULT_DB);
            let snap = shared
                .catalog
                .snapshot(name)
                .ok_or_else(|| ServiceError::UnknownDatabase(name.to_string()))?;
            (name, snap)
        }
    };

    // Span writes go through the out-parameter *before* each `?` so a
    // failed request keeps the phases it did complete.
    let started = Instant::now();
    let parsed = ppr_query::parse_query(&request.query)
        .map_err(|e| ServiceError::Parse(e.0))
        .and_then(|q| check_relations(&q, &snapshot.db).map(|()| q));
    spans.set(Phase::Parse, started.elapsed().as_micros() as u64);
    let query = parsed?;

    // The effective seed is part of both cache keys: it breaks planner
    // ties, so a request carrying an explicit seed must not be answered
    // with a plan (or rows) built under a different one.
    let seed = request.seed.unwrap_or(shared.default_seed);
    let started = Instant::now();
    let identity = QueryIdentity::of(&query);
    spans.set(Phase::Fingerprint, started.elapsed().as_micros() as u64);
    *slow_id = Some(SlowIdentity {
        db: db_name.to_string(),
        version: snapshot.version.0,
        fingerprint: identity.fingerprint.0,
        passes_run: 0,
        decomp_hit: false,
    });

    // Explain requests bypass both caches — lookup *and* insert — so the
    // report always describes a fresh planner run and leaves no footprint
    // a later cached request would be answered from.
    let explaining = request.explain != ExplainMode::None;

    // Result cache first: a hit is rows with zero execution. The budget
    // is deliberately not part of the key — budgets bound execution work,
    // and a hit does none.
    let result_key = ResultKey {
        data: snapshot.fingerprint,
        fingerprint: identity.fingerprint,
        method: request.method,
        seed,
    };
    let started = Instant::now();
    let cached = if explaining {
        None
    } else {
        shared.results.get(&result_key, &identity.shape)
    };
    let mut lookup_us = started.elapsed().as_micros() as u64;
    spans.set(Phase::CacheLookup, lookup_us);
    if let Some(cached) = cached {
        return Ok(Response {
            columns: cached.columns.clone(),
            rows: cached.rows.clone(),
            stats: cached.stats.clone(),
            cache_hit: true,
            result_cache_hit: true,
            plan_micros: 0,
            trace: TraceSpans::new(),
            explain: None,
        });
    }

    let plan_key = CacheKey {
        data: snapshot.fingerprint,
        fingerprint: identity.fingerprint,
        method: request.method,
        seed,
    };
    let started = Instant::now();
    let cached_plan = if explaining {
        None
    } else {
        shared.cache.get(&plan_key, &identity.shape)
    };
    lookup_us += started.elapsed().as_micros() as u64;
    spans.set(Phase::CacheLookup, lookup_us);
    let (plan, cache_hit, plan_micros, pass_spans) = match cached_plan {
        Some(plan) => (plan, true, 0, Vec::new()),
        None => {
            let started = Instant::now();
            let mut rng = StdRng::seed_from_u64(seed);
            // Bucket elimination's expensive step is choosing the variable
            // order, which depends only on query *structure* — so unlike
            // the plan (which embeds snapshot scans), it is reusable
            // across catalog mutations. A cached order, rank-decoded into
            // this query's own ids, rides into the pass pipeline as a
            // hint; the `Decompose` pass consumes it instead of
            // re-decomposing (docs/PLANNING.md).
            let decomp_key = match request.method {
                Method::BucketElimination(heuristic) => Some(DecompKey {
                    fingerprint: identity.fingerprint,
                    heuristic,
                    seed,
                }),
                _ => None,
            };
            let canonical = decomp_key
                .is_some()
                .then(|| ppr_query::canonical_var_order(&query));
            let hint = match (&decomp_key, &canonical) {
                (Some(key), Some(canonical)) => shared
                    .decomps
                    .get(key, &identity.shape)
                    .and_then(|ranks| decomp::decode_order(&ranks, canonical)),
                _ => None,
            };
            let report = plan_query(request.method, &query, &snapshot.db, &mut rng, hint);
            shared.obs.passes_run.add(report.passes_run as u64);
            if let Some(id) = slow_id.as_mut() {
                id.passes_run = report.passes_run as u64;
                id.decomp_hit = report.used_hint;
            }
            if report.used_hint {
                shared.obs.decomp_hits.inc();
            } else if let (Some(key), Some(canonical), Some(order)) =
                (decomp_key, &canonical, &report.chosen_order)
            {
                if let Some(ranks) = decomp::encode_order(order, canonical) {
                    shared.decomps.insert(key, identity.shape.clone(), ranks);
                }
            }
            let built = Arc::new(report.plan);
            let micros = started.elapsed().as_micros() as u64;
            // A racing worker may have published the same key first; the
            // cache keeps the existing plan so concurrent identical
            // requests all run one plan.
            let plan = if explaining {
                built
            } else {
                shared.cache.insert(plan_key, identity.shape.clone(), built)
            };
            (plan, false, micros, report.pass_spans)
        }
    };
    spans.set(Phase::Plan, plan_micros);

    if request.explain == ExplainMode::Plan {
        // Plan mode never executes: render the operator tree the streaming
        // executor *would* build, with every counter zero.
        let shape = streaming_shape(&plan);
        let columns: Vec<String> = query.free.iter().map(|&f| query.vars.name(f)).collect();
        return Ok(Response {
            columns,
            rows: Vec::new(),
            stats: ExecStats::default(),
            cache_hit,
            result_cache_hit: false,
            plan_micros,
            trace: TraceSpans::new(),
            explain: Some(Box::new(ExplainData {
                analyze: false,
                passes: pass_spans,
                ops: shape.flatten(),
            })),
        });
    }

    let mut budget = Budget::unlimited();
    if let Some(t) = request.max_tuples {
        budget.max_tuples_flowed = t;
        budget.max_materialized = t;
    }
    if let Some(ms) = request.timeout_ms {
        budget.timeout = Some(Duration::from_millis(ms));
    }
    let budget = budget.clamp(&shared.max_budget);

    let started = Instant::now();
    // Serial requests take the streaming executor (`ExecMode::Streaming`,
    // the `exec::execute` default): per-column indexes are built lazily
    // and cached on the pinned snapshot's `Arc`-shared relations, so
    // every later request against the same catalog version probes them
    // for free — copy-on-write catalog updates clone the relation and
    // start cold, which keeps sharing sound.
    // `explain analyze` forces the serial streaming path: the parallel
    // executor has no profiling hooks, and an annotated tree is the whole
    // point of the request.
    let analyze = request.explain == ExplainMode::Analyze;
    let profile = if analyze || (shared.profile_ops && shared.exec_threads == 1) {
        ProfileMode::On
    } else {
        ProfileMode::Off
    };
    let executed = if shared.exec_threads == 1 || analyze {
        exec::execute_with(
            &plan,
            &budget,
            exec::ExecOptions {
                profile,
                ..Default::default()
            },
        )
    } else {
        parallel::execute_parallel(&plan, &budget, shared.exec_threads)
    };
    spans.set(Phase::Exec, started.elapsed().as_micros() as u64);
    let (rel, stats) = executed.map_err(ServiceError::Exec)?;

    let columns: Vec<String> = query.free.iter().map(|&f| query.vars.name(f)).collect();
    let rows = rel.tuples().to_vec();
    if !explaining {
        shared.results.insert(
            result_key,
            identity.shape,
            Arc::new(CachedResult {
                columns: columns.clone(),
                rows: rows.clone(),
                stats: stats.clone(),
            }),
        );
    }
    let explain = analyze.then(|| {
        Box::new(ExplainData {
            analyze: true,
            passes: pass_spans,
            ops: stats
                .op_profile
                .as_deref()
                .map(|p| p.flatten())
                .unwrap_or_default(),
        })
    });
    Ok(Response {
        columns,
        rows,
        stats,
        cache_hit,
        result_cache_hit: false,
        plan_micros,
        trace: TraceSpans::new(),
        explain,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppr_relalg::RelalgError;

    fn three_color_catalog() -> Catalog {
        let mut db = Database::new();
        db.add(ppr_workload::edge_relation(3));
        Catalog::with_default(db)
    }

    fn small_cfg() -> EngineConfig {
        EngineConfig {
            workers: 2,
            queue_capacity: 8,
            ..Default::default()
        }
    }

    /// Plan-cache-focused tests disable the result cache so every request
    /// reaches the planner layer.
    fn plan_only_cfg() -> EngineConfig {
        let mut cfg = small_cfg();
        cfg.result_cache_bytes = 0;
        cfg
    }

    const PENTAGON: &str = "q() :- e(a,b), e(b,c), e(c,d), e(d,f), e(f,a)";

    fn pentagon_request(method: Method) -> Request {
        Request::new(PENTAGON.replace('e', "edge"), method)
    }

    #[test]
    fn answers_match_library_evaluation() {
        let engine = Engine::start(three_color_catalog(), small_cfg());
        let h = engine.handle();
        for method in Method::paper_lineup() {
            let resp = h.execute(pentagon_request(method)).unwrap();
            assert!(!resp.rows.is_empty(), "{method:?}: pentagon is 3-colorable");
        }
        engine.shutdown();
    }

    #[test]
    fn builder_composes_a_request() {
        let req = Request::query("q(x) :- edge(x, y)")
            .method(Method::EarlyProjection)
            .on("graphs")
            .max_tuples(1000)
            .timeout(Duration::from_millis(250))
            .seed(7);
        assert_eq!(req.method, Method::EarlyProjection);
        assert_eq!(req.db.as_deref(), Some("graphs"));
        assert_eq!(req.max_tuples, Some(1000));
        assert_eq!(req.timeout_ms, Some(250));
        assert_eq!(req.seed, Some(7));
        // The no-argument form targets the default database and the
        // paper's winning method.
        let plain = Request::query("q() :- edge(x, y)");
        assert_eq!(plain.db, None);
        assert_eq!(plain.method, Method::BucketElimination(OrderHeuristic::Mcs));
    }

    #[test]
    fn unknown_database_is_a_typed_error() {
        let engine = Engine::start(three_color_catalog(), small_cfg());
        let h = engine.handle();
        let out = h.execute(Request::query("q() :- edge(x, y)").on("nope"));
        assert!(
            matches!(out, Err(ServiceError::UnknownDatabase(_))),
            "{out:?}"
        );
        engine.shutdown();
    }

    #[test]
    fn repeated_query_hits_plan_cache_even_renamed() {
        let engine = Engine::start(three_color_catalog(), plan_only_cfg());
        let h = engine.handle();
        let m = Method::BucketElimination(ppr_core::methods::OrderHeuristic::Mcs);
        let first = h.execute(pentagon_request(m)).unwrap();
        assert!(!first.cache_hit);
        let second = h.execute(pentagon_request(m)).unwrap();
        assert!(second.cache_hit, "identical query must reuse the plan");
        // A renamed, atom-permuted variant of the same pentagon.
        let renamed = Request::new(
            "q() :- edge(v,w), edge(u,v), edge(z,u), edge(y,z), edge(w,y)",
            m,
        );
        let third = h.execute(renamed).unwrap();
        assert!(third.cache_hit, "isomorphic query must reuse the plan");
        assert_eq!(first.rows, third.rows);
        let stats = h.stats();
        assert_eq!(stats.cache.hits, 2);
        assert_eq!(stats.cache.misses, 1);
        engine.shutdown();
    }

    #[test]
    fn decomp_cache_survives_catalog_mutation() {
        let engine = Engine::start(three_color_catalog(), plan_only_cfg());
        let h = engine.handle();
        let m = Method::BucketElimination(OrderHeuristic::Mcs);
        let cold = h.execute(pentagon_request(m)).unwrap();
        assert!(!cold.cache_hit);
        let stats = h.stats();
        assert_eq!(stats.decomp_cache_hits, 0, "cold request decomposes");
        assert_eq!(stats.passes_run, 2, "bucket recipe = decompose + build");
        // A mutation bumps the content fingerprint: every cached plan is
        // stale (plans embed snapshot scans)…
        h.catalog()
            .add(DEFAULT_DB, "edge", vec![4, 5].into())
            .unwrap();
        // …but the variable order is pure query structure, so a renamed
        // isomorphic query re-plans without re-decomposing.
        let renamed = Request::new(
            "q() :- edge(v,w), edge(u,v), edge(z,u), edge(y,z), edge(w,y)",
            m,
        );
        let fresh = h.execute(renamed).unwrap();
        assert!(!fresh.cache_hit, "content change must re-plan");
        let stats = h.stats();
        assert!(
            stats.decomp_cache_hits > 0,
            "repeated structure must skip decomposition: {stats:?}"
        );
        assert_eq!(stats.passes_run, 4, "both requests ran the pipeline");
        assert_eq!(stats.decomps.hits, 1);
        assert_eq!(stats.decomps.misses, 1);
        engine.shutdown();
    }

    #[test]
    fn exact_repeat_with_decomp_hint_is_byte_identical() {
        // The plan a hinted pipeline builds for an *exact* repeat must be
        // byte-identical to the cold plan: the decode is the identity and
        // the Decompose pass consumes no randomness when hinted.
        let engine = Engine::start(three_color_catalog(), plan_only_cfg());
        let h = engine.handle();
        let req = || {
            Request::new(
                "q(a, b) :- edge(a,b), edge(b,c), edge(c,d), edge(d,f), edge(f,a)",
                Method::BucketElimination(OrderHeuristic::MinFill),
            )
        };
        let cold = h.execute(req()).unwrap();
        h.catalog()
            .add(DEFAULT_DB, "edge", vec![7, 8].into())
            .unwrap();
        h.catalog()
            .add(DEFAULT_DB, "edge", vec![8, 7].into())
            .unwrap();
        let warm = h.execute(req()).unwrap();
        assert!(!warm.cache_hit);
        assert!(h.stats().decomp_cache_hits > 0);
        // The added colors 7/8 pair only with each other, and an odd
        // cycle needs three colors, so the pentagon's answers are
        // unchanged — the hinted plan rebuilt the same bucket structure
        // over the new snapshot.
        assert!(!cold.rows.is_empty());
        assert_eq!(cold.rows, warm.rows);
        engine.shutdown();
    }

    #[test]
    fn repeated_query_hits_result_cache_even_renamed() {
        let engine = Engine::start(three_color_catalog(), small_cfg());
        let h = engine.handle();
        let m = Method::EarlyProjection;
        let first = h.execute(pentagon_request(m)).unwrap();
        assert!(!first.result_cache_hit);
        let second = h.execute(pentagon_request(m)).unwrap();
        assert!(second.result_cache_hit, "identical query must reuse rows");
        assert_eq!(second.rows, first.rows);
        assert_eq!(second.plan_micros, 0);
        // A renamed variant shares the fingerprint, so it reuses the rows
        // without executing either.
        let renamed = Request::new(
            "q() :- edge(v,w), edge(u,v), edge(z,u), edge(y,z), edge(w,y)",
            m,
        );
        let third = h.execute(renamed).unwrap();
        assert!(third.result_cache_hit);
        assert_eq!(third.rows, first.rows);
        let stats = h.stats();
        assert_eq!(stats.results.hits, 2);
        assert_eq!(stats.results.misses, 1);
        // The plan cache saw only the cold request.
        assert_eq!(stats.cache.misses, 1);
        assert_eq!(stats.cache.hits, 0);
        engine.shutdown();
    }

    #[test]
    fn mutation_invalidates_results_by_version() {
        let engine = Engine::start(three_color_catalog(), small_cfg());
        let h = engine.handle();
        let req = || Request::query("q(x, y) :- edge(x, y), edge(y, x)");
        let cold = h.execute(req()).unwrap();
        assert!(!cold.result_cache_hit);
        assert!(h.execute(req()).unwrap().result_cache_hit);

        // `edge` is the color-disequality relation; adding the pair
        // (4, 5)/(5, 4) legalizes a fourth color and changes the answer.
        h.catalog()
            .add(DEFAULT_DB, "edge", vec![4, 5].into())
            .unwrap();
        h.catalog()
            .add(DEFAULT_DB, "edge", vec![5, 4].into())
            .unwrap();
        let fresh = h.execute(req()).unwrap();
        assert!(!fresh.result_cache_hit, "version bump must invalidate");
        assert!(!fresh.cache_hit, "plans embed scans, so they re-plan too");
        assert!(fresh.rows.len() > cold.rows.len(), "new data must show up");
        assert!(h.execute(req()).unwrap().result_cache_hit, "then re-caches");
        engine.shutdown();
    }

    #[test]
    fn parse_and_missing_relation_errors_are_typed() {
        let engine = Engine::start(three_color_catalog(), small_cfg());
        let h = engine.handle();
        let bad = h.execute(Request::new("not a rule", Method::Straightforward));
        assert!(matches!(bad, Err(ServiceError::Parse(_))));
        let missing = h.execute(Request::new("q() :- nope(x, y)", Method::Straightforward));
        assert!(matches!(missing, Err(ServiceError::MissingRelation(_))));
        let arity = h.execute(Request::new(
            "q() :- edge(x, y, z)",
            Method::Straightforward,
        ));
        assert!(matches!(arity, Err(ServiceError::MissingRelation(_))));
        engine.shutdown();
    }

    #[test]
    fn repeated_head_variable_is_a_typed_error_and_workers_survive() {
        // `q(x, x) :- …` used to reach ConjunctiveQuery::new's "free
        // variables repeat" assert and kill a worker (leaking its
        // in-flight slot); it must be a Parse error, and the pool must
        // keep serving afterwards.
        let mut cfg = small_cfg();
        cfg.workers = 1;
        let engine = Engine::start(three_color_catalog(), cfg);
        let h = engine.handle();
        for _ in 0..3 {
            let bad = h.execute(Request::new(
                "q(x, x) :- edge(x, y)",
                Method::Straightforward,
            ));
            assert!(matches!(bad, Err(ServiceError::Parse(_))), "{bad:?}");
        }
        let ok = h.execute(pentagon_request(Method::Straightforward));
        assert!(ok.is_ok(), "the lone worker must still be alive: {ok:?}");
        assert_eq!(h.stats().inflight, 0, "no in-flight slots leaked");
        engine.shutdown();
    }

    #[test]
    fn explicit_seed_does_not_reuse_default_seed_plan() {
        let engine = Engine::start(three_color_catalog(), plan_only_cfg());
        let h = engine.handle();
        let m = Method::Reordering;
        let first = h.execute(pentagon_request(m)).unwrap();
        assert!(!first.cache_hit);
        // Same query under an explicit seed: the plan may legitimately
        // differ (the seed breaks planner ties), so it must re-plan, and
        // repeating that seed must then hit its own entry.
        let seeded = pentagon_request(m).seed(42);
        let second = h.execute(seeded.clone()).unwrap();
        assert!(!second.cache_hit, "different seed must not hit the cache");
        let third = h.execute(seeded).unwrap();
        assert!(third.cache_hit, "same seed must hit its own entry");
        engine.shutdown();
    }

    #[test]
    fn budget_override_is_enforced_and_clamped() {
        let mut cfg = small_cfg();
        cfg.max_budget = Budget::tuples(1_000_000);
        let engine = Engine::start(three_color_catalog(), cfg);
        let h = engine.handle();
        let req = pentagon_request(Method::Straightforward).max_tuples(3);
        let out = h.execute(req);
        assert!(
            matches!(
                out,
                Err(ServiceError::Exec(RelalgError::BudgetExceeded { .. }))
            ),
            "{out:?}"
        );
        engine.shutdown();
    }

    #[test]
    fn saturation_returns_overloaded() {
        // One worker, tiny queue, and a request that runs long enough to
        // pile up concurrent submissions.
        let cfg = EngineConfig {
            workers: 1,
            queue_capacity: 1,
            max_inflight: 2,
            ..Default::default()
        };
        let engine = Engine::start(three_color_catalog(), cfg);
        let h = engine.handle();
        let slow = || {
            // K7 with straightforward join order: plenty of tuple flow.
            let mut atoms = Vec::new();
            for i in 0..7 {
                for j in (i + 1)..7 {
                    atoms.push(format!("edge(v{i}, v{j})"));
                }
            }
            Request::new(
                format!("q() :- {}", atoms.join(", ")),
                Method::Straightforward,
            )
        };
        let mut handles = Vec::new();
        for _ in 0..8 {
            let h = h.clone();
            let req = slow();
            handles.push(std::thread::spawn(move || h.execute(req)));
        }
        let results: Vec<_> = handles.into_iter().map(|t| t.join().unwrap()).collect();
        let overloaded = results
            .iter()
            .filter(|r| matches!(r, Err(ServiceError::Overloaded { .. })))
            .count();
        assert!(
            overloaded > 0,
            "8 concurrent requests against inflight cap 2 must shed load"
        );
        let stats = h.stats();
        assert_eq!(stats.rejected as usize, overloaded);
        engine.shutdown();
    }

    #[test]
    fn submit_completes_out_of_band_and_batch_pins_one_snapshot() {
        let engine = Engine::start(three_color_catalog(), small_cfg());
        let h = engine.handle();

        // Async single submission: the callback fires with the answer.
        let (tx, rx) = mpsc::channel();
        h.submit(pentagon_request(Method::EarlyProjection), move |r| {
            let _ = tx.send(r);
        });
        let resp = rx.recv().unwrap().unwrap();
        assert!(!resp.rows.is_empty());

        // Batch submission: all requests resolve against the snapshot
        // pinned at submit time, so a mutation racing in *after* the
        // submit is invisible to the whole batch.
        let reqs = ["q(x, y) :- edge(x, y), edge(y, x)"; 4];
        let (tx, rx) = mpsc::channel();
        let batch: Vec<(Request, ReplyFn)> = reqs
            .iter()
            .map(|q| {
                let tx = tx.clone();
                let reply: ReplyFn = Box::new(move |r| {
                    let _ = tx.send(r);
                });
                (Request::query(*q), reply)
            })
            .collect();
        h.submit_batch(None, batch);
        // Mutate immediately; batched requests may still be queued, but
        // their pinned snapshot predates this version bump.
        h.catalog()
            .add(DEFAULT_DB, "edge", vec![7, 8].into())
            .unwrap();
        let rows: Vec<_> = (0..reqs.len())
            .map(|_| rx.recv().unwrap().unwrap().rows)
            .collect();
        for r in &rows {
            assert_eq!(r, &rows[0], "one snapshot per batch");
            assert_eq!(r.len(), 6, "pre-mutation K3 answer");
        }

        // Batch against an unknown database fails every callback.
        let (tx, rx) = mpsc::channel();
        let reply: ReplyFn = Box::new(move |r| {
            let _ = tx.send(r);
        });
        h.submit_batch(
            Some("nope"),
            vec![(Request::query("q() :- edge(x, y)"), reply)],
        );
        assert!(matches!(
            rx.recv().unwrap(),
            Err(ServiceError::UnknownDatabase(_))
        ));
        engine.shutdown();
    }

    #[test]
    fn batch_beyond_inflight_cap_refuses_the_tail_only() {
        let cfg = EngineConfig {
            workers: 1,
            queue_capacity: 2,
            max_inflight: 3,
            ..Default::default()
        };
        let engine = Engine::start(three_color_catalog(), cfg);
        let h = engine.handle();
        let (tx, rx) = mpsc::channel();
        let batch: Vec<(Request, ReplyFn)> = (0..6)
            .map(|_| {
                let tx = tx.clone();
                let reply: ReplyFn = Box::new(move |r| {
                    let _ = tx.send(r);
                });
                (pentagon_request(Method::EarlyProjection), reply)
            })
            .collect();
        h.submit_batch(None, batch);
        let results: Vec<_> = (0..6).map(|_| rx.recv().unwrap()).collect();
        let ok = results.iter().filter(|r| r.is_ok()).count();
        let overloaded = results
            .iter()
            .filter(|r| matches!(r, Err(ServiceError::Overloaded { .. })))
            .count();
        assert_eq!(ok + overloaded, 6);
        // 3 slots granted under the cap; of those, at least the 2 that
        // fit the queue outright are answered (the third also lands when
        // a worker drains in time). Everything past the cap is refused.
        assert!(ok >= 2, "admitted requests must be answered: {ok}");
        assert!(overloaded >= 3, "the tail over the cap must be refused");
        assert_eq!(h.stats().rejected as usize, overloaded);
        engine.shutdown();
        assert_eq!(h.stats().inflight, 0, "no slots leaked");
    }

    #[test]
    fn shutdown_drains_admitted_requests() {
        let engine = Engine::start(three_color_catalog(), small_cfg());
        let h = engine.handle();
        let resp = h
            .execute(pentagon_request(Method::EarlyProjection))
            .unwrap();
        assert!(!resp.rows.is_empty());
        engine.shutdown();
        assert!(matches!(
            h.execute(pentagon_request(Method::EarlyProjection)),
            Err(ServiceError::ShuttingDown)
        ));
    }

    /// A binary query on K3's edge relation: 6 rows, a real pipeline.
    fn mutual_edge_request() -> Request {
        Request::query("q(x, y) :- edge(x, y), edge(y, x)").method(Method::EarlyProjection)
    }

    #[test]
    fn explain_analyze_profiles_and_bypasses_both_caches() {
        let engine = Engine::start(three_color_catalog(), small_cfg());
        let h = engine.handle();
        // Warm the plan and result caches with a plain run …
        let warm = h.execute(mutual_edge_request()).unwrap();
        assert!(h.execute(mutual_edge_request()).unwrap().result_cache_hit);
        // … then explain analyze must plan and execute fresh anyway.
        let resp = h
            .execute(mutual_edge_request().explain(ExplainMode::Analyze))
            .unwrap();
        assert!(!resp.cache_hit, "explain bypasses the plan cache");
        assert!(!resp.result_cache_hit, "explain bypasses the result cache");
        assert_eq!(resp.rows, warm.rows, "analyze returns the real rows");
        let data = resp.explain.as_deref().expect("explain data");
        assert!(data.analyze);
        // EarlyProjection's pipeline is three passes, each with a span.
        let names: Vec<&str> = data.passes.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(
            names,
            ["listing-order", "build-join-chain", "projection-pushdown"]
        );
        // The measured tree's root is the sink: its output is the result.
        assert_eq!(data.ops[0].depth, 0);
        assert_eq!(data.ops[0].rows_out, resp.rows.len() as u64);
        assert!(
            data.ops.iter().any(|n| n.rows_out > 0),
            "measured counters populated: {:?}",
            data.ops
        );
        // The response's stats carry the same profile for the slow log.
        assert!(resp.stats.op_profile.is_some());
        engine.shutdown();
    }

    #[test]
    fn explain_plan_renders_the_shape_without_executing() {
        let engine = Engine::start(three_color_catalog(), small_cfg());
        let h = engine.handle();
        let plan = h
            .execute(mutual_edge_request().explain(ExplainMode::Plan))
            .unwrap();
        assert!(plan.rows.is_empty(), "plan mode never executes");
        assert_eq!(plan.columns, ["x", "y"], "but the header is real");
        let plan_data = plan.explain.as_deref().expect("explain data");
        assert!(!plan_data.analyze);
        assert!(!plan_data.passes.is_empty());
        assert!(plan_data
            .ops
            .iter()
            .all(|n| n.rows_in == 0 && n.rows_out == 0 && n.probes == 0 && n.time_us == 0));
        // The planned shape is the measured tree, node for node.
        let analyzed = h
            .execute(mutual_edge_request().explain(ExplainMode::Analyze))
            .unwrap();
        let measured = &analyzed.explain.as_deref().unwrap().ops;
        let planned_shape: Vec<_> = plan_data
            .ops
            .iter()
            .map(|n| (n.depth, n.op, n.target.clone()))
            .collect();
        let measured_shape: Vec<_> = measured
            .iter()
            .map(|n| (n.depth, n.op, n.target.clone()))
            .collect();
        assert_eq!(planned_shape, measured_shape);
        engine.shutdown();
    }

    #[test]
    fn profile_ops_config_populates_stats_on_plain_runs() {
        let mut cfg = small_cfg();
        cfg.profile_ops = true;
        cfg.result_cache_bytes = 0;
        let engine = Engine::start(three_color_catalog(), cfg);
        let h = engine.handle();
        let resp = h.execute(mutual_edge_request()).unwrap();
        assert!(resp.explain.is_none(), "a plain run has no explain data");
        let profile = resp.stats.op_profile.as_deref().expect("profile");
        assert_eq!(profile.flatten()[0].rows_out, resp.rows.len() as u64);
        engine.shutdown();
    }
}
