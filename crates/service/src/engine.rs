//! The request engine: worker pool, admission control, plan cache.
//!
//! One [`Engine`] owns a fixed [`Database`] (the paper's workloads run
//! many large queries over one tiny database, so the database is server
//! state and queries are the traffic), a [`PlanCache`], and a pool of
//! worker threads draining a bounded queue. The life of a request:
//!
//! 1. **Admission** — [`EngineHandle::execute`] fast-fails with
//!    [`ServiceError::Overloaded`] when the in-flight cap or the bounded
//!    queue is full. Nothing ever waits for queue space: under overload
//!    the server sheds load in O(1) rather than building an unbounded
//!    backlog.
//! 2. **Parse + fingerprint** — the worker parses the Datalog-ish text,
//!    checks every atom against the database, and computes the canonical
//!    [`ppr_query::fingerprint`].
//! 3. **Plan** — cache hit (same fingerprint, method, and effective
//!    planner seed, with the stored query shape re-verified against the
//!    incoming query) returns the shared `Arc<Plan>`; a miss builds the
//!    plan (the only non-executor CPU cost) and publishes it. Repeated
//!    queries — under any variable renaming or atom order — never re-plan.
//! 4. **Execute** — serial or partitioned-parallel executor under the
//!    request budget clamped by the server maximum.
//!
//! Shutdown is graceful: the queue closes, workers drain every admitted
//! request (each waiting client still gets its answer), then exit.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ppr_core::methods::{build_plan, Method};
use ppr_query::{fingerprint, parse_query, ConjunctiveQuery, Database, QueryShape};
use ppr_relalg::{exec, parallel, Budget, ExecStats, Value};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::cache::{CacheStats, PlanCache};
use crate::queue::{BoundedQueue, PushError};
use crate::ServiceError;

/// One query request, embedded or decoded from the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Datalog-ish rule text, e.g. `q(x) :- e(x, y), e(y, x)`.
    pub query: String,
    /// Planning method.
    pub method: Method,
    /// Tuple-flow budget override (clamped by the server maximum).
    pub max_tuples: Option<u64>,
    /// Wall-clock budget override in milliseconds (clamped likewise).
    pub timeout_ms: Option<u64>,
    /// Planner tie-breaking seed; `None` uses the engine default so that
    /// repeated requests are deterministic.
    pub seed: Option<u64>,
}

impl Request {
    /// A request with no overrides.
    pub fn new(query: impl Into<String>, method: Method) -> Self {
        Request {
            query: query.into(),
            method,
            max_tuples: None,
            timeout_ms: None,
            seed: None,
        }
    }
}

/// A successful evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Output column names (the query's free variables, in order).
    pub columns: Vec<String>,
    /// Result rows, byte-identical to library-level evaluation of the
    /// same query, method, and budget.
    pub rows: Vec<Box<[Value]>>,
    /// Executor statistics for this request.
    pub stats: ExecStats,
    /// Whether the plan came from the cache (no re-planning happened).
    pub cache_hit: bool,
    /// Time spent building the plan (0 on cache hits).
    pub plan_micros: u64,
}

/// Engine sizing and limits.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads executing requests.
    pub workers: usize,
    /// Bounded-queue capacity (requests admitted but not yet picked up).
    pub queue_capacity: usize,
    /// Hard cap on requests queued + executing; 0 derives
    /// `workers + queue_capacity`.
    pub max_inflight: usize,
    /// Plan-cache entries.
    pub cache_capacity: usize,
    /// Threads per request inside the executor: 1 = serial pipelined
    /// executor, else [`parallel::execute_parallel`] (0 = all cores).
    pub exec_threads: usize,
    /// Server-side budget ceiling; request overrides are clamped to it.
    pub max_budget: Budget,
    /// Planner seed used when a request does not carry one.
    pub default_seed: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: 4,
            queue_capacity: 64,
            max_inflight: 0,
            cache_capacity: 256,
            exec_threads: 1,
            max_budget: Budget::tuples(u64::MAX).with_timeout(Duration::from_secs(60)),
            default_seed: 0,
        }
    }
}

struct Job {
    request: Request,
    reply: mpsc::Sender<Result<Response, ServiceError>>,
}

struct Shared {
    db: Database,
    cache: PlanCache,
    queue: BoundedQueue<Job>,
    accepting: AtomicBool,
    inflight: AtomicUsize,
    max_inflight: usize,
    served: AtomicU64,
    rejected: AtomicU64,
    exec_threads: usize,
    max_budget: Budget,
    default_seed: u64,
}

/// Aggregate engine counters, reported by the `stats` wire command.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineStats {
    /// Requests answered (ok or error) by workers.
    pub served: u64,
    /// Requests refused by admission control.
    pub rejected: u64,
    /// Requests currently queued or executing.
    pub inflight: usize,
    /// Plan-cache counters.
    pub cache: CacheStats,
}

/// Cloneable submission handle; the [`Engine`] keeps thread ownership.
#[derive(Clone)]
pub struct EngineHandle {
    shared: Arc<Shared>,
}

impl EngineHandle {
    /// Submits `request` and blocks until its result. Fast-fails with
    /// [`ServiceError::Overloaded`] under saturation and
    /// [`ServiceError::ShuttingDown`] during drain.
    pub fn execute(&self, request: Request) -> Result<Response, ServiceError> {
        let s = &self.shared;
        if !s.accepting.load(Ordering::Acquire) {
            return Err(ServiceError::ShuttingDown);
        }
        // Reserve an in-flight slot before touching the queue so the cap
        // covers queued *and* executing requests.
        let prior = s.inflight.fetch_add(1, Ordering::AcqRel);
        if prior >= s.max_inflight {
            s.inflight.fetch_sub(1, Ordering::AcqRel);
            s.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(ServiceError::Overloaded {
                inflight: prior,
                capacity: s.max_inflight,
            });
        }
        let (tx, rx) = mpsc::channel();
        match s.queue.try_push(Job { request, reply: tx }) {
            Ok(()) => rx.recv().unwrap_or(Err(ServiceError::ShuttingDown)),
            Err(PushError::Full(_)) => {
                s.inflight.fetch_sub(1, Ordering::AcqRel);
                s.rejected.fetch_add(1, Ordering::Relaxed);
                Err(ServiceError::Overloaded {
                    inflight: prior,
                    capacity: s.max_inflight,
                })
            }
            Err(PushError::Closed(_)) => {
                s.inflight.fetch_sub(1, Ordering::AcqRel);
                Err(ServiceError::ShuttingDown)
            }
        }
    }

    /// Current counters.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            served: self.shared.served.load(Ordering::Relaxed),
            rejected: self.shared.rejected.load(Ordering::Relaxed),
            inflight: self.shared.inflight.load(Ordering::Relaxed),
            cache: self.shared.cache.stats(),
        }
    }
}

/// The worker pool plus its shared state. Create with [`Engine::start`],
/// submit through [`Engine::handle`], stop with [`Engine::shutdown`].
pub struct Engine {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Engine {
    /// Spawns the worker pool over `db`.
    pub fn start(db: Database, cfg: EngineConfig) -> Engine {
        let workers = cfg.workers.max(1);
        let max_inflight = if cfg.max_inflight == 0 {
            workers + cfg.queue_capacity
        } else {
            cfg.max_inflight
        };
        let shared = Arc::new(Shared {
            db,
            cache: PlanCache::new(cfg.cache_capacity),
            queue: BoundedQueue::new(cfg.queue_capacity.max(1)),
            accepting: AtomicBool::new(true),
            inflight: AtomicUsize::new(0),
            max_inflight,
            served: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            exec_threads: cfg.exec_threads,
            max_budget: cfg.max_budget,
            default_seed: cfg.default_seed,
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("ppr-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker")
            })
            .collect();
        Engine {
            shared,
            workers: handles,
        }
    }

    /// A cloneable submission handle.
    pub fn handle(&self) -> EngineHandle {
        EngineHandle {
            shared: self.shared.clone(),
        }
    }

    /// Graceful drain-and-shutdown: stop admitting, answer everything
    /// already queued, join the workers.
    pub fn shutdown(self) {
        self.shared.accepting.store(false, Ordering::Release);
        self.shared.queue.close();
        for h in self.workers {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    while let Some(job) = shared.queue.pop() {
        // Panic isolation: requests come off the wire, and a panic
        // escaping `process` would kill this worker *and* leak its
        // in-flight slot — enough such requests would empty the pool and
        // leave later admitted requests waiting forever. Known-bad inputs
        // are rejected with typed errors before they can panic; this is
        // the backstop for the unknown ones.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            process(shared, &job.request)
        }))
        .unwrap_or_else(|payload| Err(ServiceError::Internal(panic_message(payload.as_ref()))));
        shared.served.fetch_add(1, Ordering::Relaxed);
        shared.inflight.fetch_sub(1, Ordering::AcqRel);
        // A vanished caller (client disconnected mid-request) is fine.
        let _ = job.reply.send(result);
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked".to_string()
    }
}

/// Validates every atom against the server database before planning, so a
/// bad request fails with a typed error instead of a worker panic.
fn check_relations(query: &ConjunctiveQuery, db: &Database) -> Result<(), ServiceError> {
    for atom in &query.atoms {
        match db.get(&atom.relation) {
            None => return Err(ServiceError::MissingRelation(atom.relation.clone())),
            Some(rel) if rel.arity() != atom.arity() => {
                return Err(ServiceError::MissingRelation(format!(
                    "{} has arity {}, query uses {}",
                    atom.relation,
                    rel.arity(),
                    atom.arity()
                )))
            }
            Some(_) => {}
        }
    }
    Ok(())
}

fn process(shared: &Shared, request: &Request) -> Result<Response, ServiceError> {
    let query = parse_query(&request.query).map_err(|e| ServiceError::Parse(e.0))?;
    check_relations(&query, &shared.db)?;

    // The effective seed is part of the cache key: it breaks planner
    // ties, so a request carrying an explicit seed must not be answered
    // with a plan built under a different one.
    let seed = request.seed.unwrap_or(shared.default_seed);
    let key = (fingerprint(&query), request.method, seed);
    let shape = QueryShape::of(&query);
    let (plan, cache_hit, plan_micros) = match shared.cache.get(&key, &shape) {
        Some(plan) => (plan, true, 0),
        None => {
            let started = Instant::now();
            let mut rng = StdRng::seed_from_u64(seed);
            let built = Arc::new(build_plan(request.method, &query, &shared.db, &mut rng));
            let micros = started.elapsed().as_micros() as u64;
            // A racing worker may have published the same key first; the
            // cache keeps the existing plan so concurrent identical
            // requests all run one plan.
            (shared.cache.insert(key, shape, built), false, micros)
        }
    };

    let mut budget = Budget::unlimited();
    if let Some(t) = request.max_tuples {
        budget.max_tuples_flowed = t;
        budget.max_materialized = t;
    }
    if let Some(ms) = request.timeout_ms {
        budget.timeout = Some(Duration::from_millis(ms));
    }
    let budget = budget.clamp(&shared.max_budget);

    let (rel, stats) = if shared.exec_threads == 1 {
        exec::execute(&plan, &budget)
    } else {
        parallel::execute_parallel(&plan, &budget, shared.exec_threads)
    }
    .map_err(ServiceError::Exec)?;

    let columns = query.free.iter().map(|&f| query.vars.name(f)).collect();
    Ok(Response {
        columns,
        rows: rel.tuples().to_vec(),
        stats,
        cache_hit,
        plan_micros,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppr_relalg::RelalgError;

    fn three_color_db() -> Database {
        let mut db = Database::new();
        db.add(ppr_workload::edge_relation(3));
        db
    }

    fn small_cfg() -> EngineConfig {
        EngineConfig {
            workers: 2,
            queue_capacity: 8,
            ..EngineConfig::default()
        }
    }

    const PENTAGON: &str = "q() :- e(a,b), e(b,c), e(c,d), e(d,f), e(f,a)";

    fn pentagon_request(method: Method) -> Request {
        Request::new(PENTAGON.replace('e', "edge"), method)
    }

    #[test]
    fn answers_match_library_evaluation() {
        let engine = Engine::start(three_color_db(), small_cfg());
        let h = engine.handle();
        for method in Method::paper_lineup() {
            let resp = h.execute(pentagon_request(method)).unwrap();
            assert!(!resp.rows.is_empty(), "{method:?}: pentagon is 3-colorable");
        }
        engine.shutdown();
    }

    #[test]
    fn repeated_query_hits_cache_even_renamed() {
        let engine = Engine::start(three_color_db(), small_cfg());
        let h = engine.handle();
        let m = Method::BucketElimination(ppr_core::methods::OrderHeuristic::Mcs);
        let first = h.execute(pentagon_request(m)).unwrap();
        assert!(!first.cache_hit);
        let second = h.execute(pentagon_request(m)).unwrap();
        assert!(second.cache_hit, "identical query must reuse the plan");
        // A renamed, atom-permuted variant of the same pentagon.
        let renamed = Request::new(
            "q() :- edge(v,w), edge(u,v), edge(z,u), edge(y,z), edge(w,y)",
            m,
        );
        let third = h.execute(renamed).unwrap();
        assert!(third.cache_hit, "isomorphic query must reuse the plan");
        assert_eq!(first.rows, third.rows);
        let stats = h.stats();
        assert_eq!(stats.cache.hits, 2);
        assert_eq!(stats.cache.misses, 1);
        engine.shutdown();
    }

    #[test]
    fn parse_and_missing_relation_errors_are_typed() {
        let engine = Engine::start(three_color_db(), small_cfg());
        let h = engine.handle();
        let bad = h.execute(Request::new("not a rule", Method::Straightforward));
        assert!(matches!(bad, Err(ServiceError::Parse(_))));
        let missing = h.execute(Request::new("q() :- nope(x, y)", Method::Straightforward));
        assert!(matches!(missing, Err(ServiceError::MissingRelation(_))));
        let arity = h.execute(Request::new(
            "q() :- edge(x, y, z)",
            Method::Straightforward,
        ));
        assert!(matches!(arity, Err(ServiceError::MissingRelation(_))));
        engine.shutdown();
    }

    #[test]
    fn repeated_head_variable_is_a_typed_error_and_workers_survive() {
        // `q(x, x) :- …` used to reach ConjunctiveQuery::new's "free
        // variables repeat" assert and kill a worker (leaking its
        // in-flight slot); it must be a Parse error, and the pool must
        // keep serving afterwards.
        let cfg = EngineConfig {
            workers: 1,
            ..small_cfg()
        };
        let engine = Engine::start(three_color_db(), cfg);
        let h = engine.handle();
        for _ in 0..3 {
            let bad = h.execute(Request::new(
                "q(x, x) :- edge(x, y)",
                Method::Straightforward,
            ));
            assert!(matches!(bad, Err(ServiceError::Parse(_))), "{bad:?}");
        }
        let ok = h.execute(pentagon_request(Method::Straightforward));
        assert!(ok.is_ok(), "the lone worker must still be alive: {ok:?}");
        assert_eq!(h.stats().inflight, 0, "no in-flight slots leaked");
        engine.shutdown();
    }

    #[test]
    fn explicit_seed_does_not_reuse_default_seed_plan() {
        let engine = Engine::start(three_color_db(), small_cfg());
        let h = engine.handle();
        let m = Method::Reordering;
        let first = h.execute(pentagon_request(m)).unwrap();
        assert!(!first.cache_hit);
        // Same query under an explicit seed: the plan may legitimately
        // differ (the seed breaks planner ties), so it must re-plan, and
        // repeating that seed must then hit its own entry.
        let mut seeded = pentagon_request(m);
        seeded.seed = Some(42);
        let second = h.execute(seeded.clone()).unwrap();
        assert!(!second.cache_hit, "different seed must not hit the cache");
        let third = h.execute(seeded).unwrap();
        assert!(third.cache_hit, "same seed must hit its own entry");
        engine.shutdown();
    }

    #[test]
    fn budget_override_is_enforced_and_clamped() {
        let mut cfg = small_cfg();
        cfg.max_budget = Budget::tuples(1_000_000);
        let engine = Engine::start(three_color_db(), cfg);
        let h = engine.handle();
        let mut req = pentagon_request(Method::Straightforward);
        req.max_tuples = Some(3);
        let out = h.execute(req);
        assert!(
            matches!(
                out,
                Err(ServiceError::Exec(RelalgError::BudgetExceeded { .. }))
            ),
            "{out:?}"
        );
        engine.shutdown();
    }

    #[test]
    fn saturation_returns_overloaded() {
        // One worker, tiny queue, and a request that runs long enough to
        // pile up concurrent submissions.
        let cfg = EngineConfig {
            workers: 1,
            queue_capacity: 1,
            max_inflight: 2,
            ..EngineConfig::default()
        };
        let engine = Engine::start(three_color_db(), cfg);
        let h = engine.handle();
        let slow = || {
            // K7 with straightforward join order: plenty of tuple flow.
            let mut atoms = Vec::new();
            for i in 0..7 {
                for j in (i + 1)..7 {
                    atoms.push(format!("edge(v{i}, v{j})"));
                }
            }
            Request::new(
                format!("q() :- {}", atoms.join(", ")),
                Method::Straightforward,
            )
        };
        let mut handles = Vec::new();
        for _ in 0..8 {
            let h = h.clone();
            let req = slow();
            handles.push(std::thread::spawn(move || h.execute(req)));
        }
        let results: Vec<_> = handles.into_iter().map(|t| t.join().unwrap()).collect();
        let overloaded = results
            .iter()
            .filter(|r| matches!(r, Err(ServiceError::Overloaded { .. })))
            .count();
        assert!(
            overloaded > 0,
            "8 concurrent requests against inflight cap 2 must shed load"
        );
        let stats = h.stats();
        assert_eq!(stats.rejected as usize, overloaded);
        engine.shutdown();
    }

    #[test]
    fn shutdown_drains_admitted_requests() {
        let engine = Engine::start(three_color_db(), small_cfg());
        let h = engine.handle();
        let resp = h
            .execute(pentagon_request(Method::EarlyProjection))
            .unwrap();
        assert!(!resp.rows.is_empty());
        engine.shutdown();
        assert!(matches!(
            h.execute(pentagon_request(Method::EarlyProjection)),
            Err(ServiceError::ShuttingDown)
        ));
    }
}
