#![warn(missing_docs)]

//! Query-serving subsystem for the projection-pushing engine.
//!
//! The paper's planning methods make project-join queries cheap to compile
//! *and* cheap to run — the regime of a long-lived service answering many
//! small queries, where planning cost is amortized across repeated
//! evaluation. This crate is that serving layer:
//!
//! * [`catalog::Catalog`] — a named collection of databases, each with a
//!   monotonically increasing [`catalog::DbVersion`] bumped by every
//!   mutation (`create` / `load` / `add` / `drop`). Snapshots are
//!   copy-on-write `Arc`s: in-flight requests keep a consistent view
//!   while writers publish new versions beside them — writers never block
//!   readers.
//! * [`result_cache::ResultCache`] — a byte-budgeted LRU from
//!   (database, version, [`ppr_query::Fingerprint`], method, seed) to
//!   complete result sets. Because the database version is in the key, a
//!   catalog mutation naturally invalidates every older entry; no
//!   explicit invalidation protocol exists or is needed.
//! * [`cache::PlanCache`] — an LRU cache over the same key shape to
//!   compiled [`ppr_relalg::Plan`]s with hit/miss/eviction counters. The
//!   fingerprint is canonical under variable renaming and atom
//!   reordering, so syntactic variants of a hot query share one cached
//!   plan; every hit (in both caches) re-verifies a cheap
//!   [`ppr_query::QueryShape`] so a fingerprint collision between
//!   structurally different queries costs a re-plan, never a wrong
//!   answer.
//! * [`decomp::DecompCache`] — a structure-keyed LRU of bucket
//!   elimination's chosen variable orders, keyed **without** the database
//!   identity: a catalog mutation forces a re-plan, but a structurally
//!   repeated query skips re-decomposition because the optimizer pipeline
//!   ([`ppr_core::passes`], docs/PLANNING.md) consumes the cached order
//!   as a pass hint.
//! * [`engine::Engine`] — a worker pool executing requests over the
//!   serial or partitioned-parallel executor, with per-request tuple/time
//!   budgets clamped by a server-side maximum, **admission control**
//!   (bounded queue + max in-flight; saturation fast-fails with
//!   [`ServiceError::Overloaded`] instead of queueing unboundedly), and
//!   graceful drain-and-shutdown. Requests are built fluently:
//!   `Request::query("q() :- e(x,y)").method(m).on("graphs")`.
//! * [`protocol`] — a newline-delimited wire format carrying the
//!   Datalog-ish query text [`ppr_query::parse_query`] accepts, method
//!   selection, budget overrides, database targeting, and the catalog
//!   verbs `use` / `create` / `load` / `add` / `drop`; responses carry
//!   status, rows, and [`ppr_relalg::ExecStats`] including cache-hit
//!   flags.
//! * [`server::Server`] / [`client::Client`] — a `std::net` TCP server
//!   built with [`server::Server::builder`] and a blocking client. Two
//!   connection backends share one wire grammar: the default
//!   single-threaded epoll event loop ([`net`]; Linux, hand-rolled — no
//!   async runtime, sized for C10K) and a thread-per-connection fallback
//!   ([`server::ConnectionModel::Threads`], the portability path). Each
//!   connection carries a session database selected with `use`, the
//!   default for requests that don't name one, plus an idle (slow-loris)
//!   timeout and a bounded output buffer for slow readers.
//!
//! Everything is std-only; the engine is equally usable embedded (via
//! [`engine::EngineHandle::execute`]) and over TCP.

pub mod cache;
pub mod catalog;
pub mod client;
pub mod decomp;
pub mod engine;
pub mod metrics;
pub mod net;
pub mod protocol;
mod queue;
pub mod result_cache;
pub mod server;

pub use cache::{CacheStats, PlanCache};
pub use catalog::{
    fingerprint_db, Catalog, CatalogError, DbFingerprint, DbInfo, DbSnapshot, DbVersion, DEFAULT_DB,
};
pub use client::{Client, Pipeline, Ticket};
pub use decomp::{DecompCache, DecompKey, DecompStats};
pub use engine::{
    Engine, EngineConfig, EngineHandle, EngineStats, ExplainData, ExplainMode, Request, Response,
    SpanStats,
};
pub use metrics::{render_slowlog, ServiceMetrics, DEFAULT_SLOWLOG_CAPACITY};
pub use net::{CloseReason, NetMetrics};
pub use result_cache::{ResultCache, ResultCacheStats};
pub use server::{ConnectionModel, Server, ServerBuilder, ServerConfig};

use ppr_relalg::RelalgError;

/// Errors surfaced by the serving layer, both embedded and over the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// Admission control rejected the request: the bounded queue (or the
    /// in-flight cap) is full. Clients should back off and retry; the
    /// server sheds load instead of queueing unboundedly.
    Overloaded {
        /// Requests queued or executing when the request was rejected.
        inflight: usize,
        /// The in-flight cap that was hit.
        capacity: usize,
    },
    /// The engine is draining and no longer accepts new requests.
    ShuttingDown,
    /// The query text did not parse.
    Parse(String),
    /// The query referenced a relation the target database does not have
    /// (or with the wrong arity).
    MissingRelation(String),
    /// The request (or a `use` verb) named a database the catalog does
    /// not have.
    UnknownDatabase(String),
    /// A catalog mutation failed: the database already exists, a tuple's
    /// arity disagrees with the relation, or a `load` carried no tuples.
    Catalog(String),
    /// The wire protocol named an unknown method.
    UnknownMethod(String),
    /// Execution failed — budget exhaustion ([`RelalgError::BudgetExceeded`])
    /// or an invalid plan.
    Exec(RelalgError),
    /// A malformed protocol line.
    Protocol(String),
    /// Client-side transport failure.
    Io(String),
    /// A worker panicked while processing the request (caught and
    /// isolated; the worker survives and the in-flight slot is released).
    Internal(String),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Overloaded { inflight, capacity } => {
                write!(f, "overloaded: {inflight} in flight (cap {capacity})")
            }
            ServiceError::ShuttingDown => write!(f, "server is shutting down"),
            ServiceError::Parse(m) => write!(f, "parse error: {m}"),
            ServiceError::MissingRelation(m) => write!(f, "missing relation: {m}"),
            ServiceError::UnknownDatabase(m) => write!(f, "unknown database: {m}"),
            ServiceError::Catalog(m) => write!(f, "catalog error: {m}"),
            ServiceError::UnknownMethod(m) => write!(f, "unknown method: {m}"),
            ServiceError::Exec(e) => write!(f, "execution error: {e}"),
            ServiceError::Protocol(m) => write!(f, "protocol error: {m}"),
            ServiceError::Io(m) => write!(f, "io error: {m}"),
            ServiceError::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl ServiceError {
    /// Stable machine-readable kind, shared by the wire protocol's
    /// `err kind=…` encoding and the slow-query log's outcome column.
    pub fn kind(&self) -> &'static str {
        match self {
            ServiceError::Overloaded { .. } => "overloaded",
            ServiceError::ShuttingDown => "shutting_down",
            ServiceError::Parse(_) => "parse",
            ServiceError::MissingRelation(_) => "missing_relation",
            ServiceError::UnknownDatabase(_) => "unknown_db",
            ServiceError::Catalog(_) => "catalog",
            ServiceError::UnknownMethod(_) => "unknown_method",
            ServiceError::Exec(e) => match e {
                RelalgError::BudgetExceeded { .. } => "budget",
                _ => "exec",
            },
            ServiceError::Protocol(_) => "protocol",
            ServiceError::Io(_) => "io",
            ServiceError::Internal(_) => "internal",
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<std::io::Error> for ServiceError {
    fn from(e: std::io::Error) -> Self {
        ServiceError::Io(e.to_string())
    }
}

impl From<CatalogError> for ServiceError {
    fn from(e: CatalogError) -> Self {
        match e {
            CatalogError::UnknownDatabase(name) => ServiceError::UnknownDatabase(name),
            other => ServiceError::Catalog(other.to_string()),
        }
    }
}
