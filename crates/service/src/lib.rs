#![warn(missing_docs)]

//! Query-serving subsystem for the projection-pushing engine.
//!
//! The paper's planning methods make project-join queries cheap to compile
//! *and* cheap to run — the regime of a long-lived service answering many
//! small queries, where planning cost is amortized across repeated
//! evaluation. This crate is that serving layer:
//!
//! * [`cache::PlanCache`] — an LRU cache from
//!   ([`ppr_query::Fingerprint`], [`ppr_core::methods::Method`], planner
//!   seed) to compiled [`ppr_relalg::Plan`]s with hit/miss/eviction
//!   counters. The fingerprint is canonical under variable renaming and
//!   atom reordering, so syntactic variants of a hot query share one
//!   cached plan; every hit re-verifies a cheap [`ppr_query::QueryShape`]
//!   so a fingerprint collision between structurally different queries
//!   costs a re-plan, never a wrong answer.
//! * [`engine::Engine`] — a worker pool executing requests over the
//!   serial or partitioned-parallel executor, with per-request tuple/time
//!   budgets clamped by a server-side maximum, **admission control**
//!   (bounded queue + max in-flight; saturation fast-fails with
//!   [`ServiceError::Overloaded`] instead of queueing unboundedly), and
//!   graceful drain-and-shutdown.
//! * [`protocol`] — a newline-delimited wire format carrying the
//!   Datalog-ish query text [`ppr_query::parse_query`] accepts, method
//!   selection, and budget overrides; responses carry status, rows, and
//!   [`ppr_relalg::ExecStats`] including the cache-hit flag.
//! * [`server::Server`] / [`client::Client`] — a `std::net` TCP server
//!   (thread per connection; no async runtime — the engine's own queue is
//!   the concurrency limiter, so blocking I/O threads stay cheap) and a
//!   blocking client.
//!
//! Everything is std-only; the engine is equally usable embedded (via
//! [`engine::EngineHandle::execute`]) and over TCP.

pub mod cache;
pub mod client;
pub mod engine;
pub mod protocol;
mod queue;
pub mod server;

pub use cache::{CacheStats, PlanCache};
pub use client::Client;
pub use engine::{Engine, EngineConfig, EngineHandle, EngineStats, Request, Response};
pub use server::Server;

use ppr_relalg::RelalgError;

/// Errors surfaced by the serving layer, both embedded and over the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// Admission control rejected the request: the bounded queue (or the
    /// in-flight cap) is full. Clients should back off and retry; the
    /// server sheds load instead of queueing unboundedly.
    Overloaded {
        /// Requests queued or executing when the request was rejected.
        inflight: usize,
        /// The in-flight cap that was hit.
        capacity: usize,
    },
    /// The engine is draining and no longer accepts new requests.
    ShuttingDown,
    /// The query text did not parse.
    Parse(String),
    /// The query referenced a relation the server's database does not
    /// have (or with the wrong arity).
    MissingRelation(String),
    /// The wire protocol named an unknown method.
    UnknownMethod(String),
    /// Execution failed — budget exhaustion ([`RelalgError::BudgetExceeded`])
    /// or an invalid plan.
    Exec(RelalgError),
    /// A malformed protocol line.
    Protocol(String),
    /// Client-side transport failure.
    Io(String),
    /// A worker panicked while processing the request (caught and
    /// isolated; the worker survives and the in-flight slot is released).
    Internal(String),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Overloaded { inflight, capacity } => {
                write!(f, "overloaded: {inflight} in flight (cap {capacity})")
            }
            ServiceError::ShuttingDown => write!(f, "server is shutting down"),
            ServiceError::Parse(m) => write!(f, "parse error: {m}"),
            ServiceError::MissingRelation(m) => write!(f, "missing relation: {m}"),
            ServiceError::UnknownMethod(m) => write!(f, "unknown method: {m}"),
            ServiceError::Exec(e) => write!(f, "execution error: {e}"),
            ServiceError::Protocol(m) => write!(f, "protocol error: {m}"),
            ServiceError::Io(m) => write!(f, "io error: {m}"),
            ServiceError::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<std::io::Error> for ServiceError {
    fn from(e: std::io::Error) -> Self {
        ServiceError::Io(e.to_string())
    }
}
