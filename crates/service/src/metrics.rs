//! The engine's observability surface: pre-registered metric handles,
//! the slow-query log, and text renderings for the Prometheus endpoint.
//!
//! One [`ServiceMetrics`] is created per [`crate::Engine`] and shared via
//! `Arc` with every worker. The handles are registered once here (the
//! registry's only locked path) so the per-request hot path is purely
//! relaxed atomic increments — see `ppr_obs::metrics` for the cost
//! model. Metric names and the label scheme are documented in
//! `docs/OBSERVABILITY.md`.

use std::sync::Arc;

use ppr_obs::{Counter, Histogram, Phase, Registry, SlowEntry, SlowLog, OP_KINDS, PHASES};

/// Requests the slow-query log retains by default
/// ([`crate::EngineConfig::slowlog_capacity`] = 0 selects it).
pub const DEFAULT_SLOWLOG_CAPACITY: usize = 32;

/// Pre-registered metric handles for the request path.
pub struct ServiceMetrics {
    /// The registry behind the `/metrics` endpoint and the `stats` verb.
    pub registry: Arc<Registry>,
    /// Worst-N-by-latency log behind the `slowlog` verb.
    pub slowlog: Arc<SlowLog>,
    /// `ppr_requests_total` — requests completed by workers (ok or error).
    pub requests_total: Arc<Counter>,
    /// `ppr_request_errors_total` — completed with an error.
    pub errors_total: Arc<Counter>,
    /// `ppr_request_phase_us{phase=…}` — per-phase latency, one histogram
    /// per [`Phase`], indexed by `Phase as usize`. Every completed
    /// request records all six phases; zero means the phase did not run
    /// (e.g. `exec` on a result-cache hit) or was sub-microsecond.
    pub phase_us: [Arc<Histogram>; Phase::COUNT],
    /// `ppr_request_total_us` — end-to-end latency, admission to
    /// completion.
    pub total_us: Arc<Histogram>,
    /// `ppr_result_rows` — result sizes of successful requests.
    pub result_rows: Arc<Histogram>,
    /// `ppr_exec_tuples_flowed` — executor tuple flow of successful
    /// requests (0 on a result-cache hit).
    pub tuples_flowed: Arc<Histogram>,
    /// `ppr_exec_rows_scanned` — physical input rows the executor read
    /// per successful request (0 on a result-cache hit). Falls on warm
    /// repeats as the streaming executor reuses cached secondary indexes.
    pub rows_scanned: Arc<Histogram>,
    /// `ppr_index_probes_total` — secondary-index lookups performed by
    /// the streaming executor's `IxScan`/`IxJoin` operators.
    pub index_probes: Arc<Counter>,
    /// `ppr_index_builds_total` — secondary indexes built (cache misses;
    /// warm snapshots stop incrementing this).
    pub index_builds: Arc<Counter>,
    /// `ppr_passes_run_total` — optimizer passes executed by the planning
    /// pipeline across all planned requests (plan- and result-cache hits
    /// run none).
    pub passes_run: Arc<Counter>,
    /// `ppr_decomp_cache_hits_total` — bucket decompositions skipped
    /// because the structure-keyed [`crate::DecompCache`] supplied the
    /// variable order as a pass hint.
    pub decomp_hits: Arc<Counter>,
    /// `ppr_op_rows_total{op=…}` — rows emitted per physical operator
    /// kind, indexed by `OpKind as usize`. Only populated when operator
    /// profiling runs ([`crate::EngineConfig::profile_ops`] or
    /// `explain analyze`).
    pub op_rows: [Arc<Counter>; OP_KINDS.len()],
    /// `ppr_op_time_us{op=…}` — per-request self time per physical
    /// operator kind, indexed by `OpKind as usize`. Same gating as
    /// [`ServiceMetrics::op_rows`].
    pub op_time_us: [Arc<Histogram>; OP_KINDS.len()],
}

impl ServiceMetrics {
    /// Registers every request-path metric on a fresh registry.
    pub fn new(slowlog_capacity: usize) -> Arc<ServiceMetrics> {
        let registry = Arc::new(Registry::new());
        let phase_us = std::array::from_fn(|i| {
            registry.histogram_with(
                "ppr_request_phase_us",
                &format!("phase=\"{}\"", PHASES[i].name()),
                "Per-phase request latency in microseconds",
            )
        });
        let op_rows = std::array::from_fn(|i| {
            registry.counter_with(
                "ppr_op_rows_total",
                &format!("op=\"{}\"", OP_KINDS[i].name()),
                "Rows emitted per physical operator kind (profiled requests only)",
            )
        });
        let op_time_us = std::array::from_fn(|i| {
            registry.histogram_with(
                "ppr_op_time_us",
                &format!("op=\"{}\"", OP_KINDS[i].name()),
                "Per-request operator self time in microseconds (profiled requests only)",
            )
        });
        Arc::new(ServiceMetrics {
            requests_total: registry.counter(
                "ppr_requests_total",
                "Requests completed by engine workers (ok or error)",
            ),
            errors_total: registry.counter(
                "ppr_request_errors_total",
                "Requests completed with an error",
            ),
            phase_us,
            total_us: registry.histogram(
                "ppr_request_total_us",
                "End-to-end request latency in microseconds (admission to completion)",
            ),
            result_rows: registry
                .histogram("ppr_result_rows", "Result rows per successful request"),
            tuples_flowed: registry.histogram(
                "ppr_exec_tuples_flowed",
                "Executor tuple flow per successful request",
            ),
            rows_scanned: registry.histogram(
                "ppr_exec_rows_scanned",
                "Physical input rows read by the executor per successful request",
            ),
            index_probes: registry.counter(
                "ppr_index_probes_total",
                "Secondary-index lookups performed by the streaming executor",
            ),
            index_builds: registry.counter(
                "ppr_index_builds_total",
                "Secondary indexes built on cache miss by the streaming executor",
            ),
            passes_run: registry.counter(
                "ppr_passes_run_total",
                "Optimizer passes executed by the planning pipeline",
            ),
            decomp_hits: registry.counter(
                "ppr_decomp_cache_hits_total",
                "Bucket decompositions skipped via the structure-keyed order cache",
            ),
            op_rows,
            op_time_us,
            slowlog: Arc::new(SlowLog::new(if slowlog_capacity == 0 {
                DEFAULT_SLOWLOG_CAPACITY
            } else {
                slowlog_capacity
            })),
            registry,
        })
    }
}

/// Human-readable rendering of the slow-query log, one line per entry
/// (slowest first) — the body of the metrics endpoint's `/slowlog` page.
pub fn render_slowlog(entries: &[SlowEntry]) -> String {
    let mut out = String::with_capacity(128 * (entries.len() + 1));
    out.push_str("# slow queries, worst first: total_us db@version fingerprint method outcome spans rows tuples scanned peak stages threads passes decomp ops\n");
    for e in entries {
        let spans: Vec<String> = PHASES
            .iter()
            .map(|p| format!("{}={}", p.name(), e.spans.get(*p)))
            .collect();
        out.push_str(&format!(
            "{} {}@{} {:032x} {} {} {} rows={} tuples={} scanned={} peak={} stages={} threads={} passes={} decomp={} ops={}\n",
            e.total_us,
            e.db,
            e.version,
            e.fingerprint,
            e.method,
            e.outcome,
            spans.join(","),
            e.rows,
            e.tuples_flowed,
            e.rows_scanned,
            e.peak_materialized,
            e.join_stages,
            e.threads_used,
            e.passes_run,
            u8::from(e.decomp_hit),
            if e.op_digest.is_empty() {
                "-"
            } else {
                &e.op_digest
            },
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registers_the_documented_names() {
        let m = ServiceMetrics::new(0);
        m.requests_total.inc();
        m.phase_us[Phase::Exec as usize].record(120);
        let text = m.registry.render_prometheus();
        for name in [
            "ppr_requests_total",
            "ppr_request_errors_total",
            "ppr_request_phase_us",
            "ppr_request_total_us",
            "ppr_result_rows",
            "ppr_exec_tuples_flowed",
            "ppr_exec_rows_scanned",
            "ppr_index_probes_total",
            "ppr_index_builds_total",
            "ppr_passes_run_total",
            "ppr_decomp_cache_hits_total",
            "ppr_op_rows_total",
            "ppr_op_time_us",
        ] {
            assert!(text.contains(name), "missing {name} in:\n{text}");
        }
        assert!(text.contains("phase=\"exec\""));
        assert!(text.contains("op=\"ix_join\""));
        assert_eq!(m.slowlog.capacity(), DEFAULT_SLOWLOG_CAPACITY);
    }

    #[test]
    fn slowlog_renders_one_line_per_entry() {
        let m = ServiceMetrics::new(2);
        let mut spans = ppr_obs::TraceSpans::new();
        spans.set(Phase::Exec, 400);
        m.slowlog.record(SlowEntry {
            db: "graphs".into(),
            version: 3,
            fingerprint: 0xabc,
            method: "ep".into(),
            outcome: "ok".into(),
            total_us: 512,
            spans,
            rows: 6,
            tuples_flowed: 42,
            peak_materialized: 9,
            join_stages: 2,
            threads_used: 1,
            rows_scanned: 18,
            passes_run: 3,
            decomp_hit: true,
            op_digest: "ix_join:edge:6:12".into(),
            seq: 0,
        });
        let text = render_slowlog(&m.slowlog.snapshot());
        assert!(text.contains("512 graphs@3"));
        assert!(text.contains("exec=400"));
        assert!(text.contains("rows=6"));
        assert!(text.contains("scanned=18"));
        assert!(text.contains("passes=3"));
        assert!(text.contains("decomp=1"));
        assert!(text.contains("ops=ix_join:edge:6:12"));
    }
}
