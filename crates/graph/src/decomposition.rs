//! Tree decompositions.
//!
//! A tree decomposition of `G = (V, E)` is a tree whose nodes carry bags
//! `X_i ⊆ V` such that (1) every vertex appears in some bag, (2) every edge
//! is contained in some bag, and (3) the bags containing any fixed vertex
//! form a connected subtree. Width = max bag size − 1; treewidth = minimum
//! width over decompositions (paper §5).

use rustc_hash::FxHashSet;

use crate::graph::Graph;
use crate::ordering::EliminationOrder;

/// A tree decomposition: bags plus tree edges over bag indices.
#[derive(Debug, Clone)]
pub struct TreeDecomposition {
    bags: Vec<Vec<usize>>,
    edges: Vec<(usize, usize)>,
}

impl TreeDecomposition {
    /// Builds a decomposition from bags and tree edges; bags are sorted and
    /// de-duplicated internally. Panics if the edges do not form a tree
    /// over `bags.len()` nodes (a single bag with no edges is a tree).
    pub fn new(mut bags: Vec<Vec<usize>>, edges: Vec<(usize, usize)>) -> Self {
        for bag in &mut bags {
            bag.sort_unstable();
            bag.dedup();
        }
        let td = TreeDecomposition { bags, edges };
        assert!(td.is_tree(), "decomposition edges must form a tree");
        td
    }

    /// The bags.
    pub fn bags(&self) -> &[Vec<usize>] {
        &self.bags
    }

    /// Tree edges over bag indices.
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Width: `max |X_i| − 1`. An empty decomposition has width 0 by
    /// convention (it only decomposes the empty graph).
    pub fn width(&self) -> usize {
        self.bags
            .iter()
            .map(|b| b.len())
            .max()
            .unwrap_or(1)
            .saturating_sub(1)
    }

    fn is_tree(&self) -> bool {
        let n = self.bags.len();
        if n == 0 {
            return self.edges.is_empty();
        }
        if self.edges.len() != n - 1 {
            return false;
        }
        // Connectivity check via DFS.
        let mut adj = vec![Vec::new(); n];
        for &(a, b) in &self.edges {
            if a >= n || b >= n {
                return false;
            }
            adj[a].push(b);
            adj[b].push(a);
        }
        let mut seen = vec![false; n];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut count = 1;
        while let Some(v) = stack.pop() {
            for &w in &adj[v] {
                if !seen[w] {
                    seen[w] = true;
                    count += 1;
                    stack.push(w);
                }
            }
        }
        count == n
    }

    /// Checks the three tree-decomposition properties against `graph`.
    /// Returns a description of the first violation, or `Ok(())`.
    pub fn validate(&self, graph: &Graph) -> Result<(), String> {
        // (1) vertex coverage.
        let mut covered = vec![false; graph.order()];
        for bag in &self.bags {
            for &v in bag {
                if v >= graph.order() {
                    return Err(format!("bag vertex {v} out of range"));
                }
                covered[v] = true;
            }
        }
        if let Some(v) = covered.iter().position(|&c| !c) {
            if graph.order() > 0 {
                return Err(format!("vertex {v} appears in no bag"));
            }
        }
        // (2) edge coverage.
        for &(u, v) in graph.edges() {
            let ok = self
                .bags
                .iter()
                .any(|bag| bag.binary_search(&u).is_ok() && bag.binary_search(&v).is_ok());
            if !ok {
                return Err(format!("edge ({u}, {v}) contained in no bag"));
            }
        }
        // (3) connectedness of each vertex's occurrence set.
        let n = self.bags.len();
        let mut adj = vec![Vec::new(); n];
        for &(a, b) in &self.edges {
            adj[a].push(b);
            adj[b].push(a);
        }
        for v in 0..graph.order() {
            let holds: Vec<usize> = (0..n)
                .filter(|&i| self.bags[i].binary_search(&v).is_ok())
                .collect();
            if holds.is_empty() {
                continue;
            }
            let hold_set: FxHashSet<usize> = holds.iter().copied().collect();
            let mut seen = FxHashSet::default();
            let mut stack = vec![holds[0]];
            seen.insert(holds[0]);
            while let Some(i) = stack.pop() {
                for &j in &adj[i] {
                    if hold_set.contains(&j) && seen.insert(j) {
                        stack.push(j);
                    }
                }
            }
            if seen.len() != holds.len() {
                return Err(format!("bags containing vertex {v} are not connected"));
            }
        }
        Ok(())
    }

    /// Builds a tree decomposition from an elimination order (the standard
    /// fill-in construction): eliminating `v` creates the bag `{v} ∪
    /// live-neighbors(v)`, connected to the bag of the first live neighbor
    /// eliminated later. The width of the result equals the induced width
    /// of the order.
    pub fn from_elimination_order(graph: &Graph, order: &EliminationOrder) -> TreeDecomposition {
        let n = graph.order();
        assert_eq!(order.len(), n);
        if n == 0 {
            return TreeDecomposition::new(vec![], vec![]);
        }
        let pos = order.positions();
        let mut adj: Vec<FxHashSet<usize>> = (0..n).map(|v| graph.neighbors(v).clone()).collect();
        let mut eliminated = vec![false; n];
        // bag_of[v]: index of the bag created when v was eliminated.
        let mut bag_of = vec![usize::MAX; n];
        let mut bags: Vec<Vec<usize>> = Vec::with_capacity(n);
        let mut edges: Vec<(usize, usize)> = Vec::new();
        for v in order.elimination_sequence() {
            let live: Vec<usize> = adj[v].iter().copied().filter(|&w| !eliminated[w]).collect();
            let mut bag = live.clone();
            bag.push(v);
            let idx = bags.len();
            bag_of[v] = idx;
            bags.push(bag);
            // Connect to the bag of the live neighbor that is eliminated
            // soonest (largest position). Its bag does not exist yet, so
            // record a pending edge keyed by that neighbor.
            if let Some(&parent) = live.iter().max_by_key(|&&w| pos[w]) {
                edges.push((idx, parent)); // second component patched below
                let _ = parent;
            }
            for (i, &a) in live.iter().enumerate() {
                for &b in &live[i + 1..] {
                    adj[a].insert(b);
                    adj[b].insert(a);
                }
            }
            eliminated[v] = true;
        }
        // Patch pending edges: (bag, neighbor-vertex) → (bag, neighbor's bag).
        let mut edges = edges
            .into_iter()
            .map(|(i, v)| (i, bag_of[v]))
            .collect::<Vec<_>>();
        // A disconnected graph yields one subtree per component; chain the
        // component roots together. Bags of different components share no
        // vertices, so the extra edges cannot break the connectedness
        // property.
        let mut adj = vec![Vec::new(); bags.len()];
        for &(a, b) in &edges {
            adj[a].push(b);
            adj[b].push(a);
        }
        let mut seen = vec![false; bags.len()];
        let mut roots = Vec::new();
        for start in 0..bags.len() {
            if seen[start] {
                continue;
            }
            roots.push(start);
            let mut stack = vec![start];
            seen[start] = true;
            while let Some(v) = stack.pop() {
                for &w in &adj[v] {
                    if !seen[w] {
                        seen[w] = true;
                        stack.push(w);
                    }
                }
            }
        }
        for pair in roots.windows(2) {
            edges.push((pair[0], pair[1]));
        }
        TreeDecomposition::new(bags, edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::families;
    use crate::ordering::{induced_width, mcs_order};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn path_decomposition_from_order() {
        let g = families::path(5);
        let o = EliminationOrder::new((0..5).collect());
        let td = TreeDecomposition::from_elimination_order(&g, &o);
        td.validate(&g).unwrap();
        assert_eq!(td.width(), 1);
        assert_eq!(td.width(), induced_width(&g, &o));
    }

    #[test]
    fn complete_graph_decomposition() {
        let g = families::complete(4);
        let o = EliminationOrder::new((0..4).collect());
        let td = TreeDecomposition::from_elimination_order(&g, &o);
        td.validate(&g).unwrap();
        assert_eq!(td.width(), 3);
    }

    #[test]
    fn cycle_decomposition_width_two() {
        let g = families::cycle(6);
        let mut rng = StdRng::seed_from_u64(9);
        let o = mcs_order(&g, &[], &mut rng);
        let td = TreeDecomposition::from_elimination_order(&g, &o);
        td.validate(&g).unwrap();
        assert_eq!(td.width(), 2);
    }

    #[test]
    fn width_matches_induced_width_on_random_orders() {
        let g = families::grid(3, 3);
        for seed in 0..5 {
            let mut rng = StdRng::seed_from_u64(seed);
            let o = mcs_order(&g, &[], &mut rng);
            let td = TreeDecomposition::from_elimination_order(&g, &o);
            td.validate(&g).unwrap();
            assert_eq!(td.width(), induced_width(&g, &o));
        }
    }

    #[test]
    fn validate_catches_missing_edge() {
        let g = families::path(3); // edges (0,1), (1,2)
        let td = TreeDecomposition::new(vec![vec![0, 1], vec![2]], vec![(0, 1)]);
        let err = td.validate(&g).unwrap_err();
        assert!(err.contains("edge"));
    }

    #[test]
    fn validate_catches_missing_vertex() {
        let g = families::path(3);
        let td = TreeDecomposition::new(vec![vec![0, 1]], vec![]);
        let err = td.validate(&g).unwrap_err();
        assert!(err.contains("vertex 2"));
    }

    #[test]
    fn validate_catches_disconnected_occurrence() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        // Vertex 0 appears in bags 0 and 2, which are joined only through
        // bag 1 that lacks it.
        let td = TreeDecomposition::new(
            vec![vec![0, 1], vec![1, 2], vec![0, 2]],
            vec![(0, 1), (1, 2)],
        );
        let err = td.validate(&g).unwrap_err();
        assert!(err.contains("not connected"));
    }

    #[test]
    #[should_panic(expected = "tree")]
    fn non_tree_edges_rejected() {
        TreeDecomposition::new(vec![vec![0], vec![1], vec![2]], vec![(0, 1)]);
    }

    #[test]
    fn empty_graph_empty_decomposition() {
        let g = Graph::new(0);
        let td = TreeDecomposition::new(vec![], vec![]);
        td.validate(&g).unwrap();
    }
}
