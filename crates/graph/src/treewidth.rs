//! Treewidth computation.
//!
//! Finding treewidth is NP-hard (Arnborg–Corneil–Proskurowski), which is
//! exactly why the paper falls back to the MCS heuristic. For *validating*
//! Theorems 1 and 2 on small instances, this module provides an exact
//! branch-and-bound over elimination orders with subset memoization
//! (practical to ~20 vertices), alongside cheap lower/upper bounds.

use rustc_hash::{FxHashMap, FxHashSet};

use crate::graph::Graph;
use crate::ordering::{induced_width, min_degree_order, min_fill_order, EliminationOrder};

/// Exact treewidth by branch-and-bound over elimination orders.
///
/// Panics if the graph has more than 64 vertices (states are bitmask-coded;
/// the exact algorithm is for test-scale graphs only — use
/// [`upper_bound`] for larger inputs).
pub fn treewidth_exact(graph: &Graph) -> usize {
    let n = graph.order();
    assert!(n <= 64, "exact treewidth supports at most 64 vertices");
    if n == 0 {
        return 0;
    }
    let ub = upper_bound(graph);
    let lb = lower_bound(graph);
    if ub == lb {
        return ub;
    }
    let adj = bitmask_adjacency(graph);
    let mut memo: FxHashMap<u64, usize> = FxHashMap::default();
    solve(0, &adj, n, &mut memo)
}

fn bitmask_adjacency(graph: &Graph) -> Vec<u64> {
    (0..graph.order())
        .map(|v| {
            graph
                .neighbors(v)
                .iter()
                .fold(0u64, |acc, &w| acc | (1 << w))
        })
        .collect()
}

/// Minimal achievable max-degree over elimination orders of the vertices
/// *not* in `eliminated` (the elimination-order formulation of treewidth:
/// `tw(G) = solve(∅)`). Memoized on the eliminated set, so entries are
/// exact and context-free.
fn solve(eliminated: u64, base_adj: &[u64], n: usize, memo: &mut FxHashMap<u64, usize>) -> usize {
    if eliminated.count_ones() as usize == n {
        return 0;
    }
    if let Some(&w) = memo.get(&eliminated) {
        return w;
    }
    let mut best = usize::MAX;
    for v in 0..n {
        if eliminated & (1 << v) != 0 {
            continue;
        }
        let deg = live_degree(v, eliminated, base_adj);
        // Eliminating v cannot lead to a width below deg; skip if it cannot
        // improve on what we already have.
        if deg >= best {
            continue;
        }
        let sub = solve(eliminated | (1 << v), base_adj, n, memo);
        best = best.min(deg.max(sub));
    }
    memo.insert(eliminated, best);
    best
}

/// Degree of `v` in the elimination-closed graph: reachable live vertices
/// through eliminated-only paths (equivalent to counting live neighbors
/// after all fill edges from eliminating `eliminated`).
fn live_degree(v: usize, eliminated: u64, base_adj: &[u64]) -> usize {
    let mut visited = 1u64 << v;
    let mut frontier = base_adj[v];
    let mut live = 0u64;
    while frontier != 0 {
        let w = frontier.trailing_zeros() as usize;
        frontier &= frontier - 1;
        if visited & (1 << w) != 0 {
            continue;
        }
        visited |= 1 << w;
        if eliminated & (1 << w) != 0 {
            frontier |= base_adj[w] & !visited;
        } else {
            live |= 1 << w;
        }
    }
    live.count_ones() as usize
}

/// Heuristic upper bound: the best of min-fill and min-degree induced
/// widths (deterministic tie-breaking via a fixed-seed RNG).
pub fn upper_bound(graph: &Graph) -> usize {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(0x5eed);
    let mf = induced_width(graph, &min_fill_order(graph, &[], &mut rng));
    let md = induced_width(graph, &min_degree_order(graph, &[], &mut rng));
    mf.min(md)
}

/// The MMD+ (maximum minimum degree) lower bound: repeatedly remove a
/// minimum-degree vertex; the maximum of those minimum degrees is a lower
/// bound on treewidth.
pub fn lower_bound(graph: &Graph) -> usize {
    let n = graph.order();
    let mut adj: Vec<FxHashSet<usize>> = (0..n).map(|v| graph.neighbors(v).clone()).collect();
    let mut removed = vec![false; n];
    let mut bound = 0;
    for _ in 0..n {
        let v = (0..n)
            .filter(|&v| !removed[v])
            .min_by_key(|&v| adj[v].iter().filter(|&&w| !removed[w]).count())
            .expect("vertices remain");
        let deg = adj[v].iter().filter(|&&w| !removed[w]).count();
        bound = bound.max(deg);
        removed[v] = true;
        adj[v].clear();
    }
    bound
}

/// Exact minimum induced width over elimination orders that eliminate the
/// vertices of `last` **after** everything else (equivalently: `last` sits
/// at the *front* of the returned variable order — the paper's convention
/// for target-schema variables in bucket elimination), together with an
/// order achieving it. For test-size graphs only.
///
/// When `last` is empty this is the treewidth; with a nonempty `last` the
/// optimum is still the treewidth whenever `last` forms a clique (as the
/// target schema does in the join graph), because some bag of an optimal
/// decomposition contains the whole clique and can serve as the root.
pub fn optimal_order_with_suffix(graph: &Graph, last: &[usize]) -> (usize, EliminationOrder) {
    let n = graph.order();
    assert!(n <= 64, "exact search supports at most 64 vertices");
    let mut deferred: u64 = 0;
    for &v in last {
        assert!(v < n);
        deferred |= 1 << v;
    }
    let adj = bitmask_adjacency(graph);
    let mut memo: FxHashMap<u64, usize> = FxHashMap::default();
    let width = solve_deferred(0, deferred, &adj, n, &mut memo);
    // Greedy reconstruction along the memoized optimum.
    let mut rev: Vec<usize> = Vec::with_capacity(n);
    let mut eliminated: u64 = 0;
    let mut current = 0usize;
    while rev.len() < n {
        let nondeferred_left = (!eliminated) & !deferred & mask(n);
        let pool = if nondeferred_left != 0 {
            nondeferred_left
        } else {
            (!eliminated) & deferred & mask(n)
        };
        let mut chosen = None;
        let mut bits = pool;
        while bits != 0 {
            let v = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            let deg = live_degree(v, eliminated, &adj);
            let rest = solve_deferred(eliminated | (1 << v), deferred, &adj, n, &mut memo);
            if current.max(deg).max(rest) <= width {
                chosen = Some((v, deg));
                break;
            }
        }
        let (v, deg) = chosen.expect("an optimal continuation exists");
        current = current.max(deg);
        eliminated |= 1 << v;
        rev.push(v);
    }
    rev.reverse();
    let order = EliminationOrder::new(rev);
    debug_assert_eq!(induced_width(graph, &order), width);
    (width, order)
}

fn mask(n: usize) -> u64 {
    if n == 64 {
        u64::MAX
    } else {
        (1u64 << n) - 1
    }
}

/// Like [`solve`], but vertices in `deferred` may only be eliminated once
/// every other vertex is gone. The phase is derivable from the eliminated
/// set, so memoization stays sound.
fn solve_deferred(
    eliminated: u64,
    deferred: u64,
    base_adj: &[u64],
    n: usize,
    memo: &mut FxHashMap<u64, usize>,
) -> usize {
    if eliminated.count_ones() as usize == n {
        return 0;
    }
    if let Some(&w) = memo.get(&eliminated) {
        return w;
    }
    let nondeferred_left = (!eliminated) & !deferred & mask(n);
    let pool = if nondeferred_left != 0 {
        nondeferred_left
    } else {
        (!eliminated) & deferred & mask(n)
    };
    let mut best = usize::MAX;
    let mut bits = pool;
    while bits != 0 {
        let v = bits.trailing_zeros() as usize;
        bits &= bits - 1;
        let deg = live_degree(v, eliminated, base_adj);
        if deg >= best {
            continue;
        }
        let sub = solve_deferred(eliminated | (1u64 << v), deferred, base_adj, n, memo);
        best = best.min(deg.max(sub));
    }
    memo.insert(eliminated, best);
    best
}

/// Exact treewidth together with an optimal elimination order, obtained by
/// re-running the search greedily along the memoized optimum. For test-size
/// graphs only.
pub fn optimal_order(graph: &Graph) -> (usize, EliminationOrder) {
    let tw = treewidth_exact(graph);
    let n = graph.order();
    // Greedy reconstruction: repeatedly pick a vertex whose elimination
    // keeps the remainder solvable within tw.
    let mut rev = Vec::with_capacity(n);
    let mut eliminated_vertices: Vec<usize> = Vec::new();
    'outer: while rev.len() < n {
        for v in 0..n {
            if eliminated_vertices.contains(&v) {
                continue;
            }
            let mut trial = eliminated_vertices.clone();
            trial.push(v);
            if remainder_width(graph, &trial) <= tw {
                eliminated_vertices.push(v);
                rev.push(v);
                continue 'outer;
            }
        }
        unreachable!("an optimal continuation must exist");
    }
    rev.reverse();
    let order = EliminationOrder::new(rev);
    debug_assert_eq!(induced_width(graph, &order), tw);
    (tw, order)
}

/// Width of the best completion after eliminating `prefix` (in sequence):
/// the widths incurred by the prefix, maxed with an exact search over the
/// remainder.
fn remainder_width(graph: &Graph, prefix: &[usize]) -> usize {
    let n = graph.order();
    let adj = bitmask_adjacency(graph);
    let mut eliminated = 0u64;
    let mut current = 0usize;
    for &v in prefix {
        current = current.max(live_degree(v, eliminated, &adj));
        eliminated |= 1 << v;
    }
    let mut memo = FxHashMap::default();
    current.max(solve(eliminated, &adj, n, &mut memo))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::families;
    use crate::generate::random_graph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn tree_has_treewidth_one() {
        assert_eq!(treewidth_exact(&families::path(7)), 1);
        assert_eq!(treewidth_exact(&families::star(5)), 1);
        assert_eq!(treewidth_exact(&families::augmented_path(5)), 1);
    }

    #[test]
    fn cycle_has_treewidth_two() {
        assert_eq!(treewidth_exact(&families::cycle(8)), 2);
    }

    #[test]
    fn complete_graph_treewidth() {
        assert_eq!(treewidth_exact(&families::complete(5)), 4);
    }

    #[test]
    fn ladder_has_treewidth_two() {
        assert_eq!(treewidth_exact(&families::ladder(5)), 2);
        assert_eq!(treewidth_exact(&families::augmented_ladder(4)), 2);
    }

    #[test]
    fn circular_ladder_has_treewidth_three() {
        assert_eq!(treewidth_exact(&families::augmented_circular_ladder(4)), 3);
    }

    #[test]
    fn grid_treewidth_is_min_dimension() {
        assert_eq!(treewidth_exact(&families::grid(2, 5)), 2);
        assert_eq!(treewidth_exact(&families::grid(3, 3)), 3);
    }

    #[test]
    fn empty_and_trivial() {
        assert_eq!(treewidth_exact(&Graph::new(0)), 0);
        assert_eq!(treewidth_exact(&Graph::new(3)), 0);
        assert_eq!(treewidth_exact(&families::path(2)), 1);
    }

    #[test]
    fn bounds_bracket_exact() {
        for seed in 0..10 {
            let mut rng = StdRng::seed_from_u64(seed);
            let g = random_graph(10, 15, &mut rng);
            let tw = treewidth_exact(&g);
            assert!(lower_bound(&g) <= tw, "lb violated on seed {seed}");
            assert!(upper_bound(&g) >= tw, "ub violated on seed {seed}");
        }
    }

    #[test]
    fn optimal_order_achieves_treewidth() {
        for seed in 0..5 {
            let mut rng = StdRng::seed_from_u64(100 + seed);
            let g = random_graph(8, 12, &mut rng);
            let (tw, order) = optimal_order(&g);
            assert_eq!(induced_width(&g, &order), tw);
            assert_eq!(tw, treewidth_exact(&g));
        }
    }

    #[test]
    fn suffix_constrained_order_places_suffix_first() {
        let g = families::cycle(6);
        let last = [2usize, 4];
        let (w, order) = optimal_order_with_suffix(&g, &last);
        assert_eq!(w, 2);
        // Deferred vertices occupy the first positions (eliminated last).
        let front: Vec<usize> = order.order()[..2].to_vec();
        let mut sorted = front.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![2, 4]);
        assert_eq!(induced_width(&g, &order), w);
    }

    #[test]
    fn suffix_constraint_with_clique_suffix_costs_nothing() {
        // If the deferred set is a clique, the constrained optimum equals
        // the treewidth (root a decomposition at the clique's bag).
        for seed in 0..8 {
            let mut rng = StdRng::seed_from_u64(400 + seed);
            let mut g = random_graph(8, 12, &mut rng);
            // Force {0,1} to be a clique (an edge).
            g.add_edge(0, 1);
            let tw = treewidth_exact(&g);
            let (w, _) = optimal_order_with_suffix(&g, &[0, 1]);
            assert_eq!(w, tw, "seed {seed}");
        }
    }

    #[test]
    fn empty_suffix_matches_treewidth() {
        for seed in 0..5 {
            let mut rng = StdRng::seed_from_u64(500 + seed);
            let g = random_graph(9, 13, &mut rng);
            let (w, order) = optimal_order_with_suffix(&g, &[]);
            assert_eq!(w, treewidth_exact(&g));
            assert_eq!(induced_width(&g, &order), w);
        }
    }

    #[test]
    fn non_clique_suffix_can_cost_extra() {
        // Deferring the two endpoints of a path to the end forces them to
        // stay connected through fill: path 0-1-2-3-4, defer {0, 4}.
        let g = families::path(5);
        let (w, _) = optimal_order_with_suffix(&g, &[0, 4]);
        assert!(w >= 1);
        // Still bounded by the unconstrained width + |suffix|.
        assert!(w <= treewidth_exact(&g) + 2);
    }

    #[test]
    fn mcs_is_within_exact_on_small_random_graphs() {
        use crate::ordering::mcs_order;
        for seed in 0..10 {
            let mut rng = StdRng::seed_from_u64(seed);
            let g = random_graph(9, 14, &mut rng);
            let tw = treewidth_exact(&g);
            let o = mcs_order(&g, &[], &mut rng);
            assert!(induced_width(&g, &o) >= tw);
        }
    }
}
