//! The structured graph families of Figure 1, plus standard graphs used in
//! tests.
//!
//! All family constructors take the paper's *order* parameter `n` (path
//! length / number of rungs) and lay vertices out deterministically, so the
//! "straightforward" method sees the natural listing order the paper
//! describes as working well for augmented paths.

use crate::graph::Graph;

/// A path with `n` vertices (`n - 1` edges).
pub fn path(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for i in 1..n {
        g.add_edge(i - 1, i);
    }
    g
}

/// A cycle with `n ≥ 3` vertices.
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "a cycle needs at least 3 vertices");
    let mut g = path(n);
    g.add_edge(n - 1, 0);
    g
}

/// The complete graph on `n` vertices. `complete(4)` is the smallest
/// non-3-colorable instance and appears throughout the tests.
pub fn complete(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            g.add_edge(u, v);
        }
    }
    g
}

/// A star: vertex 0 joined to `n` leaves.
pub fn star(n: usize) -> Graph {
    let mut g = Graph::new(n + 1);
    for leaf in 1..=n {
        g.add_edge(0, leaf);
    }
    g
}

/// An `r × c` grid graph (treewidth `min(r, c)`).
pub fn grid(r: usize, c: usize) -> Graph {
    let mut g = Graph::new(r * c);
    let id = |i: usize, j: usize| i * c + j;
    for i in 0..r {
        for j in 0..c {
            if j + 1 < c {
                g.add_edge(id(i, j), id(i, j + 1));
            }
            if i + 1 < r {
                g.add_edge(id(i, j), id(i + 1, j));
            }
        }
    }
    g
}

/// Figure 1a: an **augmented path** — a path on `n` vertices where each
/// path vertex has a dangling (pendant) edge. Vertices `0..n` form the
/// path; vertex `n + i` dangles from path vertex `i`. Order `2n`, size
/// `2n − 1`. Treewidth 1 (it is a tree).
///
/// ```
/// let g = ppr_graph::families::augmented_path(4);
/// assert_eq!(g.order(), 8);
/// assert_eq!(g.size(), 7);
/// assert_eq!(ppr_graph::treewidth::treewidth_exact(&g), 1);
/// ```
pub fn augmented_path(n: usize) -> Graph {
    assert!(n >= 1);
    let mut g = Graph::new(2 * n);
    // Interleave pendants with path edges: this is the "natural order" of
    // the instance (paper §6: early projection is competitive on
    // augmented paths *because* the listing order works well — each path
    // vertex's pendant arrives before the walk moves on, so the vertex
    // dies immediately).
    g.add_edge(0, n);
    for i in 1..n {
        g.add_edge(i - 1, i);
        g.add_edge(i, n + i);
    }
    g
}

/// Figure 1b: a **ladder** with `n` rungs. Vertices `2i` / `2i + 1` are the
/// left/right endpoints of rung `i`; rails connect consecutive rungs. Order
/// `2n`, size `3n − 2`. Treewidth 2 for `n ≥ 2`.
pub fn ladder(n: usize) -> Graph {
    assert!(n >= 1);
    let mut g = Graph::new(2 * n);
    for i in 0..n {
        g.add_edge(2 * i, 2 * i + 1);
        if i + 1 < n {
            g.add_edge(2 * i, 2 * (i + 1));
            g.add_edge(2 * i + 1, 2 * (i + 1) + 1);
        }
    }
    g
}

/// Figure 1c: an **augmented ladder** — a ladder where every vertex gains a
/// dangling edge. Ladder vertices are `0..2n` as in [`ladder`]; vertex
/// `2n + v` dangles from ladder vertex `v`. Order `4n`, size `5n − 2`.
pub fn augmented_ladder(n: usize) -> Graph {
    let mut g = Graph::new(4 * n);
    // Natural listing order: per rung, the rung edge, both pendants, then
    // the rails onward — so a rung's vertices die as soon as the next
    // rung is connected.
    for i in 0..n {
        g.add_edge(2 * i, 2 * i + 1);
        g.add_edge(2 * i, 2 * n + 2 * i);
        g.add_edge(2 * i + 1, 2 * n + 2 * i + 1);
        if i + 1 < n {
            g.add_edge(2 * i, 2 * (i + 1));
            g.add_edge(2 * i + 1, 2 * (i + 1) + 1);
        }
    }
    g
}

/// Figure 1d: an **augmented circular ladder** — an augmented ladder whose
/// first and last rungs are joined rail-to-rail, closing the ladder into a
/// cylinder. Order `4n`, size `5n` for `n ≥ 3`.
pub fn augmented_circular_ladder(n: usize) -> Graph {
    assert!(n >= 3, "a circular ladder needs at least 3 rungs");
    let mut g = augmented_ladder(n);
    g.add_edge(0, 2 * (n - 1));
    g.add_edge(1, 2 * (n - 1) + 1);
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_shape() {
        let g = path(4);
        assert_eq!(g.order(), 4);
        assert_eq!(g.size(), 3);
        assert!(g.is_connected());
    }

    #[test]
    fn cycle_shape() {
        let g = cycle(5);
        assert_eq!(g.size(), 5);
        assert!(g.edges().iter().all(|&(u, v)| u != v));
        for v in 0..5 {
            assert_eq!(g.degree(v), 2);
        }
    }

    #[test]
    fn complete_shape() {
        let g = complete(4);
        assert_eq!(g.size(), 6);
        for v in 0..4 {
            assert_eq!(g.degree(v), 3);
        }
    }

    #[test]
    fn star_shape() {
        let g = star(5);
        assert_eq!(g.order(), 6);
        assert_eq!(g.degree(0), 5);
        assert_eq!(g.degree(3), 1);
    }

    #[test]
    fn grid_shape() {
        let g = grid(3, 4);
        assert_eq!(g.order(), 12);
        assert_eq!(g.size(), 3 * 3 + 2 * 4); // vertical + horizontal
        assert!(g.is_connected());
    }

    #[test]
    fn augmented_path_shape() {
        let g = augmented_path(5);
        assert_eq!(g.order(), 10);
        assert_eq!(g.size(), 9);
        assert!(g.is_connected());
        // Pendants have degree 1.
        for i in 5..10 {
            assert_eq!(g.degree(i), 1);
        }
    }

    #[test]
    fn ladder_shape() {
        let g = ladder(4);
        assert_eq!(g.order(), 8);
        assert_eq!(g.size(), 10); // 3n - 2
        assert!(g.is_connected());
        // Corner vertices have degree 2, inner rung endpoints 3.
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(2), 3);
    }

    #[test]
    fn augmented_ladder_shape() {
        let g = augmented_ladder(4);
        assert_eq!(g.order(), 16);
        assert_eq!(g.size(), 18); // 5n - 2
        assert!(g.is_connected());
    }

    #[test]
    fn augmented_circular_ladder_shape() {
        let g = augmented_circular_ladder(4);
        assert_eq!(g.order(), 16);
        assert_eq!(g.size(), 20); // 5n
        assert!(g.is_connected());
        // Every ladder vertex now has degree 4 (two rails or rail+wrap, one
        // rung, one pendant).
        for v in 0..8 {
            assert_eq!(g.degree(v), 4, "vertex {v}");
        }
    }

    #[test]
    fn single_rung_ladder() {
        let g = ladder(1);
        assert_eq!(g.order(), 2);
        assert_eq!(g.size(), 1);
    }
}
