//! Chordality testing (Tarjan & Yannakakis \[31\]).
//!
//! A graph is chordal iff it has a *perfect elimination order* — one whose
//! elimination adds no fill edges — and MCS run on a chordal graph always
//! produces one (eliminating in reverse MCS order). Chordal graphs are
//! exactly the graphs whose treewidth is witnessed without fill, which
//! makes this a useful oracle in the theorem tests.

use rustc_hash::FxHashSet;

use crate::graph::Graph;
use crate::ordering::{mcs_order, EliminationOrder};

/// Whether `order` is a perfect elimination order: each vertex's live
/// neighborhood at elimination time is already a clique.
pub fn is_perfect_elimination_order(graph: &Graph, order: &EliminationOrder) -> bool {
    let mut eliminated = vec![false; graph.order()];
    for v in order.elimination_sequence() {
        let live: Vec<usize> = graph
            .neighbors(v)
            .iter()
            .copied()
            .filter(|&w| !eliminated[w])
            .collect();
        for (i, &a) in live.iter().enumerate() {
            for &b in &live[i + 1..] {
                if !graph.has_edge(a, b) {
                    return false;
                }
            }
        }
        eliminated[v] = true;
    }
    true
}

/// Chordality via MCS: run MCS (deterministic tie-breaking) and check the
/// resulting order is perfect. Correct by Tarjan–Yannakakis regardless of
/// tie-breaking.
pub fn is_chordal(graph: &Graph) -> bool {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(0xc0de);
    let order = mcs_order(graph, &[], &mut rng);
    is_perfect_elimination_order(graph, &order)
}

/// The fill edges added when eliminating along `order` (empty iff the
/// order is perfect).
pub fn fill_edges(graph: &Graph, order: &EliminationOrder) -> Vec<(usize, usize)> {
    let mut adj: Vec<FxHashSet<usize>> = (0..graph.order())
        .map(|v| graph.neighbors(v).clone())
        .collect();
    let mut eliminated = vec![false; graph.order()];
    let mut fill = Vec::new();
    for v in order.elimination_sequence() {
        let live: Vec<usize> = adj[v].iter().copied().filter(|&w| !eliminated[w]).collect();
        for (i, &a) in live.iter().enumerate() {
            for &b in &live[i + 1..] {
                if !adj[a].contains(&b) {
                    adj[a].insert(b);
                    adj[b].insert(a);
                    fill.push((a.min(b), a.max(b)));
                }
            }
        }
        eliminated[v] = true;
    }
    fill
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::families;

    #[test]
    fn trees_are_chordal() {
        assert!(is_chordal(&families::path(6)));
        assert!(is_chordal(&families::star(4)));
        assert!(is_chordal(&families::augmented_path(4)));
    }

    #[test]
    fn complete_graphs_are_chordal() {
        assert!(is_chordal(&families::complete(5)));
    }

    #[test]
    fn long_cycles_are_not_chordal() {
        assert!(!is_chordal(&families::cycle(4)));
        assert!(!is_chordal(&families::cycle(6)));
    }

    #[test]
    fn triangle_is_chordal() {
        assert!(is_chordal(&families::cycle(3)));
    }

    #[test]
    fn ladders_are_not_chordal() {
        assert!(!is_chordal(&families::ladder(3)));
    }

    #[test]
    fn perfect_order_on_path() {
        let g = families::path(4);
        let o = EliminationOrder::new(vec![0, 1, 2, 3]);
        assert!(is_perfect_elimination_order(&g, &o));
        assert!(fill_edges(&g, &o).is_empty());
    }

    #[test]
    fn imperfect_order_has_fill() {
        let g = families::path(3);
        let o = EliminationOrder::new(vec![0, 2, 1]); // middle first
        assert!(!is_perfect_elimination_order(&g, &o));
        assert_eq!(fill_edges(&g, &o), vec![(0, 2)]);
    }

    #[test]
    fn fill_makes_graph_chordal() {
        let g = families::cycle(6);
        let o = EliminationOrder::new((0..6).collect());
        let fill = fill_edges(&g, &o);
        let mut filled = g.clone();
        for (u, v) in fill {
            filled.add_edge(u, v);
        }
        assert!(is_chordal(&filled));
    }
}
