#![warn(missing_docs)]

//! Graph substrate for the *Projection Pushing Revisited* reproduction.
//!
//! Provides the undirected graphs the workloads are generated from and the
//! structural machinery the paper's theory rests on:
//!
//! * [`graph::Graph`] — simple undirected graphs.
//! * [`generate`] — uniform random G(n, m) instances (the paper's density
//!   and order scaling experiments).
//! * [`families`] — the structured families of Figure 1: augmented paths,
//!   ladders, augmented ladders, and augmented circular ladders.
//! * [`ordering`] — elimination orderings: maximum-cardinality search (the
//!   paper's bucket order), min-degree, and min-fill, plus the induced
//!   width of an ordering.
//! * [`decomposition`] — tree decompositions with validation and width.
//! * [`treewidth`] — exact treewidth by branch-and-bound for small graphs,
//!   and heuristic upper bounds for large ones.
//! * [`chordal`] — chordality testing via perfect elimination orders.

pub mod chordal;
pub mod decomposition;
pub mod families;
pub mod generate;
pub mod graph;
pub mod ordering;
pub mod treewidth;

pub use decomposition::TreeDecomposition;
pub use graph::Graph;
pub use ordering::EliminationOrder;
