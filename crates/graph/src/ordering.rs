//! Elimination orderings and induced width.
//!
//! Bucket elimination (paper §5) is driven by a *variable order*
//! `x_1, …, x_n`: buckets are processed from `x_n` down to `x_1`, so the
//! vertex in the **last** position is eliminated first. The *induced width*
//! of an order is the maximum, over eliminated vertices, of the number of
//! not-yet-eliminated neighbors at elimination time (eliminating a vertex
//! connects those neighbors into a clique). Theorem 2: the minimum induced
//! width over all orders is the treewidth.
//!
//! Finding the optimal order is NP-hard, so the paper uses the
//! maximum-cardinality search (MCS) order of Tarjan & Yannakakis with the
//! target-schema variables placed first (eliminated last, never projected
//! out). Min-degree and min-fill are provided for the ablation benches.

use rand::Rng;
use rustc_hash::FxHashSet;

use crate::graph::Graph;

/// A variable order `x_1, …, x_n`: `order()[i]` is vertex `x_{i+1}`.
/// Vertices are eliminated from the last position backwards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EliminationOrder(Vec<usize>);

impl EliminationOrder {
    /// Wraps an explicit order; panics unless it is a permutation of
    /// `0..n` for some `n`.
    pub fn new(order: Vec<usize>) -> Self {
        let n = order.len();
        let mut seen = vec![false; n];
        for &v in &order {
            assert!(v < n && !seen[v], "not a permutation of 0..{n}: {order:?}");
            seen[v] = true;
        }
        EliminationOrder(order)
    }

    /// The order as a slice (`[x_1, …, x_n]`).
    pub fn order(&self) -> &[usize] {
        &self.0
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True for the empty order.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Position (1-based bucket number) of each vertex: `positions()[v] =
    /// i` iff `order()[i] = v`.
    pub fn positions(&self) -> Vec<usize> {
        let mut pos = vec![0; self.0.len()];
        for (i, &v) in self.0.iter().enumerate() {
            pos[v] = i;
        }
        pos
    }

    /// Vertices in elimination sequence (last position first).
    pub fn elimination_sequence(&self) -> impl Iterator<Item = usize> + '_ {
        self.0.iter().rev().copied()
    }

    /// Reverses the order.
    pub fn reversed(&self) -> EliminationOrder {
        EliminationOrder(self.0.iter().rev().copied().collect())
    }
}

/// The induced width of `order` on `graph`: simulates elimination from the
/// last position backwards, adding fill edges, and returns the maximum
/// number of remaining neighbors any vertex had when eliminated.
///
/// ```
/// use ppr_graph::{families, ordering};
/// let g = families::cycle(5);
/// let natural = ordering::EliminationOrder::new((0..5).collect());
/// assert_eq!(ordering::induced_width(&g, &natural), 2); // cycle treewidth
/// ```
pub fn induced_width(graph: &Graph, order: &EliminationOrder) -> usize {
    assert_eq!(order.len(), graph.order());
    let mut adj: Vec<FxHashSet<usize>> = (0..graph.order())
        .map(|v| graph.neighbors(v).clone())
        .collect();
    let mut eliminated = vec![false; graph.order()];
    let mut width = 0;
    for v in order.elimination_sequence() {
        let live: Vec<usize> = adj[v].iter().copied().filter(|&w| !eliminated[w]).collect();
        width = width.max(live.len());
        for (i, &a) in live.iter().enumerate() {
            for &b in &live[i + 1..] {
                adj[a].insert(b);
                adj[b].insert(a);
            }
        }
        eliminated[v] = true;
    }
    width
}

/// Maximum-cardinality search order (Tarjan–Yannakakis), as the paper uses
/// it: the vertices in `initial` are numbered first (in the given
/// sequence), then each subsequent vertex maximizes the number of edges to
/// already-numbered vertices, ties broken uniformly at random.
pub fn mcs_order<R: Rng + ?Sized>(
    graph: &Graph,
    initial: &[usize],
    rng: &mut R,
) -> EliminationOrder {
    let n = graph.order();
    let mut numbered = vec![false; n];
    let mut weight = vec![0usize; n]; // edges to numbered vertices
    let mut order = Vec::with_capacity(n);
    for &v in initial {
        assert!(v < n && !numbered[v], "bad initial vertex {v}");
        numbered[v] = true;
        order.push(v);
        for &w in graph.neighbors(v) {
            weight[w] += 1;
        }
    }
    while order.len() < n {
        let best = (0..n)
            .filter(|&v| !numbered[v])
            .map(|v| weight[v])
            .max()
            .expect("vertices remain");
        let candidates: Vec<usize> = (0..n)
            .filter(|&v| !numbered[v] && weight[v] == best)
            .collect();
        let v = candidates[rng.random_range(0..candidates.len())];
        numbered[v] = true;
        order.push(v);
        for &w in graph.neighbors(v) {
            weight[w] += 1;
        }
    }
    EliminationOrder(order)
}

/// Greedy min-degree order: repeatedly eliminates a minimum-degree vertex
/// of the (fill-updated) graph. `keep_last` vertices (the target schema)
/// are only eliminated after everything else, which places them at the
/// *front* of the returned variable order.
pub fn min_degree_order<R: Rng + ?Sized>(
    graph: &Graph,
    keep_last: &[usize],
    rng: &mut R,
) -> EliminationOrder {
    greedy_elimination(graph, keep_last, rng, |adj, eliminated, v| {
        adj[v].iter().filter(|&&w| !eliminated[w]).count()
    })
}

/// Greedy min-fill order: repeatedly eliminates the vertex whose
/// elimination adds the fewest fill edges. `keep_last` as in
/// [`min_degree_order`].
pub fn min_fill_order<R: Rng + ?Sized>(
    graph: &Graph,
    keep_last: &[usize],
    rng: &mut R,
) -> EliminationOrder {
    greedy_elimination(graph, keep_last, rng, |adj, eliminated, v| {
        let live: Vec<usize> = adj[v].iter().copied().filter(|&w| !eliminated[w]).collect();
        let mut fill = 0usize;
        for (i, &a) in live.iter().enumerate() {
            for &b in &live[i + 1..] {
                if !adj[a].contains(&b) {
                    fill += 1;
                }
            }
        }
        fill
    })
}

/// Shared greedy-elimination scaffold: eliminates the vertex minimizing
/// `score`, updating fill edges, deferring `keep_last` vertices to the end
/// of the elimination (front of the order).
fn greedy_elimination<R: Rng + ?Sized>(
    graph: &Graph,
    keep_last: &[usize],
    rng: &mut R,
    score: impl Fn(&[FxHashSet<usize>], &[bool], usize) -> usize,
) -> EliminationOrder {
    let n = graph.order();
    let deferred: FxHashSet<usize> = keep_last.iter().copied().collect();
    let mut adj: Vec<FxHashSet<usize>> = (0..n).map(|v| graph.neighbors(v).clone()).collect();
    let mut eliminated = vec![false; n];
    let mut rev_order = Vec::with_capacity(n);
    for round in 0..n {
        let defer_phase = round < n - deferred.len();
        let pool: Vec<usize> = (0..n)
            .filter(|&v| !eliminated[v] && (!defer_phase || !deferred.contains(&v)))
            .collect();
        let best = pool
            .iter()
            .map(|&v| score(&adj, &eliminated, v))
            .min()
            .expect("pool nonempty");
        let candidates: Vec<usize> = pool
            .into_iter()
            .filter(|&v| score(&adj, &eliminated, v) == best)
            .collect();
        let v = candidates[rng.random_range(0..candidates.len())];
        // Connect live neighbors (fill) before removing v.
        let live: Vec<usize> = adj[v].iter().copied().filter(|&w| !eliminated[w]).collect();
        for (i, &a) in live.iter().enumerate() {
            for &b in &live[i + 1..] {
                adj[a].insert(b);
                adj[b].insert(a);
            }
        }
        eliminated[v] = true;
        rev_order.push(v);
    }
    rev_order.reverse();
    EliminationOrder(rev_order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::families;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn order_validation() {
        EliminationOrder::new(vec![2, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn order_rejects_duplicates() {
        EliminationOrder::new(vec![0, 0, 1]);
    }

    #[test]
    fn positions_invert_order() {
        let o = EliminationOrder::new(vec![2, 0, 1]);
        assert_eq!(o.positions(), vec![1, 2, 0]);
    }

    #[test]
    fn induced_width_of_path_is_one() {
        let g = families::path(6);
        // Natural order: eliminating from the end always sees one live
        // neighbor.
        let o = EliminationOrder::new((0..6).collect());
        assert_eq!(induced_width(&g, &o), 1);
    }

    #[test]
    fn induced_width_of_bad_path_order() {
        let g = families::path(3); // 0 - 1 - 2
                                   // Eliminate the middle vertex first: sees 2 live neighbors.
        let o = EliminationOrder::new(vec![0, 2, 1]);
        assert_eq!(induced_width(&g, &o), 2);
    }

    #[test]
    fn induced_width_of_complete_graph() {
        let g = families::complete(5);
        let o = EliminationOrder::new((0..5).collect());
        assert_eq!(induced_width(&g, &o), 4); // any order gives n-1
    }

    #[test]
    fn induced_width_of_cycle_is_two() {
        let g = families::cycle(7);
        let o = mcs_order(&g, &[], &mut rng());
        assert_eq!(induced_width(&g, &o), 2);
    }

    #[test]
    fn mcs_respects_initial_vertices() {
        let g = families::path(5);
        let o = mcs_order(&g, &[3, 1], &mut rng());
        assert_eq!(&o.order()[..2], &[3, 1]);
    }

    #[test]
    fn mcs_on_ladder_gives_width_two() {
        let g = families::ladder(6);
        let o = mcs_order(&g, &[], &mut rng());
        assert_eq!(induced_width(&g, &o), 2);
    }

    #[test]
    fn min_degree_on_tree_gives_width_one() {
        let g = families::augmented_path(6);
        let o = min_degree_order(&g, &[], &mut rng());
        assert_eq!(induced_width(&g, &o), 1);
    }

    #[test]
    fn min_fill_on_ladder_gives_width_two() {
        let g = families::ladder(6);
        let o = min_fill_order(&g, &[], &mut rng());
        assert_eq!(induced_width(&g, &o), 2);
    }

    #[test]
    fn keep_last_vertices_front_of_order() {
        let g = families::ladder(4);
        let keep = [5, 2];
        let o = min_degree_order(&g, &keep, &mut rng());
        let front: FxHashSet<usize> = o.order()[..2].iter().copied().collect();
        assert_eq!(front, keep.iter().copied().collect::<FxHashSet<_>>());
        let o = min_fill_order(&g, &keep, &mut rng());
        let front: FxHashSet<usize> = o.order()[..2].iter().copied().collect();
        assert_eq!(front, keep.iter().copied().collect::<FxHashSet<_>>());
    }

    #[test]
    fn reversed_roundtrip() {
        let o = EliminationOrder::new(vec![2, 0, 1]);
        assert_eq!(o.reversed().reversed(), o);
    }
}
