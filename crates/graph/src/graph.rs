//! Simple undirected graphs.

use std::fmt;

use rustc_hash::FxHashSet;

/// A simple undirected graph over vertices `0..n`.
///
/// Vertices are dense indices so they double as variable numbers in the
/// query encodings; adjacency is kept both as an edge list (generation
/// order matters to the paper's "straightforward" method, which joins atoms
/// in listing order) and as per-vertex sets (for the orderings and
/// decompositions).
#[derive(Debug, Clone)]
pub struct Graph {
    adj: Vec<FxHashSet<usize>>,
    edges: Vec<(usize, usize)>,
}

impl Graph {
    /// An edgeless graph on `n` vertices.
    pub fn new(n: usize) -> Self {
        Graph {
            adj: vec![FxHashSet::default(); n],
            edges: Vec::new(),
        }
    }

    /// Number of vertices (the paper's *order*).
    #[inline]
    pub fn order(&self) -> usize {
        self.adj.len()
    }

    /// Number of edges.
    #[inline]
    pub fn size(&self) -> usize {
        self.edges.len()
    }

    /// Edge/vertex ratio (the paper's *density*).
    pub fn density(&self) -> f64 {
        self.size() as f64 / self.order() as f64
    }

    /// Adds edge `(u, v)`. Returns `false` (and changes nothing) for loops
    /// and already-present edges, keeping the graph simple.
    pub fn add_edge(&mut self, u: usize, v: usize) -> bool {
        assert!(
            u < self.order() && v < self.order(),
            "vertex out of range: ({u}, {v}) in graph of order {}",
            self.order()
        );
        if u == v || self.adj[u].contains(&v) {
            return false;
        }
        self.adj[u].insert(v);
        self.adj[v].insert(u);
        self.edges.push((u, v));
        true
    }

    /// Whether `(u, v)` is an edge.
    #[inline]
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.adj[u].contains(&v)
    }

    /// The neighbor set of `v`.
    #[inline]
    pub fn neighbors(&self, v: usize) -> &FxHashSet<usize> {
        &self.adj[v]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: usize) -> usize {
        self.adj[v].len()
    }

    /// Edges in insertion order.
    #[inline]
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Builds a graph from an edge list; the order is the largest endpoint
    /// plus one, or `min_order` if larger.
    pub fn from_edges(min_order: usize, edges: &[(usize, usize)]) -> Self {
        let n = edges
            .iter()
            .map(|&(u, v)| u.max(v) + 1)
            .max()
            .unwrap_or(0)
            .max(min_order);
        let mut g = Graph::new(n);
        for &(u, v) in edges {
            g.add_edge(u, v);
        }
        g
    }

    /// Connected components as sorted vertex lists.
    pub fn components(&self) -> Vec<Vec<usize>> {
        let n = self.order();
        let mut seen = vec![false; n];
        let mut out = Vec::new();
        for start in 0..n {
            if seen[start] {
                continue;
            }
            let mut comp = vec![start];
            seen[start] = true;
            let mut stack = vec![start];
            while let Some(v) = stack.pop() {
                for &w in &self.adj[v] {
                    if !seen[w] {
                        seen[w] = true;
                        comp.push(w);
                        stack.push(w);
                    }
                }
            }
            comp.sort_unstable();
            out.push(comp);
        }
        out
    }

    /// True when the graph has one component (or no vertices).
    pub fn is_connected(&self) -> bool {
        self.components().len() <= 1
    }

    /// Maximum number of edges of a simple graph of this order.
    pub fn max_size(order: usize) -> usize {
        order * order.saturating_sub(1) / 2
    }
}

impl fmt::Display for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Graph(order={}, size={}, edges={:?})",
            self.order(),
            self.size(),
            self.edges
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_edge_rejects_loops_and_duplicates() {
        let mut g = Graph::new(3);
        assert!(g.add_edge(0, 1));
        assert!(!g.add_edge(1, 0)); // same edge, other direction
        assert!(!g.add_edge(2, 2)); // loop
        assert_eq!(g.size(), 1);
    }

    #[test]
    fn degrees_and_neighbors() {
        let g = Graph::from_edges(0, &[(0, 1), (0, 2), (1, 2)]);
        assert_eq!(g.degree(0), 2);
        assert!(g.neighbors(1).contains(&2));
        assert!(g.has_edge(2, 0));
    }

    #[test]
    fn density() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2)]);
        assert!((g.density() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn components_and_connectivity() {
        let g = Graph::from_edges(5, &[(0, 1), (2, 3)]);
        let comps = g.components();
        assert_eq!(comps.len(), 3);
        assert_eq!(comps[0], vec![0, 1]);
        assert_eq!(comps[1], vec![2, 3]);
        assert_eq!(comps[2], vec![4]);
        assert!(!g.is_connected());
        let h = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        assert!(h.is_connected());
    }

    #[test]
    fn from_edges_sizes_order() {
        let g = Graph::from_edges(0, &[(0, 5)]);
        assert_eq!(g.order(), 6);
        let g = Graph::from_edges(10, &[(0, 5)]);
        assert_eq!(g.order(), 10);
    }

    #[test]
    fn max_size() {
        assert_eq!(Graph::max_size(5), 10);
        assert_eq!(Graph::max_size(0), 0);
        assert_eq!(Graph::max_size(1), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn add_edge_checks_range() {
        let mut g = Graph::new(2);
        g.add_edge(0, 5);
    }
}
