//! Crash-safety property tests: recovery never invents history.
//!
//! Each case drives a [`DurableStore`] through a random acknowledged
//! mutation sequence (create, then loads/adds, with a small checkpoint
//! cadence so snapshots and WAL truncation are exercised), remembers the
//! database contents after **every** acknowledged step, then corrupts the
//! on-disk state the way a crash or a lying disk would:
//!
//! * **Truncation at an arbitrary WAL byte offset** (what a crash
//!   mid-append leaves behind): recovery must yield *some acknowledged
//!   prefix* of the history — possibly strengthened by a checkpoint that
//!   already made later mutations durable — or sweep the database
//!   entirely when even its creation never reached the disk. Never an
//!   error, never a state that was not acknowledged.
//! * **A single flipped byte at an arbitrary WAL offset** (what a lying
//!   disk does): recovery must either return an acknowledged prefix
//!   (flips in the tail are indistinguishable from a torn append and are
//!   truncated away) or refuse with a typed [`RecoveryError`]. It must
//!   **never** serve contents that differ from every acknowledged state.
//!
//! The store is driven directly through the [`Persister`] trait — this
//! suite is deliberately below the catalog, so it pins the durability
//! contract itself, not the service wiring over it.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use ppr_durability::store::WAL_FILE;
use ppr_durability::{DbContents, DurableStore, Persister, StoreOptions, SyncPolicy, Tuple};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const DB: &str = "g";

/// Checkpoint aggressively so most sequences cross at least one
/// snapshot + WAL truncation.
fn opts() -> StoreOptions {
    StoreOptions {
        sync: SyncPolicy::Never, // identical formats; keeps the suite fast
        snapshot_every: 5,
        snapshot_bytes: 1 << 20,
    }
}

fn tmpdir(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "ppr-crash-prop-{}-{tag}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[derive(Debug, Clone)]
enum Mutation {
    Load {
        rel: String,
        arity: usize,
        tuples: Vec<Tuple>,
    },
    Add {
        rel: String,
        tuple: Tuple,
    },
}

/// A deterministic random mutation sequence. Relations keep a fixed
/// arity per name within one sequence (the catalog would enforce that).
fn mutations(seed: u64) -> Vec<Mutation> {
    let mut rng = StdRng::seed_from_u64(seed);
    let arities: Vec<usize> = (0..3).map(|_| rng.random_range(1..=3)).collect();
    let count = rng.random_range(1..=16);
    (0..count)
        .map(|_| {
            let which = rng.random_range(0..3usize);
            let (rel, arity) = (format!("r{which}"), arities[which]);
            let tuple = |rng: &mut StdRng| -> Tuple {
                (0..arity).map(|_| rng.random_range(0..30u32)).collect()
            };
            if rng.random_bool(0.4) {
                let rows = rng.random_range(1..=6);
                let mut tuples: Vec<Tuple> = Vec::new();
                for _ in 0..rows {
                    let t = tuple(&mut rng);
                    if !tuples.contains(&t) {
                        tuples.push(t); // the catalog dedups before logging
                    }
                }
                Mutation::Load { rel, arity, tuples }
            } else {
                Mutation::Add {
                    rel,
                    tuple: tuple(&mut rng),
                }
            }
        })
        .collect()
}

/// Runs the sequence against a fresh store in `dir`, returning the
/// acknowledged `(contents, version)` after every step. `states[0]` is
/// the freshly created empty database; `states[i]` is after mutation
/// `i`. Versions are `i + 1` by construction (one catalog tick each).
fn run_sequence(dir: &Path, muts: &[Mutation]) -> Vec<(DbContents, u64)> {
    let (store, recovered, _) = DurableStore::open(dir, opts()).unwrap();
    assert!(recovered.is_empty());
    let mut states = Vec::with_capacity(muts.len() + 1);
    let mut mirror = DbContents::default();
    store.record_create(DB, 1).unwrap();
    states.push((mirror.clone(), 1));
    for (i, m) in muts.iter().enumerate() {
        let version = i as u64 + 2;
        match m {
            Mutation::Load { rel, arity, tuples } => {
                store.record_load(DB, rel, *arity, tuples, version).unwrap();
                mirror.apply_load(rel, *arity, tuples.clone());
            }
            Mutation::Add { rel, tuple } => {
                store.record_add(DB, rel, tuple, version).unwrap();
                mirror.apply_add(rel, tuple);
            }
        }
        states.push((mirror.clone(), version));
    }
    states
}

/// Which acknowledged state (if any) the recovered directory holds.
/// `Ok(None)` = the database was swept (nothing acknowledged survived the
/// corruption point — only legal when the creation itself was cut off).
fn recover(dir: &Path) -> Result<Option<(DbContents, u64)>, ppr_durability::RecoveryError> {
    let (_store, recovered, _) = DurableStore::open(dir, opts())?;
    let mut it = recovered.into_iter();
    let db = it.next();
    assert!(it.next().is_none(), "only one database in play");
    Ok(db.map(|d| {
        assert_eq!(d.name, DB);
        (d.contents, d.version)
    }))
}

fn wal_path(dir: &Path) -> PathBuf {
    dir.join(DB).join(WAL_FILE)
}

/// True when the database directory holds a published `snap.<seq>` file.
fn has_snapshot(dir: &Path) -> bool {
    std::fs::read_dir(dir.join(DB))
        .map(|it| {
            it.flatten()
                .any(|e| e.file_name().to_string_lossy().starts_with("snap."))
        })
        .unwrap_or(false)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A clean shutdown/reopen recovers exactly the final acknowledged
    /// state and version.
    #[test]
    fn clean_reopen_is_lossless(seed in 0u64..10_000) {
        let dir = tmpdir("clean");
        let states = run_sequence(&dir, &mutations(seed));
        let got = recover(&dir).unwrap();
        prop_assert_eq!(got.as_ref(), states.last());
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Truncating the WAL at any byte offset (a crash mid-append)
    /// recovers an acknowledged state — never an error, never invented
    /// contents. A checkpoint may have made later mutations durable
    /// independently of the log, so the outcome is "some acknowledged
    /// state", at least as new as the newest snapshot.
    #[test]
    fn truncation_anywhere_yields_an_acknowledged_state(
        seed in 0u64..10_000,
        cut in 0u64..=1000,
    ) {
        let dir = tmpdir("cut");
        let states = run_sequence(&dir, &mutations(seed));
        let had_snapshot = has_snapshot(&dir);
        let wal = wal_path(&dir);
        let len = std::fs::metadata(&wal).unwrap().len();
        let keep = len * cut / 1000;
        std::fs::OpenOptions::new()
            .write(true)
            .open(&wal)
            .unwrap()
            .set_len(keep)
            .unwrap();
        match recover(&dir).unwrap() {
            Some(got) => prop_assert!(
                states.contains(&got),
                "recovered a state that was never acknowledged: {got:?}"
            ),
            // Swept entirely: legal only if nothing was checkpointed (a
            // snapshot would have preserved acknowledged state on its own).
            None => prop_assert!(
                !had_snapshot,
                "database swept despite a surviving checkpoint"
            ),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Flipping one byte anywhere in the WAL (a lying disk) either
    /// recovers an acknowledged state (tail flips are truncated as torn)
    /// or refuses with a typed error. It never serves wrong contents.
    #[test]
    fn flipped_byte_recovers_a_prefix_or_refuses(
        seed in 0u64..10_000,
        at_frac in 0u64..=1000,
        bit in 0u32..8,
    ) {
        let dir = tmpdir("flip");
        let states = run_sequence(&dir, &mutations(seed));
        let had_snapshot = has_snapshot(&dir);
        let wal = wal_path(&dir);
        let mut bytes = std::fs::read(&wal).unwrap();
        prop_assume!(!bytes.is_empty());
        let at = ((bytes.len() - 1) as u64 * at_frac / 1000) as usize;
        bytes[at] ^= 1 << bit;
        std::fs::write(&wal, &bytes).unwrap();
        match recover(&dir) {
            Ok(Some(got)) => prop_assert!(
                states.contains(&got),
                "flip at byte {at} recovered unacknowledged state: {got:?}"
            ),
            Ok(None) => prop_assert!(
                !had_snapshot,
                "database swept despite a surviving checkpoint"
            ),
            Err(_) => {} // typed refusal is always acceptable
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
