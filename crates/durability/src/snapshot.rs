//! Full-database snapshot files: the checkpoint half of the store.
//!
//! A snapshot captures one database's entire contents as of a WAL
//! sequence number, so recovery replays only the log suffix past it and
//! the log can be truncated. The file is
//!
//! ```text
//! [magic "PPRSNAP1"] [len: u32 LE] [crc: u32 LE] [body: len bytes]
//! ```
//!
//! with a single CRC-32 over the whole body:
//!
//! ```text
//! body := seq: u64 | version: u64 | rel_count: u32 | relation*
//! relation := name: (u16 len + utf-8) | arity: u32 | rows: u32 | values
//! ```
//!
//! Snapshots are written to `snap.tmp`, fsynced, then renamed to
//! `snap.<seq>` (zero-padded so lexicographic order is numeric order)
//! with a directory fsync — a crash can leave a stale `snap.tmp` (which
//! recovery deletes) but never a half-visible `snap.<seq>`. Because of
//! that, an unreadable `snap.<seq>` is not a crash artifact: it means
//! the disk lost a checkpoint the log no longer covers, and recovery
//! refuses to start.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use crate::wal::{crc32, put_str, put_u32, put_u64, Cursor};
use crate::{DbContents, RelationData};

/// First 8 bytes of every snapshot file.
pub const SNAP_MAGIC: &[u8; 8] = b"PPRSNAP1";

/// Name of the in-progress temporary file within a database directory.
pub const SNAP_TMP: &str = "snap.tmp";

/// One database's checkpoint: its contents as of WAL record `seq`,
/// published at catalog version `version`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotData {
    /// Last WAL sequence number the snapshot covers (0 = none).
    pub seq: u64,
    /// Catalog version of the covered state.
    pub version: u64,
    /// The database's full contents.
    pub contents: DbContents,
}

/// Why a snapshot file could not be read.
#[derive(Debug)]
pub enum SnapError {
    /// Bad magic, bad checksum, or an undecodable body.
    Corrupt { path: PathBuf, detail: String },
    /// I/O failure while reading.
    Io { path: PathBuf, detail: String },
}

impl std::fmt::Display for SnapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapError::Corrupt { path, detail } => {
                write!(f, "corrupt snapshot {}: {detail}", path.display())
            }
            SnapError::Io { path, detail } => write!(f, "reading {}: {detail}", path.display()),
        }
    }
}

impl std::error::Error for SnapError {}

/// The canonical file name for a snapshot at `seq`.
pub fn snapshot_file_name(seq: u64) -> String {
    format!("snap.{seq:020}")
}

/// Parses a `snap.<seq>` file name back to its sequence number.
pub fn parse_snapshot_name(name: &str) -> Option<u64> {
    let digits = name.strip_prefix("snap.")?;
    if digits.len() != 20 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

fn encode_body(data: &SnapshotData) -> Vec<u8> {
    let mut body = Vec::new();
    put_u64(&mut body, data.seq);
    put_u64(&mut body, data.version);
    put_u32(&mut body, data.contents.relations.len() as u32);
    for rel in &data.contents.relations {
        put_str(&mut body, &rel.name);
        put_u32(&mut body, rel.arity as u32);
        put_u32(&mut body, rel.tuples.len() as u32);
        for t in &rel.tuples {
            debug_assert_eq!(t.len(), rel.arity);
            for &v in t.iter() {
                put_u32(&mut body, v);
            }
        }
    }
    body
}

fn decode_body(body: &[u8]) -> Result<SnapshotData, String> {
    let mut c = Cursor { buf: body, at: 0 };
    let seq = c.u64()?;
    let version = c.u64()?;
    let rel_count = c.u32()?;
    let mut relations = Vec::with_capacity(rel_count as usize);
    for _ in 0..rel_count {
        let name = c.str()?;
        let arity = c.u32()? as usize;
        let rows = c.u32()? as usize;
        let need = arity.checked_mul(rows).ok_or("relation size overflow")?;
        if c.remaining() < need * 4 {
            return Err("relation body too short".into());
        }
        let mut tuples = Vec::with_capacity(rows);
        for _ in 0..rows {
            let mut t = Vec::with_capacity(arity);
            for _ in 0..arity {
                t.push(c.u32()?);
            }
            tuples.push(t.into_boxed_slice());
        }
        relations.push(RelationData {
            name,
            arity,
            tuples,
        });
    }
    if c.remaining() != 0 {
        return Err("trailing bytes after last relation".into());
    }
    Ok(SnapshotData {
        seq,
        version,
        contents: DbContents { relations },
    })
}

/// Writes `data` as `snap.<seq>` in `dir` via tmp + rename. `sync`
/// controls whether the file and directory are fsynced (the store's
/// [`SyncPolicy`](crate::SyncPolicy)). Returns the final path.
pub fn write_snapshot(dir: &Path, data: &SnapshotData, sync: bool) -> io::Result<PathBuf> {
    let body = encode_body(data);
    let tmp = dir.join(SNAP_TMP);
    {
        let mut f = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp)?;
        f.write_all(SNAP_MAGIC)?;
        f.write_all(&(body.len() as u32).to_le_bytes())?;
        f.write_all(&crc32(&body).to_le_bytes())?;
        f.write_all(&body)?;
        if sync {
            f.sync_data()?;
        }
    }
    let path = dir.join(snapshot_file_name(data.seq));
    fs::rename(&tmp, &path)?;
    if sync {
        File::open(dir)?.sync_all()?;
    }
    Ok(path)
}

/// Reads one snapshot file back.
pub fn read_snapshot(path: &Path) -> Result<SnapshotData, SnapError> {
    let mut bytes = Vec::new();
    File::open(path)
        .and_then(|mut f| f.read_to_end(&mut bytes))
        .map_err(|e| SnapError::Io {
            path: path.to_path_buf(),
            detail: e.to_string(),
        })?;
    let corrupt = |detail: &str| SnapError::Corrupt {
        path: path.to_path_buf(),
        detail: detail.to_string(),
    };
    if bytes.len() < SNAP_MAGIC.len() + 8 {
        return Err(corrupt("file too short"));
    }
    if &bytes[..SNAP_MAGIC.len()] != SNAP_MAGIC {
        return Err(corrupt("bad magic"));
    }
    let at = SNAP_MAGIC.len();
    let len = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap()) as usize;
    let crc = u32::from_le_bytes(bytes[at + 4..at + 8].try_into().unwrap());
    let body = &bytes[at + 8..];
    if body.len() != len {
        return Err(corrupt("body length mismatch"));
    }
    if crc32(body) != crc {
        return Err(corrupt("checksum mismatch"));
    }
    decode_body(body).map_err(|e| corrupt(&e))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(vals: &[u32]) -> Box<[u32]> {
        vals.to_vec().into_boxed_slice()
    }

    fn sample() -> SnapshotData {
        SnapshotData {
            seq: 42,
            version: 1007,
            contents: DbContents {
                relations: vec![
                    RelationData {
                        name: "edge".into(),
                        arity: 2,
                        tuples: vec![t(&[1, 2]), t(&[2, 3]), t(&[3, 1])],
                    },
                    RelationData {
                        name: "color".into(),
                        arity: 1,
                        tuples: vec![t(&[0]), t(&[1]), t(&[2])],
                    },
                ],
            },
        }
    }

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ppr-snap-test-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn snapshot_round_trips() {
        let dir = tmpdir("roundtrip");
        let data = sample();
        let path = write_snapshot(&dir, &data, true).unwrap();
        assert_eq!(path.file_name().unwrap(), snapshot_file_name(42).as_str());
        assert_eq!(read_snapshot(&path).unwrap(), data);
        assert!(!dir.join(SNAP_TMP).exists(), "tmp file renamed away");
    }

    #[test]
    fn any_flipped_byte_is_detected() {
        let dir = tmpdir("flip");
        let path = write_snapshot(&dir, &sample(), false).unwrap();
        let good = std::fs::read(&path).unwrap();
        // Every offset: magic, header, and body flips must all refuse.
        for at in 0..good.len() {
            let mut bad = good.clone();
            bad[at] ^= 0x01;
            std::fs::write(&path, &bad).unwrap();
            assert!(
                matches!(read_snapshot(&path), Err(SnapError::Corrupt { .. })),
                "flip at byte {at} went undetected"
            );
        }
    }

    #[test]
    fn names_parse_back() {
        assert_eq!(parse_snapshot_name(&snapshot_file_name(7)), Some(7),);
        assert_eq!(parse_snapshot_name("snap.tmp"), None);
        assert_eq!(parse_snapshot_name("wal.log"), None);
        assert_eq!(parse_snapshot_name("snap.12"), None, "unpadded rejected");
    }
}
