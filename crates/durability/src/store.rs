//! The durable store: one directory per database, recovery at open,
//! and the [`Persister`] implementation the catalog commits through.
//!
//! ## On-disk layout
//!
//! ```text
//! <data_dir>/
//!   <db-name>/                 one directory per database
//!     wal.log                  commit log (see wal.rs)
//!     snap.<seq 020d>          newest checkpoint (older ones are GC'd)
//!     snap.tmp                 in-progress checkpoint (transient)
//!   #trash.<db>.<version>/     renamed-away drop awaiting deletion
//! ```
//!
//! Database names are already restricted by the wire protocol to
//! `[A-Za-z0-9_.-]`, so a name is always a safe single path component
//! and can never collide with `#trash.*` (names cannot contain `#`).
//! The store re-checks this on every write path rather than trusting
//! callers.
//!
//! ## Commit and checkpoint protocol
//!
//! Every mutation appends one record and (under [`SyncPolicy::Always`])
//! fsyncs before returning — the catalog publishes only after the hook
//! succeeds, so an acknowledged mutation is always on disk. After
//! [`StoreOptions::snapshot_every`] records (or
//! [`StoreOptions::snapshot_bytes`] of log), the store checkpoints: it
//! writes `snap.tmp` from its in-memory mirror, fsyncs, renames to
//! `snap.<seq>`, fsyncs the directory, *then* truncates the log and
//! deletes older snapshots. Each step is safe to crash in: recovery
//! ignores `snap.tmp`, skips log records a snapshot already covers, and
//! uses the newest readable snapshot.
//!
//! `drop` renames the directory to `#trash.<db>.<version>` (atomic),
//! fsyncs the data dir, then deletes the trash best-effort; recovery
//! sweeps leftovers. `create`'s mkdir + first record are not atomic —
//! a crash between them leaves a directory with no acknowledged record,
//! which recovery deletes (the create was never acked).

use std::fs::{self, File};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use ppr_obs::{Counter, Histogram, Registry};
use ppr_relalg::value::Tuple;
use rustc_hash::FxHashMap;

use crate::snapshot::{
    parse_snapshot_name, read_snapshot, write_snapshot, SnapError, SnapshotData, SNAP_TMP,
};
use crate::wal::{scan_wal, WalError, WalRecord, WalWriter};
use crate::{DbContents, DurabilityStats, PersistError, Persister};

/// Name of the commit log within a database directory.
pub const WAL_FILE: &str = "wal.log";

/// Prefix marking a directory as a dropped database awaiting deletion.
const TRASH_PREFIX: &str = "#trash.";

/// When commit records reach the disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// `fsync` on every commit (and around every checkpoint / create /
    /// drop). An `ok` on the wire implies the mutation survives a crash.
    /// The serving default.
    Always,
    /// Write through the OS page cache and let the kernel flush. Same
    /// formats, same recovery — but a crash can lose the most recent
    /// acknowledged commits. Exists for the bench's persistence axis.
    Never,
}

impl SyncPolicy {
    fn on(self) -> bool {
        matches!(self, SyncPolicy::Always)
    }
}

/// Store tuning. Defaults are the serving configuration; tests shrink
/// the checkpoint cadence to exercise snapshots.
#[derive(Debug, Clone, Copy)]
pub struct StoreOptions {
    /// Commit fsync policy.
    pub sync: SyncPolicy,
    /// Checkpoint after this many log records.
    pub snapshot_every: u64,
    /// …or after this many log bytes, whichever comes first.
    pub snapshot_bytes: u64,
}

impl Default for StoreOptions {
    fn default() -> Self {
        StoreOptions {
            sync: SyncPolicy::Always,
            snapshot_every: 256,
            snapshot_bytes: 8 << 20,
        }
    }
}

/// One database as recovery handed it back: contents plus the catalog
/// version it was last acknowledged at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveredDb {
    /// Database name (the directory name).
    pub name: String,
    /// Full contents after snapshot + log replay.
    pub contents: DbContents,
    /// Catalog version of the last recovered mutation.
    pub version: u64,
}

/// What recovery did at [`DurableStore::open`].
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Databases recovered.
    pub databases: u64,
    /// WAL records replayed on top of snapshots.
    pub replayed_records: u64,
    /// Snapshot files loaded.
    pub snapshots_loaded: u64,
    /// Torn WAL tails truncated (unacknowledged residue of a crash).
    pub torn_tails: u64,
    /// Unacked half-created database directories swept away.
    pub swept_dirs: u64,
    /// Highest catalog version seen anywhere (the version fountain
    /// resumes above this).
    pub max_version: u64,
    /// Wall-clock recovery time, microseconds.
    pub duration_us: u64,
}

/// Why recovery refused to start. Every variant means the on-disk state
/// contradicts the store's invariants in a way a crash cannot explain —
/// serving would risk returning a wrong database.
#[derive(Debug)]
pub enum RecoveryError {
    /// A WAL record *before* the end of its file failed checksum,
    /// decoding, or sequence contiguity.
    CorruptWal {
        /// Database whose log is bad.
        db: String,
        /// Byte offset of the bad frame.
        offset: u64,
        /// What was wrong.
        detail: String,
    },
    /// A published `snap.<seq>` file failed its checksum or decode.
    CorruptSnapshot {
        /// Database whose checkpoint is bad.
        db: String,
        /// The unreadable file.
        path: PathBuf,
        /// What was wrong.
        detail: String,
    },
    /// A file or directory the store never writes was found.
    UnexpectedEntry {
        /// The stray path.
        path: PathBuf,
    },
    /// An I/O error while reading or repairing.
    Io {
        /// Path being touched.
        path: PathBuf,
        /// The underlying error.
        detail: String,
    },
}

impl std::fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoveryError::CorruptWal { db, offset, detail } => write!(
                f,
                "database {db}: corrupt WAL record at byte {offset} ({detail}); \
                 refusing to serve a partial history"
            ),
            RecoveryError::CorruptSnapshot { db, path, detail } => write!(
                f,
                "database {db}: unreadable snapshot {} ({detail})",
                path.display()
            ),
            RecoveryError::UnexpectedEntry { path } => write!(
                f,
                "unexpected entry {} in data dir; refusing to guess",
                path.display()
            ),
            RecoveryError::Io { path, detail } => {
                write!(f, "i/o on {}: {detail}", path.display())
            }
        }
    }
}

impl std::error::Error for RecoveryError {}

fn io_err(path: &Path, e: io::Error) -> RecoveryError {
    RecoveryError::Io {
        path: path.to_path_buf(),
        detail: e.to_string(),
    }
}

/// A database name that is safe as a single path component and cannot
/// collide with the store's own file names. Mirrors the wire protocol's
/// `check_name` but is enforced independently here.
fn safe_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 128
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-' || b == b'.')
        && name != "."
        && name != ".."
}

/// Per-database writer state: the open log, the contents mirror the
/// next checkpoint will serialize, and the counters that drive the
/// checkpoint cadence.
struct DbState {
    wal: WalWriter,
    mirror: DbContents,
    next_seq: u64,
    records_since_snapshot: u64,
}

/// The durable store. One instance per `--data-dir`, shared by all
/// connections through the catalog's [`Persister`] handle.
pub struct DurableStore {
    dir: PathBuf,
    opts: StoreOptions,
    dbs: Mutex<FxHashMap<String, DbState>>,
    registry: Registry,
    wal_appends: Arc<Counter>,
    wal_bytes: Arc<Counter>,
    fsyncs: Arc<Counter>,
    fsync_us: Arc<Histogram>,
    snapshot_writes: Arc<Counter>,
    recovery: RecoveryReport,
}

impl DurableStore {
    /// Opens (creating if needed) a data directory, runs recovery, and
    /// returns the store plus every database it found. The caller
    /// rebuilds its catalog from the [`RecoveredDb`]s; after that, every
    /// mutation must flow through the [`Persister`] hooks.
    pub fn open(
        dir: impl Into<PathBuf>,
        opts: StoreOptions,
    ) -> Result<(DurableStore, Vec<RecoveredDb>, RecoveryReport), RecoveryError> {
        let dir = dir.into();
        let started = Instant::now();
        fs::create_dir_all(&dir).map_err(|e| io_err(&dir, e))?;

        let mut report = RecoveryReport::default();
        let mut recovered = Vec::new();
        let mut states = FxHashMap::default();

        let mut entries: Vec<_> = fs::read_dir(&dir)
            .map_err(|e| io_err(&dir, e))?
            .collect::<Result<_, _>>()
            .map_err(|e| io_err(&dir, e))?;
        entries.sort_by_key(|e| e.file_name());
        for entry in entries {
            let path = entry.path();
            let name = entry.file_name().to_string_lossy().into_owned();
            if name.starts_with(TRASH_PREFIX) {
                // A drop that crashed between rename and delete.
                fs::remove_dir_all(&path).map_err(|e| io_err(&path, e))?;
                report.swept_dirs += 1;
                continue;
            }
            if !path.is_dir() || !safe_name(&name) {
                return Err(RecoveryError::UnexpectedEntry { path });
            }
            match Self::recover_db(&path, &name, &mut report)? {
                Some((db, state)) => {
                    report.databases += 1;
                    report.max_version = report.max_version.max(db.version);
                    recovered.push(db);
                    states.insert(name, state);
                }
                None => {
                    // Residue of an unacknowledged create: sweep it.
                    fs::remove_dir_all(&path).map_err(|e| io_err(&path, e))?;
                    report.swept_dirs += 1;
                }
            }
        }
        report.duration_us = started.elapsed().as_micros() as u64;

        let registry = Registry::new();
        let store = DurableStore {
            wal_appends: registry.counter(
                "ppr_wal_appends_total",
                "Commit records appended to write-ahead logs",
            ),
            wal_bytes: registry
                .counter("ppr_wal_bytes_total", "Bytes appended to write-ahead logs"),
            fsyncs: registry.counter("ppr_wal_fsyncs_total", "Commit-path fsync calls"),
            fsync_us: registry.histogram("ppr_wal_fsync_us", "Commit-path fsync latency (µs)"),
            snapshot_writes: registry
                .counter("ppr_snapshot_writes_total", "Full snapshot files written"),
            registry,
            dir,
            opts,
            dbs: Mutex::new(states),
            recovery: report.clone(),
        };
        for (name, help, v) in [
            (
                "ppr_recovery_duration_us",
                "Startup recovery wall-clock time (µs)",
                report.duration_us,
            ),
            (
                "ppr_recovery_replayed_records",
                "WAL records replayed at startup",
                report.replayed_records,
            ),
            (
                "ppr_recovery_snapshots_loaded",
                "Snapshot files loaded at startup",
                report.snapshots_loaded,
            ),
            (
                "ppr_recovery_databases",
                "Databases recovered at startup",
                report.databases,
            ),
            (
                "ppr_recovery_torn_tails",
                "Torn WAL tails truncated at startup",
                report.torn_tails,
            ),
        ] {
            store.registry.gauge(name, help).set(v);
        }
        Ok((store, recovered, report))
    }

    /// Recovers one database directory: newest snapshot, then the log
    /// suffix past it. `Ok(None)` means the directory holds no
    /// acknowledged state (a torn create) and should be swept.
    fn recover_db(
        path: &Path,
        name: &str,
        report: &mut RecoveryReport,
    ) -> Result<Option<(RecoveredDb, DbState)>, RecoveryError> {
        let mut snaps: Vec<(u64, PathBuf)> = Vec::new();
        let mut wal_path: Option<PathBuf> = None;
        for entry in fs::read_dir(path).map_err(|e| io_err(path, e))? {
            let entry = entry.map_err(|e| io_err(path, e))?;
            let fname = entry.file_name().to_string_lossy().into_owned();
            let fpath = entry.path();
            if fname == WAL_FILE {
                wal_path = Some(fpath);
            } else if fname == SNAP_TMP {
                // In-progress checkpoint that never got renamed.
                fs::remove_file(&fpath).map_err(|e| io_err(&fpath, e))?;
            } else if let Some(seq) = parse_snapshot_name(&fname) {
                snaps.push((seq, fpath));
            } else {
                return Err(RecoveryError::UnexpectedEntry { path: fpath });
            }
        }
        snaps.sort_unstable_by_key(|(seq, _)| *seq);

        // Newest snapshot is the base; a published-but-unreadable one is
        // corruption (tmp+rename means crashes never publish partials).
        let base = match snaps.last() {
            Some((_, p)) => match read_snapshot(p) {
                Ok(data) => {
                    report.snapshots_loaded += 1;
                    Some(data)
                }
                Err(SnapError::Corrupt { path, detail }) => {
                    return Err(RecoveryError::CorruptSnapshot {
                        db: name.to_string(),
                        path,
                        detail,
                    })
                }
                Err(SnapError::Io { path, detail }) => {
                    return Err(RecoveryError::Io { path, detail })
                }
            },
            None => None,
        };
        // Older snapshots are superseded; finish the interrupted GC.
        for (_, p) in snaps.iter().rev().skip(1) {
            fs::remove_file(p).map_err(|e| io_err(p, e))?;
        }

        let (mut contents, mut version, snap_seq) = match &base {
            Some(s) => (s.contents.clone(), s.version, s.seq),
            None => (DbContents::default(), 0, 0),
        };

        let (records, wal) = match wal_path {
            Some(wp) => {
                let scan = scan_wal(&wp).map_err(|e| match e {
                    WalError::Corrupt { offset, detail, .. } => RecoveryError::CorruptWal {
                        db: name.to_string(),
                        offset,
                        detail,
                    },
                    WalError::BadMagic { path } => RecoveryError::CorruptWal {
                        db: name.to_string(),
                        offset: 0,
                        detail: format!("{} has bad magic", path.display()),
                    },
                    WalError::Io { path, detail } => RecoveryError::Io { path, detail },
                })?;
                if scan.torn_at.is_some() {
                    report.torn_tails += 1;
                }
                let writer = WalWriter::open(&wp, scan.valid_len).map_err(|e| io_err(&wp, e))?;
                (scan.records, writer)
            }
            None => {
                if base.is_none() {
                    // Neither a snapshot nor a log: nothing was ever
                    // acknowledged here.
                    return Ok(None);
                }
                // Crash between snapshot write and log creation
                // (record_insert); start a fresh log.
                let wp = path.join(WAL_FILE);
                let writer = WalWriter::create(&wp).map_err(|e| io_err(&wp, e))?;
                (Vec::new(), writer)
            }
        };

        let mut last_seq = snap_seq;
        let mut replayed = 0u64;
        for rec in &records {
            // Records a snapshot already covers linger until the next
            // checkpoint truncates the log; skip them.
            if rec.seq() <= snap_seq {
                continue;
            }
            match rec {
                WalRecord::Create { .. } => {}
                WalRecord::Load {
                    rel, arity, tuples, ..
                } => contents.apply_load(rel, *arity as usize, tuples.clone()),
                WalRecord::Add { rel, tuple, .. } => contents.apply_add(rel, tuple),
            }
            version = rec.version();
            last_seq = rec.seq();
            replayed += 1;
        }
        report.replayed_records += replayed;
        if base.is_none() && records.is_empty() {
            // A log with only a magic and no snapshot: torn create.
            return Ok(None);
        }

        let state = DbState {
            wal,
            mirror: contents.clone(),
            next_seq: last_seq + 1,
            records_since_snapshot: replayed,
        };
        Ok(Some((
            RecoveredDb {
                name: name.to_string(),
                contents,
                version,
            },
            state,
        )))
    }

    /// The data directory this store owns.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// What recovery did when this store was opened.
    pub fn recovery_report(&self) -> &RecoveryReport {
        &self.recovery
    }

    fn db_dir(&self, db: &str) -> PathBuf {
        self.dir.join(db)
    }

    fn check_name(&self, db: &str) -> Result<(), PersistError> {
        if safe_name(db) {
            Ok(())
        } else {
            Err(PersistError {
                op: "name",
                detail: format!("{db:?} is not a safe database name"),
            })
        }
    }

    /// fsyncs a directory so a rename / mkdir within it is durable.
    fn sync_dir(&self, path: &Path) -> Result<(), PersistError> {
        if !self.opts.sync.on() {
            return Ok(());
        }
        File::open(path)
            .and_then(|f| f.sync_all())
            .map_err(|e| PersistError::io("dir fsync", &e))
    }

    /// Appends `record` to `db`'s log (which must exist), fsyncs per
    /// policy, applies the mutation to the mirror, and checkpoints if
    /// the cadence says so.
    fn append(&self, db: &str, make: impl FnOnce(u64) -> WalRecord) -> Result<(), PersistError> {
        let mut dbs = self.dbs.lock().expect("store lock");
        let state = dbs.get_mut(db).ok_or_else(|| PersistError {
            op: "append",
            detail: format!("database {db} has no durable state (missed create?)"),
        })?;
        let record = make(state.next_seq);
        let bytes = state
            .wal
            .append(&record)
            .map_err(|e| PersistError::io("append", &e))?;
        if self.opts.sync.on() {
            let t = Instant::now();
            state
                .wal
                .sync()
                .map_err(|e| PersistError::io("fsync", &e))?;
            self.fsync_us.record(t.elapsed().as_micros() as u64);
            self.fsyncs.inc();
        }
        self.wal_appends.inc();
        self.wal_bytes.add(bytes);
        match &record {
            WalRecord::Create { .. } => {}
            WalRecord::Load {
                rel, arity, tuples, ..
            } => state
                .mirror
                .apply_load(rel, *arity as usize, tuples.clone()),
            WalRecord::Add { rel, tuple, .. } => state.mirror.apply_add(rel, tuple),
        }
        state.next_seq += 1;
        state.records_since_snapshot += 1;
        if state.records_since_snapshot >= self.opts.snapshot_every
            || state.wal.len >= self.opts.snapshot_bytes
        {
            self.checkpoint(db, state, record.version())?;
        }
        Ok(())
    }

    /// Writes a snapshot of `state`'s mirror at its last-used sequence
    /// number, then truncates the log and deletes older snapshots.
    fn checkpoint(&self, db: &str, state: &mut DbState, version: u64) -> Result<(), PersistError> {
        let dir = self.db_dir(db);
        let seq = state.next_seq - 1;
        let data = SnapshotData {
            seq,
            version,
            contents: state.mirror.clone(),
        };
        write_snapshot(&dir, &data, self.opts.sync.on())
            .map_err(|e| PersistError::io("snapshot", &e))?;
        self.snapshot_writes.inc();
        // The snapshot is durable; everything below is cleanup that
        // recovery can redo.
        state
            .wal
            .truncate_to_header()
            .map_err(|e| PersistError::io("truncate", &e))?;
        state.records_since_snapshot = 0;
        for entry in fs::read_dir(&dir).map_err(|e| PersistError::io("snapshot gc", &e))? {
            let entry = entry.map_err(|e| PersistError::io("snapshot gc", &e))?;
            if let Some(s) = parse_snapshot_name(&entry.file_name().to_string_lossy()) {
                if s < seq {
                    fs::remove_file(entry.path())
                        .map_err(|e| PersistError::io("snapshot gc", &e))?;
                }
            }
        }
        Ok(())
    }
}

impl Persister for DurableStore {
    fn record_create(&self, db: &str, version: u64) -> Result<(), PersistError> {
        self.check_name(db)?;
        let mut dbs = self.dbs.lock().expect("store lock");
        if dbs.contains_key(db) {
            return Err(PersistError {
                op: "create",
                detail: format!("database {db} already has durable state"),
            });
        }
        let dir = self.db_dir(db);
        fs::create_dir_all(&dir).map_err(|e| PersistError::io("create", &e))?;
        let wal_path = dir.join(WAL_FILE);
        let mut wal = WalWriter::create(&wal_path).map_err(|e| PersistError::io("create", &e))?;
        wal.append(&WalRecord::Create { seq: 1, version })
            .map_err(|e| PersistError::io("create", &e))?;
        if self.opts.sync.on() {
            let t = Instant::now();
            wal.sync().map_err(|e| PersistError::io("fsync", &e))?;
            self.fsync_us.record(t.elapsed().as_micros() as u64);
            self.fsyncs.inc();
        }
        self.wal_appends.inc();
        self.sync_dir(&dir)?;
        self.sync_dir(&self.dir)?;
        dbs.insert(
            db.to_string(),
            DbState {
                wal,
                mirror: DbContents::default(),
                next_seq: 2,
                records_since_snapshot: 1,
            },
        );
        Ok(())
    }

    fn record_drop(&self, db: &str, version: u64) -> Result<(), PersistError> {
        self.check_name(db)?;
        let mut dbs = self.dbs.lock().expect("store lock");
        if dbs.remove(db).is_none() {
            return Err(PersistError {
                op: "drop",
                detail: format!("database {db} has no durable state"),
            });
        }
        let dir = self.db_dir(db);
        let trash = self.dir.join(format!("{TRASH_PREFIX}{db}.{version}"));
        fs::rename(&dir, &trash).map_err(|e| PersistError::io("drop", &e))?;
        self.sync_dir(&self.dir)?;
        // The rename made the drop durable; deleting the bytes is
        // best-effort (recovery sweeps any leftover trash).
        let _ = fs::remove_dir_all(&trash);
        Ok(())
    }

    fn record_load(
        &self,
        db: &str,
        rel: &str,
        arity: usize,
        tuples: &[Tuple],
        version: u64,
    ) -> Result<(), PersistError> {
        self.check_name(db)?;
        self.append(db, |seq| WalRecord::Load {
            seq,
            version,
            rel: rel.to_string(),
            arity: arity as u32,
            tuples: tuples.to_vec(),
        })
    }

    fn record_add(
        &self,
        db: &str,
        rel: &str,
        tuple: &Tuple,
        version: u64,
    ) -> Result<(), PersistError> {
        self.check_name(db)?;
        self.append(db, |seq| WalRecord::Add {
            seq,
            version,
            rel: rel.to_string(),
            tuple: tuple.clone(),
        })
    }

    fn record_insert(
        &self,
        db: &str,
        contents: &DbContents,
        version: u64,
    ) -> Result<(), PersistError> {
        self.check_name(db)?;
        let mut dbs = self.dbs.lock().expect("store lock");
        let dir = self.db_dir(db);
        fs::create_dir_all(&dir).map_err(|e| PersistError::io("insert", &e))?;
        let seq = match dbs.get(db) {
            Some(state) => state.next_seq,
            None => 1,
        };
        let data = SnapshotData {
            seq,
            version,
            contents: contents.clone(),
        };
        write_snapshot(&dir, &data, self.opts.sync.on())
            .map_err(|e| PersistError::io("insert", &e))?;
        self.snapshot_writes.inc();
        let wal_path = dir.join(WAL_FILE);
        let mut wal = match dbs.remove(db) {
            Some(mut state) => {
                state
                    .wal
                    .truncate_to_header()
                    .map_err(|e| PersistError::io("insert", &e))?;
                state.wal
            }
            None => WalWriter::create(&wal_path).map_err(|e| PersistError::io("insert", &e))?,
        };
        if self.opts.sync.on() {
            wal.sync().map_err(|e| PersistError::io("fsync", &e))?;
        }
        self.sync_dir(&dir)?;
        self.sync_dir(&self.dir)?;
        // GC snapshots the new one supersedes.
        for entry in fs::read_dir(&dir).map_err(|e| PersistError::io("insert", &e))? {
            let entry = entry.map_err(|e| PersistError::io("insert", &e))?;
            if let Some(s) = parse_snapshot_name(&entry.file_name().to_string_lossy()) {
                if s < seq {
                    fs::remove_file(entry.path()).map_err(|e| PersistError::io("insert", &e))?;
                }
            }
        }
        dbs.insert(
            db.to_string(),
            DbState {
                wal,
                mirror: contents.clone(),
                next_seq: seq + 1,
                records_since_snapshot: 0,
            },
        );
        Ok(())
    }

    fn stats(&self) -> DurabilityStats {
        DurabilityStats {
            wal_appends: self.wal_appends.get(),
            wal_bytes: self.wal_bytes.get(),
            fsyncs: self.fsyncs.get(),
            fsync_us: self.fsync_us.snapshot(),
            snapshot_writes: self.snapshot_writes.get(),
            recovery: self.recovery.clone(),
        }
    }

    fn render_prometheus(&self) -> String {
        self.registry.render_prometheus()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(vals: &[u32]) -> Tuple {
        vals.to_vec().into_boxed_slice()
    }

    fn tmpdir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ppr-store-test-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn opts(every: u64) -> StoreOptions {
        StoreOptions {
            sync: SyncPolicy::Always,
            snapshot_every: every,
            snapshot_bytes: 1 << 20,
        }
    }

    fn reopen(dir: &Path) -> (DurableStore, Vec<RecoveredDb>, RecoveryReport) {
        DurableStore::open(dir, opts(1000)).unwrap()
    }

    #[test]
    fn mutations_survive_reopen() {
        let dir = tmpdir("basic");
        {
            let (store, recovered, _) = DurableStore::open(&dir, opts(1000)).unwrap();
            assert!(recovered.is_empty());
            store.record_create("g", 1).unwrap();
            store
                .record_load("g", "edge", 2, &[t(&[1, 2]), t(&[2, 3])], 2)
                .unwrap();
            store.record_add("g", "edge", &t(&[3, 1]), 3).unwrap();
            store.record_add("g", "edge", &t(&[1, 2]), 4).unwrap(); // duplicate
        }
        let (_, recovered, report) = reopen(&dir);
        assert_eq!(recovered.len(), 1);
        let g = &recovered[0];
        assert_eq!(g.name, "g");
        assert_eq!(g.version, 4);
        let edge = g.contents.get("edge").unwrap();
        assert_eq!(edge.tuples, vec![t(&[1, 2]), t(&[2, 3]), t(&[3, 1])]);
        assert_eq!(report.replayed_records, 4);
    }

    #[test]
    fn checkpoint_truncates_log_and_recovers_from_snapshot() {
        let dir = tmpdir("checkpoint");
        {
            let (store, _, _) = DurableStore::open(&dir, opts(3)).unwrap();
            store.record_create("g", 1).unwrap();
            for i in 0..10u32 {
                store
                    .record_add("g", "e", &t(&[i, i + 1]), 2 + i as u64)
                    .unwrap();
            }
            let stats = store.stats();
            assert!(stats.snapshot_writes >= 2, "cadence of 3 over 11 records");
        }
        // Log shrank: records since the last snapshot only.
        let wal_len = fs::metadata(dir.join("g").join(WAL_FILE)).unwrap().len();
        assert!(wal_len < 200, "wal was truncated, len {wal_len}");
        let snaps: Vec<_> = fs::read_dir(dir.join("g"))
            .unwrap()
            .filter_map(|e| parse_snapshot_name(&e.unwrap().file_name().to_string_lossy()))
            .collect();
        assert_eq!(snaps.len(), 1, "older snapshots GC'd: {snaps:?}");

        let (_, recovered, report) = reopen(&dir);
        assert_eq!(recovered[0].version, 11);
        assert_eq!(recovered[0].contents.get("e").unwrap().tuples.len(), 10);
        assert_eq!(report.snapshots_loaded, 1);
        assert!(report.replayed_records < 11);
    }

    #[test]
    fn drop_is_durable_and_trash_is_swept() {
        let dir = tmpdir("drop");
        {
            let (store, _, _) = DurableStore::open(&dir, opts(1000)).unwrap();
            store.record_create("a", 1).unwrap();
            store.record_create("b", 2).unwrap();
            store.record_drop("a", 3).unwrap();
        }
        let (_, recovered, _) = reopen(&dir);
        assert_eq!(recovered.len(), 1);
        assert_eq!(recovered[0].name, "b");

        // Simulate a crash mid-drop: trash dir left behind.
        let trash = dir.join(format!("{TRASH_PREFIX}b.9"));
        fs::rename(dir.join("b"), &trash).unwrap();
        let (_, recovered, report) = reopen(&dir);
        assert!(recovered.is_empty());
        assert_eq!(report.swept_dirs, 1);
        assert!(!trash.exists());
    }

    #[test]
    fn insert_then_mutate_round_trips() {
        let dir = tmpdir("insert");
        {
            let (store, _, _) = DurableStore::open(&dir, opts(1000)).unwrap();
            let contents = DbContents {
                relations: vec![crate::RelationData {
                    name: "edge".into(),
                    arity: 2,
                    tuples: vec![t(&[5, 6])],
                }],
            };
            store.record_insert("default", &contents, 7).unwrap();
            store.record_add("default", "edge", &t(&[6, 7]), 8).unwrap();
            // Wholesale replace resets the log.
            store.record_insert("default", &contents, 9).unwrap();
            store
                .record_add("default", "edge", &t(&[9, 9]), 10)
                .unwrap();
        }
        let (_, recovered, _) = reopen(&dir);
        assert_eq!(recovered[0].version, 10);
        assert_eq!(
            recovered[0].contents.get("edge").unwrap().tuples,
            vec![t(&[5, 6]), t(&[9, 9])]
        );
    }

    #[test]
    fn unacked_create_residue_is_swept() {
        let dir = tmpdir("residue");
        {
            let (store, _, _) = DurableStore::open(&dir, opts(1000)).unwrap();
            store.record_create("real", 1).unwrap();
        }
        fs::create_dir(dir.join("halfmade")).unwrap();
        let (_, recovered, report) = reopen(&dir);
        assert_eq!(recovered.len(), 1);
        assert_eq!(recovered[0].name, "real");
        assert_eq!(report.swept_dirs, 1);
        assert!(!dir.join("halfmade").exists());
    }

    #[test]
    fn stray_files_refuse_startup() {
        let dir = tmpdir("stray");
        {
            DurableStore::open(&dir, opts(1000)).unwrap();
        }
        fs::write(dir.join("notes.txt"), b"hello").unwrap();
        assert!(matches!(
            DurableStore::open(&dir, opts(1000)),
            Err(RecoveryError::UnexpectedEntry { .. })
        ));
    }

    #[test]
    fn unsafe_names_are_refused() {
        let dir = tmpdir("names");
        let (store, _, _) = DurableStore::open(&dir, opts(1000)).unwrap();
        for bad in ["", "..", "a/b", "a\\b", "#x", "x y"] {
            assert!(store.record_create(bad, 1).is_err(), "{bad:?} accepted");
        }
    }

    #[test]
    fn fsync_metrics_move_under_always() {
        let dir = tmpdir("metrics");
        let (store, _, _) = DurableStore::open(&dir, opts(1000)).unwrap();
        store.record_create("g", 1).unwrap();
        store.record_add("g", "e", &t(&[1, 2]), 2).unwrap();
        let s = store.stats();
        assert_eq!(s.wal_appends, 2);
        assert!(s.fsyncs >= 2);
        assert!(!s.fsync_us.is_empty());
        let prom = store.render_prometheus();
        assert!(prom.contains("ppr_wal_appends_total 2"));
        assert!(prom.contains("ppr_recovery_databases 0"));
    }
}
