//! The write-ahead commit log: format, writer, and scanner.
//!
//! One `wal.log` per database directory. The file is an 8-byte magic
//! (`PPRWAL1\n`) followed by records, each framed as
//!
//! ```text
//! [len: u32 LE] [crc: u32 LE] [payload: len bytes]
//! ```
//!
//! where `crc` is the CRC-32 (IEEE) of the payload. The payload starts
//! with a one-byte kind, then the record's per-database sequence number
//! and the catalog-wide version assigned to the mutation, then the
//! kind-specific body (see [`WalRecord`]). Sequence numbers increase by
//! exactly one per record, so replay can skip records already captured
//! by a snapshot and the scanner can reject spliced logs.
//!
//! The scanner's verdict for a bad byte depends on *where* it is:
//! anything wrong at the very end of the file (short header, length past
//! EOF, bad checksum or undecodable payload on the final record) is a
//! **torn tail** — the expected residue of a crash mid-append, carrying
//! only an unacknowledged commit — and is reported for truncation.
//! Anything wrong with more log after it is **corruption**: history the
//! store already acknowledged cannot be reread, so recovery refuses to
//! start rather than reconstruct a wrong database.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use ppr_relalg::value::Tuple;

/// First 8 bytes of every WAL file.
pub const WAL_MAGIC: &[u8; 8] = b"PPRWAL1\n";

/// Hard cap on one record's payload; anything claiming more is treated
/// like a length past EOF (no allocation is attempted).
pub const MAX_RECORD: u32 = 1 << 28;

/// CRC-32 (IEEE 802.3, reflected, the zlib polynomial) over `bytes`.
/// Table-free bitwise form: the WAL's records are small and append-path
/// cost is dominated by `fsync`, so simplicity wins over a table.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// One committed catalog mutation. `seq` is per-database and contiguous;
/// `version` is the catalog-wide version the mutation was acknowledged
/// under.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// The database was created empty. Always a log's first record.
    Create { seq: u64, version: u64 },
    /// `rel` was replaced with exactly `tuples` (pre-deduplicated, in
    /// first-occurrence order).
    Load {
        seq: u64,
        version: u64,
        rel: String,
        arity: u32,
        tuples: Vec<Tuple>,
    },
    /// One tuple appended to `rel` (relation created if absent).
    Add {
        seq: u64,
        version: u64,
        rel: String,
        tuple: Tuple,
    },
}

impl WalRecord {
    /// The record's per-database sequence number.
    pub fn seq(&self) -> u64 {
        match self {
            WalRecord::Create { seq, .. }
            | WalRecord::Load { seq, .. }
            | WalRecord::Add { seq, .. } => *seq,
        }
    }

    /// The catalog version assigned to the mutation.
    pub fn version(&self) -> u64 {
        match self {
            WalRecord::Create { version, .. }
            | WalRecord::Load { version, .. }
            | WalRecord::Add { version, .. } => *version,
        }
    }

    /// Serializes the payload (everything the checksum covers).
    pub fn encode_payload(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32);
        match self {
            WalRecord::Create { seq, version } => {
                out.push(1);
                put_u64(&mut out, *seq);
                put_u64(&mut out, *version);
            }
            WalRecord::Load {
                seq,
                version,
                rel,
                arity,
                tuples,
            } => {
                out.push(2);
                put_u64(&mut out, *seq);
                put_u64(&mut out, *version);
                put_str(&mut out, rel);
                put_u32(&mut out, *arity);
                put_u32(&mut out, tuples.len() as u32);
                for t in tuples {
                    for &v in t.iter() {
                        put_u32(&mut out, v);
                    }
                }
            }
            WalRecord::Add {
                seq,
                version,
                rel,
                tuple,
            } => {
                out.push(3);
                put_u64(&mut out, *seq);
                put_u64(&mut out, *version);
                put_str(&mut out, rel);
                put_u32(&mut out, tuple.len() as u32);
                for &v in tuple.iter() {
                    put_u32(&mut out, v);
                }
            }
        }
        out
    }

    /// Parses a payload. `Err` carries a short description of the first
    /// structural problem (the checksum has already passed, so this only
    /// fires on truncated-in-frame or crafted payloads).
    pub fn decode_payload(buf: &[u8]) -> Result<WalRecord, String> {
        let mut c = Cursor { buf, at: 0 };
        let kind = c.u8()?;
        let seq = c.u64()?;
        let version = c.u64()?;
        let rec = match kind {
            1 => WalRecord::Create { seq, version },
            2 => {
                let rel = c.str()?;
                let arity = c.u32()?;
                let count = c.u32()?;
                let need = (arity as usize).checked_mul(count as usize);
                match need {
                    Some(n) if c.remaining() == n * 4 => {}
                    _ => return Err("load body length mismatch".into()),
                }
                let mut tuples = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    let mut t = Vec::with_capacity(arity as usize);
                    for _ in 0..arity {
                        t.push(c.u32()?);
                    }
                    tuples.push(t.into_boxed_slice());
                }
                WalRecord::Load {
                    seq,
                    version,
                    rel,
                    arity,
                    tuples,
                }
            }
            3 => {
                let rel = c.str()?;
                let arity = c.u32()?;
                if c.remaining() != arity as usize * 4 {
                    return Err("add body length mismatch".into());
                }
                let mut t = Vec::with_capacity(arity as usize);
                for _ in 0..arity {
                    t.push(c.u32()?);
                }
                WalRecord::Add {
                    seq,
                    version,
                    rel,
                    tuple: t.into_boxed_slice(),
                }
            }
            k => return Err(format!("unknown record kind {k}")),
        };
        if c.remaining() != 0 {
            return Err("trailing bytes after record body".into());
        }
        Ok(rec)
    }
}

pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_str(out: &mut Vec<u8>, s: &str) {
    let bytes = s.as_bytes();
    assert!(bytes.len() <= u16::MAX as usize, "name too long for WAL");
    out.extend_from_slice(&(bytes.len() as u16).to_le_bytes());
    out.extend_from_slice(bytes);
}

pub(crate) struct Cursor<'a> {
    pub buf: &'a [u8],
    pub at: usize,
}

impl<'a> Cursor<'a> {
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.at
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.remaining() < n {
            return Err("payload too short".into());
        }
        let s = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    pub fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    pub fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn str(&mut self) -> Result<String, String> {
        let len = u16::from_le_bytes(self.take(2)?.try_into().unwrap()) as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| "name not utf-8".to_string())
    }
}

/// What scanning a WAL file found.
#[derive(Debug)]
pub struct WalScan {
    /// Every record up to the first problem (or EOF), in order.
    pub records: Vec<WalRecord>,
    /// Byte offset one past the last good record — the length the file
    /// should be truncated to when `torn_at` is set.
    pub valid_len: u64,
    /// Offset of a torn tail, if the file ends mid-record.
    pub torn_at: Option<u64>,
}

/// Why a WAL could not be read as history.
#[derive(Debug)]
pub enum WalError {
    /// A record before the end of the file failed its checksum, failed to
    /// decode, or broke sequence contiguity.
    Corrupt {
        /// The log file.
        path: PathBuf,
        /// Byte offset of the bad record's frame.
        offset: u64,
        /// What was wrong.
        detail: String,
    },
    /// The file does not start with [`WAL_MAGIC`] (and is long enough
    /// that a torn creation cannot explain it).
    BadMagic { path: PathBuf },
    /// An I/O error while reading.
    Io { path: PathBuf, detail: String },
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Corrupt {
                path,
                offset,
                detail,
            } => write!(
                f,
                "corrupt WAL record in {} at byte {offset}: {detail}",
                path.display()
            ),
            WalError::BadMagic { path } => {
                write!(f, "{} is not a WAL file (bad magic)", path.display())
            }
            WalError::Io { path, detail } => {
                write!(f, "reading {}: {detail}", path.display())
            }
        }
    }
}

impl std::error::Error for WalError {}

/// Scans `path` front to back, separating good history from a torn tail,
/// and refusing (`Err`) on mid-log corruption. A file shorter than the
/// magic — the residue of a crash during creation — scans as empty with
/// `torn_at = Some(0)`.
pub fn scan_wal(path: &Path) -> Result<WalScan, WalError> {
    let mut bytes = Vec::new();
    File::open(path)
        .and_then(|mut f| f.read_to_end(&mut bytes))
        .map_err(|e| WalError::Io {
            path: path.to_path_buf(),
            detail: e.to_string(),
        })?;
    if bytes.len() < WAL_MAGIC.len() {
        // Torn creation: nothing in here was ever acknowledged.
        return Ok(WalScan {
            records: Vec::new(),
            valid_len: 0,
            torn_at: Some(0),
        });
    }
    if &bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
        return Err(WalError::BadMagic {
            path: path.to_path_buf(),
        });
    }

    let mut records = Vec::new();
    let mut at = WAL_MAGIC.len();
    let mut prev_seq: Option<u64> = None;
    loop {
        let remaining = bytes.len() - at;
        if remaining == 0 {
            return Ok(WalScan {
                records,
                valid_len: at as u64,
                torn_at: None,
            });
        }
        let torn = move |records: Vec<WalRecord>| {
            Ok(WalScan {
                records,
                valid_len: at as u64,
                torn_at: Some(at as u64),
            })
        };
        if remaining < 8 {
            return torn(records);
        }
        let len = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap());
        let crc = u32::from_le_bytes(bytes[at + 4..at + 8].try_into().unwrap());
        if len > MAX_RECORD || 8 + len as usize > remaining {
            // A length past EOF: a torn append (short write) or a length
            // byte gone bad — either way everything from here on is
            // unreadable, and only a prefix survives.
            return torn(records);
        }
        let payload = &bytes[at + 8..at + 8 + len as usize];
        let last = at + 8 + len as usize == bytes.len();
        let bad = if crc32(payload) != crc {
            Some("checksum mismatch".to_string())
        } else {
            match WalRecord::decode_payload(payload) {
                Ok(rec) => {
                    let expected = prev_seq.map(|s| s + 1);
                    if expected.is_some_and(|e| rec.seq() != e) {
                        Some(format!(
                            "sequence gap: expected {}, found {}",
                            expected.unwrap(),
                            rec.seq()
                        ))
                    } else {
                        prev_seq = Some(rec.seq());
                        records.push(rec);
                        None
                    }
                }
                Err(e) => Some(e),
            }
        };
        match bad {
            None => at += 8 + len as usize,
            Some(_) if last => return torn(records),
            Some(detail) => {
                return Err(WalError::Corrupt {
                    path: path.to_path_buf(),
                    offset: at as u64,
                    detail,
                })
            }
        }
    }
}

/// Append handle on one database's WAL. Framing and checksums live here;
/// fsync policy is the caller's (the store times it for metrics).
pub struct WalWriter {
    file: File,
    path: PathBuf,
    /// File length in bytes (all-good records; the writer never leaves a
    /// known-bad tail behind).
    pub len: u64,
}

impl WalWriter {
    /// Creates a fresh WAL (truncating anything present) and writes the
    /// magic. The caller fsyncs per its policy.
    pub fn create(path: &Path) -> io::Result<WalWriter> {
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        file.write_all(WAL_MAGIC)?;
        Ok(WalWriter {
            file,
            path: path.to_path_buf(),
            len: WAL_MAGIC.len() as u64,
        })
    }

    /// Opens an existing WAL for appending, first truncating it to
    /// `valid_len` (dropping a torn tail found by [`scan_wal`]).
    pub fn open(path: &Path, valid_len: u64) -> io::Result<WalWriter> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        file.set_len(valid_len.max(WAL_MAGIC.len() as u64))?;
        let mut w = WalWriter {
            file,
            path: path.to_path_buf(),
            len: valid_len,
        };
        if valid_len < WAL_MAGIC.len() as u64 {
            // The file was torn during creation; rewrite the magic.
            w.file.seek(SeekFrom::Start(0))?;
            w.file.write_all(WAL_MAGIC)?;
            w.len = WAL_MAGIC.len() as u64;
        } else {
            w.file.seek(SeekFrom::Start(valid_len))?;
        }
        Ok(w)
    }

    /// Appends one framed record. Returns the frame's size in bytes. The
    /// caller decides whether to [`sync`](WalWriter::sync) afterwards.
    pub fn append(&mut self, record: &WalRecord) -> io::Result<u64> {
        let payload = record.encode_payload();
        let mut frame = Vec::with_capacity(8 + payload.len());
        put_u32(&mut frame, payload.len() as u32);
        put_u32(&mut frame, crc32(&payload));
        frame.extend_from_slice(&payload);
        self.file.write_all(&frame)?;
        self.len += frame.len() as u64;
        Ok(frame.len() as u64)
    }

    /// `fsync`s the file.
    pub fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()
    }

    /// Truncates back to just the magic — called after a snapshot has
    /// captured everything the log held.
    pub fn truncate_to_header(&mut self) -> io::Result<()> {
        self.file.set_len(WAL_MAGIC.len() as u64)?;
        self.file.seek(SeekFrom::Start(WAL_MAGIC.len() as u64))?;
        self.len = WAL_MAGIC.len() as u64;
        Ok(())
    }

    /// The log file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(vals: &[u32]) -> Tuple {
        vals.to_vec().into_boxed_slice()
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Create { seq: 1, version: 4 },
            WalRecord::Load {
                seq: 2,
                version: 5,
                rel: "edge".into(),
                arity: 2,
                tuples: vec![t(&[1, 2]), t(&[2, 3])],
            },
            WalRecord::Add {
                seq: 3,
                version: 6,
                rel: "edge".into(),
                tuple: t(&[3, 1]),
            },
        ]
    }

    fn write_all(path: &Path, records: &[WalRecord]) -> WalWriter {
        let mut w = WalWriter::create(path).unwrap();
        for r in records {
            w.append(r).unwrap();
        }
        w.sync().unwrap();
        w
    }

    fn tmpfile(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ppr-wal-test-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("wal.log")
    }

    #[test]
    fn payloads_round_trip() {
        for r in sample_records() {
            let p = r.encode_payload();
            assert_eq!(WalRecord::decode_payload(&p).unwrap(), r);
        }
    }

    #[test]
    fn crc32_matches_known_vector() {
        // IEEE CRC-32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn scan_reads_back_what_was_written() {
        let path = tmpfile("roundtrip");
        let records = sample_records();
        write_all(&path, &records);
        let scan = scan_wal(&path).unwrap();
        assert_eq!(scan.records, records);
        assert!(scan.torn_at.is_none());
    }

    #[test]
    fn torn_tail_truncates_mid_log_corruption_refuses() {
        let path = tmpfile("verdicts");
        let records = sample_records();
        let w = write_all(&path, &records);
        let full = std::fs::read(&path).unwrap();
        let good_len = w.len as usize;

        // Chop anywhere inside the last record: torn tail, first two
        // records survive.
        for cut in (good_len - 5)..good_len {
            std::fs::write(&path, &full[..cut]).unwrap();
            let scan = scan_wal(&path).unwrap();
            assert!(scan.torn_at.is_some());
            assert_eq!(scan.records.len(), 2, "cut at {cut}");
        }

        // Flip a payload byte in the middle record: corruption.
        let mut bad = full.clone();
        let mid = WAL_MAGIC.len() + 8 + sample_records()[0].encode_payload().len() + 12;
        bad[mid] ^= 0xFF;
        std::fs::write(&path, &bad).unwrap();
        assert!(matches!(scan_wal(&path), Err(WalError::Corrupt { .. })));

        // Flip the same byte when the middle record is the *last* one:
        // now it is a torn tail.
        let second_end = WAL_MAGIC.len()
            + 8
            + sample_records()[0].encode_payload().len()
            + 8
            + sample_records()[1].encode_payload().len();
        std::fs::write(&path, &bad[..second_end]).unwrap();
        let scan = scan_wal(&path).unwrap();
        assert_eq!(scan.records.len(), 1);
        assert!(scan.torn_at.is_some());
    }

    #[test]
    fn truncated_creation_scans_empty() {
        let path = tmpfile("torn-create");
        std::fs::write(&path, &WAL_MAGIC[..3]).unwrap();
        let scan = scan_wal(&path).unwrap();
        assert!(scan.records.is_empty());
        assert_eq!(scan.torn_at, Some(0));
    }

    #[test]
    fn reopen_after_torn_tail_appends_cleanly() {
        let path = tmpfile("reopen");
        let records = sample_records();
        let w = write_all(&path, &records);
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..w.len as usize - 3]).unwrap();

        let scan = scan_wal(&path).unwrap();
        assert_eq!(scan.records.len(), 2);
        let mut w = WalWriter::open(&path, scan.valid_len).unwrap();
        w.append(&WalRecord::Add {
            seq: 3,
            version: 9,
            rel: "edge".into(),
            tuple: t(&[7, 7]),
        })
        .unwrap();
        w.sync().unwrap();

        let scan = scan_wal(&path).unwrap();
        assert!(scan.torn_at.is_none());
        assert_eq!(scan.records.len(), 3);
        assert_eq!(scan.records[2].version(), 9);
    }

    #[test]
    fn sequence_gap_is_corruption() {
        let path = tmpfile("seqgap");
        let mut w = WalWriter::create(&path).unwrap();
        w.append(&WalRecord::Create { seq: 1, version: 1 }).unwrap();
        w.append(&WalRecord::Create { seq: 3, version: 2 }).unwrap();
        // A trailing record keeps the gap mid-log.
        w.append(&WalRecord::Create { seq: 4, version: 3 }).unwrap();
        w.sync().unwrap();
        assert!(matches!(scan_wal(&path), Err(WalError::Corrupt { .. })));
    }
}
