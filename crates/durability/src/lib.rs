//! Durable storage for the serving catalog: write-ahead commit logs,
//! full snapshots, and crash recovery.
//!
//! The serving stack evaluates queries over a multi-database catalog
//! that — before this crate — lived only in memory: a restart lost every
//! database and every warm cache entry. This crate gives each database an
//! **append-only, length-prefixed, checksummed write-ahead commit log**
//! (one `wal.log` per database directory) recording the catalog
//! mutations (`create` / `load` / `add`; `drop` retires the whole
//! directory), plus **periodic full snapshots** that truncate the log,
//! plus **startup recovery** that replays the log over the newest valid
//! snapshot. The split mirrors SpacetimeDB's `commitlog` / `snapshot` /
//! `datastore` layering: the log is the source of truth for recent
//! commits, snapshots bound replay time, and the in-memory store is a
//! pure function of the two.
//!
//! Design points, in the order they matter:
//!
//! * **Ack implies durable.** With [`SyncPolicy::Always`] (the serving
//!   default) every commit record is `fsync`ed before the mutation is
//!   published — a client that saw `ok` will see the mutation again after
//!   a crash. [`SyncPolicy::Never`] keeps the same format but leaves
//!   flushing to the OS; it exists for the bench's persistence axis.
//! * **Torn tails are normal, mid-log corruption is not.** A crash can
//!   leave a half-written record at the *end* of the log; recovery
//!   truncates it away (it was never acknowledged). A bad checksum with
//!   more log *after* it means the disk lied about history, and recovery
//!   refuses to start with a typed [`RecoveryError`] rather than serve a
//!   wrong database. See `docs/DURABILITY.md` for the full corruption
//!   matrix.
//! * **The store is catalog-agnostic.** Everything here deals in
//!   [`DbContents`] — plain relation names, arities, and `u32` tuples —
//!   so the crate needs nothing from the query layer and the crash-safety
//!   proptests can drive it directly. `ppr-service` converts contents to
//!   real schemas on recovery.
//!
//! The service side holds the store behind the [`Persister`] trait and
//! calls one hook per mutating catalog path, inside the catalog's writer
//! lock, *before* publishing the mutation.

pub mod snapshot;
pub mod store;
pub mod wal;

use std::fmt;

use ppr_obs::HistSnapshot;
pub use ppr_relalg::value::{tuple, Tuple};
pub use ppr_relalg::Value;

pub use store::{
    DurableStore, RecoveredDb, RecoveryError, RecoveryReport, StoreOptions, SyncPolicy,
};

/// One relation's data, free of schema identity: recovery re-allocates
/// attribute ids, so only the name, arity, and rows are persisted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelationData {
    /// Relation name (unique within a database).
    pub name: String,
    /// Number of columns; every tuple has exactly this many values.
    pub arity: usize,
    /// Rows, duplicate-free, in first-occurrence order. Order is
    /// persisted and replayed exactly so recovered query results are
    /// byte-identical to the pre-crash server's.
    pub tuples: Vec<Tuple>,
}

/// A whole database's data: the unit snapshots store and recovery
/// returns. Relations keep their creation order (deterministic, though
/// nothing downstream depends on it).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DbContents {
    /// The database's relations.
    pub relations: Vec<RelationData>,
}

impl DbContents {
    /// The relation named `name`, if present.
    pub fn get(&self, name: &str) -> Option<&RelationData> {
        self.relations.iter().find(|r| r.name == name)
    }

    /// Replaces (or creates) `rel` with exactly `tuples` — the `load`
    /// verb's semantics. Tuples must be pre-deduplicated; the caller
    /// (catalog or WAL replay) guarantees it.
    pub fn apply_load(&mut self, rel: &str, arity: usize, tuples: Vec<Tuple>) {
        match self.relations.iter_mut().find(|r| r.name == rel) {
            Some(r) => {
                r.arity = arity;
                r.tuples = tuples;
            }
            None => self.relations.push(RelationData {
                name: rel.to_string(),
                arity,
                tuples,
            }),
        }
    }

    /// Appends one tuple to `rel`, creating the relation with the
    /// tuple's arity if absent — the `add` verb's semantics, including
    /// its first-occurrence dedup (a duplicate add is a no-op).
    pub fn apply_add(&mut self, rel: &str, tuple: &Tuple) {
        match self.relations.iter_mut().find(|r| r.name == rel) {
            Some(r) => {
                if !r.tuples.contains(tuple) {
                    r.tuples.push(tuple.clone());
                }
            }
            None => self.relations.push(RelationData {
                name: rel.to_string(),
                arity: tuple.len(),
                tuples: vec![tuple.clone()],
            }),
        }
    }

    /// Total number of tuples across all relations.
    pub fn tuple_count(&self) -> usize {
        self.relations.iter().map(|r| r.tuples.len()).sum()
    }
}

/// Why a mutation could not be made durable. The catalog refuses the
/// mutation (nothing is published) when its persister returns this.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PersistError {
    /// The operation that failed (`create`, `append`, `snapshot`, …).
    pub op: &'static str,
    /// Human-readable cause, usually the underlying I/O error.
    pub detail: String,
}

impl PersistError {
    pub(crate) fn io(op: &'static str, err: &std::io::Error) -> Self {
        PersistError {
            op,
            detail: err.to_string(),
        }
    }
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "durability {} failed: {}", self.op, self.detail)
    }
}

impl std::error::Error for PersistError {}

/// Counter snapshot of a store's activity since open, plus what recovery
/// did at open. Exposed on `/metrics` via
/// [`Persister::render_prometheus`].
#[derive(Debug, Clone, Default)]
pub struct DurabilityStats {
    /// WAL records appended (commits logged).
    pub wal_appends: u64,
    /// Bytes appended to WALs.
    pub wal_bytes: u64,
    /// `fsync` calls issued on commit paths.
    pub fsyncs: u64,
    /// Commit-path `fsync` latency distribution, in microseconds.
    pub fsync_us: HistSnapshot,
    /// Full snapshot files written (checkpoints + wholesale inserts).
    pub snapshot_writes: u64,
    /// What recovery found at open.
    pub recovery: RecoveryReport,
}

/// The hook the catalog calls on every mutating path, *before*
/// publishing the mutation, while holding its writer lock (so calls are
/// totally ordered per catalog). An `Err` aborts the mutation; the
/// catalog stays on its previous state and the client sees a typed
/// error — never an acknowledged-but-volatile write.
///
/// `version` is the catalog-wide `DbVersion` counter value assigned to
/// the mutation (this crate only transports the number); it is persisted
/// so recovered databases resume their pre-crash version numbering.
pub trait Persister: Send + Sync {
    /// A database was created empty.
    fn record_create(&self, db: &str, version: u64) -> Result<(), PersistError>;
    /// A database was dropped. Must be durable (a recovered catalog may
    /// not resurrect the name).
    fn record_drop(&self, db: &str, version: u64) -> Result<(), PersistError>;
    /// `load`: `rel` now contains exactly `tuples` (pre-deduplicated).
    fn record_load(
        &self,
        db: &str,
        rel: &str,
        arity: usize,
        tuples: &[Tuple],
        version: u64,
    ) -> Result<(), PersistError>;
    /// `add`: one tuple appended to `rel` (created if absent).
    fn record_add(
        &self,
        db: &str,
        rel: &str,
        tuple: &Tuple,
        version: u64,
    ) -> Result<(), PersistError>;
    /// Wholesale create-or-replace of a database (the embedded
    /// `Catalog::insert` path). Persisted as a fresh snapshot.
    fn record_insert(
        &self,
        db: &str,
        contents: &DbContents,
        version: u64,
    ) -> Result<(), PersistError>;
    /// Activity counters for stats lines and benches.
    fn stats(&self) -> DurabilityStats;
    /// Prometheus exposition of the store's metrics, appended to the
    /// engine's `/metrics` page.
    fn render_prometheus(&self) -> String {
        String::new()
    }
}
