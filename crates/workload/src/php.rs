//! Pigeonhole-principle instances.
//!
//! `PHP(p, h)` — place `p` pigeons into `h` holes, no two pigeons sharing
//! a hole — is the classic family whose CSP encoding has a *complete*
//! constraint graph: treewidth `p − 1`, the worst case for structural
//! methods. It stress-tests the limits Theorem 1 predicts: no project-join
//! order can keep intermediate arity below the treewidth + 1, so even
//! bucket elimination goes exponential here. Unsatisfiable iff `p > h`.

use ppr_query::{Atom, ConjunctiveQuery, Database, Vars};
use ppr_relalg::{AttrId, Relation, Schema, Value};

/// Base column ids for the disequality relation.
const BASE_COL: u32 = 4_000_000;

/// The binary disequality relation over `h` holes: all ordered pairs of
/// distinct holes (`h(h−1)` tuples).
pub fn neq_relation(holes: u32) -> Relation {
    assert!(holes >= 1);
    let schema = Schema::new(vec![AttrId(BASE_COL), AttrId(BASE_COL + 1)]);
    let mut rows = Vec::with_capacity((holes * holes.saturating_sub(1)) as usize);
    for a in 0..holes {
        for b in 0..holes {
            if a != b {
                rows.push(vec![a as Value, b as Value].into_boxed_slice());
            }
        }
    }
    Relation::from_distinct_rows("neq", schema, rows)
}

/// Builds the Boolean PHP(p, h) query: one variable per pigeon (its
/// hole), one `neq` atom per pigeon pair. Nonempty iff `p ≤ h`.
pub fn php_query(pigeons: usize, holes: u32) -> (ConjunctiveQuery, Database) {
    assert!(pigeons >= 2, "need at least two pigeons for a constraint");
    let mut vars = Vars::new();
    let ids = vars.intern_numbered("pigeon", pigeons);
    let mut atoms = Vec::with_capacity(pigeons * (pigeons - 1) / 2);
    for i in 0..pigeons {
        for j in (i + 1)..pigeons {
            atoms.push(Atom::new("neq", vec![ids[i], ids[j]]));
        }
    }
    let query = ConjunctiveQuery::new(atoms, vec![ids[0]], vars, true);
    let mut db = Database::new();
    db.add(neq_relation(holes));
    (query, db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppr_relalg::{exec, Budget, Plan};

    fn straightforward(q: &ConjunctiveQuery, db: &Database) -> Plan {
        let mut atoms = q.atoms.iter();
        let first = atoms.next().unwrap();
        let mut p = Plan::scan(db.expect(&first.relation), first.args.clone());
        for a in atoms {
            p = p.join(Plan::scan(db.expect(&a.relation), a.args.clone()));
        }
        p.project(q.free.clone())
    }

    #[test]
    fn neq_relation_size() {
        assert_eq!(neq_relation(4).len(), 12);
        assert_eq!(neq_relation(1).len(), 0);
    }

    #[test]
    fn php_satisfiable_iff_enough_holes() {
        for (p, h, expected) in [
            (3usize, 3u32, true),
            (4, 3, false),
            (3, 4, true),
            (4, 4, true),
            (5, 4, false),
        ] {
            let (q, db) = php_query(p, h);
            let plan = straightforward(&q, &db);
            let (rel, _) = exec::execute(&plan, &Budget::unlimited()).unwrap();
            assert_eq!(!rel.is_empty(), expected, "PHP({p},{h})");
        }
    }

    #[test]
    fn php_constraint_graph_is_complete() {
        use ppr_query::JoinGraph;
        let (q, _) = php_query(5, 5);
        let jg = JoinGraph::of(&q);
        assert_eq!(jg.graph.size(), 10); // C(5,2)
        assert_eq!(q.num_atoms(), 10);
    }

    #[test]
    fn php_treewidth_is_pigeons_minus_one() {
        use ppr_graph::treewidth::treewidth_exact;
        use ppr_query::JoinGraph;
        let (q, _) = php_query(6, 6);
        let jg = JoinGraph::of(&q);
        assert_eq!(treewidth_exact(&jg.graph), 5);
    }
}
