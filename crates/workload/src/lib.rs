#![warn(missing_docs)]

//! Workload generators for the *Projection Pushing Revisited* reproduction.
//!
//! The paper's experimental queries are translations of combinatorial
//! problems into project-join queries over tiny databases (§2):
//!
//! * [`color`] — k-COLOR (the paper's main 3-COLOR workload): a graph `G`
//!   becomes the query `π_{v_1} ⋈_{(v_i,v_j) ∈ E} edge(v_i, v_j)` over a
//!   single 6-tuple `edge` relation; the query is nonempty iff `G` is
//!   3-colorable.
//! * [`sat`] — random 3-SAT and 2-SAT (§7 reports these as consistent with
//!   3-COLOR; Fig. 2's caption uses 3-SAT with 5 variables): each clause
//!   becomes an atom over a relation holding the clause's satisfying
//!   assignments.
//! * [`php`] — pigeonhole instances: complete constraint graphs, the
//!   treewidth worst case Theorem 1 predicts no method can beat.
//! * [`spec`] — declarative experiment descriptors used by the benchmark
//!   harness to name and rebuild every instance deterministically.

pub mod color;
pub mod php;
pub mod sat;
pub mod spec;

pub use color::{color_query, edge_relation, ColorQueryOptions};
pub use php::{neq_relation, php_query};
pub use sat::{parse_dimacs, random_sat, sat_query, SatInstance};
pub use spec::{InstanceSpec, QueryShape};
