//! k-COLOR → project-join query translation (paper §2, §6.1).

use rand::seq::SliceRandom;
use rand::Rng;

use ppr_graph::Graph;
use ppr_query::{Atom, ConjunctiveQuery, Database, Vars};
use ppr_relalg::{AttrId, Relation, Schema, Value};

/// Base column ids for stored relations, far away from query-variable ids.
const BASE_COL: u32 = 2_000_000;

/// The `edge` relation for `k` colors: all ordered pairs of *distinct*
/// colors (`k(k−1)` tuples; 6 for the paper's 3 colors).
///
/// ```
/// assert_eq!(ppr_workload::edge_relation(3).len(), 6);
/// ```
pub fn edge_relation(k: u32) -> Relation {
    assert!(k >= 1);
    let schema = Schema::new(vec![AttrId(BASE_COL), AttrId(BASE_COL + 1)]);
    let mut rows = Vec::with_capacity((k * (k - 1)) as usize);
    for a in 1..=k {
        for b in 1..=k {
            if a != b {
                rows.push(vec![a as Value, b as Value].into_boxed_slice());
            }
        }
    }
    Relation::from_distinct_rows("edge", schema, rows)
}

/// Options controlling the query translation.
#[derive(Debug, Clone)]
pub struct ColorQueryOptions {
    /// Number of colors (3 throughout the paper).
    pub colors: u32,
    /// Fraction of vertices made free (projected) — `0.0` yields the
    /// Boolean query, the paper's non-Boolean experiments use `0.2`.
    pub free_fraction: f64,
}

impl Default for ColorQueryOptions {
    fn default() -> Self {
        ColorQueryOptions {
            colors: 3,
            free_fraction: 0.0,
        }
    }
}

impl ColorQueryOptions {
    /// The paper's Boolean 3-COLOR setup.
    pub fn boolean() -> Self {
        ColorQueryOptions::default()
    }

    /// The paper's non-Boolean setup: 20% of the vertices free.
    pub fn non_boolean() -> Self {
        ColorQueryOptions {
            colors: 3,
            free_fraction: 0.2,
        }
    }
}

/// Translates `graph` into a project-join query and its database.
///
/// Atoms appear in the graph's edge listing order — the order the
/// straightforward method evaluates in. In the Boolean case the SELECT
/// carries the first vertex of the first edge (SQL cannot express
/// zero-column queries); in the non-Boolean case `free_fraction` of the
/// vertices that occur in edges are chosen uniformly (paper §6.1: "we pick
/// 20% of the vertices randomly to be free").
///
/// The query result is nonempty iff `graph` is `colors`-colorable.
pub fn color_query<R: Rng + ?Sized>(
    graph: &Graph,
    options: &ColorQueryOptions,
    rng: &mut R,
) -> (ConjunctiveQuery, Database) {
    assert!(
        !graph.edges().is_empty(),
        "a graph with no edges yields no atoms"
    );
    let mut vars = Vars::new();
    let ids = vars.intern_numbered("v", graph.order());
    let atoms: Vec<Atom> = graph
        .edges()
        .iter()
        .map(|&(u, v)| Atom::new("edge", vec![ids[u], ids[v]]))
        .collect();

    // Vertices that occur in at least one edge, in vertex order.
    let occurring: Vec<usize> = (0..graph.order())
        .filter(|&v| graph.degree(v) > 0)
        .collect();

    let (free, boolean) = if options.free_fraction <= 0.0 {
        let first = graph.edges()[0].0;
        (vec![ids[first]], true)
    } else {
        let count = ((occurring.len() as f64) * options.free_fraction).round() as usize;
        let count = count.clamp(1, occurring.len());
        let mut pool = occurring.clone();
        pool.shuffle(rng);
        let mut chosen: Vec<usize> = pool.into_iter().take(count).collect();
        chosen.sort_unstable();
        (chosen.into_iter().map(|v| ids[v]).collect(), false)
    };

    let query = ConjunctiveQuery::new(atoms, free, vars, boolean);
    let mut db = Database::new();
    db.add(edge_relation(options.colors));
    (query, db)
}

/// Reference k-colorability check by backtracking (exponential; for tests
/// and harness ground truth on small instances).
pub fn is_colorable(graph: &Graph, k: u32) -> bool {
    fn go(graph: &Graph, k: u32, colors: &mut [u32], v: usize) -> bool {
        if v == graph.order() {
            return true;
        }
        for c in 1..=k {
            if graph.neighbors(v).iter().all(|&w| colors[w] != c) {
                colors[v] = c;
                if go(graph, k, colors, v + 1) {
                    return true;
                }
                colors[v] = 0;
            }
        }
        false
    }
    let mut colors = vec![0u32; graph.order()];
    go(graph, k, &mut colors, 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppr_graph::families;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn edge_relation_has_k_times_k_minus_1_tuples() {
        assert_eq!(edge_relation(3).len(), 6);
        assert_eq!(edge_relation(2).len(), 2);
        assert_eq!(edge_relation(4).len(), 12);
    }

    #[test]
    fn edge_relation_excludes_monochromatic() {
        let r = edge_relation(3);
        for t in r.tuples() {
            assert_ne!(t[0], t[1]);
        }
    }

    #[test]
    fn boolean_query_shape() {
        let g = families::cycle(5);
        let (q, db) = color_query(&g, &ColorQueryOptions::boolean(), &mut rng());
        assert_eq!(q.num_atoms(), 5);
        assert!(q.is_boolean());
        assert_eq!(q.free.len(), 1);
        assert_eq!(db.expect("edge").len(), 6);
    }

    #[test]
    fn non_boolean_query_frees_a_fifth() {
        let g = families::ladder(10); // 20 vertices, all occurring
        let (q, _) = color_query(&g, &ColorQueryOptions::non_boolean(), &mut rng());
        assert!(!q.is_boolean());
        assert_eq!(q.free.len(), 4); // 20% of 20
    }

    #[test]
    fn free_vertices_occur_in_edges() {
        let mut g = families::path(4);
        // Add isolated vertices by rebuilding with a larger order.
        g = {
            let mut h = ppr_graph::Graph::new(8);
            for &(u, v) in g.edges() {
                h.add_edge(u, v);
            }
            h
        };
        let opts = ColorQueryOptions {
            colors: 3,
            free_fraction: 0.9,
        };
        let (q, _) = color_query(&g, &opts, &mut rng());
        for &f in &q.free {
            assert!(q.atoms.iter().any(|a| a.mentions(f)));
        }
    }

    #[test]
    fn reference_colorability() {
        assert!(is_colorable(&families::cycle(4), 2));
        assert!(!is_colorable(&families::cycle(5), 2));
        assert!(is_colorable(&families::cycle(5), 3));
        assert!(!is_colorable(&families::complete(4), 3));
        assert!(is_colorable(&families::complete(4), 4));
    }

    #[test]
    #[should_panic(expected = "no edges")]
    fn empty_graph_rejected() {
        let g = ppr_graph::Graph::new(3);
        color_query(&g, &ColorQueryOptions::boolean(), &mut rng());
    }

    #[test]
    fn atoms_follow_edge_listing_order() {
        let g = families::path(4);
        let (q, _) = color_query(&g, &ColorQueryOptions::boolean(), &mut rng());
        let names: Vec<String> = q
            .atoms
            .iter()
            .map(|a| format!("{}-{}", q.vars.name(a.args[0]), q.vars.name(a.args[1])))
            .collect();
        assert_eq!(names, vec!["v0-v1", "v1-v2", "v2-v3"]);
    }
}
