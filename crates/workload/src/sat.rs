//! Random k-SAT → project-join query translation.
//!
//! §7 of the paper: "we have also tested our algorithms on queries
//! constructed from 3-SAT and 2-SAT and have obtained results that are
//! consistent with those reported here", and Fig. 2's caption measures
//! compile time on 3-SAT with 5 variables. A clause with sign pattern
//! `s ∈ {+,−}^k` becomes an atom over the relation `clause<k>_<s>` that
//! holds the clause's `2^k − 1` satisfying assignments.

use std::fmt;

use rand::seq::SliceRandom;
use rand::Rng;

use ppr_query::{Atom, ConjunctiveQuery, Database, Vars};
use ppr_relalg::{AttrId, Relation, Schema, Value};

/// Base column ids for clause relations (disjoint from variable ids and
/// from the color workload's base columns).
const BASE_COL: u32 = 3_000_000;

/// A CNF instance with `k`-literal clauses. Literals are 1-based signed
/// variable indices (DIMACS convention): `-3` is `¬x_3`.
#[derive(Debug, Clone)]
pub struct SatInstance {
    /// Number of variables.
    pub num_vars: usize,
    /// Clauses; each has exactly `k` literals over distinct variables.
    pub clauses: Vec<Vec<i32>>,
}

impl SatInstance {
    /// Clause/variable ratio (the density axis of SAT experiments).
    pub fn density(&self) -> f64 {
        self.clauses.len() as f64 / self.num_vars as f64
    }

    /// Reference DPLL satisfiability check (exponential; for ground truth
    /// on test-scale instances).
    pub fn is_satisfiable(&self) -> bool {
        fn go(clauses: &[Vec<i32>], assign: &mut [Option<bool>], n: usize) -> bool {
            // Find an unassigned variable; check for conflicts first.
            for c in clauses {
                let mut satisfied = false;
                let mut unassigned = 0;
                for &lit in c {
                    match assign[lit.unsigned_abs() as usize - 1] {
                        Some(v) if v == (lit > 0) => {
                            satisfied = true;
                            break;
                        }
                        None => unassigned += 1,
                        _ => {}
                    }
                }
                if !satisfied && unassigned == 0 {
                    return false;
                }
            }
            match (0..n).find(|&v| assign[v].is_none()) {
                None => true,
                Some(v) => {
                    for val in [true, false] {
                        assign[v] = Some(val);
                        if go(clauses, assign, n) {
                            return true;
                        }
                    }
                    assign[v] = None;
                    false
                }
            }
        }
        let mut assign = vec![None; self.num_vars];
        go(&self.clauses, &mut assign, self.num_vars)
    }
}

impl fmt::Display for SatInstance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "p cnf {} {}", self.num_vars, self.clauses.len())?;
        for c in &self.clauses {
            for lit in c {
                write!(f, "{lit} ")?;
            }
            writeln!(f, "0")?;
        }
        Ok(())
    }
}

/// Parses a DIMACS CNF text (`p cnf <vars> <clauses>` header, clauses as
/// whitespace-separated literals terminated by `0`, `c` comment lines).
/// Clauses may have any length ≥ 1; duplicate literals within a clause are
/// collapsed, and a clause containing both polarities of a variable is a
/// tautology and is rejected (the query encoding has no relation for it).
pub fn parse_dimacs(text: &str) -> Result<SatInstance, String> {
    let mut num_vars: Option<usize> = None;
    let mut clauses: Vec<Vec<i32>> = Vec::new();
    let mut current: Vec<i32> = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('c') || line.starts_with('%') {
            continue;
        }
        if let Some(rest) = line.strip_prefix('p') {
            let parts: Vec<&str> = rest.split_whitespace().collect();
            if parts.len() != 3 || parts[0] != "cnf" {
                return Err(format!("bad problem line: {line}"));
            }
            num_vars = Some(
                parts[1]
                    .parse()
                    .map_err(|e| format!("bad variable count: {e}"))?,
            );
            continue;
        }
        for tok in line.split_whitespace() {
            let lit: i32 = tok.parse().map_err(|e| format!("bad literal {tok}: {e}"))?;
            if lit == 0 {
                if current.is_empty() {
                    return Err("empty clause".into());
                }
                let mut clause = std::mem::take(&mut current);
                clause.sort_unstable();
                clause.dedup();
                for w in clause.windows(2) {
                    if w[0] == -w[1] {
                        return Err(format!("tautological clause containing ±{}", w[1]));
                    }
                }
                clauses.push(clause);
            } else {
                current.push(lit);
            }
        }
    }
    if !current.is_empty() {
        return Err("final clause not terminated by 0".into());
    }
    let declared = num_vars.ok_or("missing `p cnf` header")?;
    let max_used = clauses
        .iter()
        .flatten()
        .map(|l| l.unsigned_abs() as usize)
        .max()
        .unwrap_or(0);
    if max_used > declared {
        return Err(format!("literal {max_used} exceeds declared {declared}"));
    }
    if clauses.is_empty() {
        return Err("no clauses".into());
    }
    Ok(SatInstance {
        num_vars: declared,
        clauses,
    })
}

/// Generates a uniform random `k`-SAT instance: each clause draws `k`
/// distinct variables uniformly and negates each with probability ½.
/// Duplicate clauses are allowed (the standard fixed-clause-length model).
pub fn random_sat<R: Rng + ?Sized>(
    num_vars: usize,
    num_clauses: usize,
    k: usize,
    rng: &mut R,
) -> SatInstance {
    assert!(k >= 1 && k <= num_vars, "need 1 ≤ k ≤ num_vars");
    let mut clauses = Vec::with_capacity(num_clauses);
    let mut pool: Vec<usize> = (1..=num_vars).collect();
    for _ in 0..num_clauses {
        pool.shuffle(rng);
        let clause: Vec<i32> = pool[..k]
            .iter()
            .map(|&v| {
                if rng.random_bool(0.5) {
                    v as i32
                } else {
                    -(v as i32)
                }
            })
            .collect();
        clauses.push(clause);
    }
    SatInstance { num_vars, clauses }
}

/// The relation of satisfying assignments for sign pattern `signs`
/// (`true` = positive literal). Values: 0 = false, 1 = true.
fn clause_relation(signs: &[bool]) -> Relation {
    let k = signs.len();
    let name = clause_relation_name(signs);
    let attrs: Vec<AttrId> = (0..k).map(|i| AttrId(BASE_COL + i as u32)).collect();
    let mut rows = Vec::with_capacity((1usize << k) - 1);
    for bits in 0..(1u32 << k) {
        let assignment: Vec<Value> = (0..k).map(|i| (bits >> i) & 1).collect();
        let satisfies = (0..k).any(|i| (assignment[i] == 1) == signs[i]);
        if satisfies {
            rows.push(assignment.into_boxed_slice());
        }
    }
    Relation::from_distinct_rows(name, Schema::new(attrs), rows)
}

/// Name of the relation for a sign pattern, e.g. `clause3_pnp` for
/// `(x ∨ ¬y ∨ z)`.
fn clause_relation_name(signs: &[bool]) -> String {
    let mut name = format!("clause{}_", signs.len());
    for &s in signs {
        name.push(if s { 'p' } else { 'n' });
    }
    name
}

/// Translates a SAT instance into a project-join query and database. The
/// query is nonempty iff the instance is satisfiable. `free_fraction` as in
/// the color workload: 0 yields the Boolean query.
pub fn sat_query<R: Rng + ?Sized>(
    instance: &SatInstance,
    free_fraction: f64,
    rng: &mut R,
) -> (ConjunctiveQuery, Database) {
    assert!(!instance.clauses.is_empty(), "need at least one clause");
    let mut vars = Vars::new();
    let ids = vars.intern_numbered("x", instance.num_vars);
    let mut db = Database::new();
    let mut atoms = Vec::with_capacity(instance.clauses.len());
    for clause in &instance.clauses {
        let signs: Vec<bool> = clause.iter().map(|&l| l > 0).collect();
        let name = clause_relation_name(&signs);
        if db.get(&name).is_none() {
            db.add(clause_relation(&signs));
        }
        let args: Vec<AttrId> = clause
            .iter()
            .map(|&l| ids[l.unsigned_abs() as usize - 1])
            .collect();
        atoms.push(Atom::new(name, args));
    }

    let occurring: Vec<AttrId> = {
        let mut seen = Vec::new();
        for a in &atoms {
            for v in a.vars() {
                if !seen.contains(&v) {
                    seen.push(v);
                }
            }
        }
        seen
    };
    let (free, boolean) = if free_fraction <= 0.0 {
        (vec![occurring[0]], true)
    } else {
        let count = ((occurring.len() as f64) * free_fraction).round() as usize;
        let count = count.clamp(1, occurring.len());
        let mut pool = occurring.clone();
        pool.shuffle(rng);
        let mut chosen: Vec<AttrId> = pool.into_iter().take(count).collect();
        chosen.sort_unstable();
        (chosen, false)
    };

    (ConjunctiveQuery::new(atoms, free, vars, boolean), db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(11)
    }

    #[test]
    fn clause_relation_sizes() {
        assert_eq!(clause_relation(&[true, true, true]).len(), 7);
        assert_eq!(clause_relation(&[false, false]).len(), 3);
        assert_eq!(clause_relation(&[true]).len(), 1);
    }

    #[test]
    fn clause_relation_semantics() {
        // (x ∨ ¬y): rows where x=1 or y=0.
        let r = clause_relation(&[true, false]);
        for t in r.tuples() {
            assert!(t[0] == 1 || t[1] == 0, "bad row {t:?}");
        }
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn relation_names_encode_pattern() {
        assert_eq!(clause_relation_name(&[true, false, true]), "clause3_pnp");
    }

    #[test]
    fn random_sat_shape() {
        let inst = random_sat(5, 20, 3, &mut rng());
        assert_eq!(inst.num_vars, 5);
        assert_eq!(inst.clauses.len(), 20);
        for c in &inst.clauses {
            assert_eq!(c.len(), 3);
            let mut vars: Vec<u32> = c.iter().map(|l| l.unsigned_abs()).collect();
            vars.sort_unstable();
            vars.dedup();
            assert_eq!(vars.len(), 3, "duplicate variable in clause {c:?}");
        }
        assert!((inst.density() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn dpll_reference() {
        // (x1) ∧ (¬x1): unsatisfiable.
        let unsat = SatInstance {
            num_vars: 1,
            clauses: vec![vec![1], vec![-1]],
        };
        assert!(!unsat.is_satisfiable());
        let sat = SatInstance {
            num_vars: 2,
            clauses: vec![vec![1, 2], vec![-1, 2]],
        };
        assert!(sat.is_satisfiable());
    }

    #[test]
    fn sat_query_structure() {
        let inst = random_sat(5, 8, 3, &mut rng());
        let (q, db) = sat_query(&inst, 0.0, &mut rng());
        assert_eq!(q.num_atoms(), 8);
        assert!(q.is_boolean());
        // At most 8 distinct sign-pattern relations for 3-SAT.
        assert!(db.len() <= 8);
        for name in db.names() {
            assert!(name.starts_with("clause3_"));
            assert_eq!(db.expect(name).len(), 7);
        }
    }

    #[test]
    fn non_boolean_sat_query() {
        let inst = random_sat(10, 15, 3, &mut rng());
        let (q, _) = sat_query(&inst, 0.2, &mut rng());
        assert!(!q.is_boolean());
        assert_eq!(q.free.len(), 2);
    }

    #[test]
    fn two_sat_relations() {
        let inst = random_sat(6, 10, 2, &mut rng());
        let (_, db) = sat_query(&inst, 0.0, &mut rng());
        for name in db.names() {
            assert!(name.starts_with("clause2_"));
            assert_eq!(db.expect(name).len(), 3);
        }
    }

    #[test]
    fn dimacs_roundtrip() {
        let inst = random_sat(6, 12, 3, &mut rng());
        let parsed = parse_dimacs(&inst.to_string()).unwrap();
        assert_eq!(parsed.num_vars, 6);
        assert_eq!(parsed.clauses.len(), 12);
        assert_eq!(parsed.is_satisfiable(), inst.is_satisfiable());
    }

    #[test]
    fn dimacs_parses_comments_and_splits() {
        let text = "c a comment\np cnf 3 2\n1 -2 0 2\n3 0\n";
        let inst = parse_dimacs(text).unwrap();
        assert_eq!(inst.clauses, vec![vec![-2, 1], vec![2, 3]]);
    }

    #[test]
    fn dimacs_rejects_malformed() {
        assert!(parse_dimacs("1 2 0").is_err()); // no header
        assert!(parse_dimacs("p cnf 2 1\n1 3 0").is_err()); // var overflow
        assert!(parse_dimacs("p cnf 2 1\n1 -1 0").is_err()); // tautology
        assert!(parse_dimacs("p cnf 2 1\n1 2").is_err()); // unterminated
        assert!(parse_dimacs("p cnf 2 0").is_err()); // no clauses
    }

    #[test]
    fn dimacs_display() {
        let inst = SatInstance {
            num_vars: 2,
            clauses: vec![vec![1, -2]],
        };
        let s = inst.to_string();
        assert!(s.contains("p cnf 2 1"));
        assert!(s.contains("1 -2 0"));
    }
}
