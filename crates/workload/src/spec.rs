//! Declarative instance descriptors.
//!
//! The benchmark harness regenerates every figure from a list of
//! [`InstanceSpec`]s; keeping generation declarative and seeded makes every
//! reported number reproducible from the command line.

use std::fmt;

use rand::rngs::StdRng;
use rand::SeedableRng;

use ppr_graph::{families, generate, Graph};
use ppr_query::{ConjunctiveQuery, Database};

use crate::color::{color_query, ColorQueryOptions};
use crate::sat::{random_sat, sat_query};

/// Which graph/formula family an instance comes from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QueryShape {
    /// Uniform random graph with `order` vertices and `round(density·order)`
    /// edges (3-COLOR).
    Random {
        /// Number of vertices.
        order: usize,
        /// Edge/vertex ratio.
        density: f64,
    },
    /// Figure 1a.
    AugmentedPath {
        /// Path length.
        order: usize,
    },
    /// Figure 1b.
    Ladder {
        /// Number of rungs.
        order: usize,
    },
    /// Figure 1c.
    AugmentedLadder {
        /// Number of rungs.
        order: usize,
    },
    /// Figure 1d.
    AugmentedCircularLadder {
        /// Number of rungs.
        order: usize,
    },
    /// Random k-SAT with `order` variables and `round(density·order)`
    /// clauses.
    Sat {
        /// Number of variables.
        order: usize,
        /// Clause/variable ratio.
        density: f64,
        /// Literals per clause (3 or 2 in the paper).
        k: usize,
    },
}

/// A fully determined experiment instance.
#[derive(Debug, Clone)]
pub struct InstanceSpec {
    /// The family and size.
    pub shape: QueryShape,
    /// RNG seed (graph/formula generation and free-variable choice).
    pub seed: u64,
    /// Fraction of variables projected (0 = Boolean; the paper's
    /// non-Boolean runs use 0.2).
    pub free_fraction: f64,
}

impl InstanceSpec {
    /// Builds the instance's query and database.
    pub fn build(&self) -> (ConjunctiveQuery, Database) {
        let mut rng = StdRng::seed_from_u64(self.seed);
        match self.shape {
            QueryShape::Sat { order, density, k } => {
                let m = (density * order as f64).round() as usize;
                let inst = random_sat(order, m.max(1), k, &mut rng);
                sat_query(&inst, self.free_fraction, &mut rng)
            }
            _ => {
                let graph = self.graph(&mut rng);
                let options = ColorQueryOptions {
                    colors: 3,
                    free_fraction: self.free_fraction,
                };
                color_query(&graph, &options, &mut rng)
            }
        }
    }

    /// The underlying graph for color-workload shapes. SAT shapes panic.
    pub fn graph(&self, rng: &mut StdRng) -> Graph {
        match self.shape {
            QueryShape::Random { order, density } => {
                generate::random_graph_density(order, density, rng)
            }
            QueryShape::AugmentedPath { order } => families::augmented_path(order),
            QueryShape::Ladder { order } => families::ladder(order),
            QueryShape::AugmentedLadder { order } => families::augmented_ladder(order),
            QueryShape::AugmentedCircularLadder { order } => {
                families::augmented_circular_ladder(order)
            }
            QueryShape::Sat { .. } => panic!("SAT instances have no underlying graph"),
        }
    }
}

impl fmt::Display for InstanceSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.shape {
            QueryShape::Random { order, density } => write!(f, "random(n={order}, d={density})")?,
            QueryShape::AugmentedPath { order } => write!(f, "augpath(n={order})")?,
            QueryShape::Ladder { order } => write!(f, "ladder(n={order})")?,
            QueryShape::AugmentedLadder { order } => write!(f, "augladder(n={order})")?,
            QueryShape::AugmentedCircularLadder { order } => write!(f, "augcircladder(n={order})")?,
            QueryShape::Sat { order, density, k } => write!(f, "{k}sat(n={order}, d={density})")?,
        }
        write!(f, " seed={} free={}", self.seed, self.free_fraction)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_spec_builds() {
        let spec = InstanceSpec {
            shape: QueryShape::Random {
                order: 10,
                density: 2.0,
            },
            seed: 3,
            free_fraction: 0.0,
        };
        let (q, db) = spec.build();
        assert_eq!(q.num_atoms(), 20);
        assert!(db.get("edge").is_some());
    }

    #[test]
    fn builds_are_deterministic() {
        let spec = InstanceSpec {
            shape: QueryShape::Random {
                order: 12,
                density: 3.0,
            },
            seed: 99,
            free_fraction: 0.2,
        };
        let (q1, _) = spec.build();
        let (q2, _) = spec.build();
        assert_eq!(q1.atoms, q2.atoms);
        assert_eq!(q1.free, q2.free);
    }

    #[test]
    fn structured_specs_build() {
        for shape in [
            QueryShape::AugmentedPath { order: 5 },
            QueryShape::Ladder { order: 5 },
            QueryShape::AugmentedLadder { order: 5 },
            QueryShape::AugmentedCircularLadder { order: 5 },
        ] {
            let spec = InstanceSpec {
                shape,
                seed: 1,
                free_fraction: 0.0,
            };
            let (q, _) = spec.build();
            assert!(q.num_atoms() > 0, "{spec}");
        }
    }

    #[test]
    fn sat_spec_builds() {
        let spec = InstanceSpec {
            shape: QueryShape::Sat {
                order: 5,
                density: 4.0,
                k: 3,
            },
            seed: 5,
            free_fraction: 0.0,
        };
        let (q, _) = spec.build();
        assert_eq!(q.num_atoms(), 20);
    }

    #[test]
    fn display_is_informative() {
        let spec = InstanceSpec {
            shape: QueryShape::Ladder { order: 7 },
            seed: 2,
            free_fraction: 0.2,
        };
        let s = spec.to_string();
        assert!(s.contains("ladder(n=7)"));
        assert!(s.contains("seed=2"));
    }
}
