//! Pretty printing in the paper's Appendix-A style.

use std::fmt::Write as _;

use crate::ast::{ColRef, Condition, FromExpr, FromItem, SelectStmt};

/// Renders a statement with `indent`-space nesting and a trailing
/// semicolon, in the layout of the paper's Appendix A.
pub fn render(stmt: &SelectStmt) -> String {
    let mut out = String::new();
    render_stmt(stmt, 0, &mut out);
    out.push(';');
    out
}

fn pad(level: usize, out: &mut String) {
    for _ in 0..level {
        out.push_str("   ");
    }
}

fn render_stmt(stmt: &SelectStmt, level: usize, out: &mut String) {
    pad(level, out);
    out.push_str(if stmt.distinct {
        "SELECT DISTINCT "
    } else {
        "SELECT "
    });
    for (i, c) in stmt.select.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        render_colref(c, out);
    }
    out.push('\n');
    pad(level, out);
    out.push_str("FROM ");
    for (i, f) in stmt.from.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        render_from(f, level, out);
    }
    if !stmt.where_clause.is_empty() {
        out.push('\n');
        pad(level, out);
        out.push_str("WHERE ");
        for (i, c) in stmt.where_clause.iter().enumerate() {
            if i > 0 {
                out.push_str(" AND ");
            }
            render_cond(c, out);
        }
    }
}

fn render_from(expr: &FromExpr, level: usize, out: &mut String) {
    match expr {
        FromExpr::Item(item) => render_item(item, level, out),
        FromExpr::Join { left, right, on } => {
            // The paper prints the outermost join's left operand first,
            // then `JOIN (`, the right operand (often a nested join or a
            // subquery) indented, `)`, and the ON conditions.
            render_from(left, level, out);
            out.push_str(" JOIN ");
            match right.as_ref() {
                FromExpr::Item(item) => render_item(item, level, out),
                nested @ FromExpr::Join { .. } => {
                    out.push_str("(\n");
                    pad(level + 1, out);
                    render_from(nested, level + 1, out);
                    out.push(')');
                }
            }
            out.push('\n');
            pad(level, out);
            out.push_str("ON (");
            if on.is_empty() {
                out.push_str("TRUE");
            } else {
                for (i, c) in on.iter().enumerate() {
                    if i > 0 {
                        out.push_str(" AND ");
                    }
                    render_cond(c, out);
                }
            }
            out.push(')');
        }
    }
}

fn render_item(item: &FromItem, level: usize, out: &mut String) {
    match item {
        FromItem::Table {
            name,
            alias,
            columns,
        } => {
            let _ = write!(out, "{name} {alias} (");
            for (i, c) in columns.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(c);
            }
            out.push(')');
        }
        FromItem::Subquery { query, alias } => {
            out.push_str("(\n");
            render_stmt(query, level + 1, out);
            out.push_str(") AS ");
            out.push_str(alias);
        }
    }
}

fn render_colref(c: &ColRef, out: &mut String) {
    let _ = write!(out, "{}.{}", c.alias, c.column);
}

fn render_cond(c: &Condition, out: &mut String) {
    render_colref(&c.left, out);
    out.push_str(" = ");
    render_colref(&c.right, out);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(alias: &str, cols: &[&str]) -> FromItem {
        FromItem::Table {
            name: "edge".into(),
            alias: alias.into(),
            columns: cols.iter().map(|s| s.to_string()).collect(),
        }
    }

    #[test]
    fn renders_flat_select() {
        let stmt = SelectStmt {
            distinct: true,
            select: vec![ColRef::new("e1", "v1")],
            from: vec![
                FromExpr::item(table("e1", &["v1", "v2"])),
                FromExpr::item(table("e2", &["v1", "v5"])),
            ],
            where_clause: vec![Condition::eq(
                ColRef::new("e1", "v1"),
                ColRef::new("e2", "v1"),
            )],
        };
        let sql = render(&stmt);
        assert!(sql.starts_with("SELECT DISTINCT e1.v1\n"));
        assert!(sql.contains("FROM edge e1 (v1, v2), edge e2 (v1, v5)"));
        assert!(sql.contains("WHERE e1.v1 = e2.v1"));
        assert!(sql.ends_with(';'));
    }

    #[test]
    fn renders_join_with_on() {
        let from = FromExpr::item(table("e2", &["v1", "v5"])).join(
            FromExpr::item(table("e1", &["v1", "v2"])),
            vec![Condition::eq(
                ColRef::new("e1", "v1"),
                ColRef::new("e2", "v1"),
            )],
        );
        let stmt = SelectStmt::distinct(vec![ColRef::new("e1", "v1")], from);
        let sql = render(&stmt);
        assert!(sql.contains("edge e2 (v1, v5) JOIN edge e1 (v1, v2)"));
        assert!(sql.contains("ON (e1.v1 = e2.v1)"));
    }

    #[test]
    fn renders_on_true_for_cross_join() {
        let from = FromExpr::item(table("e1", &["v1", "v2"]))
            .join(FromExpr::item(table("e2", &["v3", "v4"])), vec![]);
        let stmt = SelectStmt::distinct(vec![ColRef::new("e1", "v1")], from);
        assert!(render(&stmt).contains("ON (TRUE)"));
    }

    #[test]
    fn renders_subquery_with_alias_and_indent() {
        let inner = SelectStmt::distinct(
            vec![ColRef::new("e1", "v2")],
            FromExpr::item(table("e1", &["v1", "v2"])),
        );
        let from = FromExpr::item(table("e2", &["v2", "v3"])).join(
            FromExpr::item(FromItem::Subquery {
                query: Box::new(inner),
                alias: "t1".into(),
            }),
            vec![Condition::eq(
                ColRef::new("t1", "v2"),
                ColRef::new("e2", "v2"),
            )],
        );
        let stmt = SelectStmt::distinct(vec![ColRef::new("e2", "v3")], from);
        let sql = render(&stmt);
        assert!(sql.contains("JOIN (\n   SELECT DISTINCT e1.v2\n   FROM edge e1 (v1, v2)) AS t1"));
    }

    #[test]
    fn renders_nested_join_parenthesized() {
        let inner = FromExpr::item(table("e2", &["v1", "v5"])).join(
            FromExpr::item(table("e1", &["v1", "v2"])),
            vec![Condition::eq(
                ColRef::new("e1", "v1"),
                ColRef::new("e2", "v1"),
            )],
        );
        let from = FromExpr::item(table("e3", &["v4", "v5"])).join(
            inner,
            vec![Condition::eq(
                ColRef::new("e2", "v5"),
                ColRef::new("e3", "v5"),
            )],
        );
        let stmt = SelectStmt::distinct(vec![ColRef::new("e1", "v1")], from);
        let sql = render(&stmt);
        assert!(sql.contains("edge e3 (v4, v5) JOIN (\n"));
        assert!(sql.contains("ON (e2.v5 = e3.v5)"));
    }
}
