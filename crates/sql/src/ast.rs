//! A minimal SQL AST covering the paper's generated queries.

/// A column reference `alias.column`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColRef {
    /// Table or subquery alias.
    pub alias: String,
    /// Column (variable) name.
    pub column: String,
}

impl ColRef {
    /// Builds `alias.column`.
    pub fn new(alias: impl Into<String>, column: impl Into<String>) -> Self {
        ColRef {
            alias: alias.into(),
            column: column.into(),
        }
    }
}

/// An equality condition `left = right` (the only predicate the paper's
/// queries need).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Condition {
    /// Left column.
    pub left: ColRef,
    /// Right column.
    pub right: ColRef,
}

impl Condition {
    /// Builds `left = right`.
    pub fn eq(left: ColRef, right: ColRef) -> Self {
        Condition { left, right }
    }
}

/// A leaf of a FROM clause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FromItem {
    /// `name alias (col, col, …)` — a base table with positional column
    /// renaming, the paper's `edge e1 (v1, v2)` notation.
    Table {
        /// Base relation name.
        name: String,
        /// Alias.
        alias: String,
        /// Renamed columns, positional.
        columns: Vec<String>,
    },
    /// `( SELECT … ) AS alias` — a materialized subquery.
    Subquery {
        /// The nested statement.
        query: Box<SelectStmt>,
        /// Alias.
        alias: String,
    },
}

impl FromItem {
    /// The alias this item is referred to by.
    pub fn alias(&self) -> &str {
        match self {
            FromItem::Table { alias, .. } => alias,
            FromItem::Subquery { alias, .. } => alias,
        }
    }
}

/// A FROM expression: a leaf or a (possibly nested) `JOIN … ON`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FromExpr {
    /// A single table or subquery.
    Item(FromItem),
    /// `left JOIN right ON (conds)`; empty `on` prints as `ON (TRUE)`,
    /// which appears in the paper's reordering example.
    Join {
        /// Left operand.
        left: Box<FromExpr>,
        /// Right operand.
        right: Box<FromExpr>,
        /// Equality conditions.
        on: Vec<Condition>,
    },
}

impl FromExpr {
    /// Wraps a leaf.
    pub fn item(item: FromItem) -> Self {
        FromExpr::Item(item)
    }

    /// Joins `self` with `right` on `on`.
    pub fn join(self, right: FromExpr, on: Vec<Condition>) -> Self {
        FromExpr::Join {
            left: Box::new(self),
            right: Box::new(right),
            on,
        }
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        match self {
            FromExpr::Item(_) => 1,
            FromExpr::Join { left, right, .. } => left.leaf_count() + right.leaf_count(),
        }
    }
}

/// A SELECT statement. `where_clause` carries the naive formulation's
/// equalities; the structured formulations leave it empty and use JOIN/ON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelectStmt {
    /// `SELECT DISTINCT` vs plain `SELECT`.
    pub distinct: bool,
    /// Projected columns.
    pub select: Vec<ColRef>,
    /// Comma-separated FROM expressions (one entry for JOIN-style queries,
    /// many for the naive cross-product style).
    pub from: Vec<FromExpr>,
    /// Conjunctive WHERE equalities.
    pub where_clause: Vec<Condition>,
}

impl SelectStmt {
    /// A `SELECT DISTINCT` with a single FROM expression and no WHERE.
    pub fn distinct(select: Vec<ColRef>, from: FromExpr) -> Self {
        SelectStmt {
            distinct: true,
            select,
            from: vec![from],
            where_clause: Vec::new(),
        }
    }

    /// Total number of base-table references (including inside
    /// subqueries) — a size measure used in tests.
    pub fn table_refs(&self) -> usize {
        fn in_from(e: &FromExpr) -> usize {
            match e {
                FromExpr::Item(FromItem::Table { .. }) => 1,
                FromExpr::Item(FromItem::Subquery { query, .. }) => query.table_refs(),
                FromExpr::Join { left, right, .. } => in_from(left) + in_from(right),
            }
        }
        self.from.iter().map(in_from).sum()
    }

    /// Maximum subquery nesting depth (0 for a flat statement).
    pub fn nesting_depth(&self) -> usize {
        fn in_from(e: &FromExpr) -> usize {
            match e {
                FromExpr::Item(FromItem::Table { .. }) => 0,
                FromExpr::Item(FromItem::Subquery { query, .. }) => 1 + query.nesting_depth(),
                FromExpr::Join { left, right, .. } => in_from(left).max(in_from(right)),
            }
        }
        self.from.iter().map(in_from).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(alias: &str) -> FromItem {
        FromItem::Table {
            name: "edge".into(),
            alias: alias.into(),
            columns: vec!["u".into(), "w".into()],
        }
    }

    #[test]
    fn leaf_count() {
        let e = FromExpr::item(table("e1")).join(FromExpr::item(table("e2")), vec![]);
        assert_eq!(e.leaf_count(), 2);
    }

    #[test]
    fn table_refs_counts_through_subqueries() {
        let inner = SelectStmt::distinct(vec![ColRef::new("e1", "u")], FromExpr::item(table("e1")));
        let outer = SelectStmt::distinct(
            vec![ColRef::new("t1", "u")],
            FromExpr::item(FromItem::Subquery {
                query: Box::new(inner),
                alias: "t1".into(),
            })
            .join(FromExpr::item(table("e2")), vec![]),
        );
        assert_eq!(outer.table_refs(), 2);
        assert_eq!(outer.nesting_depth(), 1);
    }

    #[test]
    fn alias_access() {
        assert_eq!(table("e9").alias(), "e9");
    }
}
