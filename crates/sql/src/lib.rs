#![warn(missing_docs)]

//! SQL emission substrate.
//!
//! The paper's methods are implemented as SQL *rewrites* sent to
//! PostgreSQL; this crate provides the small AST those rewrites target and
//! a pretty printer whose output matches the shape of the paper's Appendix
//! A examples (`SELECT DISTINCT … FROM edge e1 (v1,v2) JOIN ( … ) ON
//! ( … )`). The engine in `ppr-relalg` executes the equivalent plan trees;
//! the SQL text documents each method's rewrite and lets the output be run
//! on a real PostgreSQL instance unchanged.

pub mod ast;
pub mod emit;

pub use ast::{ColRef, Condition, FromExpr, FromItem, SelectStmt};
