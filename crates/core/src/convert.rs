//! Algorithms 1–3 (paper §5): conversions between join-expression trees
//! and tree decompositions of the join graph.
//!
//! * [`jet_to_tree_decomposition`] (Algorithm 1) — drop the projected
//!   labels; the working labels are the bags. A width-`k` tree gives a
//!   width-`k−1` decomposition (Lemma 1).
//! * [`mark_and_sweep`] (Algorithm 2) — simplify a tree decomposition so
//!   that every remaining label is needed to anchor an atom (or the target
//!   schema) or to maintain connectivity between anchors (Lemma 2). Where
//!   the paper deletes emptied nodes together with their edges, we
//!   *contract* them (reconnecting their neighbors) so the result is
//!   always a tree even when an emptied node was interior.
//! * [`tree_decomposition_to_jet`] (Algorithm 3) — root the simplified
//!   decomposition at the target-schema anchor and hang one leaf per atom
//!   under its anchor. A width-`k` decomposition gives a join-expression
//!   tree of width at most `k+1` (Lemma 3).
//!
//! Together: join width = treewidth + 1 (Theorem 1).

use rustc_hash::{FxHashMap, FxHashSet};

use ppr_graph::TreeDecomposition;
use ppr_query::{ConjunctiveQuery, JoinGraph};

use crate::jet::{Jet, JetStructure};

/// Algorithm 1: the tree decomposition induced by a join-expression tree —
/// nodes and edges are kept, bags are the working labels (as join-graph
/// vertices).
pub fn jet_to_tree_decomposition(jet: &Jet, jg: &JoinGraph) -> TreeDecomposition {
    let bags: Vec<Vec<usize>> = jet
        .nodes()
        .iter()
        .map(|n| n.working.iter().map(|&a| jg.vertex(a)).collect())
        .collect();
    let mut edges = Vec::new();
    for (v, node) in jet.nodes().iter().enumerate() {
        for &c in &node.children {
            edges.push((v, c));
        }
    }
    TreeDecomposition::new(bags, edges)
}

/// The result of [`mark_and_sweep`]: the simplified decomposition plus the
/// anchor node of each atom and of the target schema.
#[derive(Debug, Clone)]
pub struct SimplifiedDecomposition {
    /// The swept decomposition (of the same join graph, same width or
    /// less).
    pub decomposition: TreeDecomposition,
    /// `atom_anchor[j]` is the node whose bag contains atom `j`'s clique.
    pub atom_anchor: Vec<usize>,
    /// Node whose bag contains the target schema.
    pub target_anchor: usize,
}

/// Algorithm 2 (Mark-and-Sweep). Panics if some atom's variables (or the
/// target schema) fit in no bag — impossible for a valid decomposition of
/// the join graph, where every clique is contained in a bag.
pub fn mark_and_sweep(
    td: &TreeDecomposition,
    query: &ConjunctiveQuery,
    jg: &JoinGraph,
) -> SimplifiedDecomposition {
    let n = td.bags().len();
    let bag_sets: Vec<FxHashSet<usize>> = td
        .bags()
        .iter()
        .map(|b| b.iter().copied().collect())
        .collect();

    // Step 1: anchor every atom and the target schema, marking their
    // vertices at the anchor.
    let mut marked: Vec<FxHashSet<usize>> = vec![FxHashSet::default(); n];
    let mut anchors: Vec<(usize, FxHashSet<usize>)> = Vec::new();
    let find_anchor = |vertices: &FxHashSet<usize>| -> usize {
        (0..n)
            .find(|&i| vertices.is_subset(&bag_sets[i]))
            .unwrap_or_else(|| panic!("no bag contains clique {vertices:?}"))
    };
    let mut atom_anchor = Vec::with_capacity(query.num_atoms());
    for atom in &query.atoms {
        let verts: FxHashSet<usize> = atom.vars().iter().map(|&a| jg.vertex(a)).collect();
        let i = find_anchor(&verts);
        marked[i].extend(verts.iter().copied());
        anchors.push((i, verts));
        atom_anchor.push(i);
    }
    let target_verts: FxHashSet<usize> = query.free.iter().map(|&a| jg.vertex(a)).collect();
    let target_anchor = find_anchor(&target_verts);
    marked[target_anchor].extend(target_verts.iter().copied());
    anchors.push((target_anchor, target_verts));

    // Tree adjacency and path finding.
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &(a, b) in td.edges() {
        adj[a].push(b);
        adj[b].push(a);
    }
    let path = |from: usize, to: usize| -> Vec<usize> {
        // BFS parent pointers (trees are small).
        let mut parent = vec![usize::MAX; n];
        let mut queue = std::collections::VecDeque::from([from]);
        parent[from] = from;
        while let Some(v) = queue.pop_front() {
            if v == to {
                break;
            }
            for &w in &adj[v] {
                if parent[w] == usize::MAX {
                    parent[w] = v;
                    queue.push_back(w);
                }
            }
        }
        let mut p = vec![to];
        let mut cur = to;
        while cur != from {
            cur = parent[cur];
            p.push(cur);
        }
        p
    };

    // Step 2: for every pair of anchors, mark along the connecting path
    // the vertices both anchors marked.
    for (ai, (node_i, verts_i)) in anchors.iter().enumerate() {
        for (node_j, verts_j) in anchors.iter().skip(ai + 1) {
            let common: Vec<usize> = verts_i.intersection(verts_j).copied().collect();
            if common.is_empty() {
                continue;
            }
            for k in path(*node_i, *node_j) {
                for &x in &common {
                    if bag_sets[k].contains(&x) {
                        marked[k].insert(x);
                    }
                }
            }
        }
    }

    // Step 3: sweep. Keep only marked labels; contract empty nodes.
    let mut new_bags: Vec<Vec<usize>> = marked
        .iter()
        .map(|m| {
            let mut b: Vec<usize> = m.iter().copied().collect();
            b.sort_unstable();
            b
        })
        .collect();
    let mut alive: Vec<bool> = vec![true; n];
    let mut adj_sets: Vec<FxHashSet<usize>> =
        adj.iter().map(|ns| ns.iter().copied().collect()).collect();
    for k in 0..n {
        if !new_bags[k].is_empty() {
            continue;
        }
        // Contract k: connect its neighbors to one representative.
        alive[k] = false;
        let neighbors: Vec<usize> = adj_sets[k].iter().copied().collect();
        for &m in &neighbors {
            adj_sets[m].remove(&k);
        }
        if let Some((&rep, rest)) = neighbors.split_first() {
            for &m in rest {
                adj_sets[rep].insert(m);
                adj_sets[m].insert(rep);
            }
        }
        adj_sets[k].clear();
    }
    // Compact indices.
    let mut new_index = vec![usize::MAX; n];
    let mut compact_bags = Vec::new();
    for k in 0..n {
        if alive[k] {
            new_index[k] = compact_bags.len();
            compact_bags.push(std::mem::take(&mut new_bags[k]));
        }
    }
    let mut compact_edges = Vec::new();
    for k in 0..n {
        if !alive[k] {
            continue;
        }
        for &m in &adj_sets[k] {
            if alive[m] && k < m {
                compact_edges.push((new_index[k], new_index[m]));
            }
        }
    }
    SimplifiedDecomposition {
        decomposition: TreeDecomposition::new(compact_bags, compact_edges),
        atom_anchor: atom_anchor.into_iter().map(|i| new_index[i]).collect(),
        target_anchor: new_index[target_anchor],
    }
}

/// Algorithm 3: builds a join-expression tree from a tree decomposition.
/// Runs [`mark_and_sweep`] first, roots the simplified decomposition at
/// the target anchor, and hangs a leaf per atom under its anchor. The
/// width of the result is at most `td.width() + 1` (Lemma 3).
pub fn tree_decomposition_to_jet(
    query: &ConjunctiveQuery,
    jg: &JoinGraph,
    td: &TreeDecomposition,
) -> Jet {
    let simplified = mark_and_sweep(td, query, jg);
    let std_ = &simplified.decomposition;
    let n = std_.bags().len();
    // Root the tree at the target anchor.
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &(a, b) in std_.edges() {
        adj[a].push(b);
        adj[b].push(a);
    }
    let root = simplified.target_anchor;
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut visited = vec![false; n];
    let mut stack = vec![root];
    visited[root] = true;
    while let Some(v) = stack.pop() {
        for &w in &adj[v] {
            if !visited[w] {
                visited[w] = true;
                children[v].push(w);
                stack.push(w);
            }
        }
    }
    // Attach atom leaves.
    let mut atom_of: Vec<Option<usize>> = vec![None; n];
    for (j, &anchor) in simplified.atom_anchor.iter().enumerate() {
        let leaf = atom_of.len();
        atom_of.push(Some(j));
        children.push(Vec::new());
        children[anchor].push(leaf);
    }
    Jet::new(
        query,
        JetStructure {
            children,
            atom: atom_of,
            root,
        },
    )
}

/// Connected anchors sanity map (exposed for tests): which simplified node
/// each atom was anchored to.
pub fn anchors_of(simplified: &SimplifiedDecomposition) -> FxHashMap<usize, Vec<usize>> {
    let mut map: FxHashMap<usize, Vec<usize>> = FxHashMap::default();
    for (j, &a) in simplified.atom_anchor.iter().enumerate() {
        map.entry(a).or_default().push(j);
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jet::Jet;
    use crate::methods::test_support::pentagon;
    use ppr_graph::ordering::mcs_order;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(31)
    }

    #[test]
    fn algorithm1_yields_valid_decomposition() {
        let (q, _) = pentagon();
        let jg = JoinGraph::of(&q);
        let jet = Jet::left_deep(&q);
        let td = jet_to_tree_decomposition(&jet, &jg);
        td.validate(&jg.graph).unwrap();
        assert_eq!(td.width(), jet.width() - 1);
    }

    #[test]
    fn algorithm2_shrinks_without_invalidating() {
        let (q, _) = pentagon();
        let jg = JoinGraph::of(&q);
        let order = mcs_order(&jg.graph, &[], &mut rng());
        let td = TreeDecomposition::from_elimination_order(&jg.graph, &order);
        let simplified = mark_and_sweep(&td, &q, &jg);
        simplified.decomposition.validate(&jg.graph).unwrap();
        assert!(simplified.decomposition.width() <= td.width());
        assert_eq!(simplified.atom_anchor.len(), q.num_atoms());
    }

    #[test]
    fn algorithm3_respects_width_bound() {
        let (q, _) = pentagon();
        let jg = JoinGraph::of(&q);
        let order = mcs_order(&jg.graph, &[], &mut rng());
        let td = TreeDecomposition::from_elimination_order(&jg.graph, &order);
        let jet = tree_decomposition_to_jet(&q, &jg, &td);
        assert!(
            jet.width() <= td.width() + 1,
            "{} > {}",
            jet.width(),
            td.width() + 1
        );
    }

    #[test]
    fn roundtrip_preserves_answerability() {
        use ppr_relalg::{exec, Budget};
        let (q, db) = pentagon();
        let jg = JoinGraph::of(&q);
        let order = mcs_order(&jg.graph, &[], &mut rng());
        let td = TreeDecomposition::from_elimination_order(&jg.graph, &order);
        let jet = tree_decomposition_to_jet(&q, &jg, &td);
        let plan = jet.to_plan(&q, &db);
        let (rel, _) = exec::execute(&plan, &Budget::unlimited()).unwrap();
        assert_eq!(rel.len(), 3); // pentagon is 3-colorable, any color for v1
    }

    #[test]
    fn anchors_cover_all_atoms() {
        let (q, _) = pentagon();
        let jg = JoinGraph::of(&q);
        let order = mcs_order(&jg.graph, &[], &mut rng());
        let td = TreeDecomposition::from_elimination_order(&jg.graph, &order);
        let simplified = mark_and_sweep(&td, &q, &jg);
        let map = anchors_of(&simplified);
        let total: usize = map.values().map(|v| v.len()).sum();
        assert_eq!(total, q.num_atoms());
    }
}
