//! Acyclic queries: GYO reduction and Yannakakis evaluation.
//!
//! The paper's structural program began with acyclic joins (\[35\]): for an
//! acyclic query a project-join order exists whose intermediate results
//! stay linear in the database size. The classic algorithm is Yannakakis':
//! build a join tree by GYO reduction, make the relations pairwise
//! consistent with two semijoin sweeps (a *full reducer*), then join
//! bottom-up, projecting early. The paper sidelines semijoins because its
//! 3-COLOR `edge` relation projects to the full domain; this module
//! implements them anyway — they are exactly the "further idea worth
//! exploring" of §7.

use rustc_hash::FxHashSet;

use ppr_query::{ConjunctiveQuery, Database};
use ppr_relalg::{ops, AttrId, Relation};

/// A join tree over the query's atoms: `parent[j]` is the parent atom of
/// atom `j` (`None` for the root).
#[derive(Debug, Clone)]
pub struct JoinTree {
    /// Parent atom index per atom.
    pub parent: Vec<Option<usize>>,
    /// Root atom index.
    pub root: usize,
}

/// GYO reduction. Returns the join tree when the query('s hypergraph) is
/// acyclic, `None` otherwise.
///
/// An *ear* is an atom whose variables are either private to it or all
/// contained in a single other atom (its *witness*). Repeatedly removing
/// ears reduces an acyclic hypergraph to a single edge.
pub fn gyo_join_tree(query: &ConjunctiveQuery) -> Option<JoinTree> {
    let m = query.num_atoms();
    let mut alive: Vec<bool> = vec![true; m];
    let mut parent: Vec<Option<usize>> = vec![None; m];
    let mut removed = 0usize;
    loop {
        if removed == m - 1 {
            let root = (0..m).find(|&j| alive[j]).expect("one atom remains");
            return Some(JoinTree { parent, root });
        }
        let mut progress = false;
        'ears: for e in 0..m {
            if !alive[e] {
                continue;
            }
            // Variables of e shared with other alive atoms.
            let shared: Vec<AttrId> = query.atoms[e]
                .vars()
                .into_iter()
                .filter(|&v| (0..m).any(|f| f != e && alive[f] && query.atoms[f].mentions(v)))
                .collect();
            for f in 0..m {
                if f == e || !alive[f] {
                    continue;
                }
                if shared.iter().all(|&v| query.atoms[f].mentions(v)) {
                    alive[e] = false;
                    parent[e] = Some(f);
                    removed += 1;
                    progress = true;
                    break 'ears;
                }
            }
        }
        if !progress {
            return None;
        }
    }
}

/// Whether the query's hypergraph is acyclic (GYO-reducible).
pub fn is_acyclic(query: &ConjunctiveQuery) -> bool {
    gyo_join_tree(query).is_some()
}

/// Evaluates an acyclic query with Yannakakis' algorithm: full reducer
/// (leaf-to-root and root-to-leaf semijoins), then a bottom-up join with
/// early projection onto `free ∪ connecting variables`. Returns `None` for
/// cyclic queries.
pub fn yannakakis(query: &ConjunctiveQuery, db: &Database) -> Option<Relation> {
    let tree = gyo_join_tree(query)?;
    let m = query.num_atoms();
    // Materialize each atom (bind base columns to variables).
    let mut rels: Vec<Relation> = query
        .atoms
        .iter()
        .map(|a| ops::bind(&db.expect(&a.relation), &a.args))
        .collect();

    // Children lists and a bottom-up order (children before parents).
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); m];
    for (j, p) in tree.parent.iter().enumerate() {
        if let Some(p) = p {
            children[*p].push(j);
        }
    }
    let mut order = Vec::with_capacity(m);
    let mut stack = vec![tree.root];
    while let Some(v) = stack.pop() {
        order.push(v);
        for &c in &children[v] {
            stack.push(c);
        }
    }
    order.reverse(); // children first

    // Upward semijoin sweep: parent ⋉ child.
    for &j in &order {
        if let Some(p) = tree.parent[j] {
            rels[p] = ops::semijoin(&rels[p], &rels[j]);
        }
    }
    // Downward sweep: child ⋉ parent (root-to-leaf order).
    for &j in order.iter().rev() {
        if let Some(p) = tree.parent[j] {
            rels[j] = ops::semijoin(&rels[j], &rels[p]);
        }
    }

    // Bottom-up join with early projection: each node joins its children's
    // results and keeps free variables plus variables shared with the
    // remainder of the tree.
    let free: FxHashSet<AttrId> = query.free.iter().copied().collect();
    // Subtree variable sets.
    let mut sub_vars: Vec<FxHashSet<AttrId>> = vec![FxHashSet::default(); m];
    for &j in &order {
        let mut s: FxHashSet<AttrId> = query.atoms[j].vars().into_iter().collect();
        for &c in &children[j] {
            let child = sub_vars[c].clone();
            s.extend(child);
        }
        sub_vars[j] = s;
    }
    let mut results: Vec<Option<Relation>> = rels.into_iter().map(Some).collect();
    for &j in &order {
        let mut acc = results[j].take().expect("present");
        for &c in &children[j] {
            let child = results[c].take().expect("children processed first");
            acc = ops::natural_join(&acc, &child);
        }
        // Keep: free vars in the subtree + vars occurring outside it.
        let keep: Vec<AttrId> = acc
            .schema()
            .attrs()
            .iter()
            .copied()
            .filter(|&v| {
                free.contains(&v)
                    || (0..m)
                        .any(|f| tree_outside(&sub_vars, &tree, j, f) && query.atoms[f].mentions(v))
            })
            .collect();
        acc = ops::project_distinct(&acc, &keep);
        results[j] = Some(acc);
    }
    let root_rel = results[tree.root].take().expect("root computed");
    Some(ops::project_distinct(&root_rel, &query.free))
}

/// Whether atom `f` lies outside the subtree rooted at `j`.
fn tree_outside(_sub: &[FxHashSet<AttrId>], tree: &JoinTree, j: usize, f: usize) -> bool {
    // Walk up from f; if we hit j the atom is inside j's subtree.
    let mut cur = f;
    loop {
        if cur == j {
            return false;
        }
        match tree.parent[cur] {
            Some(p) => cur = p,
            None => return true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::straightforward;
    use crate::methods::test_support::{pentagon, triangle_free_pair};
    use ppr_query::{Atom, Vars};
    use ppr_relalg::{exec, Budget};
    use ppr_workload::edge_relation;

    fn path_query(n: usize) -> (ConjunctiveQuery, Database) {
        let mut vars = Vars::new();
        let v = vars.intern_numbered("v", n);
        let atoms = (1..n)
            .map(|i| Atom::new("edge", vec![v[i - 1], v[i]]))
            .collect();
        let q = ConjunctiveQuery::new(atoms, vec![v[0]], vars, true);
        let mut db = Database::new();
        db.add(edge_relation(3));
        (q, db)
    }

    #[test]
    fn paths_are_acyclic() {
        let (q, _) = path_query(6);
        assert!(is_acyclic(&q));
    }

    #[test]
    fn cycles_are_cyclic() {
        let (q, _) = pentagon();
        assert!(!is_acyclic(&q));
        assert!(yannakakis(&q, &Database::new()).is_none());
    }

    #[test]
    fn triangle_is_cyclic_as_graph_query() {
        let (q, _) = triangle_free_pair();
        // Three binary atoms forming a triangle: GYO cannot reduce.
        assert!(!is_acyclic(&q));
    }

    #[test]
    fn join_tree_covers_all_atoms() {
        let (q, _) = path_query(5);
        let tree = gyo_join_tree(&q).unwrap();
        assert_eq!(tree.parent.iter().filter(|p| p.is_none()).count(), 1);
        assert_eq!(tree.parent.len(), 4);
    }

    #[test]
    fn yannakakis_matches_straightforward_on_paths() {
        let (q, db) = path_query(7);
        let yk = yannakakis(&q, &db).unwrap();
        let (sf, _) = exec::execute(&straightforward::plan(&q, &db), &Budget::unlimited()).unwrap();
        assert!(yk.set_eq(&sf));
    }

    #[test]
    fn yannakakis_on_star_with_free_center() {
        let mut vars = Vars::new();
        let c = vars.intern("c");
        let leaves: Vec<_> = (0..4).map(|i| vars.intern(&format!("l{i}"))).collect();
        let atoms = leaves
            .iter()
            .map(|&l| Atom::new("edge", vec![c, l]))
            .collect();
        let q = ConjunctiveQuery::new(atoms, vec![c], vars, false);
        let mut db = Database::new();
        db.add(edge_relation(3));
        let yk = yannakakis(&q, &db).unwrap();
        assert_eq!(yk.len(), 3);
    }

    #[test]
    fn semijoin_reduction_prunes_dangling_tuples() {
        // 2-coloring a path: edge relation over 2 colors. With semijoins,
        // every intermediate stays within the reduced relations.
        let mut vars = Vars::new();
        let v = vars.intern_numbered("v", 3);
        let q = ConjunctiveQuery::new(
            vec![
                Atom::new("edge", vec![v[0], v[1]]),
                Atom::new("edge", vec![v[1], v[2]]),
            ],
            vec![v[0]],
            vars,
            true,
        );
        let mut db = Database::new();
        db.add(edge_relation(2));
        let yk = yannakakis(&q, &db).unwrap();
        assert_eq!(yk.len(), 2); // both colors possible for v0
    }
}
