//! Join minimization (Chandra–Merlin), the paper's §7 third direction.
//!
//! A conjunctive query is *minimal* when no atom can be dropped without
//! changing its meaning. Minimization reduces to containment tests, and
//! containment reduces to evaluating one query over the other's *canonical
//! database* — exactly the large-query/tiny-database regime this library
//! optimizes. The minimizer below drops atoms greedily, deciding each
//! containment with bucket elimination, as the paper suggests ("the
//! techniques in this paper should be applicable to the minimization
//! problem").
//!
//! Soundness note: dropping an atom always *weakens* a query (`Q' ⊒ Q`),
//! so `Q'` is equivalent to `Q` iff `Q' ⊑ Q`, i.e. iff `Q` holds on the
//! canonical database of `Q'` with the frozen head preserved.

use rand::rngs::StdRng;
use rand::SeedableRng;

use ppr_query::canonical::canonical_database;
use ppr_query::ConjunctiveQuery;
use ppr_relalg::{exec, Budget, Value};

use crate::methods::{build_plan, Method, OrderHeuristic};

/// Whether `sub ⊑ sup` (every database where `sub` returns a tuple, `sup`
/// returns it too), decided on `sub`'s canonical database.
///
/// Both queries must share the same variable space (`Vars`) and the same
/// free list — the form minimization needs.
pub fn contained_in(sub: &ConjunctiveQuery, sup: &ConjunctiveQuery) -> bool {
    assert_eq!(sub.free, sup.free, "containment requires matching heads");
    let db = canonical_database(sub);
    let mut rng = StdRng::seed_from_u64(0);
    let plan = build_plan(
        Method::BucketElimination(OrderHeuristic::Mcs),
        sup,
        &db,
        &mut rng,
    );
    let (rel, _) =
        exec::execute(&plan, &Budget::unlimited()).expect("canonical databases are tiny");
    // The homomorphism must fix the head: the canonical (frozen) head
    // tuple must appear in the result.
    let head: Vec<Value> = sub.free.iter().map(|a| a.0 as Value).collect();
    rel.tuples().iter().any(|t| &**t == head.as_slice())
}

/// Whether two queries with the same head are equivalent.
pub fn equivalent(a: &ConjunctiveQuery, b: &ConjunctiveQuery) -> bool {
    contained_in(a, b) && contained_in(b, a)
}

/// Greedily minimizes `query`: repeatedly drops an atom whose removal
/// keeps the query equivalent, until no atom can be dropped. The result is
/// a *core* of the query (minimal and equivalent).
pub fn minimize(query: &ConjunctiveQuery) -> ConjunctiveQuery {
    let mut current = query.clone();
    loop {
        let mut dropped = false;
        for i in 0..current.num_atoms() {
            if current.num_atoms() == 1 {
                break;
            }
            let candidate = drop_atom(&current, i);
            // Head variables must still occur somewhere.
            let head_ok = candidate
                .free
                .iter()
                .all(|&f| candidate.atoms.iter().any(|a| a.mentions(f)));
            if !head_ok {
                continue;
            }
            // Dropping weakens: candidate ⊒ current always. Equivalent iff
            // candidate ⊑ current.
            if contained_in(&candidate, &current) {
                current = candidate;
                dropped = true;
                break;
            }
        }
        if !dropped {
            return current;
        }
    }
}

fn drop_atom(query: &ConjunctiveQuery, idx: usize) -> ConjunctiveQuery {
    let atoms = query
        .atoms
        .iter()
        .enumerate()
        .filter(|(j, _)| *j != idx)
        .map(|(_, a)| a.clone())
        .collect();
    ConjunctiveQuery {
        atoms,
        free: query.free.clone(),
        vars: query.vars.clone(),
        boolean: query.boolean,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppr_query::{Atom, Vars};

    /// π_x e(x,y) ⋈ e(x,y') — redundant second atom (map y' → y).
    #[test]
    fn duplicate_pattern_minimizes_to_one_atom() {
        let mut vars = Vars::new();
        let x = vars.intern("x");
        let y = vars.intern("y");
        let y2 = vars.intern("y2");
        let q = ConjunctiveQuery::new(
            vec![Atom::new("e", vec![x, y]), Atom::new("e", vec![x, y2])],
            vec![x],
            vars,
            true,
        );
        let m = minimize(&q);
        assert_eq!(m.num_atoms(), 1);
        assert!(equivalent(&m, &q));
    }

    /// A triangle is its own core.
    #[test]
    fn triangle_is_minimal() {
        let mut vars = Vars::new();
        let x = vars.intern("x");
        let y = vars.intern("y");
        let z = vars.intern("z");
        let q = ConjunctiveQuery::new(
            vec![
                Atom::new("e", vec![x, y]),
                Atom::new("e", vec![y, z]),
                Atom::new("e", vec![z, x]),
            ],
            vec![x],
            vars,
            true,
        );
        let m = minimize(&q);
        assert_eq!(m.num_atoms(), 3);
    }

    /// Path of length 2 with an extra shadowed path: x→y→z plus x→y'→z'
    /// (y', z' fresh) folds onto the first path.
    #[test]
    fn shadow_path_folds() {
        let mut vars = Vars::new();
        let x = vars.intern("x");
        let y = vars.intern("y");
        let z = vars.intern("z");
        let y2 = vars.intern("y2");
        let z2 = vars.intern("z2");
        let q = ConjunctiveQuery::new(
            vec![
                Atom::new("e", vec![x, y]),
                Atom::new("e", vec![y, z]),
                Atom::new("e", vec![x, y2]),
                Atom::new("e", vec![y2, z2]),
            ],
            vec![x],
            vars,
            true,
        );
        let m = minimize(&q);
        assert_eq!(m.num_atoms(), 2);
        assert!(equivalent(&m, &q));
    }

    #[test]
    fn containment_is_reflexive_and_directional() {
        let mut vars = Vars::new();
        let x = vars.intern("x");
        let y = vars.intern("y");
        let z = vars.intern("z");
        let triangle = ConjunctiveQuery::new(
            vec![
                Atom::new("e", vec![x, y]),
                Atom::new("e", vec![y, z]),
                Atom::new("e", vec![z, x]),
            ],
            vec![x],
            vars.clone(),
            true,
        );
        let path = ConjunctiveQuery::new(
            vec![Atom::new("e", vec![x, y]), Atom::new("e", vec![y, z])],
            vec![x],
            vars,
            true,
        );
        assert!(contained_in(&triangle, &triangle));
        assert!(contained_in(&triangle, &path)); // triangles have paths
        assert!(!contained_in(&path, &triangle)); // paths need no triangle
    }

    #[test]
    fn minimization_keeps_head_variables() {
        let mut vars = Vars::new();
        let x = vars.intern("x");
        let y = vars.intern("y");
        let q = ConjunctiveQuery::new(
            vec![Atom::new("e", vec![x, y]), Atom::new("e", vec![x, y])],
            vec![x, y],
            vars,
            false,
        );
        let m = minimize(&q);
        assert_eq!(m.num_atoms(), 1);
        assert_eq!(m.free, q.free);
    }
}
