//! Width measures and the paper's two theorems as checkable APIs.
//!
//! * **Theorem 1**: the *join width* of a project-join query (minimum width
//!   over join-expression trees) equals the treewidth of its join graph
//!   plus one.
//! * **Theorem 2**: the *induced width* of the query (minimum over variable
//!   orders of the bucket-elimination induced width) equals the treewidth.
//!
//! Exact computations go through `ppr-graph`'s branch-and-bound and are
//! meant for test-scale queries; the heuristic counterparts (MCS and
//! friends) are what the practical methods use.

use rand::Rng;

use ppr_graph::ordering::{induced_width as graph_induced_width, EliminationOrder};
use ppr_graph::treewidth;
use ppr_graph::TreeDecomposition;
use ppr_query::{ConjunctiveQuery, JoinGraph};
use ppr_relalg::AttrId;

use crate::convert::tree_decomposition_to_jet;
use crate::jet::Jet;

/// Treewidth of the query's join graph (exact; test-scale only).
pub fn join_graph_treewidth(query: &ConjunctiveQuery) -> usize {
    let jg = JoinGraph::of(query);
    treewidth::treewidth_exact(&jg.graph)
}

/// The exact join width (Theorem 1: `treewidth + 1`), together with a
/// join-expression tree achieving it, built by Algorithm 3 from an optimal
/// tree decomposition.
pub fn join_width_exact(query: &ConjunctiveQuery) -> (usize, Jet) {
    let jg = JoinGraph::of(query);
    let (_, order) = treewidth::optimal_order(&jg.graph);
    let td = TreeDecomposition::from_elimination_order(&jg.graph, &order);
    let jet = tree_decomposition_to_jet(query, &jg, &td);
    (jet.width(), jet)
}

/// The induced width of bucket elimination under an explicit attribute
/// order (positions as in [`crate::methods::bucket::plan_with_order`]).
pub fn induced_width_of(query: &ConjunctiveQuery, order: &[AttrId]) -> usize {
    let jg = JoinGraph::of(query);
    let vertex_order: Vec<usize> = order.iter().map(|&a| jg.vertex(a)).collect();
    graph_induced_width(&jg.graph, &EliminationOrder::new(vertex_order))
}

/// The exact induced width of the query (Theorem 2: the treewidth),
/// together with an optimal attribute order. The order places the target
/// schema first (eliminated last), as bucket elimination requires — the
/// target schema is a clique in the join graph, so the constraint costs
/// nothing. Test-scale only.
pub fn induced_width_exact(query: &ConjunctiveQuery) -> (usize, Vec<AttrId>) {
    let jg = JoinGraph::of(query);
    let free_vertices: Vec<usize> = query.free.iter().map(|&f| jg.vertex(f)).collect();
    let (iw, order) = treewidth::optimal_order_with_suffix(&jg.graph, &free_vertices);
    let attrs: Vec<AttrId> = order.order().iter().map(|&v| jg.attr(v)).collect();
    (iw, attrs)
}

/// The width achieved by a heuristic order (what the practical bucket
/// method will see).
pub fn heuristic_induced_width<R: Rng + ?Sized>(
    query: &ConjunctiveQuery,
    heuristic: crate::methods::OrderHeuristic,
    rng: &mut R,
) -> usize {
    let order = crate::methods::bucket::bucket_order(query, heuristic, rng);
    induced_width_of(query, &order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::test_support::{pentagon, triangle_free_pair};
    use crate::methods::OrderHeuristic;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn theorem1_on_pentagon() {
        let (q, _) = pentagon();
        let tw = join_graph_treewidth(&q);
        assert_eq!(tw, 2);
        let (jw, jet) = join_width_exact(&q);
        assert_eq!(jw, tw + 1);
        assert_eq!(jet.width(), jw);
    }

    #[test]
    fn theorem2_on_pentagon() {
        let (q, _) = pentagon();
        let (iw, order) = induced_width_exact(&q);
        assert_eq!(iw, join_graph_treewidth(&q));
        assert_eq!(induced_width_of(&q, &order), iw);
    }

    #[test]
    fn heuristic_orders_bound_below_by_exact() {
        let (q, _) = triangle_free_pair();
        let exact = induced_width_exact(&q).0;
        let mut rng = StdRng::seed_from_u64(3);
        for h in [
            OrderHeuristic::Mcs,
            OrderHeuristic::MinDegree,
            OrderHeuristic::MinFill,
        ] {
            assert!(heuristic_induced_width(&q, h, &mut rng) >= exact);
        }
    }

    #[test]
    fn free_variables_affect_the_join_graph() {
        // Two free endpoints of a path add a clique edge, raising
        // treewidth from 1 to... still small but > path alone.
        use ppr_query::{Atom, Vars};
        let mut vars = Vars::new();
        let v = vars.intern_numbered("v", 3);
        let free_ends = ConjunctiveQuery::new(
            vec![
                Atom::new("edge", vec![v[0], v[1]]),
                Atom::new("edge", vec![v[1], v[2]]),
            ],
            vec![v[0], v[2]],
            vars.clone(),
            false,
        );
        // Path of 3 vertices plus the chord (v0, v2) = triangle → tw 2.
        assert_eq!(join_graph_treewidth(&free_ends), 2);
    }
}
