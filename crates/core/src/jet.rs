//! Join-expression trees (paper §5).
//!
//! A join-expression tree of a query `Q` is a rooted tree whose leaves are
//! the atoms of `Q`. Labels are determined by the structure:
//!
//! * a leaf's **working label** `L_w` is its atom's variable set;
//! * an interior node's working label is the union of its children's
//!   projected labels;
//! * a node's **projected label** `L_p ⊆ L_w` keeps the attributes that are
//!   still needed *outside* its subtree — those occurring in an atom
//!   outside the subtree or in the target schema `S_Q`.
//!
//! Joins are evaluated bottom-up with projection applied as early as the
//! structure allows; the tree's **width** is `max |L_w|`, and the *join
//! width* of `Q` is the minimum width over all of its join-expression
//! trees. Theorem 1: the join width equals `tw(join graph) + 1`.

use rustc_hash::{FxHashMap, FxHashSet};

use ppr_query::{ConjunctiveQuery, Database};
use ppr_relalg::{AttrId, Plan};

/// One node of a join-expression tree.
#[derive(Debug, Clone)]
pub struct JetNode {
    /// Children node indices (empty for leaves).
    pub children: Vec<usize>,
    /// For leaves, the index of the atom in the query.
    pub atom: Option<usize>,
    /// Working label `L_w`.
    pub working: Vec<AttrId>,
    /// Projected label `L_p`.
    pub projected: Vec<AttrId>,
}

/// A join-expression tree over a query. Nodes are stored in a vector; the
/// labels are computed from the structure at construction time.
#[derive(Debug, Clone)]
pub struct Jet {
    nodes: Vec<JetNode>,
    root: usize,
}

/// Structure description used to build a [`Jet`]: children lists per node
/// and the leaf → atom assignment.
#[derive(Debug, Clone)]
pub struct JetStructure {
    /// `children[v]` lists the children of node `v`.
    pub children: Vec<Vec<usize>>,
    /// `atom[v]` is `Some(j)` when node `v` is the leaf for atom `j`.
    pub atom: Vec<Option<usize>>,
    /// Root node index.
    pub root: usize,
}

impl Jet {
    /// Builds the tree and computes labels. Panics unless every atom is
    /// assigned to exactly one leaf, leaves carry atoms, interior nodes
    /// have children, and the structure is a tree rooted at `root`.
    pub fn new(query: &ConjunctiveQuery, structure: JetStructure) -> Self {
        let n = structure.children.len();
        assert_eq!(structure.atom.len(), n);
        assert!(structure.root < n);
        // Tree checks: every non-root node has exactly one parent.
        let mut parent = vec![usize::MAX; n];
        for (v, ch) in structure.children.iter().enumerate() {
            for &c in ch {
                assert!(c < n && parent[c] == usize::MAX, "node {c} has two parents");
                assert!(c != structure.root, "root cannot be a child");
                parent[c] = v;
            }
        }
        let orphan_count = (0..n)
            .filter(|&v| v != structure.root && parent[v] == usize::MAX)
            .count();
        assert_eq!(orphan_count, 0, "structure is a forest, not a tree");
        // Atom assignment checks.
        let mut seen_atoms = vec![false; query.num_atoms()];
        for (v, a) in structure.atom.iter().enumerate() {
            match a {
                Some(j) => {
                    assert!(
                        structure.children[v].is_empty(),
                        "node {v} carries an atom but has children"
                    );
                    assert!(!seen_atoms[*j], "atom {j} assigned twice");
                    seen_atoms[*j] = true;
                }
                None => assert!(
                    !structure.children[v].is_empty(),
                    "leaf {v} carries no atom"
                ),
            }
        }
        assert!(
            seen_atoms.iter().all(|&s| s),
            "every atom must be assigned to a leaf"
        );

        // Occurrence counts per attribute (for the "outside the subtree"
        // test): an attribute is needed above a subtree iff its total
        // occurrence count exceeds the occurrences inside the subtree, or
        // it belongs to the target schema.
        let mut total_occ: FxHashMap<AttrId, usize> = FxHashMap::default();
        for atom in &query.atoms {
            for v in atom.vars() {
                *total_occ.entry(v).or_insert(0) += 1;
            }
        }
        let free: FxHashSet<AttrId> = query.free.iter().copied().collect();

        // Bottom-up label computation over a post-order traversal.
        let order = post_order(&structure.children, structure.root);
        let mut nodes: Vec<JetNode> = (0..n)
            .map(|v| JetNode {
                children: structure.children[v].clone(),
                atom: structure.atom[v],
                working: Vec::new(),
                projected: Vec::new(),
            })
            .collect();
        // occurrences of each attribute inside each node's subtree.
        let mut sub_occ: Vec<FxHashMap<AttrId, usize>> = vec![FxHashMap::default(); n];
        for &v in &order {
            if let Some(j) = structure.atom[v] {
                let vars = query.atoms[j].vars();
                for &a in &vars {
                    *sub_occ[v].entry(a).or_insert(0) += 1;
                }
                nodes[v].working = vars;
            } else {
                let mut working: Vec<AttrId> = Vec::new();
                let children = structure.children[v].clone();
                for &c in &children {
                    for &a in &nodes[c].projected {
                        if !working.contains(&a) {
                            working.push(a);
                        }
                    }
                    let child_occ = std::mem::take(&mut sub_occ[c]);
                    for (a, k) in child_occ {
                        *sub_occ[v].entry(a).or_insert(0) += k;
                    }
                }
                nodes[v].working = working;
            }
            // Projected label: attributes of the working label still
            // needed outside the subtree. The root projects exactly the
            // target schema, in the query's declared order.
            if v == structure.root {
                for f in &query.free {
                    assert!(
                        nodes[v].working.contains(f),
                        "free variable {f} did not reach the root's working label"
                    );
                }
                nodes[v].projected = query.free.clone();
            } else {
                nodes[v].projected = nodes[v]
                    .working
                    .iter()
                    .copied()
                    .filter(|a| {
                        free.contains(a) || sub_occ[v].get(a).copied().unwrap_or(0) < total_occ[a]
                    })
                    .collect();
            }
        }
        Jet {
            nodes,
            root: structure.root,
        }
    }

    /// The nodes.
    pub fn nodes(&self) -> &[JetNode] {
        &self.nodes
    }

    /// Root node index.
    pub fn root(&self) -> usize {
        self.root
    }

    /// The width `max_v |L_w(v)|`.
    pub fn width(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| n.working.len())
            .max()
            .unwrap_or(0)
    }

    /// Converts the tree into an executable [`Plan`]: each interior node
    /// joins its children left to right and projects (with dedup) onto its
    /// projected label; the root projects onto the query's free variables.
    pub fn to_plan(&self, query: &ConjunctiveQuery, db: &Database) -> Plan {
        self.node_plan(self.root, query, db)
    }

    fn node_plan(&self, v: usize, query: &ConjunctiveQuery, db: &Database) -> Plan {
        let node = &self.nodes[v];
        if let Some(j) = node.atom {
            let atom = &query.atoms[j];
            return Plan::scan(db.expect(&atom.relation), atom.args.clone());
        }
        let mut plans = node.children.iter().map(|&c| self.node_plan(c, query, db));
        let mut plan = plans.next().expect("interior node has children");
        for p in plans {
            plan = plan.join(p);
        }
        // Materialize only when the projection actually drops attributes
        // (the paper creates a subquery only when a variable dies); the
        // root always projects, fixing the output column order.
        if v == self.root || node.projected.len() < node.working.len() {
            plan = plan.project(node.projected.clone());
        }
        plan
    }

    /// The left-deep "caterpillar" tree joining atoms in listing order —
    /// the join-expression tree of the straightforward method.
    pub fn left_deep(query: &ConjunctiveQuery) -> Jet {
        let m = query.num_atoms();
        assert!(m >= 1);
        if m == 1 {
            // Single leaf under a root.
            return Jet::new(
                query,
                JetStructure {
                    children: vec![vec![1], vec![]],
                    atom: vec![None, Some(0)],
                    root: 0,
                },
            );
        }
        // Interior nodes 0..m-1 (0 is root), leaves m..2m-1 for atoms.
        // Interior node i joins interior node i+1 (or the two deepest
        // leaves) with leaf for atom (m-1-i).
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); 2 * m - 1];
        let mut atom: Vec<Option<usize>> = vec![None; 2 * m - 1];
        for j in 0..m {
            atom[m - 1 + j] = Some(j);
        }
        // Interior node i (0-based, root = 0) has children: [next interior
        // or deepest leaf, leaf of atom m-1-i].
        #[allow(clippy::needless_range_loop)] // index arithmetic across two halves
        for i in 0..m - 1 {
            let deeper: usize = if i + 1 < m - 1 {
                i + 1
            } else {
                m - 1 // leaf of atom 0
            };
            let leaf = m - 1 + (m - 1 - i);
            children[i] = vec![deeper, leaf];
        }
        Jet::new(
            query,
            JetStructure {
                children,
                atom,
                root: 0,
            },
        )
    }
}

/// Post-order traversal of a children-list tree.
fn post_order(children: &[Vec<usize>], root: usize) -> Vec<usize> {
    let mut out = Vec::with_capacity(children.len());
    let mut stack = vec![(root, false)];
    while let Some((v, expanded)) = stack.pop() {
        if expanded {
            out.push(v);
        } else {
            stack.push((v, true));
            for &c in &children[v] {
                stack.push((c, false));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppr_query::{Atom, Vars};

    /// Path query: π_{v0} edge(v0,v1) ⋈ edge(v1,v2) ⋈ edge(v2,v3).
    fn path_query() -> ConjunctiveQuery {
        let mut vars = Vars::new();
        let v = vars.intern_numbered("v", 4);
        ConjunctiveQuery::new(
            vec![
                Atom::new("edge", vec![v[0], v[1]]),
                Atom::new("edge", vec![v[1], v[2]]),
                Atom::new("edge", vec![v[2], v[3]]),
            ],
            vec![v[0]],
            vars,
            true,
        )
    }

    #[test]
    fn left_deep_structure() {
        let q = path_query();
        let jet = Jet::left_deep(&q);
        assert_eq!(jet.nodes().len(), 5); // 2 interior + 3 leaves
        assert_eq!(jet.width(), 3); // v0 stays live to the root
    }

    #[test]
    fn balanced_tree_labels() {
        let q = path_query();
        // Root joins (atom0 ⋈ atom1) with atom2.
        //   node0 = root, node1 = interior, nodes 2,3,4 = leaves 0,1,2.
        let jet = Jet::new(
            &q,
            JetStructure {
                children: vec![vec![1, 4], vec![2, 3], vec![], vec![], vec![]],
                atom: vec![None, None, Some(0), Some(1), Some(2)],
                root: 0,
            },
        );
        let n1 = &jet.nodes()[1];
        // Interior node joins edge(v0,v1) ⋈ edge(v1,v2): working {v0,v1,v2}.
        assert_eq!(n1.working.len(), 3);
        // v1 dies there (only used inside); v0 is free, v2 needed by atom2.
        let projected: FxHashSet<AttrId> = n1.projected.iter().copied().collect();
        assert_eq!(projected.len(), 2);
        assert!(projected.contains(&AttrId(0)));
        assert!(projected.contains(&AttrId(2)));
        // Root projects exactly the free variables.
        assert_eq!(jet.nodes()[0].projected, vec![AttrId(0)]);
    }

    #[test]
    fn width_of_good_tree_is_smaller() {
        // For the path query with free v0, a right-leaning tree that joins
        // atom2 deepest lets v3 and v2 die early: width 3 → the join graph
        // (a path plus no extra clique) has treewidth 1... but v0 free
        // forces it to stay, width still bounded by 3 for left-deep.
        let q = path_query();
        let left = Jet::left_deep(&q);
        assert!(left.width() <= 3);
    }

    #[test]
    #[should_panic(expected = "every atom")]
    fn missing_atom_rejected() {
        let q = path_query();
        Jet::new(
            &q,
            JetStructure {
                children: vec![vec![1], vec![]],
                atom: vec![None, Some(0)],
                root: 0,
            },
        );
    }

    #[test]
    #[should_panic(expected = "two parents")]
    fn dag_rejected() {
        let q = path_query();
        Jet::new(
            &q,
            JetStructure {
                children: vec![vec![1, 1], vec![]],
                atom: vec![None, Some(0)],
                root: 0,
            },
        );
    }

    #[test]
    fn single_atom_jet() {
        let mut vars = Vars::new();
        let v = vars.intern_numbered("v", 2);
        let q = ConjunctiveQuery::new(
            vec![Atom::new("edge", vec![v[0], v[1]])],
            vec![v[0]],
            vars,
            true,
        );
        let jet = Jet::left_deep(&q);
        assert_eq!(jet.width(), 2);
        assert_eq!(jet.nodes()[jet.root()].projected, vec![v[0]]);
    }

    #[test]
    fn plan_from_jet_executes() {
        use ppr_relalg::{exec, Budget};
        let q = path_query();
        let mut db = Database::new();
        db.add(ppr_workload_edge());
        let jet = Jet::left_deep(&q);
        let plan = jet.to_plan(&q, &db);
        let (rel, _) = exec::execute(&plan, &Budget::unlimited()).unwrap();
        // A path is 3-colorable; all three colors possible for v0.
        assert_eq!(rel.len(), 3);
    }

    /// Local copy of the 6-tuple edge relation to avoid a dev-dependency
    /// cycle (ppr-workload depends on nothing here, but keep the unit test
    /// self-contained).
    fn ppr_workload_edge() -> ppr_relalg::Relation {
        use ppr_relalg::{Relation, Schema, Value};
        let schema = Schema::new(vec![AttrId(2_000_000), AttrId(2_000_001)]);
        let mut rows = Vec::new();
        for a in 1..=3u32 {
            for b in 1..=3u32 {
                if a != b {
                    rows.push(vec![a as Value, b as Value].into_boxed_slice());
                }
            }
        }
        Relation::from_distinct_rows("edge", schema, rows)
    }
}
