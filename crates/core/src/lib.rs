#![warn(missing_docs)]

//! The core of the *Projection Pushing Revisited* reproduction: structural
//! optimization of project-join queries.
//!
//! * [`jet`] — join-expression trees (paper §5): evaluation orders for a
//!   project-join query with projection applied as early as possible;
//!   their *width* is the quantity Theorem 1 characterizes.
//! * [`convert`] — Algorithms 1–3: the constructive conversions between
//!   join-expression trees and tree decompositions of the join graph that
//!   prove Theorem 1 (`join width = treewidth + 1`).
//! * [`methods`] — the evaluation-method taxonomy of the experimental
//!   study (naive, straightforward, early projection §4, greedy
//!   reordering §4, bucket elimination §5 with MCS / min-degree /
//!   min-fill orders) plus the legacy one-shot planners, kept as the
//!   parity oracle for the pass pipeline.
//! * [`passes`] — the composable optimizer-pass pipeline: each method is
//!   a recipe of typed [`passes::OptimizerPass`]es (join-order selection,
//!   chain building, projection pushdown, decomposition) producing plans
//!   byte-identical to the legacy planners, with hooks for the serving
//!   layer's decomposition cache (see docs/PLANNING.md).
//! * [`width`] — join width / induced width APIs surfacing Theorems 1–2 as
//!   checkable properties.
//! * [`sqlgen`] — a generic plan → Appendix-A-style SQL emitter.
//! * [`minibucket`] — the mini-bucket approximation (Dechter), listed by
//!   the paper as a direction worth exploring (§7).
//! * [`minimize`] — join minimization via containment tests over canonical
//!   databases (§7's third direction), powered by bucket elimination.
//! * [`reduce`] — general semijoin (Wong–Youssefi style) pre-reduction;
//!   the paper explains why it is useless on its 3-COLOR workloads, and
//!   the `semijoin_usefulness` experiment shows both that and the 2-COLOR
//!   counterpoint.
//! * [`yannakakis`] — GYO acyclicity test and Yannakakis semijoin
//!   evaluation, the classical acyclic special case (§1, \[35\]).

pub mod convert;
pub mod jet;
pub mod methods;
pub mod minibucket;
pub mod minimize;
pub mod passes;
pub mod reduce;
pub mod sqlgen;
pub mod width;
pub mod yannakakis;

pub use jet::Jet;
pub use methods::{build_plan, emit_sql, Method, OrderHeuristic};
pub use passes::{plan_query, OptimizerPass, PassContext, PassManager, PlanReport, PlanState};

/// Compiles and runs every Rust snippet in docs/PLANNING.md as a doctest
/// of this crate, so the planning guide cannot drift from the pipeline
/// API it documents.
#[cfg(doctest)]
#[doc = include_str!("../../../docs/PLANNING.md")]
pub struct PlanningGuide;
