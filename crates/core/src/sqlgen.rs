//! Generic plan → SQL emission.
//!
//! Every method in this crate produces a [`Plan`] whose shape mirrors the
//! paper's generated SQL: pipelines of joins bounded by `SELECT DISTINCT`
//! subqueries. This module renders any such plan as an Appendix-A style
//! [`SelectStmt`]: the paper nests the `FROM` clause so the *first* input
//! of each pipeline is innermost (`FROM e_m JOIN ( … (e_2 JOIN e_1 ON …) …
//! )`), with each `ON` equating the newly joined item's variables to their
//! first occurrence among the already-joined items.
//!
//! Aliases are assigned depth-first (`e1, e2, …` for base tables, `t1,
//! t2, …` for subqueries); the paper numbers aliases by atom position,
//! which is equivalent up to renaming.

use ppr_query::Vars;
use ppr_relalg::{AttrId, Plan};
use ppr_sql::{ColRef, Condition, FromExpr, FromItem, SelectStmt};

/// Renders a plan as SQL. The plan root must be a
/// [`Plan::ProjectDistinct`] (every method's plan is — its keep list is
/// the SELECT clause). `vars` supplies variable names.
pub fn plan_to_sql(plan: &Plan, vars: &Vars) -> SelectStmt {
    let mut counters = Counters::default();
    match plan {
        Plan::ProjectDistinct { .. } => emit_select(plan, vars, &mut counters),
        _ => panic!("plan root must be a projection (SELECT)"),
    }
}

#[derive(Default)]
struct Counters {
    tables: usize,
    subqueries: usize,
}

/// One prepared pipeline input.
struct Prepared {
    item: FromItem,
    /// (variable, column name) pairs this item exposes.
    columns: Vec<(AttrId, String)>,
    /// Intra-item equalities (repeated variables in one atom).
    self_conditions: Vec<Condition>,
}

fn emit_select(plan: &Plan, vars: &Vars, counters: &mut Counters) -> SelectStmt {
    let (input, keep) = match plan {
        Plan::ProjectDistinct { input, keep } => (input.as_ref(), keep),
        _ => unreachable!("callers pass projections"),
    };
    let chain = flatten(input);
    let prepared: Vec<Prepared> = chain
        .into_iter()
        .map(|node| prepare(node, vars, counters))
        .collect();

    // First-occurrence column reference for each variable.
    let colref = |var: AttrId, upto: usize| -> Option<ColRef> {
        prepared[..upto].iter().find_map(|p| {
            p.columns
                .iter()
                .find(|(v, _)| *v == var)
                .map(|(_, col)| ColRef::new(p.item.alias(), col.clone()))
        })
    };

    // Build the nested FROM: item 0 innermost. Each join of item j emits
    // equalities between item j's variables and their first occurrence in
    // items 0..j, plus item j's own repeated-variable equalities.
    let mut from = FromExpr::item(prepared[0].item.clone());
    let where_clause = prepared[0].self_conditions.clone();
    for (j, item) in prepared.iter().enumerate().skip(1) {
        let mut on: Vec<Condition> = Vec::new();
        let mut seen_in_item: Vec<AttrId> = Vec::new();
        for (var, col) in &item.columns {
            if seen_in_item.contains(var) {
                continue;
            }
            seen_in_item.push(*var);
            if let Some(earlier) = colref(*var, j) {
                on.push(Condition::eq(
                    ColRef::new(item.item.alias(), col.clone()),
                    earlier,
                ));
            }
        }
        on.extend(item.self_conditions.iter().cloned());
        // The paper writes the new item on the left of JOIN and the
        // accumulated nest on the right.
        from = FromExpr::item(item.item.clone()).join(from, on);
    }

    let select: Vec<ColRef> = keep
        .iter()
        .map(|&var| {
            colref(var, prepared.len())
                .unwrap_or_else(|| panic!("projected variable {var} not produced by pipeline"))
        })
        .collect();

    SelectStmt {
        distinct: true,
        select,
        from: vec![from],
        where_clause,
    }
}

/// Flattens a join tree into pipeline inputs (both spines — bushy plans
/// linearize, which preserves semantics since the chain natural-joins its
/// items in sequence).
fn flatten(plan: &Plan) -> Vec<&Plan> {
    match plan {
        Plan::Join { left, right } => {
            let mut chain = flatten(left);
            chain.extend(flatten(right));
            chain
        }
        other => vec![other],
    }
}

fn prepare(node: &Plan, vars: &Vars, counters: &mut Counters) -> Prepared {
    match node {
        Plan::Scan { base, binding } => {
            counters.tables += 1;
            let alias = format!("e{}", counters.tables);
            let mut columns: Vec<(AttrId, String)> = Vec::with_capacity(binding.len());
            let mut self_conditions = Vec::new();
            for &var in binding.iter() {
                let name = vars.name(var);
                let dup_count = columns.iter().filter(|(v, _)| *v == var).count();
                let col = if dup_count == 0 {
                    name
                } else {
                    // SQL column names must be unique per table alias; a
                    // repeated variable becomes an extra column plus an
                    // equality.
                    let renamed = format!("{name}_{}", dup_count + 1);
                    self_conditions.push(Condition::eq(
                        ColRef::new(alias.clone(), renamed.clone()),
                        ColRef::new(
                            alias.clone(),
                            columns
                                .iter()
                                .find(|(v, _)| *v == var)
                                .map(|(_, c)| c.clone())
                                .expect("first occurrence exists"),
                        ),
                    ));
                    renamed
                };
                columns.push((var, col));
            }
            Prepared {
                item: FromItem::Table {
                    name: base.name().to_string(),
                    alias,
                    columns: columns.iter().map(|(_, c)| c.clone()).collect(),
                },
                columns,
                self_conditions,
            }
        }
        Plan::ProjectDistinct { keep, .. } => {
            let stmt = emit_select(node, vars, counters);
            counters.subqueries += 1;
            let alias = format!("t{}", counters.subqueries);
            let columns: Vec<(AttrId, String)> = keep.iter().map(|&v| (v, vars.name(v))).collect();
            Prepared {
                item: FromItem::Subquery {
                    query: Box::new(stmt),
                    alias,
                },
                columns,
                self_conditions: Vec::new(),
            }
        }
        Plan::Join { .. } => unreachable!("flatten removes joins"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppr_relalg::{Relation, Schema, Value};
    use ppr_sql::emit::render;
    use std::sync::Arc;

    fn edge() -> Arc<Relation> {
        let schema = Schema::new(vec![AttrId(2_000_000), AttrId(2_000_001)]);
        let mut rows = Vec::new();
        for a in 1..=3u32 {
            for b in 1..=3u32 {
                if a != b {
                    rows.push(vec![a as Value, b as Value].into_boxed_slice());
                }
            }
        }
        Relation::from_distinct_rows("edge", schema, rows).into_shared()
    }

    fn named_vars(n: usize) -> (Vars, Vec<AttrId>) {
        let mut vars = Vars::new();
        let ids = vars.intern_numbered("v", n);
        (vars, ids)
    }

    #[test]
    fn single_scan_select() {
        let (vars, v) = named_vars(2);
        let plan = Plan::scan(edge(), vec![v[0], v[1]]).project(vec![v[0]]);
        let sql = render(&plan_to_sql(&plan, &vars));
        assert!(sql.contains("SELECT DISTINCT e1.v0"));
        assert!(sql.contains("FROM edge e1 (v0, v1)"));
    }

    #[test]
    fn chain_nests_first_item_innermost() {
        let (vars, v) = named_vars(3);
        let plan = Plan::scan(edge(), vec![v[0], v[1]])
            .join(Plan::scan(edge(), vec![v[1], v[2]]))
            .project(vec![v[0]]);
        let sql = render(&plan_to_sql(&plan, &vars));
        // e2 (the second pipeline input) is printed first, joined to e1.
        assert!(
            sql.contains("edge e2 (v1, v2) JOIN edge e1 (v0, v1)"),
            "{sql}"
        );
        assert!(sql.contains("ON (e2.v1 = e1.v1)"), "{sql}");
    }

    #[test]
    fn subquery_boundary_renders_as_nested_select() {
        let (vars, v) = named_vars(3);
        let sub = Plan::scan(edge(), vec![v[0], v[1]]).project(vec![v[1]]);
        let plan = sub
            .join(Plan::scan(edge(), vec![v[1], v[2]]))
            .project(vec![v[2]]);
        let sql = render(&plan_to_sql(&plan, &vars));
        assert!(sql.contains("AS t1"), "{sql}");
        assert!(sql.contains("SELECT DISTINCT e1.v1"), "{sql}");
        assert!(sql.contains("ON (e2.v1 = t1.v1)"), "{sql}");
    }

    #[test]
    fn cross_join_renders_on_true() {
        let (vars, v) = named_vars(4);
        let plan = Plan::scan(edge(), vec![v[0], v[1]])
            .join(Plan::scan(edge(), vec![v[2], v[3]]))
            .project(vec![v[0]]);
        let sql = render(&plan_to_sql(&plan, &vars));
        assert!(sql.contains("ON (TRUE)"), "{sql}");
    }

    #[test]
    fn repeated_variable_gets_renamed_column() {
        let (vars, v) = named_vars(2);
        let plan = Plan::scan(edge(), vec![v[0], v[0]]).project(vec![v[0]]);
        let sql = render(&plan_to_sql(&plan, &vars));
        assert!(sql.contains("edge e1 (v0, v0_2)"), "{sql}");
        assert!(sql.contains("WHERE e1.v0_2 = e1.v0"), "{sql}");
    }

    #[test]
    #[should_panic(expected = "projection")]
    fn bare_join_rejected() {
        let (vars, v) = named_vars(3);
        let plan = Plan::scan(edge(), vec![v[0], v[1]]).join(Plan::scan(edge(), vec![v[1], v[2]]));
        plan_to_sql(&plan, &vars);
    }
}
