//! The plan-building pass for chain recipes.
//!
//! Contract: consumes [`PlanState::query`] in its current atom order and
//! sets [`PlanState::plan`] to the left-deep scan-join chain
//! `π_free((…(a_1 ⋈ a_2) ⋈ …) ⋈ a_m)` — the straightforward method's
//! plan (paper §3). The query is left unchanged, so downstream rewrite
//! passes ([`crate::passes::pushdown`]) still see the order the chain was
//! built in.

use super::{OptimizerPass, PassContext, PlanState};
use crate::methods::straightforward;

/// Builds the left-deep scan-join chain over the query's current atom
/// order, projecting the free variables once at the root.
pub struct BuildJoinChain;

impl OptimizerPass for BuildJoinChain {
    fn name(&self) -> &'static str {
        "build-join-chain"
    }

    fn run(&self, mut state: PlanState, ctx: &mut PassContext<'_>) -> PlanState {
        state.plan = Some(straightforward::plan(&state.query, ctx.db));
        state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::test_support::pentagon;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn chain_matches_straightforward() {
        let (q, db) = pentagon();
        let mut rng = StdRng::seed_from_u64(0);
        let mut src: &mut StdRng = &mut rng;
        let mut ctx = PassContext::new(&db, &mut src);
        let state = PlanState {
            query: q.clone(),
            plan: None,
        };
        let out = BuildJoinChain.run(state, &mut ctx);
        let plan = out.plan.expect("chain pass builds a plan");
        let legacy = straightforward::plan(&q, &db);
        assert_eq!(format!("{plan:?}"), format!("{legacy:?}"));
    }
}
