//! Decomposition passes for bucket elimination.
//!
//! Bucket elimination splits naturally into two passes: **choosing** the
//! variable order (the expensive, structure-only step — a heuristic
//! elimination order over the join graph) and **building** the plan along
//! it. The split is what makes the service layer's decomposition cache
//! possible: the chosen order depends only on query structure, heuristic,
//! and seed — never on data — so a structurally repeated query can hand
//! the cached order back in via [`PassContext::order_hint`] and skip
//! [`Decompose`]'s work entirely.
//!
//! Contracts: [`Decompose`] sets [`PassContext::chosen_order`] to a
//! permutation of the query's variables (free variables first when
//! computed fresh, per the paper's §5 convention) and leaves the state
//! untouched; [`BucketBuild`] requires `chosen_order` and sets
//! [`PlanState::plan`] to the bucket-elimination plan along it. A valid
//! hint must reproduce the plan the same order would produce fresh —
//! [`crate::methods::bucket::plan_with_order`] is deterministic given the
//! order.

use super::{DynRng, OptimizerPass, PassContext, PlanState};
use crate::methods::{bucket, OrderHeuristic};
use ppr_relalg::AttrId;

/// Chooses the bucket-elimination variable order: consumes a valid
/// [`PassContext::order_hint`] if present (setting
/// [`PassContext::used_hint`]), otherwise runs the configured heuristic
/// over the query's join graph, drawing tie-breaks from the context's
/// randomness exactly as the legacy planner does.
pub struct Decompose {
    heuristic: OrderHeuristic,
}

impl Decompose {
    /// A decomposition pass using `heuristic` when no hint applies.
    pub fn new(heuristic: OrderHeuristic) -> Self {
        Decompose { heuristic }
    }
}

impl OptimizerPass for Decompose {
    fn name(&self) -> &'static str {
        "decompose"
    }

    fn run(&self, state: PlanState, ctx: &mut PassContext<'_>) -> PlanState {
        let order = match ctx.order_hint.take() {
            Some(hint) if covers_exactly(&hint, &state.query.all_vars()) => {
                ctx.used_hint = true;
                hint
            }
            _ => bucket::bucket_order(&state.query, self.heuristic, &mut DynRng(&mut *ctx.rng)),
        };
        ctx.chosen_order = Some(order);
        state
    }
}

/// Whether `hint` is a permutation of `vars` — the validity bar for a
/// cached order, guarding both decode drift and WL-fingerprint collisions
/// between structurally different queries.
fn covers_exactly(hint: &[AttrId], vars: &[AttrId]) -> bool {
    hint.len() == vars.len() && vars.iter().all(|v| hint.contains(v))
}

/// Builds the bucket-elimination plan along [`PassContext::chosen_order`].
/// Panics if no decomposition pass ran first — a recipe bug, not a data
/// condition.
pub struct BucketBuild;

impl OptimizerPass for BucketBuild {
    fn name(&self) -> &'static str {
        "bucket-build"
    }

    fn run(&self, mut state: PlanState, ctx: &mut PassContext<'_>) -> PlanState {
        let order = ctx
            .chosen_order
            .as_ref()
            .expect("BucketBuild requires a Decompose pass earlier in the recipe");
        state.plan = Some(bucket::plan_with_order(&state.query, ctx.db, order));
        state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::test_support::{pentagon, triangle_free_pair};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fresh_decompose_matches_legacy_order() {
        let (q, db) = pentagon();
        for seed in 0..8u64 {
            let mut legacy_rng = StdRng::seed_from_u64(seed);
            let legacy = bucket::bucket_order(&q, OrderHeuristic::Mcs, &mut legacy_rng);

            let mut rng = StdRng::seed_from_u64(seed);
            let mut src: &mut StdRng = &mut rng;
            let mut ctx = PassContext::new(&db, &mut src);
            let state = PlanState {
                query: q.clone(),
                plan: None,
            };
            Decompose::new(OrderHeuristic::Mcs).run(state, &mut ctx);
            assert_eq!(ctx.chosen_order.as_deref(), Some(legacy.as_slice()));
            assert!(!ctx.used_hint);
        }
    }

    #[test]
    fn hint_skips_decomposition_and_randomness() {
        let (q, db) = triangle_free_pair();
        let hint = q.all_vars();
        let mut rng = StdRng::seed_from_u64(1);
        let mut src: &mut StdRng = &mut rng;
        let mut ctx = PassContext::new(&db, &mut src);
        ctx.order_hint = Some(hint.clone());
        let state = PlanState {
            query: q.clone(),
            plan: None,
        };
        let state = Decompose::new(OrderHeuristic::Mcs).run(state, &mut ctx);
        assert!(ctx.used_hint);
        assert_eq!(ctx.chosen_order.as_deref(), Some(hint.as_slice()));
        // And the build pass produces the plan for exactly that order.
        let state = BucketBuild.run(state, &mut ctx);
        let expected = bucket::plan_with_order(&q, &db, &hint);
        assert_eq!(
            format!("{:?}", state.plan.unwrap()),
            format!("{expected:?}")
        );
        // The hint consumed no random draws: the stream is untouched.
        drop(ctx);
        let mut fresh = StdRng::seed_from_u64(1);
        assert_eq!(
            rand::Rng::next_u64(&mut rng),
            rand::Rng::next_u64(&mut fresh)
        );
    }

    #[test]
    fn wrong_vars_hint_is_ignored() {
        let (q, db) = pentagon();
        let mut wrong = q.all_vars();
        wrong[0] = AttrId(999_999);
        let mut rng = StdRng::seed_from_u64(2);
        let mut src: &mut StdRng = &mut rng;
        let mut ctx = PassContext::new(&db, &mut src);
        ctx.order_hint = Some(wrong);
        let state = PlanState {
            query: q.clone(),
            plan: None,
        };
        Decompose::new(OrderHeuristic::Mcs).run(state, &mut ctx);
        assert!(!ctx.used_hint);
        let mut legacy_rng = StdRng::seed_from_u64(2);
        let legacy = bucket::bucket_order(&q, OrderHeuristic::Mcs, &mut legacy_rng);
        assert_eq!(ctx.chosen_order.as_deref(), Some(legacy.as_slice()));
    }
}
