//! Join-order selection passes.
//!
//! Both passes here transform only [`PlanState::query`] — they pick the
//! atom order a later build pass ([`crate::passes::chain`]) joins in.
//! Contract: the output query is a permutation of the input query's atoms
//! with free list, interner, and Boolean flag unchanged, and no plan may
//! exist yet (order passes run first; they leave an existing plan
//! untouched rather than invalidating it).

use super::{DynRng, OptimizerPass, PassContext, PlanState};
use crate::methods::reordering::greedy_order;

/// Keeps the query's listing order — the straightforward method's entire
/// "join-order selection" (paper §3: the order is whatever the user
/// wrote). Also the first pass of the early-projection recipe, which the
/// paper defines on the listing order.
pub struct ListingOrder;

impl OptimizerPass for ListingOrder {
    fn name(&self) -> &'static str {
        "listing-order"
    }

    fn run(&self, state: PlanState, _ctx: &mut PassContext<'_>) -> PlanState {
        state
    }
}

/// Permutes atoms by the paper's §4 greedy heuristic: repeatedly pick the
/// remaining atom with the most variables occurring in no other remaining
/// atom (they die the moment it is joined); ties prefer fewer shared
/// variables, further ties break randomly via [`PassContext::rng`].
/// Consumes exactly one random draw per pick — the same stream the legacy
/// reordering planner consumes, keeping plans byte-identical.
pub struct GreedyJoinOrder;

impl OptimizerPass for GreedyJoinOrder {
    fn name(&self) -> &'static str {
        "greedy-join-order"
    }

    fn run(&self, mut state: PlanState, ctx: &mut PassContext<'_>) -> PlanState {
        let order = greedy_order(&state.query, &mut DynRng(&mut *ctx.rng));
        state.query = state.query.permuted(&order);
        state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::test_support::pentagon;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn listing_order_is_identity() {
        let (q, db) = pentagon();
        let mut rng = StdRng::seed_from_u64(0);
        let mut src: &mut StdRng = &mut rng;
        let mut ctx = PassContext::new(&db, &mut src);
        let state = PlanState {
            query: q.clone(),
            plan: None,
        };
        let out = ListingOrder.run(state, &mut ctx);
        assert_eq!(out.query.atoms, q.atoms);
        assert!(out.plan.is_none());
    }

    #[test]
    fn greedy_matches_legacy_order_for_the_same_seed() {
        let (q, db) = pentagon();
        for seed in 0..16u64 {
            let mut legacy_rng = StdRng::seed_from_u64(seed);
            let legacy = q.permuted(&greedy_order(&q, &mut legacy_rng));

            let mut rng = StdRng::seed_from_u64(seed);
            let mut src: &mut StdRng = &mut rng;
            let mut ctx = PassContext::new(&db, &mut src);
            let state = PlanState {
                query: q.clone(),
                plan: None,
            };
            let out = GreedyJoinOrder.run(state, &mut ctx);
            assert_eq!(out.query.atoms, legacy.atoms, "seed {seed}");
        }
    }
}
