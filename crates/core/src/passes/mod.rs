//! The composable optimizer-pass pipeline.
//!
//! Planning used to be monolithic: each of the paper's methods was one
//! function from query to [`Plan`]. This module re-expresses every method
//! as a **recipe** — an ordered list of small, typed passes over a
//! [`PlanState`] — run by a [`PassManager`]. The recipes are chosen so
//! that the pipeline's output is **byte-identical** to the legacy
//! per-method planners (`crates/core/src/methods`), which stay in place as
//! the parity oracle; `tests/pass_parity.rs` pins the equivalence across
//! methods × seeds.
//!
//! The pass vocabulary (see [`order`], [`chain`], [`pushdown`],
//! [`decompose`] and docs/PLANNING.md for the per-pass contracts):
//!
//! | Pass | Contract |
//! |---|---|
//! | [`order::ListingOrder`] | keep the query's atom listing order (the straightforward method's "planner") |
//! | [`order::GreedyJoinOrder`] | permute atoms by the paper's §4 greedy dead-variable heuristic |
//! | [`chain::BuildJoinChain`] | materialize the left-deep scan-join chain + one outer projection |
//! | [`pushdown::ProjectionPushdown`] | rewrite the chain, projecting each variable out at its last use |
//! | [`decompose::Decompose`] | choose a bucket-elimination variable order (or reuse a cached one) |
//! | [`decompose::BucketBuild`] | build the bucket-elimination plan along the chosen order |
//!
//! Two pieces of state flow around the plan itself. A [`PassContext`]
//! carries the database, the randomness source, an optional **order
//! hint** (a variable order recovered from `ppr-service`'s decomposition
//! cache — a structurally repeated query skips [`decompose::Decompose`]'s
//! work entirely), and the outputs a caller needs for caching and
//! observability: the chosen order, whether the hint was used, and the
//! pass trace. [`plan_query`] is the one-call entry point wrapping all of
//! this; the legacy [`crate::methods::build_plan`] now delegates to it.

pub mod chain;
pub mod decompose;
pub mod order;
pub mod pushdown;

use std::time::Instant;

use rand::Rng;

use ppr_obs::PassSpan;
use ppr_query::{ConjunctiveQuery, Database};
use ppr_relalg::{AttrId, Plan};

use crate::methods::Method;

/// An object-safe randomness source: the one required method of the
/// vendored [`rand::Rng`] trait. `Rng` itself is not object-safe (its
/// `random_range` is generic), but every generator implements this
/// automatically through the blanket impl, and [`PassContext`] can hold it
/// as a trait object so the pass trait stays object-safe too.
pub trait RandomSource {
    /// Produces the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: Rng + ?Sized> RandomSource for R {
    fn next_u64(&mut self) -> u64 {
        Rng::next_u64(self)
    }
}

/// Adapter lending a [`RandomSource`] back out as a [`rand::Rng`], so
/// passes can call the legacy order heuristics unchanged. Both traits
/// bottom out in the same `next_u64` stream, so a pipeline run consumes
/// exactly the random draws the legacy planner would — a precondition for
/// byte-identical plans.
pub struct DynRng<'a>(pub &'a mut dyn RandomSource);

impl Rng for DynRng<'_> {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// The state a recipe transforms: the query (atom order included — the
/// reordering pass rewrites it) and the plan built so far.
#[derive(Debug, Clone)]
pub struct PlanState {
    /// The query being planned, in the atom order chosen so far.
    pub query: ConjunctiveQuery,
    /// The plan built so far; `None` until a build pass has run.
    pub plan: Option<Plan>,
}

/// Shared context threaded through every pass of one pipeline run:
/// inputs a pass may consume and outputs the caller collects afterwards.
pub struct PassContext<'a> {
    /// The database the plan's scans bind to.
    pub db: &'a Database,
    /// Randomness for tie-breaking and order heuristics. One pipeline run
    /// draws exactly what the legacy planner for the same method would.
    pub rng: &'a mut dyn RandomSource,
    /// A cached bucket-elimination variable order for this query, decoded
    /// into its [`AttrId`]s (the service layer's decomposition cache).
    /// [`decompose::Decompose`] consumes it instead of recomputing, after
    /// validating it covers exactly the query's variables.
    pub order_hint: Option<Vec<AttrId>>,
    /// The variable order the [`decompose::Decompose`] pass settled on
    /// (from the hint or freshly computed) — what a caching caller stores.
    pub chosen_order: Option<Vec<AttrId>>,
    /// Whether [`decompose::Decompose`] consumed a valid `order_hint`,
    /// skipping decomposition work.
    pub used_hint: bool,
    /// Names of the passes run, in order.
    pub trace: Vec<&'static str>,
    /// Per-pass timing and plan-delta spans, one per `trace` entry: wall
    /// time plus plan node counts before/after (0 before any build pass).
    /// `explain plan` renders these.
    pub pass_spans: Vec<PassSpan>,
}

impl<'a> PassContext<'a> {
    /// A context with no order hint over `db`, drawing randomness from
    /// `rng`.
    pub fn new(db: &'a Database, rng: &'a mut dyn RandomSource) -> Self {
        PassContext {
            db,
            rng,
            order_hint: None,
            chosen_order: None,
            used_hint: false,
            trace: Vec::new(),
            pass_spans: Vec::new(),
        }
    }
}

/// One optimizer pass: a named transformation of [`PlanState`]. Passes
/// must be deterministic given the context (randomness comes only from
/// [`PassContext::rng`]) and must preserve query semantics — the plan
/// after the pass computes the same result set as before.
pub trait OptimizerPass {
    /// Stable name, recorded in the pass trace (and `PPR_LOG=debug`
    /// planner logging).
    fn name(&self) -> &'static str;
    /// Transforms the state. A pass that does not apply (e.g. a plan
    /// rewrite before any plan exists) must return the state unchanged.
    fn run(&self, state: PlanState, ctx: &mut PassContext<'_>) -> PlanState;
}

/// An ordered pass pipeline. Built either pass-by-pass ([`PassManager::with`])
/// or from a method's canonical recipe ([`PassManager::for_method`]).
#[derive(Default)]
pub struct PassManager {
    passes: Vec<Box<dyn OptimizerPass>>,
}

impl PassManager {
    /// An empty pipeline.
    pub fn new() -> Self {
        PassManager::default()
    }

    /// Appends a pass to the pipeline.
    pub fn with(mut self, pass: impl OptimizerPass + 'static) -> Self {
        self.passes.push(Box::new(pass));
        self
    }

    /// The canonical recipe for `method` — the pass sequence whose output
    /// is byte-identical to the legacy planner:
    ///
    /// * naive / straightforward: listing order, join chain;
    /// * early projection: listing order, join chain, projection pushdown;
    /// * reordering: greedy order, join chain, projection pushdown;
    /// * bucket elimination: decompose (with the method's heuristic),
    ///   bucket build.
    pub fn for_method(method: Method) -> Self {
        match method {
            Method::Naive | Method::Straightforward => PassManager::new()
                .with(order::ListingOrder)
                .with(chain::BuildJoinChain),
            Method::EarlyProjection => PassManager::new()
                .with(order::ListingOrder)
                .with(chain::BuildJoinChain)
                .with(pushdown::ProjectionPushdown),
            Method::Reordering => PassManager::new()
                .with(order::GreedyJoinOrder)
                .with(chain::BuildJoinChain)
                .with(pushdown::ProjectionPushdown),
            Method::BucketElimination(h) => PassManager::new()
                .with(decompose::Decompose::new(h))
                .with(decompose::BucketBuild),
        }
    }

    /// Number of passes in the pipeline.
    pub fn len(&self) -> usize {
        self.passes.len()
    }

    /// Whether the pipeline holds no passes.
    pub fn is_empty(&self) -> bool {
        self.passes.is_empty()
    }

    /// Runs every pass in order over `query` and returns the finished
    /// plan. Panics if the pipeline ends without a plan (a recipe must
    /// contain a build pass).
    pub fn run(&self, query: &ConjunctiveQuery, ctx: &mut PassContext<'_>) -> Plan {
        let mut state = PlanState {
            query: query.clone(),
            plan: None,
        };
        for pass in &self.passes {
            let nodes_before = state.plan.as_ref().map_or(0, |p| p.node_count() as u64);
            let started = Instant::now();
            state = pass.run(state, ctx);
            let micros = started.elapsed().as_micros() as u64;
            let nodes_after = state.plan.as_ref().map_or(0, |p| p.node_count() as u64);
            ctx.trace.push(pass.name());
            ctx.pass_spans.push(PassSpan {
                name: pass.name().to_string(),
                micros,
                nodes_before,
                nodes_after,
            });
        }
        state
            .plan
            .expect("pass recipe must end with a plan-building pass")
    }
}

/// What one pipeline run produced, beyond the plan itself: the inputs to
/// the service layer's counters (`passes_run`) and decomposition cache
/// (`chosen_order` / `used_hint`).
#[derive(Debug, Clone)]
pub struct PlanReport {
    /// The finished plan.
    pub plan: Plan,
    /// Number of passes the recipe ran.
    pub passes_run: usize,
    /// The bucket-elimination variable order chosen (bucket methods only).
    pub chosen_order: Option<Vec<AttrId>>,
    /// Whether a supplied order hint was consumed, skipping decomposition.
    pub used_hint: bool,
    /// Per-pass wall time and plan-delta spans, in pass order (one entry
    /// per pass counted by `passes_run`).
    pub pass_spans: Vec<PassSpan>,
}

/// Plans `query` for `method` through the pass pipeline and reports what
/// happened. `order_hint` optionally supplies a cached bucket-elimination
/// variable order (ignored by non-bucket methods, validated before use).
/// This is the service layer's entry point; [`crate::methods::build_plan`]
/// is the hint-free convenience wrapper.
pub fn plan_query<R: Rng + ?Sized>(
    method: Method,
    query: &ConjunctiveQuery,
    db: &Database,
    rng: &mut R,
    order_hint: Option<Vec<AttrId>>,
) -> PlanReport {
    let mut source = rng;
    let mut ctx = PassContext::new(db, &mut source);
    ctx.order_hint = order_hint;
    let manager = PassManager::for_method(method);
    let plan = manager.run(query, &mut ctx);
    PlanReport {
        plan,
        passes_run: ctx.trace.len(),
        chosen_order: ctx.chosen_order,
        used_hint: ctx.used_hint,
        pass_spans: ctx.pass_spans,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::test_support::{pentagon, triangle_free_pair};
    use crate::methods::OrderHeuristic;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn recipes_have_documented_lengths() {
        assert_eq!(PassManager::for_method(Method::Naive).len(), 2);
        assert_eq!(PassManager::for_method(Method::Straightforward).len(), 2);
        assert_eq!(PassManager::for_method(Method::EarlyProjection).len(), 3);
        assert_eq!(PassManager::for_method(Method::Reordering).len(), 3);
        assert_eq!(
            PassManager::for_method(Method::BucketElimination(OrderHeuristic::Mcs)).len(),
            2
        );
        assert!(!PassManager::for_method(Method::Naive).is_empty());
        assert!(PassManager::new().is_empty());
    }

    #[test]
    fn plan_query_reports_trace_and_order() {
        let (q, db) = pentagon();
        let mut rng = StdRng::seed_from_u64(3);
        let report = plan_query(
            Method::BucketElimination(OrderHeuristic::Mcs),
            &q,
            &db,
            &mut rng,
            None,
        );
        assert_eq!(report.passes_run, 2);
        assert!(!report.used_hint);
        let order = report.chosen_order.expect("bucket methods choose an order");
        assert_eq!(order.len(), q.all_vars().len());
    }

    #[test]
    fn pass_spans_mirror_the_trace_and_track_plan_growth() {
        let (q, db) = triangle_free_pair();
        let mut rng = StdRng::seed_from_u64(3);
        let report = plan_query(Method::EarlyProjection, &q, &db, &mut rng, None);
        assert_eq!(report.pass_spans.len(), report.passes_run);
        let names: Vec<&str> = report.pass_spans.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            names,
            ["listing-order", "build-join-chain", "projection-pushdown"]
        );
        // No plan exists until the build pass runs; afterwards every span
        // sees a non-empty tree.
        assert_eq!(report.pass_spans[0].nodes_before, 0);
        assert_eq!(report.pass_spans[0].nodes_after, 0);
        assert_eq!(report.pass_spans[1].nodes_before, 0);
        assert!(report.pass_spans[1].nodes_after > 0);
        let last = report.pass_spans.last().unwrap();
        assert_eq!(last.nodes_after, report.plan.node_count() as u64);
    }

    #[test]
    fn non_bucket_methods_choose_no_order() {
        let (q, db) = triangle_free_pair();
        let mut rng = StdRng::seed_from_u64(3);
        let report = plan_query(Method::EarlyProjection, &q, &db, &mut rng, None);
        assert_eq!(report.passes_run, 3);
        assert!(report.chosen_order.is_none());
        assert!(!report.used_hint);
    }

    #[test]
    fn valid_hint_is_consumed_and_reproduces_the_plan() {
        let (q, db) = pentagon();
        let method = Method::BucketElimination(OrderHeuristic::Mcs);
        let mut rng = StdRng::seed_from_u64(9);
        let cold = plan_query(method, &q, &db, &mut rng, None);
        let order = cold.chosen_order.clone().unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let warm = plan_query(method, &q, &db, &mut rng, Some(order.clone()));
        assert!(warm.used_hint);
        assert_eq!(warm.chosen_order.as_deref(), Some(order.as_slice()));
        assert_eq!(format!("{:?}", warm.plan), format!("{:?}", cold.plan));
    }

    #[test]
    fn invalid_hint_is_rejected_and_recomputed() {
        let (q, db) = pentagon();
        let method = Method::BucketElimination(OrderHeuristic::Mcs);
        let mut rng = StdRng::seed_from_u64(9);
        let cold = plan_query(method, &q, &db, &mut rng, None);
        // Too short: not a permutation of the query's variables.
        let bogus = q.all_vars()[..2].to_vec();
        let mut rng = StdRng::seed_from_u64(9);
        let warm = plan_query(method, &q, &db, &mut rng, Some(bogus));
        assert!(!warm.used_hint);
        assert_eq!(format!("{:?}", warm.plan), format!("{:?}", cold.plan));
    }
}
