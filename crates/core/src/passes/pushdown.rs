//! The projection-pushdown rewrite pass.
//!
//! Contract: rewrites a left-deep scan-join chain (the output of
//! [`crate::passes::chain::BuildJoinChain`]) so that every variable is
//! projected out by a `ProjectDistinct` the moment its last occurrence
//! has been joined, unless it is free — the paper's §4 early projection.
//! The rewrite works on the **plan tree alone**: scan bindings supply the
//! occurrence counts and the root projection supplies the target schema,
//! so the pass needs no query. It computes exactly the working/projected
//! labels of the left-deep join-expression tree ([`crate::jet::Jet`]) and
//! materializes a node only where the projected label actually drops an
//! attribute; the result is byte-identical to
//! `Jet::left_deep(query).to_plan(query, db)` (parity-pinned in
//! `tests/pass_parity.rs`).
//!
//! A plan that is not a projected left-deep scan chain (already rewritten,
//! bucket-shaped, or absent) is returned unchanged — the pass is a no-op
//! outside its contract, never an error.

use ppr_relalg::{AttrId, Plan};

use super::{OptimizerPass, PassContext, PlanState};

/// Pushes projections down a left-deep scan-join chain, one
/// `ProjectDistinct` per level where a variable dies.
pub struct ProjectionPushdown;

impl OptimizerPass for ProjectionPushdown {
    fn name(&self) -> &'static str {
        "projection-pushdown"
    }

    fn run(&self, mut state: PlanState, _ctx: &mut PassContext<'_>) -> PlanState {
        if let Some(plan) = state.plan.take() {
            state.plan = Some(push_down(plan));
        }
        state
    }
}

/// Applies the rewrite, or returns `plan` unchanged when it is not a
/// projected left-deep scan chain.
fn push_down(plan: Plan) -> Plan {
    let Plan::ProjectDistinct { input, keep } = plan else {
        return plan;
    };
    let Some(scans) = flatten_chain(&input) else {
        return Plan::ProjectDistinct { input, keep };
    };
    match rebuild(&scans, &keep) {
        Some(rewritten) => rewritten,
        None => Plan::ProjectDistinct { input, keep },
    }
}

/// Collects the scans of a left-deep join chain in join order:
/// `((s_0 ⋈ s_1) ⋈ s_2) ⋈ …`. Returns `None` when the tree has any other
/// shape (an interior projection, a bushy join, a non-scan right child).
fn flatten_chain(plan: &Plan) -> Option<Vec<Plan>> {
    match plan {
        Plan::Scan { .. } => Some(vec![plan.clone()]),
        Plan::Join { left, right } => {
            if !matches!(**right, Plan::Scan { .. }) {
                return None;
            }
            let mut scans = flatten_chain(left)?;
            scans.push((**right).clone());
            Some(scans)
        }
        Plan::ProjectDistinct { .. } => None,
    }
}

/// Distinct attributes of a scan's binding in first-occurrence order —
/// the leaf's variable set (`Atom::vars` computed from the plan side).
fn scan_vars(scan: &Plan) -> Vec<AttrId> {
    let Plan::Scan { binding, .. } = scan else {
        unreachable!("flatten_chain only returns scans");
    };
    let mut vars = Vec::with_capacity(binding.len());
    for &a in binding {
        if !vars.contains(&a) {
            vars.push(a);
        }
    }
    vars
}

/// Rebuilds the chain with projections pushed down. `None` when a free
/// attribute never reaches the root (the chain cannot produce `keep`,
/// so the rewrite declines rather than change semantics).
fn rebuild(scans: &[Plan], keep: &[AttrId]) -> Option<Plan> {
    let m = scans.len();
    let leaf_vars: Vec<Vec<AttrId>> = scans.iter().map(scan_vars).collect();
    // How many atoms mention each attribute (one count per atom, repeats
    // within an atom collapse — mirroring the Jet's occurrence counts).
    let mut total_occ: Vec<(AttrId, usize)> = Vec::new();
    for vars in &leaf_vars {
        for &a in vars {
            match total_occ.iter_mut().find(|(b, _)| *b == a) {
                Some((_, k)) => *k += 1,
                None => total_occ.push((a, 1)),
            }
        }
    }
    let occ = |a: AttrId| -> usize {
        total_occ
            .iter()
            .find(|(b, _)| *b == a)
            .map_or(0, |&(_, k)| k)
    };
    let is_free = |a: AttrId| keep.contains(&a);

    // A leaf's projected label: variables still needed outside the leaf —
    // free, or occurring in another atom.
    let leaf_projected = |j: usize| -> Vec<AttrId> {
        leaf_vars[j]
            .iter()
            .copied()
            .filter(|&a| is_free(a) || occ(a) > 1)
            .collect()
    };

    if m == 1 {
        // Single leaf under the root: the root projects the target schema.
        for &f in keep {
            if !leaf_vars[0].contains(&f) {
                return None;
            }
        }
        return Some(scans[0].clone().project(keep.to_vec()));
    }

    // Walk the chain bottom-up. The prefix node joining atoms 0..=j has
    // working label = dedup(child projected ++ leaf j projected) and
    // projected label = working filtered to attributes still needed
    // outside the prefix (free, or occurring in an atom past j).
    let mut plan = scans[0].clone();
    let mut child_projected = leaf_projected(0);
    let mut prefix_occ: Vec<(AttrId, usize)> = Vec::new();
    for &a in &leaf_vars[0] {
        prefix_occ.push((a, 1));
    }
    for j in 1..m {
        for &a in &leaf_vars[j] {
            match prefix_occ.iter_mut().find(|(b, _)| *b == a) {
                Some((_, k)) => *k += 1,
                None => prefix_occ.push((a, 1)),
            }
        }
        let inside = |a: AttrId| -> usize {
            prefix_occ
                .iter()
                .find(|(b, _)| *b == a)
                .map_or(0, |&(_, k)| k)
        };
        let mut working = child_projected.clone();
        for a in leaf_projected(j) {
            if !working.contains(&a) {
                working.push(a);
            }
        }
        plan = plan.join(scans[j].clone());
        if j == m - 1 {
            // Root: always materialize, projecting the target schema in
            // its declared order.
            for &f in keep {
                if !working.contains(&f) {
                    return None;
                }
            }
            plan = plan.project(keep.to_vec());
        } else {
            let projected: Vec<AttrId> = working
                .iter()
                .copied()
                .filter(|&a| is_free(a) || inside(a) < occ(a))
                .collect();
            if projected.len() < working.len() {
                plan = plan.project(projected.clone());
            }
            child_projected = projected;
        }
    }
    Some(plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jet::Jet;
    use crate::methods::straightforward;
    use crate::methods::test_support::{k4, pentagon, triangle_free_pair};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rewrite(q: &ppr_query::ConjunctiveQuery, db: &ppr_query::Database) -> Plan {
        let chain = straightforward::plan(q, db);
        let mut rng = StdRng::seed_from_u64(0);
        let mut src: &mut StdRng = &mut rng;
        let mut ctx = PassContext::new(db, &mut src);
        let state = PlanState {
            query: q.clone(),
            plan: Some(chain),
        };
        ProjectionPushdown.run(state, &mut ctx).plan.unwrap()
    }

    #[test]
    fn rewrite_is_byte_identical_to_the_jet() {
        for (q, db) in [pentagon(), k4(), triangle_free_pair()] {
            let jet = Jet::left_deep(&q).to_plan(&q, &db);
            let ours = rewrite(&q, &db);
            assert_eq!(format!("{ours:?}"), format!("{jet:?}"), "{q}");
        }
    }

    #[test]
    fn pentagon_materializes_where_variables_die() {
        let (q, db) = pentagon();
        assert_eq!(rewrite(&q, &db).materialization_count(), 3);
    }

    #[test]
    fn non_chain_plans_pass_through_unchanged() {
        let (q, db) = pentagon();
        // Already-rewritten plan: interior projections break the chain
        // shape, so a second application is the identity.
        let once = rewrite(&q, &db);
        let twice = push_down(once.clone());
        assert_eq!(format!("{once:?}"), format!("{twice:?}"));
    }

    #[test]
    fn missing_plan_is_a_no_op() {
        let (q, db) = pentagon();
        let mut rng = StdRng::seed_from_u64(0);
        let mut src: &mut StdRng = &mut rng;
        let mut ctx = PassContext::new(&db, &mut src);
        let state = PlanState {
            query: q,
            plan: None,
        };
        assert!(ProjectionPushdown.run(state, &mut ctx).plan.is_none());
    }

    #[test]
    fn single_atom_chain_keeps_root_projection() {
        use ppr_query::{Atom, ConjunctiveQuery, Vars};
        use ppr_workload::edge_relation;
        let mut vars = Vars::new();
        let v = vars.intern_numbered("v", 2);
        let q = ConjunctiveQuery::new(
            vec![Atom::new("edge", vec![v[0], v[1]])],
            vec![v[0]],
            vars,
            true,
        );
        let mut db = ppr_query::Database::new();
        db.add(edge_relation(3));
        let jet = Jet::left_deep(&q).to_plan(&q, &db);
        assert_eq!(format!("{:?}", rewrite(&q, &db)), format!("{jet:?}"));
    }
}
