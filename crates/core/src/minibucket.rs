//! Mini-bucket elimination (Dechter \[12\]), the approximation the paper
//! lists as a promising direction (§7).
//!
//! Exact bucket elimination joins *all* relations in a bucket, which costs
//! up to `d^(w*+1)`. Mini-bucket elimination MB(`i`) partitions each bucket
//! into *mini-buckets* whose combined scope has at most `i` variables and
//! processes each separately. Projecting each mini-bucket independently
//! only ever *adds* spurious tuples, so the final relation is a superset
//! of the true result: an **empty** relaxed answer proves the true answer
//! empty (e.g. certifies non-3-colorability), while a nonempty one is
//! inconclusive. [`MiniBucketOutcome::exact`] reports whether any bucket
//! was actually split — if not, the result is exact.

use rand::Rng;

use ppr_query::{ConjunctiveQuery, Database};
use ppr_relalg::{AttrId, Plan};

use crate::methods::{bucket, OrderHeuristic};

/// Result of building a mini-bucket plan.
#[derive(Debug, Clone)]
pub struct MiniBucketOutcome {
    /// The (possibly relaxing) plan.
    pub plan: Plan,
    /// True when no bucket was split: the plan computes the exact answer.
    pub exact: bool,
}

/// Builds the MB(`bound`) plan along `order` (attributes, `x_1 … x_n`).
/// `bound` is the maximum scope size of a mini-bucket; it is raised
/// per-item when a single atom's scope already exceeds it.
pub fn plan_with_order(
    query: &ConjunctiveQuery,
    db: &Database,
    order: &[AttrId],
    bound: usize,
) -> MiniBucketOutcome {
    let n = order.len();
    let mut position = rustc_hash::FxHashMap::default();
    for (i, &a) in order.iter().enumerate() {
        position.insert(a, i);
    }
    let is_free = |a: AttrId| query.free.contains(&a);

    let mut buckets: Vec<Vec<(Plan, Vec<AttrId>)>> = vec![Vec::new(); n];
    let mut floor: Vec<(Plan, Vec<AttrId>)> = Vec::new();
    for atom in &query.atoms {
        let vars = atom.vars();
        let b = vars.iter().map(|v| position[v]).max().expect("has vars");
        buckets[b].push((
            Plan::scan(db.expect(&atom.relation), atom.args.clone()),
            vars,
        ));
    }

    let mut exact = true;
    for i in (1..n).rev() {
        let items = std::mem::take(&mut buckets[i]);
        if items.is_empty() {
            continue;
        }
        let partitions = partition(items, bound);
        if partitions.len() > 1 {
            exact = false;
        }
        for part in partitions {
            let (plan, vars) = join_and_project(part, order[i], is_free(order[i]));
            match vars
                .iter()
                .filter_map(|v| {
                    let p = position[v];
                    (p < i).then_some(p)
                })
                .max()
            {
                Some(dest) => buckets[dest].push((plan, vars)),
                None => floor.push((plan, vars)),
            }
        }
    }
    let mut items = std::mem::take(&mut buckets[0]);
    items.extend(floor);
    let mut plans = items.into_iter().map(|(p, _)| p);
    let mut joined = plans.next().expect("final bucket nonempty");
    for p in plans {
        joined = joined.join(p);
    }
    MiniBucketOutcome {
        plan: joined.project(query.free.clone()),
        exact,
    }
}

/// Builds the MB(`bound`) plan with the MCS order (the exact method's
/// default).
pub fn plan<R: Rng + ?Sized>(
    query: &ConjunctiveQuery,
    db: &Database,
    bound: usize,
    rng: &mut R,
) -> MiniBucketOutcome {
    let order = bucket::bucket_order(query, OrderHeuristic::Mcs, rng);
    plan_with_order(query, db, &order, bound)
}

/// A bucket item: a plan plus its output variables.
type BucketItem = (Plan, Vec<AttrId>);

/// First-fit partition of bucket items into scope-bounded mini-buckets.
fn partition(items: Vec<BucketItem>, bound: usize) -> Vec<Vec<BucketItem>> {
    let mut parts: Vec<(Vec<BucketItem>, Vec<AttrId>)> = Vec::new();
    for (plan, vars) in items {
        let mut placed = false;
        for (part, scope) in parts.iter_mut() {
            let grown: Vec<AttrId> = {
                let mut s = scope.clone();
                for &v in &vars {
                    if !s.contains(&v) {
                        s.push(v);
                    }
                }
                s
            };
            if grown.len() <= bound.max(vars.len()) {
                *scope = grown;
                part.push((plan.clone(), vars.clone()));
                placed = true;
                break;
            }
        }
        if !placed {
            let scope = vars.clone();
            parts.push((vec![(plan, vars)], scope));
        }
    }
    parts.into_iter().map(|(p, _)| p).collect()
}

/// Joins the items of one mini-bucket and projects out `var` (unless
/// free).
fn join_and_project(items: Vec<BucketItem>, var: AttrId, var_is_free: bool) -> BucketItem {
    let mut vars_union: Vec<AttrId> = Vec::new();
    for (_, vs) in &items {
        for &v in vs {
            if !vars_union.contains(&v) {
                vars_union.push(v);
            }
        }
    }
    let keep: Vec<AttrId> = if var_is_free {
        vars_union.clone()
    } else {
        vars_union.iter().copied().filter(|&v| v != var).collect()
    };
    let single = items.len() == 1;
    let mut plans = items.into_iter().map(|(p, _)| p);
    let mut joined = plans.next().expect("nonempty");
    for p in plans {
        joined = joined.join(p);
    }
    if single && keep.len() == vars_union.len() {
        return (joined, vars_union);
    }
    (joined.project(keep.clone()), keep)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::straightforward;
    use crate::methods::test_support::{k4, pentagon};
    use ppr_relalg::{exec, Budget};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(41)
    }

    #[test]
    fn generous_bound_is_exact() {
        let (q, db) = pentagon();
        let out = plan(&q, &db, 10, &mut rng());
        assert!(out.exact);
        let (a, _) = exec::execute(&out.plan, &Budget::unlimited()).unwrap();
        let (b, _) = exec::execute(&straightforward::plan(&q, &db), &Budget::unlimited()).unwrap();
        assert!(a.set_eq(&b));
    }

    #[test]
    fn relaxation_is_a_superset() {
        let (q, db) = pentagon();
        for bound in 2..5 {
            let out = plan(&q, &db, bound, &mut rng());
            let (relaxed, _) = exec::execute(&out.plan, &Budget::unlimited()).unwrap();
            let (true_rel, _) =
                exec::execute(&straightforward::plan(&q, &db), &Budget::unlimited()).unwrap();
            // Every true tuple survives the relaxation.
            use rustc_hash::FxHashSet;
            let relaxed_set: FxHashSet<_> = relaxed.tuples().iter().collect();
            for t in true_rel.tuples() {
                assert!(relaxed_set.contains(t), "bound {bound} lost {t:?}");
            }
        }
    }

    #[test]
    fn tight_bound_splits_buckets() {
        let (q, db) = k4();
        let out = plan(&q, &db, 2, &mut rng());
        assert!(!out.exact, "K4 buckets cannot fit in scope 2");
    }

    #[test]
    fn width_respects_bound_modulo_large_atoms() {
        let (q, db) = k4();
        let bound = 3;
        let out = plan(&q, &db, bound, &mut rng());
        // Atom scopes are 2, so the bound is binding: no intermediate
        // wider than `bound`.
        assert!(out.plan.width().unwrap() <= bound + 1);
    }
}
