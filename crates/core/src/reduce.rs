//! Semijoin pre-reduction (Wong–Youssefi \[34\]).
//!
//! The paper's §2 observes that on its 3-COLOR workloads "projecting out a
//! column from our relation yields a relation with all possible tuples.
//! Thus, in our setting, semijoins … are useless." This module makes that
//! observation executable for *any* workload: it materializes each atom,
//! runs semijoin passes between atoms sharing variables until fixpoint,
//! and reports how many tuples were eliminated. For 2-COLOR queries (edge
//! relation of 2 tuples) or selective relations, the reduction bites; for
//! the paper's 6-tuple 3-COLOR relation it provably removes nothing on
//! first pass.

use ppr_query::{ConjunctiveQuery, Database};
use ppr_relalg::{ops, Relation};

/// Outcome of a semijoin reduction pass.
#[derive(Debug, Clone)]
pub struct Reduction {
    /// Per-atom reduced relations (columns bound to query variables).
    pub relations: Vec<Relation>,
    /// Total tuples across atoms before reduction.
    pub tuples_before: usize,
    /// Total tuples after.
    pub tuples_after: usize,
    /// Number of semijoin applications executed.
    pub passes: usize,
    /// True when some relation became empty — the query is empty.
    pub proven_empty: bool,
}

impl Reduction {
    /// Fraction of tuples removed (0.0 when nothing changed — the paper's
    /// 3-COLOR situation).
    pub fn shrinkage(&self) -> f64 {
        if self.tuples_before == 0 {
            return 0.0;
        }
        1.0 - self.tuples_after as f64 / self.tuples_before as f64
    }
}

/// Runs pairwise semijoins between atoms sharing variables until fixpoint
/// (bounded by `max_rounds` full sweeps).
pub fn semijoin_reduce(query: &ConjunctiveQuery, db: &Database, max_rounds: usize) -> Reduction {
    let mut rels: Vec<Relation> = query
        .atoms
        .iter()
        .map(|a| ops::bind(&db.expect(&a.relation), &a.args))
        .collect();
    let tuples_before: usize = rels.iter().map(|r| r.len()).sum();
    let m = rels.len();
    let mut passes = 0usize;
    let mut proven_empty = rels.iter().any(|r| r.is_empty());
    'rounds: for _ in 0..max_rounds {
        let mut changed = false;
        for i in 0..m {
            for j in 0..m {
                if i == j {
                    continue;
                }
                let shared = query.atoms[i].shared_vars(&query.atoms[j]);
                if shared.is_empty() {
                    continue;
                }
                let before = rels[i].len();
                let reduced = ops::semijoin(&rels[i], &rels[j]);
                passes += 1;
                if reduced.len() < before {
                    changed = true;
                    rels[i] = reduced;
                    if rels[i].is_empty() {
                        proven_empty = true;
                        break 'rounds;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    let tuples_after: usize = rels.iter().map(|r| r.len()).sum();
    Reduction {
        relations: rels,
        tuples_before,
        tuples_after,
        passes,
        proven_empty,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppr_query::{Atom, Vars};
    use ppr_workload::edge_relation;

    fn color_path(colors: u32, n: usize) -> (ConjunctiveQuery, Database) {
        let mut vars = Vars::new();
        let v = vars.intern_numbered("v", n);
        let atoms = (1..n)
            .map(|i| Atom::new("edge", vec![v[i - 1], v[i]]))
            .collect();
        let q = ConjunctiveQuery::new(atoms, vec![v[0]], vars, true);
        let mut db = Database::new();
        db.add(edge_relation(colors));
        (q, db)
    }

    #[test]
    fn three_color_semijoins_are_useless() {
        // The paper's observation: π of the 6-tuple edge relation is the
        // full domain, so semijoins remove nothing.
        let (q, db) = color_path(3, 6);
        let r = semijoin_reduce(&q, &db, 5);
        assert_eq!(r.tuples_before, r.tuples_after);
        assert_eq!(r.shrinkage(), 0.0);
        assert!(!r.proven_empty);
    }

    #[test]
    fn two_color_semijoins_also_full() {
        // 2 colors: the edge relation is {(1,2),(2,1)} — projections are
        // still the full domain, so a path stays unreduced.
        let (q, db) = color_path(2, 4);
        let r = semijoin_reduce(&q, &db, 5);
        assert_eq!(r.shrinkage(), 0.0);
    }

    #[test]
    fn selective_relations_do_reduce() {
        // A custom asymmetric relation: succ = {(1,2),(2,3)} over a chain
        // of 4 atoms; the last atom forces values forward, so semijoins
        // prune, and a chain of length 3 is proven empty (no 4-step
        // succession exists in a 3-element chain).
        use ppr_relalg::{AttrId, Schema};
        let mut vars = Vars::new();
        let v = vars.intern_numbered("x", 5);
        let atoms = (1..5)
            .map(|i| Atom::new("succ", vec![v[i - 1], v[i]]))
            .collect();
        let q = ConjunctiveQuery::new(atoms, vec![v[0]], vars, true);
        let mut db = Database::new();
        let schema = Schema::new(vec![AttrId(7_000_000), AttrId(7_000_001)]);
        db.add(ppr_relalg::Relation::from_distinct_rows(
            "succ",
            schema,
            vec![
                vec![1u32, 2].into_boxed_slice(),
                vec![2u32, 3].into_boxed_slice(),
            ],
        ));
        let r = semijoin_reduce(&q, &db, 10);
        assert!(r.proven_empty, "no 4-edge path exists in succ");
        assert!(r.shrinkage() > 0.0);
    }

    #[test]
    fn reduction_preserves_nonemptiness() {
        use ppr_relalg::{AttrId, Schema};
        let mut vars = Vars::new();
        let v = vars.intern_numbered("x", 3);
        let atoms = (1..3)
            .map(|i| Atom::new("succ", vec![v[i - 1], v[i]]))
            .collect();
        let q = ConjunctiveQuery::new(atoms, vec![v[0]], vars, true);
        let mut db = Database::new();
        let schema = Schema::new(vec![AttrId(7_000_000), AttrId(7_000_001)]);
        db.add(ppr_relalg::Relation::from_distinct_rows(
            "succ",
            schema,
            vec![
                vec![1u32, 2].into_boxed_slice(),
                vec![2u32, 3].into_boxed_slice(),
            ],
        ));
        let r = semijoin_reduce(&q, &db, 10);
        assert!(!r.proven_empty); // 1→2→3 exists
                                  // First atom reduced to (1,2): only value whose successor has a
                                  // successor.
        assert_eq!(r.relations[0].len(), 1);
    }
}
