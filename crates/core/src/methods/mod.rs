//! The evaluation methods of the paper's experimental study.
//!
//! Each method turns a conjunctive query into an executable [`Plan`]
//! and/or the SQL the paper would have sent to PostgreSQL.
//! [`build_plan`] runs the method's pass recipe through the composable
//! optimizer pipeline ([`crate::passes`]); the one-shot planners in the
//! submodules ([`straightforward::plan`], [`early_projection::plan`],
//! [`reordering::plan`], [`bucket::plan`]) are the legacy monolithic
//! path, kept as the byte-identity parity oracle for that pipeline
//! (`tests/pass_parity.rs`) and as the building blocks some passes reuse:
//!
//! | Method | Paper | Strategy |
//! |---|---|---|
//! | [`Method::Naive`] | §3 | flat `FROM` + `WHERE` equalities; the planner picks the order (here: joins in listing order, like the straightforward method — the paper found their execution "essentially identical") |
//! | [`Method::Straightforward`] | §3 | explicit `JOIN … ON` chain in listing order, no projection pushing |
//! | [`Method::EarlyProjection`] | §4 | listing order, but a variable is projected out the moment its last atom has been joined |
//! | [`Method::Reordering`] | §4 | greedy atom permutation (maximize immediately-dead variables, then minimize shared variables), then early projection |
//! | [`Method::BucketElimination`] | §5 | bucket elimination along an elimination order (MCS by default, as in the paper) |

pub mod bucket;
pub mod early_projection;
pub mod naive;
pub mod reordering;
pub mod straightforward;

use rand::Rng;

use ppr_query::{ConjunctiveQuery, Database};
use ppr_relalg::Plan;
use ppr_sql::SelectStmt;

/// Which elimination-order heuristic bucket elimination uses. The paper
/// uses MCS; the others feed the `ablation_orders` bench.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OrderHeuristic {
    /// Maximum-cardinality search (Tarjan–Yannakakis), the paper's choice.
    Mcs,
    /// Greedy minimum degree.
    MinDegree,
    /// Greedy minimum fill.
    MinFill,
}

/// An evaluation method. `Hash` so it can key plan caches alongside a
/// query fingerprint (`ppr-service`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// §3: flat SQL, planner-chosen order.
    Naive,
    /// §3: forced listing order, no projection pushing.
    Straightforward,
    /// §4: projection pushing in listing order.
    EarlyProjection,
    /// §4: greedy reordering + projection pushing.
    Reordering,
    /// §5: bucket elimination with the given order heuristic.
    BucketElimination(OrderHeuristic),
}

impl Method {
    /// All methods with the paper's default configuration, in the order
    /// the figures plot them.
    pub fn paper_lineup() -> [Method; 4] {
        [
            Method::Straightforward,
            Method::EarlyProjection,
            Method::Reordering,
            Method::BucketElimination(OrderHeuristic::Mcs),
        ]
    }

    /// Parses a method name as accepted by the CLI and the service wire
    /// protocol: the [`Method::name`] spellings plus the short aliases
    /// `sf`, `early`, `reorder(ing)`, `bucket`.
    pub fn parse(name: &str) -> Option<Method> {
        Some(match name {
            "naive" => Method::Naive,
            "straightforward" | "sf" => Method::Straightforward,
            "early" | "early-projection" => Method::EarlyProjection,
            "reorder" | "reordering" => Method::Reordering,
            "bucket" | "bucket-mcs" => Method::BucketElimination(OrderHeuristic::Mcs),
            "bucket-mindeg" => Method::BucketElimination(OrderHeuristic::MinDegree),
            "bucket-minfill" => Method::BucketElimination(OrderHeuristic::MinFill),
            _ => return None,
        })
    }

    /// Short display name used in experiment output. Round-trips through
    /// [`Method::parse`].
    pub fn name(&self) -> &'static str {
        match self {
            Method::Naive => "naive",
            Method::Straightforward => "straightforward",
            Method::EarlyProjection => "early-projection",
            Method::Reordering => "reordering",
            Method::BucketElimination(OrderHeuristic::Mcs) => "bucket-mcs",
            Method::BucketElimination(OrderHeuristic::MinDegree) => "bucket-mindeg",
            Method::BucketElimination(OrderHeuristic::MinFill) => "bucket-minfill",
        }
    }
}

/// Builds the method's execution plan. Randomness only affects tie
/// breaking (greedy reordering) and order heuristics (bucket elimination);
/// the naive/straightforward/early-projection plans are deterministic.
///
/// ```
/// use ppr_core::methods::{build_plan, Method, OrderHeuristic};
/// use ppr_query::{parse_query, Database};
/// use ppr_relalg::{exec, Budget};
/// use rand::SeedableRng;
///
/// // Is the 5-cycle 3-colorable?
/// let q = parse_query("q() :- e(a,b), e(b,c), e(c,d), e(d,f), e(f,a)").unwrap();
/// let mut db = Database::new();
/// db.add(ppr_query::parse_relation(
///     "e = {(1,2),(1,3),(2,1),(2,3),(3,1),(3,2)}", 100).unwrap());
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let plan = build_plan(Method::BucketElimination(OrderHeuristic::Mcs), &q, &db, &mut rng);
/// let (result, _) = exec::execute(&plan, &Budget::unlimited()).unwrap();
/// assert!(!result.is_empty());
/// ```
pub fn build_plan<R: Rng + ?Sized>(
    method: Method,
    query: &ConjunctiveQuery,
    db: &Database,
    rng: &mut R,
) -> Plan {
    crate::passes::plan_query(method, query, db, rng, None).plan
}

/// Emits the method's SQL (the text the paper sent to PostgreSQL).
pub fn emit_sql<R: Rng + ?Sized>(
    method: Method,
    query: &ConjunctiveQuery,
    db: &Database,
    rng: &mut R,
) -> SelectStmt {
    match method {
        Method::Naive => naive::sql(query),
        _ => crate::sqlgen::plan_to_sql(&build_plan(method, query, db, rng), &query.vars),
    }
}

/// Shared fixtures for the method unit tests.
#[cfg(test)]
pub(crate) mod test_support {
    use ppr_query::{Atom, ConjunctiveQuery, Database, Vars};
    use ppr_relalg::AttrId;
    use ppr_workload::edge_relation;

    /// The paper's Appendix-A pentagon query (Boolean, projects `v1`):
    /// `π_{v1} edge(v1,v2) ⋈ edge(v1,v5) ⋈ edge(v4,v5) ⋈ edge(v3,v4) ⋈
    /// edge(v2,v3)`.
    pub fn pentagon() -> (ConjunctiveQuery, Database) {
        let mut vars = Vars::new();
        let v: Vec<AttrId> = (1..=5).map(|i| vars.intern(&format!("v{i}"))).collect();
        let e = |a: usize, b: usize| Atom::new("edge", vec![v[a - 1], v[b - 1]]);
        let q = ConjunctiveQuery::new(
            vec![e(1, 2), e(1, 5), e(4, 5), e(3, 4), e(2, 3)],
            vec![v[0]],
            vars,
            true,
        );
        let mut db = Database::new();
        db.add(edge_relation(3));
        (q, db)
    }

    /// A triangle with two adjacent free vertices (non-Boolean case).
    pub fn triangle_free_pair() -> (ConjunctiveQuery, Database) {
        let mut vars = Vars::new();
        let v: Vec<AttrId> = (0..3).map(|i| vars.intern(&format!("v{i}"))).collect();
        let q = ConjunctiveQuery::new(
            vec![
                Atom::new("edge", vec![v[0], v[1]]),
                Atom::new("edge", vec![v[1], v[2]]),
                Atom::new("edge", vec![v[0], v[2]]),
            ],
            vec![v[0], v[1]],
            vars,
            false,
        );
        let mut db = Database::new();
        db.add(edge_relation(3));
        (q, db)
    }

    /// K4 (not 3-colorable), Boolean.
    pub fn k4() -> (ConjunctiveQuery, Database) {
        let mut vars = Vars::new();
        let v: Vec<AttrId> = (0..4).map(|i| vars.intern(&format!("v{i}"))).collect();
        let pairs = [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)];
        let atoms = pairs
            .iter()
            .map(|&(a, b)| Atom::new("edge", vec![v[a], v[b]]))
            .collect();
        let q = ConjunctiveQuery::new(atoms, vec![v[0]], vars, true);
        let mut db = Database::new();
        db.add(edge_relation(3));
        (q, db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_distinct() {
        let all = [
            Method::Naive,
            Method::Straightforward,
            Method::EarlyProjection,
            Method::Reordering,
            Method::BucketElimination(OrderHeuristic::Mcs),
            Method::BucketElimination(OrderHeuristic::MinDegree),
            Method::BucketElimination(OrderHeuristic::MinFill),
        ];
        let mut names: Vec<&str> = all.iter().map(|m| m.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), all.len());
    }

    #[test]
    fn names_round_trip_through_parse() {
        for m in [
            Method::Naive,
            Method::Straightforward,
            Method::EarlyProjection,
            Method::Reordering,
            Method::BucketElimination(OrderHeuristic::Mcs),
            Method::BucketElimination(OrderHeuristic::MinDegree),
            Method::BucketElimination(OrderHeuristic::MinFill),
        ] {
            assert_eq!(Method::parse(m.name()), Some(m));
        }
        assert_eq!(Method::parse("sf"), Some(Method::Straightforward));
        assert_eq!(
            Method::parse("bucket"),
            Some(Method::BucketElimination(OrderHeuristic::Mcs))
        );
        assert_eq!(Method::parse("nope"), None);
    }

    #[test]
    fn lineup_matches_figures() {
        assert_eq!(Method::paper_lineup().len(), 4);
        assert_eq!(Method::paper_lineup()[0], Method::Straightforward);
    }
}
